// Ablation study for the three design choices DESIGN.md calls out:
//
//   A. DEEPDIVER's MUP-dominance check — Appendix-B bitmap index vs a linear
//      scan over discovered MUPs vs no dominance pruning at all.
//   B. The coverage oracle — Appendix-A inverted bitmap index (over the
//      aggregated relation) vs the definitional full scan, inside
//      PATTERN-BREAKER, across data sizes.
//   C. The threshold early-exit in coverage queries — CoverageAtLeast's
//      partial-sum cutoff vs computing the exact count and comparing.
//
// All variants produce identical MUP sets; only the cost changes.

#include "bench_common.h"

namespace {

using namespace coverage;

/// Adapter forcing exact-count threshold checks (disables the early exit).
class ExactThresholdOracle : public CoverageOracle {
 public:
  explicit ExactThresholdOracle(const BitmapCoverage& inner) : inner_(inner) {}
  std::uint64_t Coverage(const Pattern& p, QueryContext& ctx) const override {
    return inner_.Coverage(p, ctx);
  }
  bool CoverageAtLeast(const Pattern& p, std::uint64_t tau,
                       QueryContext& ctx) const override {
    return inner_.Coverage(p, ctx) >= tau;
  }

 private:
  const BitmapCoverage& inner_;
};

}  // namespace

int main() {
  using namespace coverage;
  bench::Banner("Ablation: dominance index, coverage oracle, early exit",
                "AirBnB-like synthetic workloads");
  bench::BenchJson json("ablation_design_choices");

  // ---- A. dominance strategies in DEEPDIVER ------------------------------
  {
    std::cout << "\nA. DEEPDIVER dominance strategy (n = 50,000, d = 13)\n";
    const Dataset data = datagen::MakeAirbnb(50000, 13);
    const AggregatedData agg(data);
    const BitmapCoverage oracle(agg);
    TablePrinter table({"tau", "bitmap idx (s)", "linear scan (s)",
                        "no pruning (s)", "# MUPs"});
    for (const std::uint64_t tau : {50u, 500u}) {
      MupSearchOptions options{.tau = tau};
      MupSearchStats bitmap, linear, none;
      options.dominance_mode = MupSearchOptions::DominanceMode::kBitmapIndex;
      FindMupsDeepDiver(oracle, options, &bitmap);
      options.dominance_mode = MupSearchOptions::DominanceMode::kLinearScan;
      FindMupsDeepDiver(oracle, options, &linear);
      options.dominance_mode = MupSearchOptions::DominanceMode::kNoPruning;
      FindMupsDeepDiver(oracle, options, &none);
      table.Row()
          .Cell(tau)
          .Cell(bitmap.seconds, 4)
          .Cell(linear.seconds, 4)
          .Cell(none.seconds, 4)
          .Cell(static_cast<std::uint64_t>(bitmap.num_mups))
          .Done();
      json.Row()
          .Field("study", "dominance")
          .Field("tau", tau)
          .Field("bitmap_index_s", bitmap.seconds)
          .Field("linear_scan_s", linear.seconds)
          .Field("no_pruning_s", none.seconds)
          .Field("num_mups", static_cast<std::uint64_t>(bitmap.num_mups))
          .Done();
    }
    table.Print(std::cout);
  }

  // ---- B. bitmap oracle vs full scan -------------------------------------
  {
    std::cout << "\nB. PATTERN-BREAKER oracle choice (d = 10, tau = 1%)\n";
    TablePrinter table({"n", "bitmap oracle (s)", "scan oracle (s)",
                        "# MUPs"});
    for (const std::size_t n : {2000u, 10000u, 50000u}) {
      const Dataset data = datagen::MakeAirbnb(n, 10);
      const AggregatedData agg(data);
      const BitmapCoverage bitmap(agg);
      ScanCoverage scan(data);
      MupSearchOptions options;
      options.tau = std::max<std::uint64_t>(1, n / 100);
      MupSearchStats fast, slow;
      FindMupsPatternBreaker(bitmap, options, &fast);
      FindMupsPatternBreaker(scan, data.schema(), options, &slow);
      table.Row()
          .Cell(FormatCount(n))
          .Cell(fast.seconds, 4)
          .Cell(slow.seconds, 4)
          .Cell(static_cast<std::uint64_t>(fast.num_mups))
          .Done();
      json.Row()
          .Field("study", "oracle")
          .Field("n", static_cast<std::uint64_t>(n))
          .Field("bitmap_oracle_s", fast.seconds)
          .Field("scan_oracle_s", slow.seconds)
          .Field("num_mups", static_cast<std::uint64_t>(fast.num_mups))
          .Done();
    }
    table.Print(std::cout);
    std::cout << "scan cost grows with n; the bitmap oracle is bounded by "
                 "the distinct-combination count\n";
  }

  // ---- C. threshold early exit --------------------------------------------
  {
    std::cout << "\nC. CoverageAtLeast early exit (n = 100,000, d = 13)\n";
    const Dataset data = datagen::MakeAirbnb(100000, 13);
    const AggregatedData agg(data);
    const BitmapCoverage oracle(agg);
    const ExactThresholdOracle exact(oracle);
    TablePrinter table({"tau", "early exit (s)", "exact count (s)"});
    for (const std::uint64_t tau : {2u, 100u, 1000u}) {
      MupSearchOptions options{.tau = tau};
      MupSearchStats fast, slow;
      FindMupsDeepDiver(oracle, options, &fast);
      FindMupsDeepDiver(exact, data.schema(), options, &slow);
      table.Row()
          .Cell(tau)
          .Cell(fast.seconds, 4)
          .Cell(slow.seconds, 4)
          .Done();
      json.Row()
          .Field("study", "early_exit")
          .Field("tau", tau)
          .Field("early_exit_s", fast.seconds)
          .Field("exact_count_s", slow.seconds)
          .Done();
    }
    table.Print(std::cout);
  }
  return 0;
}

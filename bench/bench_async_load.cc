// Async-serving load test: holds ~10k established keep-alive connections
// against coverage_server's epoll io model while a handful of closed-loop
// clients measure request latency through the crowd. The point of the
// event loop is exactly this shape — massive idle concurrency must cost
// nothing but memory, and the p99 of live traffic must not degrade behind
// thousands of parked sockets.
//
// Process layout: the per-process fd limit counts both ends of a loopback
// connection, so one process cannot hold 10k connections twice over. The
// parent owns the server (one accepted fd per connection); a forked child
// owns the client ends, opens them, sends one priming request on each (so
// every connection is a real keep-alive, not a never-spoke fresh socket),
// and parks until the parent finishes measuring. The child runs between
// fork and _exit on raw syscalls only — no allocation, no locks — because
// it forked off a multithreaded parent.
//
// Emits BENCH_async_load.json: one row per measured workload with the idle
// connection count, throughput, and latency quantiles.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/coverage_server.h"
#include "server/http_client.h"

namespace {

using coverage::CoverageServer;
using coverage::CoverageServerOptions;
using coverage::CoverageService;
using coverage::DatagenSpec;
using coverage::ServiceOptions;
using coverage::Stopwatch;
using coverage::http::HttpClient;
using coverage::http::IoModel;

// Child-side storage, static so the post-fork code never allocates.
constexpr std::size_t kMaxIdle = 16384;
int g_idle_fds[kMaxIdle];

/// Child process body: opens `count` keep-alive connections, primes each
/// with one pipelined GET (responses stay in our kernel buffers — we never
/// read them, which is fine for socket-buffer-sized bodies), reports how
/// many connected via `ready_fd`, then parks until `done_fd` closes.
/// Raw syscalls only; exits with _exit.
void ChildHoldConnections(int port, std::size_t count, int ready_fd,
                          int done_fd) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  const char request[] =
      "GET /healthz HTTP/1.1\r\nHost: bench-async-load\r\n\r\n";
  std::size_t opened = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) break;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      break;
    }
    ssize_t sent = ::send(fd, request, sizeof(request) - 1, MSG_NOSIGNAL);
    if (sent != static_cast<ssize_t>(sizeof(request) - 1)) {
      ::close(fd);
      break;
    }
    g_idle_fds[opened++] = fd;
  }
  std::uint64_t report = opened;
  (void)!::write(ready_fd, &report, sizeof(report));
  char byte;
  while (::read(done_fd, &byte, 1) < 0 && errno == EINTR) {
  }
  for (std::size_t i = 0; i < opened; ++i) ::close(g_idle_fds[i]);
  ::_exit(0);
}

struct LoadResult {
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;
  double seconds = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double throughput() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

double Quantile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[index];
}

LoadResult RunClosedLoop(int port, int num_clients, const std::string& method,
                         const std::string& target, const std::string& body,
                         double seconds) {
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(num_clients));
  std::atomic<std::uint64_t> failures{0};
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};

  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      auto client = HttpClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      auto& mine = latencies[static_cast<std::size_t>(c)];
      mine.reserve(1 << 16);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_acquire)) {
        Stopwatch timer;
        auto response = method == "GET" ? client->Get(target)
                                        : client->Post(target, body);
        const double us = timer.ElapsedSeconds() * 1e6;
        if (!response.ok() || response->status != 200) {
          failures.fetch_add(1);
        } else {
          mine.push_back(us);
        }
      }
    });
  }

  Stopwatch wall;
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(seconds * 1000)));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();

  LoadResult result;
  result.seconds = wall.ElapsedSeconds();
  std::vector<double> all;
  for (auto& mine : latencies) {
    result.requests += mine.size();
    all.insert(all.end(), mine.begin(), mine.end());
  }
  result.failures = failures.load();
  std::sort(all.begin(), all.end());
  result.p50_us = Quantile(all, 0.50);
  result.p99_us = Quantile(all, 0.99);
  return result;
}

}  // namespace

int main() {
  using coverage::bench::Banner;
  using coverage::bench::BenchJson;
  using coverage::bench::FullScale;

  Banner("async serving under massive idle concurrency",
         "epoll io model, ~10k parked keep-alive connections + live load");

  // Both processes pay one fd per connection; leave headroom for the
  // binary's own descriptors on either side of the fork.
  rlimit fd_limit{};
  if (::getrlimit(RLIMIT_NOFILE, &fd_limit) != 0) {
    std::cerr << "getrlimit: " << std::strerror(errno) << "\n";
    return 1;
  }
  const std::size_t idle_target = std::min<std::size_t>(
      {kMaxIdle, static_cast<std::size_t>(10000),
       fd_limit.rlim_cur > 400 ? static_cast<std::size_t>(fd_limit.rlim_cur) -
                                     400
                               : 64});

  ServiceOptions sopts;
  auto service =
      CoverageService::FromSpec(DatagenSpec{"compas", 0, 13, 42}, sopts);
  if (!service.ok()) {
    std::cerr << service.status().ToString() << "\n";
    return 1;
  }
  CoverageServerOptions options;
  options.http.port = 0;
  options.http.num_threads = 4;
  options.http.io_model = IoModel::kEpoll;
  options.http.idle_timeout_ms = 600000;  // nothing parks out mid-bench
  options.http.max_pending = 0;           // the crowd is the workload
  options.http.backlog = 1024;
  CoverageServer server(std::move(*service), options);
  const coverage::Status started = server.Start();
  if (!started.ok()) {
    std::cerr << started.ToString() << "\n";
    return 1;
  }

  int ready_pipe[2];
  int done_pipe[2];
  if (::pipe(ready_pipe) != 0 || ::pipe(done_pipe) != 0) {
    std::cerr << "pipe: " << std::strerror(errno) << "\n";
    return 1;
  }
  const pid_t child = ::fork();
  if (child < 0) {
    std::cerr << "fork: " << std::strerror(errno) << "\n";
    return 1;
  }
  if (child == 0) {
    ::close(ready_pipe[0]);
    ::close(done_pipe[1]);
    ChildHoldConnections(server.port(), idle_target, ready_pipe[1],
                         done_pipe[0]);
  }
  ::close(ready_pipe[1]);
  ::close(done_pipe[0]);

  std::uint64_t idle_connected = 0;
  if (::read(ready_pipe[0], &idle_connected, sizeof(idle_connected)) !=
      static_cast<ssize_t>(sizeof(idle_connected))) {
    std::cerr << "child failed to report\n";
    return 1;
  }
  // The loop accepts and primes asynchronously; wait for the gauge to
  // report every held connection before measuring through the crowd.
  const auto accept_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (server.http_stats().open_connections < idle_connected &&
         std::chrono::steady_clock::now() < accept_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::printf("idle connections held by child: %llu (target %zu)\n",
              static_cast<unsigned long long>(idle_connected), idle_target);

  struct Workload {
    const char* name;
    const char* method;
    const char* target;
    std::string body;
  };
  const Workload workloads[] = {
      {"healthz", "GET", "/healthz", ""},
      {"query-1", "POST", "/v1/query", R"({"patterns": ["XXXX"]})"},
      {"audit", "POST", "/v1/audit", R"({"tau": 30})"},
  };
  const int clients = 4;
  const double seconds = FullScale() ? 5.0 : 2.0;

  BenchJson report("async_load");
  std::printf("%-10s %8s %12s %12s %10s %10s %9s\n", "workload", "clients",
              "requests", "req/s", "p50 (us)", "p99 (us)", "failures");
  for (const Workload& w : workloads) {
    const LoadResult r = RunClosedLoop(server.port(), clients, w.method,
                                       w.target, w.body, seconds);
    std::printf("%-10s %8d %12llu %12.0f %10.1f %10.1f %9llu\n", w.name,
                clients, static_cast<unsigned long long>(r.requests),
                r.throughput(), r.p50_us, r.p99_us,
                static_cast<unsigned long long>(r.failures));
    report.Row()
        .Field("workload", w.name)
        .Field("idle_connections", idle_connected)
        .Field("clients", clients)
        .Field("requests", r.requests)
        .Field("seconds", r.seconds)
        .Field("requests_per_second", r.throughput())
        .Field("p50_us", r.p50_us)
        .Field("p99_us", r.p99_us)
        .Field("failures", r.failures)
        .Done();
  }

  // Release the crowd and reap the child before the server tears down.
  char go = 'x';
  (void)!::write(done_pipe[1], &go, 1);
  ::close(done_pipe[1]);
  int wstatus = 0;
  ::waitpid(child, &wstatus, 0);
  server.Stop();
  if (idle_connected < idle_target / 2) {
    std::cerr << "held only " << idle_connected << " of " << idle_target
              << " connections\n";
    return 1;
  }
  return 0;
}

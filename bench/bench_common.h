#ifndef COVERAGE_BENCH_BENCH_COMMON_H_
#define COVERAGE_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "coverage_lib.h"

namespace coverage {
namespace bench {

/// Paper-scale runs (n = 1M, full parameter grids) are enabled with
/// REPRO_FULL=1 in the environment; the default scale keeps the whole bench
/// suite within a few minutes while preserving every qualitative shape.
inline bool FullScale() {
  const char* env = std::getenv("REPRO_FULL");
  return env != nullptr && env[0] == '1';
}

/// Default data size stand-in for the paper's 1M-row AirBnB experiments.
inline std::size_t AirbnbRows() { return FullScale() ? 1000000u : 200000u; }

/// BENCH_LEGACY=1 forces the legacy vector<int> pattern representation in
/// the MUP searches, so the packed-representation speedup can be measured
/// as a before/after pair from one binary.
inline bool LegacyRepresentation() {
  const char* env = std::getenv("BENCH_LEGACY");
  return env != nullptr && env[0] == '1';
}

/// Prints the standard experiment banner.
inline void Banner(const std::string& figure, const std::string& setting) {
  std::cout << "==============================================================="
               "=\n"
            << figure << "\n"
            << setting << (FullScale() ? "  [REPRO_FULL]" : "  [default scale"
                                                            "; REPRO_FULL=1 "
                                                            "for paper scale]")
            << "\n"
            << "==============================================================="
               "=\n";
}

/// Runs one MUP identification algorithm and returns its stats (the result
/// itself is discarded; `num_mups` lands in the stats). Returns seconds < 0
/// when the algorithm refused the workload (resource guard) — printed as
/// "DNF" by the tables.
inline MupSearchStats TimeMupSearch(MupAlgorithm algorithm,
                                    const BitmapCoverage& oracle,
                                    const MupSearchOptions& options) {
  MupSearchStats stats;
  auto result = FindMups(algorithm, oracle, options, &stats);
  if (!result.ok()) {
    stats.seconds = -1.0;
  }
  return stats;
}

/// "DNF" for guarded refusals, otherwise seconds with 4 digits.
inline std::string SecondsCell(double seconds) {
  if (seconds < 0) return "DNF";
  return FormatDouble(seconds, 4);
}

/// Machine-readable companion to the printed tables: collects rows of
/// key/value fields and writes them as a JSON array of objects to
/// `BENCH_<name>.json` (in $BENCH_JSON_DIR if set, else the working
/// directory) when flushed or destroyed. Gives every bench run a durable
/// record so perf trajectories can be compared across commits.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}
  ~BenchJson() { Flush(); }

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  class RowBuilder {
   public:
    explicit RowBuilder(BenchJson* owner) : owner_(owner) {}
    RowBuilder& Field(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, Quote(value));
      return *this;
    }
    RowBuilder& Field(const std::string& key, const char* value) {
      return Field(key, std::string(value));
    }
    RowBuilder& Field(const std::string& key, double value) {
      fields_.emplace_back(key, FormatDouble(value, 6));
      return *this;
    }
    RowBuilder& Field(const std::string& key, std::uint64_t value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }
    RowBuilder& Field(const std::string& key, int value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }
    /// Commits the row to the report.
    void Done() { owner_->rows_.push_back(std::move(fields_)); }

   private:
    static std::string Quote(const std::string& s) {
      std::string out = "\"";
      for (const char c : s) {
        if (c == '"' || c == '\\') {
          out += '\\';
          out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
          // RFC 8259: control characters must be escaped.
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
      }
      out += '"';
      return out;
    }

    BenchJson* owner_;
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  RowBuilder Row() { return RowBuilder(this); }

  void Flush() {
    if (flushed_) return;
    flushed_ = true;
    const char* dir = std::getenv("BENCH_JSON_DIR");
    const std::string path =
        (dir != nullptr ? std::string(dir) + "/" : std::string()) + "BENCH_" +
        name_ + ".json";
    std::ofstream out(path);
    if (!out.good()) {
      std::cerr << "BenchJson: cannot open " << path << "; dropping "
                << rows_.size() << " rows\n";
      return;
    }
    out << "[\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      out << "  {";
      for (std::size_t f = 0; f < rows_[r].size(); ++f) {
        if (f > 0) out << ", ";
        out << "\"" << rows_[r][f].first << "\": " << rows_[r][f].second;
      }
      out << "}" << (r + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "]\n";
    std::cout << "wrote " << path << " (" << rows_.size() << " rows)\n";
  }

 private:
  friend class RowBuilder;
  std::string name_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
  bool flushed_ = false;
};

}  // namespace bench
}  // namespace coverage

#endif  // COVERAGE_BENCH_BENCH_COMMON_H_

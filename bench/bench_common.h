#ifndef COVERAGE_BENCH_BENCH_COMMON_H_
#define COVERAGE_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <iostream>
#include <string>

#include "coverage_lib.h"

namespace coverage {
namespace bench {

/// Paper-scale runs (n = 1M, full parameter grids) are enabled with
/// REPRO_FULL=1 in the environment; the default scale keeps the whole bench
/// suite within a few minutes while preserving every qualitative shape.
inline bool FullScale() {
  const char* env = std::getenv("REPRO_FULL");
  return env != nullptr && env[0] == '1';
}

/// Default data size stand-in for the paper's 1M-row AirBnB experiments.
inline std::size_t AirbnbRows() { return FullScale() ? 1000000u : 200000u; }

/// Prints the standard experiment banner.
inline void Banner(const std::string& figure, const std::string& setting) {
  std::cout << "==============================================================="
               "=\n"
            << figure << "\n"
            << setting << (FullScale() ? "  [REPRO_FULL]" : "  [default scale"
                                                            "; REPRO_FULL=1 "
                                                            "for paper scale]")
            << "\n"
            << "==============================================================="
               "=\n";
}

/// Runs one MUP identification algorithm and returns its stats (the result
/// itself is discarded; `num_mups` lands in the stats). Returns seconds < 0
/// when the algorithm refused the workload (resource guard) — printed as
/// "DNF" by the tables.
inline MupSearchStats TimeMupSearch(MupAlgorithm algorithm,
                                    const BitmapCoverage& oracle,
                                    const MupSearchOptions& options) {
  MupSearchStats stats;
  auto result = FindMups(algorithm, oracle, options, &stats);
  if (!result.ok()) {
    stats.seconds = -1.0;
  }
  return stats;
}

/// "DNF" for guarded refusals, otherwise seconds with 4 digits.
inline std::string SecondsCell(double seconds) {
  if (seconds < 0) return "DNF";
  return FormatDouble(seconds, 4);
}

}  // namespace bench
}  // namespace coverage

#endif  // COVERAGE_BENCH_BENCH_COMMON_H_

// Distributed scatter-gather vs a single node: the same audit and query
// workload against (a) one in-process CoverageService, (b) one
// coverage_server over loopback HTTP, and (c) a coordinator fronting 1, 2
// and 4 shard servers. Reports wall-clock plus the coordinator-side RPC
// accounting, and asserts the MUP count never changes — the speedup (or
// overhead) is only meaningful because the answers are identical.

#include "bench_common.h"

#include <memory>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "common/stopwatch.h"
#include "server/coverage_server.h"
#include "server/http_client.h"
#include "server/json.h"

namespace {

using namespace coverage;

Dataset Slice(const Dataset& full, std::size_t index, std::size_t count) {
  Dataset slice(full.schema());
  for (std::size_t r = index; r < full.num_rows(); r += count) {
    slice.AppendRow(full.row(r));
  }
  return slice;
}

struct Cluster {
  std::vector<std::unique_ptr<CoverageServer>> shard_servers;
  std::unique_ptr<cluster::ClusterCoordinator> coordinator;
};

Cluster BootCluster(const Dataset& full, std::size_t num_shards,
                    int shard_threads) {
  Cluster c;
  std::vector<std::string> endpoints;
  for (std::size_t i = 0; i < num_shards; ++i) {
    ServiceOptions service_options;
    service_options.num_threads = shard_threads;
    auto service =
        CoverageService::FromDataset(Slice(full, i, num_shards),
                                     service_options);
    if (!service.ok()) {
      std::cerr << "shard boot: " << service.status().ToString() << "\n";
      std::exit(1);
    }
    CoverageServerOptions options;
    options.http.port = 0;
    options.http.num_threads = 2;
    options.enable_internal_routes = true;
    c.shard_servers.push_back(
        std::make_unique<CoverageServer>(std::move(*service), options));
    if (!c.shard_servers.back()->Start().ok()) std::exit(1);
    endpoints.push_back("127.0.0.1:" +
                        std::to_string(c.shard_servers.back()->port()));
  }
  cluster::CoordinatorOptions options;
  options.http.port = 0;
  options.http.num_threads = 2;
  options.shards = endpoints;
  options.boot_backoff_ms = 10;
  c.coordinator =
      std::make_unique<cluster::ClusterCoordinator>(options);
  if (!c.coordinator->Start().ok()) std::exit(1);
  return c;
}

struct Timed {
  double seconds = 0.0;
  std::uint64_t num_mups = 0;
};

/// Times one POST over a fresh keep-alive connection; returns the best of
/// `reps` runs (the steady-state number, discounting first-touch costs).
Timed TimeAudit(int port, const std::string& body, int reps) {
  auto client = http::HttpClient::Connect("127.0.0.1", port);
  if (!client.ok()) std::exit(1);
  Timed best;
  best.seconds = 1e100;
  for (int r = 0; r < reps; ++r) {
    Stopwatch timer;
    auto response = client->Post("/v1/audit", body);
    const double seconds = timer.ElapsedSeconds();
    if (!response.ok() || response->status != 200) {
      std::cerr << "audit failed\n";
      std::exit(1);
    }
    auto parsed = json::Parse(response->body);
    const std::uint64_t mups =
        parsed.ok() ? parsed->Find("mups")->AsArray().size() : 0;
    if (seconds < best.seconds) best.seconds = seconds;
    best.num_mups = mups;
  }
  return best;
}

double TimeQueries(int port, const std::string& body, int reps) {
  auto client = http::HttpClient::Connect("127.0.0.1", port);
  if (!client.ok()) std::exit(1);
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    Stopwatch timer;
    auto response = client->Post("/v1/query", body);
    if (!response.ok() || response->status != 200) std::exit(1);
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

std::string QueryBody(const Schema& schema, int n) {
  // A deterministic spread of level-1/2 probes.
  std::string body = "{\"queries\": [";
  const int d = schema.num_attributes();
  for (int i = 0; i < n; ++i) {
    std::string pattern(static_cast<std::size_t>(d), 'X');
    pattern[static_cast<std::size_t>(i % d)] = static_cast<char>(
        '0' + (i / d) % schema.cardinality(i % d));
    if (i > 0) body += ", ";
    body += "{\"pattern\": \"" + pattern + "\", \"tau\": 50}";
  }
  return body + "]}";
}

}  // namespace

int main() {
  bench::Banner("Distributed coverage tier: shards vs one node",
                "same audit, bit-identical answers, wall-clock compared");
  bench::BenchJson json("distributed");

  struct Workload {
    std::string name;
    Dataset data;
    std::uint64_t tau;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"compas", datagen::MakeCompas().data, 30});
  const std::size_t airbnb_rows = bench::FullScale() ? 200000u : 30000u;
  workloads.push_back(
      {"airbnb-d8", datagen::MakeAirbnb(airbnb_rows, 8), 50});

  const int kReps = 3;
  for (const Workload& w : workloads) {
    std::cout << "\n" << w.name << " (n = " << w.data.num_rows()
              << ", tau = " << w.tau << ")\n";
    const std::string audit_body =
        "{\"tau\": " + std::to_string(w.tau) + "}";
    const std::string query_body = QueryBody(w.data.schema(), 64);

    // Single node over the same loopback HTTP path — the fair baseline
    // (in-process timing would hide the serving stack both sides pay).
    Cluster single = BootCluster(w.data, 1, /*shard_threads=*/1);
    // A "cluster of one" measures pure coordinator overhead; larger
    // clusters add fan-out wins (and RPC costs).
    TablePrinter table(
        {"topology", "audit (s)", "64 queries (s)", "# MUPs"});
    Timed baseline =
        TimeAudit(single.shard_servers[0]->port(), audit_body, kReps);
    const double baseline_queries =
        TimeQueries(single.shard_servers[0]->port(), query_body, kReps);
    table.Row()
        .Cell("single node")
        .Cell(baseline.seconds, 4)
        .Cell(baseline_queries, 4)
        .Cell(baseline.num_mups)
        .Done();
    json.Row()
        .Field("workload", w.name)
        .Field("topology", "single")
        .Field("shards", 1)
        .Field("audit_s", baseline.seconds)
        .Field("query64_s", baseline_queries)
        .Field("num_mups", baseline.num_mups)
        .Done();
    single.coordinator->Stop();
    for (auto& server : single.shard_servers) server->Stop();

    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}}) {
      Cluster c = BootCluster(w.data, shards, /*shard_threads=*/1);
      const Timed audit =
          TimeAudit(c.coordinator->port(), audit_body, kReps);
      const double queries =
          TimeQueries(c.coordinator->port(), query_body, kReps);
      if (audit.num_mups != baseline.num_mups) {
        std::cerr << "MUP count diverged: " << audit.num_mups << " vs "
                  << baseline.num_mups << "\n";
        return 1;
      }
      const std::string label =
          "coordinator + " + std::to_string(shards) + " shard" +
          (shards == 1 ? "" : "s");
      table.Row()
          .Cell(label)
          .Cell(audit.seconds, 4)
          .Cell(queries, 4)
          .Cell(audit.num_mups)
          .Done();
      json.Row()
          .Field("workload", w.name)
          .Field("topology", "distributed")
          .Field("shards", static_cast<std::uint64_t>(shards))
          .Field("audit_s", audit.seconds)
          .Field("query64_s", queries)
          .Field("num_mups", audit.num_mups)
          .Done();
      c.coordinator->Stop();
      for (auto& server : c.shard_servers) server->Stop();
    }
    table.Print(std::cout);
  }
  std::cout << "\nAnswers identical across every topology; timings above "
               "are best-of-" << kReps << ".\n";
  return 0;
}

// Streaming-engine ingest benchmark: chunked CSV ingestion throughput and
// incremental MUP-update latency of the CoverageEngine, with a memory
// comparison against the whole-file load path.
//
// The dataset is an AirBnB-style generation written to a temporary CSV in
// chunks, so not even the *generator* ever holds the full table; the engine
// then ingests it chunk by chunk. Peak RSS (VmHWM) is sampled after the
// streamed ingest and again after a deliberate whole-file
// Dataset::InferFromCsv load — the gap is the memory the streaming path
// never pays. REPRO_FULL=1 runs the paper-scale 1M rows.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "bench_common.h"

namespace {

/// VmRSS / VmHWM in MiB from /proc/self/status; 0.0 when unavailable.
double ProcStatusMib(const std::string& key) {
  std::ifstream status("/proc/self/status");
  std::string token;
  while (status >> token) {
    if (token == key + ":") {
      double kib = 0.0;
      status >> kib;
      return kib / 1024.0;
    }
  }
  return 0.0;
}

/// Appends `n` AirBnB-style rows to `os` (no header), generated with `seed`.
void WriteRows(std::ostream& os, const coverage::Schema& schema,
               std::size_t n, int d, std::uint64_t seed) {
  const coverage::Dataset chunk = coverage::datagen::MakeAirbnb(n, d, seed);
  for (std::size_t r = 0; r < chunk.num_rows(); ++r) {
    const auto row = chunk.row(r);
    for (int i = 0; i < d; ++i) {
      if (i != 0) os << ',';
      os << schema.attribute(i)
                .value_names[static_cast<std::size_t>(row[i])];
    }
    os << '\n';
  }
}

}  // namespace

int main() {
  using namespace coverage;
  const std::size_t n = bench::AirbnbRows();
  const int d = bench::FullScale() ? 15 : 13;
  const std::uint64_t tau = std::max<std::uint64_t>(1, n / 1000);
  bench::Banner("Streaming engine: chunked ingest + incremental updates",
                "AirBnB n = " + FormatCount(n) + ", d = " + std::to_string(d) +
                    ", tau = " + std::to_string(tau));
  bench::BenchJson json("engine_ingest");

  // ---- generate the CSV in bounded-memory chunks --------------------------
  const Schema schema = datagen::MakeAirbnb(1, d).schema();
  const std::string csv_path = "bench_engine_ingest_tmp.csv";
  {
    std::ofstream csv(csv_path);
    for (int i = 0; i < schema.num_attributes(); ++i) {
      if (i != 0) csv << ',';
      csv << schema.attribute(i).name;
    }
    csv << '\n';
    constexpr std::size_t kGenChunk = 50000;
    std::size_t written = 0;
    while (written < n) {
      const std::size_t take = std::min(kGenChunk, n - written);
      WriteRows(csv, schema, take, d, 7 + written);
      written += take;
    }
  }

  // ---- chunked ingest sweep ----------------------------------------------
  TablePrinter table({"chunk rows", "rows/s", "read (s)", "updates (s)",
                      "# MUPs", "peak chunk", "VmHWM (MiB)"});
  std::optional<CoverageEngine> loaded;  // last sweep's engine, for appends
  for (const std::size_t chunk_rows : {std::size_t{4096}, std::size_t{65536}}) {
    EngineOptions options;
    options.tau = tau;
    loaded.emplace(schema, options);
    CoverageEngine& engine = *loaded;
    std::ifstream csv(csv_path);
    Stopwatch timer;
    const auto stats = engine.IngestCsvChunked(csv, chunk_rows);
    const double seconds = timer.ElapsedSeconds();
    if (!stats.ok()) {
      std::cerr << stats.status().ToString() << "\n";
      return 1;
    }
    const double rows_per_sec = static_cast<double>(stats->rows) / seconds;
    const double hwm = ProcStatusMib("VmHWM");
    // The streaming guarantee, measured: the engine never held more decoded
    // rows than one chunk.
    if (stats->peak_chunk_rows > chunk_rows) {
      std::cerr << "FAIL: peak resident chunk " << stats->peak_chunk_rows
                << " exceeds requested " << chunk_rows << "\n";
      return 1;
    }
    table.Row()
        .Cell(FormatCount(chunk_rows))
        .Cell(FormatCount(static_cast<std::uint64_t>(rows_per_sec)))
        .Cell(FormatDouble(stats->read_seconds, 3))
        .Cell(FormatDouble(stats->update_seconds, 3))
        .Cell(static_cast<std::uint64_t>(engine.Mups().size()))
        .Cell(FormatCount(stats->peak_chunk_rows))
        .Cell(FormatDouble(hwm, 1))
        .Done();
    json.Row()
        .Field("mode", "ingest")
        .Field("n", static_cast<std::uint64_t>(n))
        .Field("d", d)
        .Field("tau", tau)
        .Field("chunk_rows", static_cast<std::uint64_t>(chunk_rows))
        .Field("rows_per_sec", rows_per_sec)
        .Field("read_seconds", stats->read_seconds)
        .Field("update_seconds", stats->update_seconds)
        .Field("coverage_queries", stats->coverage_queries)
        .Field("num_mups", static_cast<std::uint64_t>(engine.Mups().size()))
        .Field("peak_chunk_rows",
               static_cast<std::uint64_t>(stats->peak_chunk_rows))
        .Field("vm_hwm_mib", hwm)
        .Done();
  }
  table.Print(std::cout);

  // ---- incremental-update latency on the loaded engine --------------------
  for (const std::size_t batch : {std::size_t{100}, std::size_t{10000}}) {
    const Dataset rows = datagen::MakeAirbnb(batch, d, 4242);
    EngineUpdateStats update;
    if (!loaded->AppendRows(rows, &update).ok()) return 1;
    std::cout << "incremental append of " << FormatCount(batch)
              << " rows: " << FormatDouble(update.seconds * 1e3, 3) << " ms ("
              << update.mups_rechecked << " rechecked, "
              << update.mups_newly_covered << " newly covered, "
              << update.mups_added << " added, " << update.coverage_queries
              << " queries)\n";
    json.Row()
        .Field("mode", "append")
        .Field("batch_rows", static_cast<std::uint64_t>(batch))
        .Field("seconds", update.seconds)
        .Field("mups_rechecked",
               static_cast<std::uint64_t>(update.mups_rechecked))
        .Field("mups_newly_covered",
               static_cast<std::uint64_t>(update.mups_newly_covered))
        .Field("mups_added", static_cast<std::uint64_t>(update.mups_added))
        .Field("coverage_queries", update.coverage_queries)
        .Done();
  }

  // ---- memory comparison: streamed vs whole-file load ---------------------
  const double hwm_streamed = ProcStatusMib("VmHWM");
  {
    std::ifstream csv(csv_path);
    auto whole = Dataset::InferFromCsv(csv, 100);
    if (!whole.ok()) return 1;
    std::cout << "whole-file load materialised "
              << FormatCount(whole->num_rows()) << " rows\n";
  }
  const double hwm_whole = ProcStatusMib("VmHWM");
  std::cout << "peak RSS after streamed ingest: "
            << FormatDouble(hwm_streamed, 1)
            << " MiB; after whole-file load: " << FormatDouble(hwm_whole, 1)
            << " MiB\n"
            << "expected shape: the streamed peak is bounded by one chunk + "
               "the aggregated\nrelation (min(n, 2^d) combos), far below the "
               "whole-file peak at paper scale\n";
  json.Row()
      .Field("mode", "memory")
      .Field("vm_hwm_streamed_mib", hwm_streamed)
      .Field("vm_hwm_whole_file_mib", hwm_whole)
      .Done();

  std::remove(csv_path.c_str());
  return 0;
}

// Sliding-window engine benchmark: throughput and incremental-maintenance
// cost of CoverageEngine with window_max_rows set, against the append-only
// baseline on the same stream.
//
// Every windowed append runs two maintenance steps (insert-monotone recheck
// + downward re-expansion, then deletion-monotone parent recheck + upward
// climb from the evicted combinations), so the interesting numbers are the
// retraction share of the update time and how the tombstone population
// behaves at steady state. REPRO_FULL=1 runs the paper-scale 1M-row stream.

#include <algorithm>
#include <iostream>
#include <string>

#include "bench_common.h"

int main() {
  using namespace coverage;
  const std::size_t n = bench::FullScale() ? 1000000 : 120000;
  const int d = bench::FullScale() ? 15 : 12;
  const std::size_t chunk_rows = 8192;
  bench::Banner("Streaming engine: sliding-window appends vs append-only",
                "AirBnB n = " + FormatCount(n) + ", d = " + std::to_string(d) +
                    ", chunks of " + FormatCount(chunk_rows));
  bench::BenchJson json("engine_window");

  const Schema schema = datagen::MakeAirbnb(1, d).schema();
  TablePrinter table({"window rows", "tau", "rows/s", "updates (s)",
                      "retracted", "tombstones", "# MUPs", "queries"});

  // window = 0 is the append-only baseline over the identical stream.
  for (const std::size_t window : {std::size_t{0}, n / 8, n / 4}) {
    EngineOptions options;
    options.window_max_rows = window;
    // τ is a per-window rule of thumb: 0.1% of the audited population.
    const std::size_t population = window == 0 ? n : window;
    options.tau = std::max<std::uint64_t>(1, population / 1000);
    CoverageEngine engine(schema, options);

    Stopwatch timer;
    double update_seconds = 0.0;
    std::uint64_t queries = 0;
    std::size_t retracted = 0;
    std::size_t streamed = 0;
    std::uint64_t seed = 7;
    while (streamed < n) {
      const std::size_t take = std::min(chunk_rows, n - streamed);
      const Dataset chunk = datagen::MakeAirbnb(take, d, seed + streamed);
      EngineUpdateStats stats;
      if (!engine.AppendRows(chunk, &stats).ok()) return 1;
      update_seconds += stats.seconds;
      queries += stats.coverage_queries;
      retracted += stats.rows_retracted;
      streamed += take;
    }
    const double seconds = timer.ElapsedSeconds();
    const auto snapshot = engine.snapshot();
    const double rows_per_sec = static_cast<double>(n) / seconds;
    if (window > 0 && snapshot->num_rows() > window) {
      std::cerr << "FAIL: " << snapshot->num_rows()
                << " rows retained exceeds the " << window << " cap\n";
      return 1;
    }
    table.Row()
        .Cell(window == 0 ? std::string("(unbounded)") : FormatCount(window))
        .Cell(options.tau)
        .Cell(FormatCount(static_cast<std::uint64_t>(rows_per_sec)))
        .Cell(FormatDouble(update_seconds, 3))
        .Cell(FormatCount(retracted))
        .Cell(FormatCount(snapshot->data().num_tombstones()))
        .Cell(static_cast<std::uint64_t>(snapshot->mups().size()))
        .Cell(queries)
        .Done();
    json.Row()
        .Field("n", static_cast<std::uint64_t>(n))
        .Field("d", d)
        .Field("chunk_rows", static_cast<std::uint64_t>(chunk_rows))
        .Field("window_rows", static_cast<std::uint64_t>(window))
        .Field("tau", options.tau)
        .Field("rows_per_sec", rows_per_sec)
        .Field("update_seconds", update_seconds)
        .Field("rows_retracted", static_cast<std::uint64_t>(retracted))
        .Field("tombstones",
               static_cast<std::uint64_t>(snapshot->data().num_tombstones()))
        .Field("num_mups",
               static_cast<std::uint64_t>(snapshot->mups().size()))
        .Field("coverage_queries", queries)
        .Done();
  }
  table.Print(std::cout);
  std::cout << "expected shape: windowed throughput stays within a "
               "single-digit factor of\nthe append-only baseline — each "
               "eviction epoch pays a parent recheck plus an\nupward climb "
               "bounded by the evicted combinations' uncovered ancestors — "
               "and\nthe tombstone population stabilises once the window "
               "reaches steady state\n";
  return 0;
}

// Regenerates Figure 6: the distribution of MUP levels in the AirBnB dataset
// with n = 1000 items, d = 13 attributes, τ = 50. The paper reports a
// bell-shaped histogram (1, 38, 281, 628, 982, 1014, 562, 237, 100, 35, 2
// across levels 1-11) — most MUPs sit in the middle levels, very few are the
// dangerous general ones.

#include "bench_common.h"

int main() {
  using namespace coverage;
  bench::Banner("Figure 6: distribution of MUP levels",
                "AirBnB-like, n = 1000, d = 13, tau = 50");

  const Dataset data = datagen::MakeAirbnb(1000, 13);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  MupSearchStats stats;
  const auto mups =
      FindMupsDeepDiver(oracle, MupSearchOptions{.tau = 50}, &stats);
  const auto histogram = MupLevelHistogram(mups, 13);

  TablePrinter table({"level", "# of MUPs", "bar"});
  bench::BenchJson json("fig06_mup_distribution");
  std::size_t peak = 0;
  for (std::size_t c : histogram) peak = std::max(peak, c);
  for (std::size_t level = 0; level < histogram.size(); ++level) {
    const std::size_t count = histogram[level];
    const std::size_t width = peak == 0 ? 0 : count * 40 / peak;
    table.Row()
        .Cell(static_cast<std::uint64_t>(level))
        .Cell(static_cast<std::uint64_t>(count))
        .Cell(std::string(width, '#'))
        .Done();
    json.Row()
        .Field("level", static_cast<std::uint64_t>(level))
        .Field("num_mups", static_cast<std::uint64_t>(count))
        .Field("discovery_seconds", stats.seconds)
        .Field("total_mups", static_cast<std::uint64_t>(mups.size()))
        .Done();
  }
  table.Print(std::cout);
  std::cout << "total MUPs: " << mups.size()
            << "   discovery time: " << FormatDouble(stats.seconds, 4)
            << " s\n"
            << "expected shape: bell curve peaking in the middle levels, "
               "almost nothing at levels 0-2\n";
  return 0;
}

// Regenerates Figure 11: the effect of lack of coverage on classification.
// A decision tree is trained on the COMPAS data with {0, 20, 40, 60, 80}
// Hispanic-female (HF) records and evaluated on a held-out set of 20 HF
// records. The paper reports subgroup accuracy below 50% with 0 HF records,
// climbing as coverage is remedied, while overall accuracy stays ~0.76.

#include "bench_common.h"

int main() {
  using namespace coverage;
  bench::Banner("Figure 11: lack-of-coverage effect on classification",
                "COMPAS-like, decision tree; test = 20 held-out HF records");

  const auto compas = datagen::MakeCompas(6889, 42);
  const Dataset& data = compas.data;

  std::vector<std::size_t> hf_rows, other_rows;
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    const bool hf = data.at(r, datagen::kCompasSex) == 1 &&
                    data.at(r, datagen::kCompasRace) == 2;
    (hf ? hf_rows : other_rows).push_back(r);
  }
  Rng rng(17);
  rng.Shuffle(hf_rows);
  const std::vector<std::size_t> hf_test(hf_rows.begin(), hf_rows.begin() + 20);
  const std::vector<std::size_t> hf_pool(hf_rows.begin() + 20, hf_rows.end());

  // Overall test set: a random slice of non-HF rows kept out of training.
  std::vector<std::size_t> others = other_rows;
  rng.Shuffle(others);
  const std::size_t overall_test_n = others.size() / 5;
  const std::vector<std::size_t> overall_test(others.begin(),
                                              others.begin() +
                                                  static_cast<std::ptrdiff_t>(
                                                      overall_test_n));
  const std::vector<std::size_t> train_base(
      others.begin() + static_cast<std::ptrdiff_t>(overall_test_n),
      others.end());

  auto evaluate = [&](const DecisionTree& tree,
                      const std::vector<std::size_t>& rows) {
    std::vector<int> actual, predicted;
    for (std::size_t r : rows) {
      actual.push_back(compas.labels[r]);
      predicted.push_back(tree.Predict(data.row(r)));
    }
    return EvaluateBinary(actual, predicted);
  };

  TablePrinter table({"HF in train", "overall acc", "overall F1",
                      "subgroup acc", "subgroup F1"});
  bench::BenchJson json("fig11_coverage_effect");
  for (std::size_t hf_in_train : {0u, 20u, 40u, 60u, 80u}) {
    std::vector<std::size_t> train = train_base;
    train.insert(train.end(), hf_pool.begin(),
                 hf_pool.begin() + static_cast<std::ptrdiff_t>(
                                       std::min(hf_in_train, hf_pool.size())));
    DecisionTree tree;
    DecisionTree::Options options;
    options.max_depth = 8;
    options.min_samples_leaf = 5;
    tree.Fit(data, compas.labels, train, options);
    const auto overall = evaluate(tree, overall_test);
    const auto subgroup = evaluate(tree, hf_test);
    table.Row()
        .Cell(static_cast<std::uint64_t>(hf_in_train))
        .Cell(overall.accuracy, 3)
        .Cell(overall.f1, 3)
        .Cell(subgroup.accuracy, 3)
        .Cell(subgroup.f1, 3)
        .Done();
    json.Row()
        .Field("hf_in_train", static_cast<std::uint64_t>(hf_in_train))
        .Field("overall_accuracy", overall.accuracy)
        .Field("overall_f1", overall.f1)
        .Field("subgroup_accuracy", subgroup.accuracy)
        .Field("subgroup_f1", subgroup.f1)
        .Done();
  }
  table.Print(std::cout);
  std::cout << "expected shape: subgroup accuracy/F1 rise with HF training "
               "records;\noverall accuracy stays roughly flat (the paper "
               "reports a constant 0.76)\n";
  return 0;
}

// Regenerates Figure 12: MUP identification on AirBnB varying the coverage
// threshold (paper: n = 1M, d = 15, τ-rate 1e-6 … 1e-2; APRIORI vs
// PATTERN-BREAKER vs PATTERN-COMBINER vs DEEPDIVER, plus the number of MUPs).
//
// Expected shape (§V-C1): as the threshold grows, MUPs move up the pattern
// graph, so the top-down PATTERN-BREAKER gets *faster* while the bottom-up
// PATTERN-COMBINER gets *slower*; DEEPDIVER is competitive everywhere;
// APRIORI is not competitive (DNFs under its resource guard at low rates).

#include "bench_common.h"

int main() {
  using namespace coverage;
  const std::size_t n = bench::FullScale() ? 1000000 : 100000;
  const int d = bench::FullScale() ? 15 : 13;
  bench::Banner("Figure 12: MUP identification vs threshold (AirBnB)",
                "n = " + FormatCount(n) + ", d = " + std::to_string(d));

  const Dataset data = datagen::MakeAirbnb(n, d);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);

  TablePrinter table({"tau rate", "tau", "APRIORI (s)", "P-BREAKER (s)",
                      "P-COMBINER (s)", "DEEPDIVER (s)", "# MUPs"});
  bench::BenchJson json("fig12_airbnb_threshold");
  for (const double rate : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2}) {
    MupSearchOptions options;
    options.tau = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(rate * static_cast<double>(n)));
    // APRIORI explodes at low thresholds exactly as the paper describes;
    // bound its lattice so the suite terminates.
    MupSearchOptions apriori_options = options;
    apriori_options.enumeration_limit = 1u << 22;

    const auto apriori =
        bench::TimeMupSearch(MupAlgorithm::kApriori, oracle, apriori_options);
    const auto breaker =
        bench::TimeMupSearch(MupAlgorithm::kPatternBreaker, oracle, options);
    const auto combiner =
        bench::TimeMupSearch(MupAlgorithm::kPatternCombiner, oracle, options);
    const auto diver =
        bench::TimeMupSearch(MupAlgorithm::kDeepDiver, oracle, options);
    table.Row()
        .Cell(FormatDouble(rate, 6))
        .Cell(options.tau)
        .Cell(bench::SecondsCell(apriori.seconds))
        .Cell(bench::SecondsCell(breaker.seconds))
        .Cell(bench::SecondsCell(combiner.seconds))
        .Cell(bench::SecondsCell(diver.seconds))
        .Cell(static_cast<std::uint64_t>(diver.num_mups))
        .Done();
    json.Row()
        .Field("n", static_cast<std::uint64_t>(n))
        .Field("d", d)
        .Field("tau_rate", rate)
        .Field("tau", options.tau)
        .Field("apriori_s", apriori.seconds)
        .Field("pattern_breaker_s", breaker.seconds)
        .Field("pattern_combiner_s", combiner.seconds)
        .Field("deep_diver_s", diver.seconds)
        .Field("num_mups", static_cast<std::uint64_t>(diver.num_mups))
        .Done();
  }
  table.Print(std::cout);
  std::cout << "expected shape: BREAKER cheap at high rates, COMBINER cheap "
               "at low rates,\nDEEPDIVER robust everywhere, APRIORI slowest / "
               "DNF (paper: only one setting under 100 s)\n";
  return 0;
}

// Regenerates Figure 13: MUP identification on BlueNile varying the coverage
// threshold (n = 116,300, d = 7, cardinalities 10/4/7/8/3/3/5; τ-rate
// 1e-5 … 1e-2). The high cardinalities widen the bottom of the pattern graph
// (> 100K level-7 nodes vs 128 for binary), which is what hurts the
// bottom-up PATTERN-COMBINER here.

#include "bench_common.h"

int main() {
  using namespace coverage;
  const std::size_t n = 116300;
  bench::Banner("Figure 13: MUP identification vs threshold (BlueNile)",
                "n = " + FormatCount(n) + ", d = 7, cards 10/4/7/8/3/3/5");

  const Dataset data = datagen::MakeBlueNile(n);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);

  TablePrinter table({"tau rate", "tau", "P-BREAKER (s)", "P-COMBINER (s)",
                      "DEEPDIVER (s)", "# MUPs"});
  bench::BenchJson json("fig13_bluenile_threshold");
  for (const double rate : {1e-5, 1e-4, 1e-3, 1e-2}) {
    MupSearchOptions options;
    options.tau = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(rate * static_cast<double>(n)));
    const auto breaker =
        bench::TimeMupSearch(MupAlgorithm::kPatternBreaker, oracle, options);
    const auto combiner =
        bench::TimeMupSearch(MupAlgorithm::kPatternCombiner, oracle, options);
    const auto diver =
        bench::TimeMupSearch(MupAlgorithm::kDeepDiver, oracle, options);
    table.Row()
        .Cell(FormatDouble(rate, 5))
        .Cell(options.tau)
        .Cell(bench::SecondsCell(breaker.seconds))
        .Cell(bench::SecondsCell(combiner.seconds))
        .Cell(bench::SecondsCell(diver.seconds))
        .Cell(static_cast<std::uint64_t>(diver.num_mups))
        .Done();
    json.Row()
        .Field("n", static_cast<std::uint64_t>(n))
        .Field("tau_rate", rate)
        .Field("tau", options.tau)
        .Field("pattern_breaker_s", breaker.seconds)
        .Field("pattern_combiner_s", combiner.seconds)
        .Field("deep_diver_s", diver.seconds)
        .Field("num_mups", static_cast<std::uint64_t>(diver.num_mups))
        .Done();
  }
  table.Print(std::cout);
  std::cout << "expected shape: DEEPDIVER best everywhere; PATTERN-COMBINER "
               "always slowest\n(wide bottom level of the high-cardinality "
               "pattern graph)\n";
  return 0;
}

// Regenerates Figure 14: MUP identification on AirBnB varying the dataset
// size (paper: d = 15, τ = 0.1%, n = 10K … 1M). Expected shape: all three
// algorithms are only mildly affected by n — the work is driven by the
// pattern space, and the aggregated relation caps the index size at
// min(n, 2^d) distinct combinations.

#include "bench_common.h"

int main() {
  using namespace coverage;
  const int d = bench::FullScale() ? 15 : 13;
  bench::Banner("Figure 14: MUP identification vs data size (AirBnB)",
                "d = " + std::to_string(d) + ", tau = 0.1% of n");

  bench::BenchJson json("fig14_airbnb_datasize");

  std::vector<std::size_t> sizes = {1000, 10000, 100000};
  sizes.push_back(bench::FullScale() ? 1000000 : 200000);

  // One wide generation, consistent prefixes per size.
  const Dataset full = datagen::MakeAirbnb(sizes.back(), d);

  TablePrinter table({"n", "tau", "P-BREAKER (s)", "P-COMBINER (s)",
                      "DEEPDIVER (s)", "# MUPs", "distinct combos"});
  for (const std::size_t n : sizes) {
    const Dataset data = full.Head(n);
    const AggregatedData agg(data);
    const BitmapCoverage oracle(agg);
    MupSearchOptions options;
    options.tau = std::max<std::uint64_t>(1, n / 1000);
    const auto breaker =
        bench::TimeMupSearch(MupAlgorithm::kPatternBreaker, oracle, options);
    const auto combiner =
        bench::TimeMupSearch(MupAlgorithm::kPatternCombiner, oracle, options);
    const auto diver =
        bench::TimeMupSearch(MupAlgorithm::kDeepDiver, oracle, options);
    table.Row()
        .Cell(FormatCount(n))
        .Cell(options.tau)
        .Cell(bench::SecondsCell(breaker.seconds))
        .Cell(bench::SecondsCell(combiner.seconds))
        .Cell(bench::SecondsCell(diver.seconds))
        .Cell(static_cast<std::uint64_t>(diver.num_mups))
        .Cell(static_cast<std::uint64_t>(agg.num_combinations()))
        .Done();
    json.Row()
        .Field("n", static_cast<std::uint64_t>(n))
        .Field("d", d)
        .Field("tau", options.tau)
        .Field("pattern_breaker_s", breaker.seconds)
        .Field("pattern_combiner_s", combiner.seconds)
        .Field("deep_diver_s", diver.seconds)
        .Field("num_mups", static_cast<std::uint64_t>(diver.num_mups))
        .Field("distinct_combos",
               static_cast<std::uint64_t>(agg.num_combinations()))
        .Done();
  }
  table.Print(std::cout);
  std::cout << "expected shape: runtime grows far slower than n (the paper "
               "reports all\nsettings under 100 s with only slight n "
               "dependence)\n";
  return 0;
}

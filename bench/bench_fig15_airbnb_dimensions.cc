// Regenerates Figure 15: MUP identification on AirBnB varying the number of
// attributes (paper: n = 1M, τ = 0.1%, d = 5 … 17). Expected shape: the
// number of MUPs and all runtimes grow exponentially with d, yet remain
// tractable through d = 17.

#include "bench_common.h"

int main() {
  using namespace coverage;
  const std::size_t n = bench::FullScale() ? 1000000 : 100000;
  bench::Banner("Figure 15: MUP identification vs dimensions (AirBnB)",
                "n = " + FormatCount(n) + ", tau = 0.1%");

  const int d_max = bench::FullScale() ? 17 : 15;
  const Dataset full = datagen::MakeAirbnb(n, d_max);
  MupSearchOptions options;
  options.tau = std::max<std::uint64_t>(1, n / 1000);
  options.enumeration_limit = 1u << 26;
  options.use_packed_representation = !bench::LegacyRepresentation();

  bench::BenchJson json("fig15_airbnb_dimensions");
  TablePrinter table({"d", "P-BREAKER (s)", "P-COMBINER (s)", "DEEPDIVER (s)",
                      "# MUPs"});
  for (int d = 5; d <= d_max; d += 2) {
    std::vector<int> attrs;
    for (int i = 0; i < d; ++i) attrs.push_back(i);
    const Dataset data = full.Project(attrs);
    const AggregatedData agg(data);
    const BitmapCoverage oracle(agg);
    const auto breaker =
        bench::TimeMupSearch(MupAlgorithm::kPatternBreaker, oracle, options);
    const auto combiner =
        bench::TimeMupSearch(MupAlgorithm::kPatternCombiner, oracle, options);
    const auto diver =
        bench::TimeMupSearch(MupAlgorithm::kDeepDiver, oracle, options);
    table.Row()
        .Cell(d)
        .Cell(bench::SecondsCell(breaker.seconds))
        .Cell(bench::SecondsCell(combiner.seconds))
        .Cell(bench::SecondsCell(diver.seconds))
        .Cell(static_cast<std::uint64_t>(diver.num_mups))
        .Done();
    json.Row()
        .Field("n", static_cast<std::uint64_t>(n))
        .Field("d", d)
        .Field("pattern_breaker_seconds", breaker.seconds)
        .Field("pattern_combiner_seconds", combiner.seconds)
        .Field("deep_diver_seconds", diver.seconds)
        .Field("num_mups", static_cast<std::uint64_t>(diver.num_mups))
        .Done();
  }
  table.Print(std::cout);
  std::cout << "expected shape: #MUPs and runtimes grow exponentially in d; "
               "everything\nfinishes in reasonable time through d = 17\n";
  return 0;
}

// Regenerates Figure 16: level-limited MUP identification with DEEPDIVER on
// wide AirBnB data (paper: n = 1M, τ = 0.1%, d = 10 … 35, max ℓ in
// {2, 4, 6, 8}). Expected shape: limiting the exploration level keeps the
// search tractable even at d = 35 — max ℓ = 2 finishes in ~10 s in the
// paper's Java implementation at every width.

#include "bench_common.h"

int main() {
  using namespace coverage;
  const std::size_t n = bench::FullScale() ? 1000000 : 100000;
  bench::Banner("Figure 16: level-limited DEEPDIVER vs dimensions (AirBnB)",
                "n = " + FormatCount(n) + ", tau = 0.1%");

  const int d_max = 35;
  const Dataset full = datagen::MakeAirbnb(n, d_max);

  const std::vector<int> widths = {10, 15, 20, 25, 30, 35};
  const std::vector<int> levels =
      bench::FullScale() ? std::vector<int>{2, 4, 6, 8}
                         : std::vector<int>{2, 4, 6};

  std::vector<std::string> header = {"d"};
  for (int l : levels) header.push_back("max l=" + std::to_string(l) + " (s)");
  header.push_back("# MUPs (max l)");
  TablePrinter table(header);
  bench::BenchJson json("fig16_level_limited");

  for (const int d : widths) {
    std::vector<int> attrs;
    for (int i = 0; i < d; ++i) attrs.push_back(i);
    const Dataset data = full.Project(attrs);
    const AggregatedData agg(data);
    const BitmapCoverage oracle(agg);

    auto row = table.Row();
    row.Cell(d);
    std::size_t last_mups = 0;
    for (const int max_level : levels) {
      MupSearchOptions options;
      options.tau = std::max<std::uint64_t>(1, n / 1000);
      options.max_level = max_level;
      // Deep limits at extreme widths explode combinatorially at default
      // scale; keep the suite bounded the same way the paper bounds wall
      // time.
      if (!bench::FullScale() && max_level >= 6 && d > 20) {
        row.Cell("skip");
        continue;
      }
      const auto stats =
          bench::TimeMupSearch(MupAlgorithm::kDeepDiver, oracle, options);
      row.Cell(bench::SecondsCell(stats.seconds));
      last_mups = stats.num_mups;
      json.Row()
          .Field("n", static_cast<std::uint64_t>(n))
          .Field("d", d)
          .Field("max_level", max_level)
          .Field("tau", options.tau)
          .Field("deep_diver_s", stats.seconds)
          .Field("num_mups", static_cast<std::uint64_t>(stats.num_mups))
          .Done();
    }
    row.Cell(static_cast<std::uint64_t>(last_mups));
    row.Done();
  }
  table.Print(std::cout);
  std::cout << "expected shape: runtime grows with the level limit; max l=2 "
               "stays fast\neven at d = 35 (the paper reports ~10 s)\n";
  return 0;
}

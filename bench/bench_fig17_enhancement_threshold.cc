// Regenerates Figure 17: coverage enhancement runtime varying the coverage
// threshold (paper: AirBnB n = 1M, d = 13, τ-rate 1e-6 … 1e-2, λ = 3 … 6;
// GREEDY for all settings, plus the naive hitting-set implementation which
// only finishes the single smallest setting). Expected shape: GREEDY's
// runtime grows with both λ and the threshold; the naive solver is orders of
// magnitude slower.

#include "bench_common.h"

int main() {
  using namespace coverage;
  const std::size_t n = coverage::bench::AirbnbRows();
  const int d = 13;
  bench::Banner("Figure 17: coverage enhancement vs threshold (AirBnB)",
                "n = " + FormatCount(n) + ", d = 13");

  const Dataset data = datagen::MakeAirbnb(n, d);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);

  const std::vector<double> rates = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2};
  const std::vector<int> lambdas = bench::FullScale()
                                       ? std::vector<int>{3, 4, 5, 6}
                                       : std::vector<int>{3, 4, 5};

  std::vector<std::string> header = {"tau rate", "tau"};
  for (int l : lambdas) {
    header.push_back("greedy l=" + std::to_string(l) + " (s)");
  }
  header.push_back("naive l=3 (s)");
  TablePrinter table(header);
  bench::BenchJson json("fig17_enhancement_threshold");

  for (const double rate : rates) {
    MupSearchOptions search;
    search.tau = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(rate * static_cast<double>(n)));
    auto row = table.Row();
    row.Cell(FormatDouble(rate, 6)).Cell(search.tau);

    for (const int lambda : lambdas) {
      MupSearchOptions limited = search;
      limited.max_level = lambda;  // only MUPs at level <= λ matter
      const auto mups = FindMupsDeepDiver(oracle, limited);
      EnhancementOptions options;
      options.tau = search.tau;
      options.lambda = lambda;
      options.enumeration_limit = 1u << 21;
      Stopwatch timer;
      auto plan = PlanCoverageEnhancement(oracle, mups, options);
      const double seconds = plan.ok() ? timer.ElapsedSeconds() : -1.0;
      row.Cell(bench::SecondsCell(seconds));
      json.Row()
          .Field("n", static_cast<std::uint64_t>(n))
          .Field("tau_rate", rate)
          .Field("tau", search.tau)
          .Field("lambda", lambda)
          .Field("solver", "greedy")
          .Field("seconds", seconds)
          .Field("num_mups", static_cast<std::uint64_t>(mups.size()))
          .Done();
    }

    // Naive baseline at λ=3 only — the paper's plot has a single naive
    // point; every other setting timed out for the authors as well.
    if (rate <= 1e-6) {
      MupSearchOptions limited = search;
      limited.max_level = 3;
      const auto mups = FindMupsDeepDiver(oracle, limited);
      EnhancementOptions options;
      options.tau = search.tau;
      options.lambda = 3;
      options.use_naive_greedy = true;
      options.enumeration_limit = 1u << 21;
      Stopwatch timer;
      auto plan = PlanCoverageEnhancement(oracle, mups, options);
      const double seconds = plan.ok() ? timer.ElapsedSeconds() : -1.0;
      row.Cell(bench::SecondsCell(seconds));
      json.Row()
          .Field("n", static_cast<std::uint64_t>(n))
          .Field("tau_rate", rate)
          .Field("tau", search.tau)
          .Field("lambda", 3)
          .Field("solver", "naive")
          .Field("seconds", seconds)
          .Field("num_mups", static_cast<std::uint64_t>(mups.size()))
          .Done();
    } else {
      row.Cell("-");
    }
    row.Done();
  }
  table.Print(std::cout);
  std::cout << "expected shape: greedy time grows with lambda and with the "
               "threshold;\nnaive only completes the cheapest setting\n";
  return 0;
}

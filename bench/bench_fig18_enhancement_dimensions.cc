// Regenerates Figure 18: coverage enhancement (GREEDY) runtime varying the
// number of attributes (paper: AirBnB n = 1M, τ = 0.1%, d = 5 … 35,
// λ = 3 … 6). Expected shape: runtime grows exponentially with d and with λ,
// but stays practical for the small λ values that matter most.

#include "bench_common.h"

int main() {
  using namespace coverage;
  const std::size_t n = bench::FullScale() ? 1000000 : 100000;
  bench::Banner("Figure 18: coverage enhancement vs dimensions (AirBnB)",
                "n = " + FormatCount(n) + ", tau = 0.1%");

  const int d_max = bench::FullScale() ? 35 : 20;
  const Dataset full = datagen::MakeAirbnb(n, 35);
  const std::uint64_t tau = std::max<std::uint64_t>(1, n / 1000);
  const std::vector<int> lambdas = bench::FullScale()
                                       ? std::vector<int>{3, 4, 5, 6}
                                       : std::vector<int>{3, 4};

  std::vector<std::string> header = {"d"};
  for (int l : lambdas) {
    header.push_back("greedy l=" + std::to_string(l) + " (s)");
  }
  TablePrinter table(header);
  bench::BenchJson json("fig18_enhancement_dimensions");

  for (int d = 5; d <= d_max; d += 5) {
    std::vector<int> attrs;
    for (int i = 0; i < d; ++i) attrs.push_back(i);
    const Dataset data = full.Project(attrs);
    const AggregatedData agg(data);
    const BitmapCoverage oracle(agg);

    auto row = table.Row();
    row.Cell(d);
    for (const int lambda : lambdas) {
      if (lambda > d) {
        row.Cell("-");
        continue;
      }
      MupSearchOptions limited;
      limited.tau = tau;
      limited.max_level = lambda;
      const auto mups = FindMupsDeepDiver(oracle, limited);
      EnhancementOptions options;
      options.tau = tau;
      options.lambda = lambda;
      options.enumeration_limit = 1u << 21;
      Stopwatch timer;
      auto plan = PlanCoverageEnhancement(oracle, mups, options);
      const double seconds = plan.ok() ? timer.ElapsedSeconds() : -1.0;
      row.Cell(bench::SecondsCell(seconds));
      json.Row()
          .Field("n", static_cast<std::uint64_t>(n))
          .Field("d", d)
          .Field("tau", tau)
          .Field("lambda", lambda)
          .Field("seconds", seconds)
          .Field("num_mups", static_cast<std::uint64_t>(mups.size()))
          .Done();
    }
    row.Done();
  }
  table.Print(std::cout);
  std::cout << "expected shape: runtime grows with d and lambda; small "
               "lambda stays\npractical at every width (the paper's main "
               "takeaway)\n";
  return 0;
}

// Regenerates Figure 19: input/output sizes of coverage enhancement across
// dimensions (paper: AirBnB n = 1M, τ = 0.1%, d = 5 … 35, λ = 3 … 6). The
// input size is |M_λ| (uncovered patterns to hit); the output size is the
// number of value combinations the greedy algorithm collects. Expected
// shape: both grow with d and λ, and the output is consistently orders of
// magnitude smaller than the input because every pick hits many patterns.

#include "bench_common.h"

int main() {
  using namespace coverage;
  const std::size_t n = bench::FullScale() ? 1000000 : 100000;
  bench::Banner("Figure 19: enhancement input/output sizes (AirBnB)",
                "n = " + FormatCount(n) + ", tau = 0.1%");

  const int d_max = bench::FullScale() ? 35 : 20;
  const Dataset full = datagen::MakeAirbnb(n, 35);
  const std::uint64_t tau = std::max<std::uint64_t>(1, n / 1000);
  const std::vector<int> lambdas = bench::FullScale()
                                       ? std::vector<int>{3, 4, 5, 6}
                                       : std::vector<int>{3, 4};

  std::vector<std::string> header = {"d"};
  for (int l : lambdas) {
    header.push_back("in l=" + std::to_string(l));
    header.push_back("out l=" + std::to_string(l));
  }
  TablePrinter table(header);
  bench::BenchJson json("fig19_enhancement_sizes");

  for (int d = 5; d <= d_max; d += 5) {
    std::vector<int> attrs;
    for (int i = 0; i < d; ++i) attrs.push_back(i);
    const Dataset data = full.Project(attrs);
    const AggregatedData agg(data);
    const BitmapCoverage oracle(agg);

    auto row = table.Row();
    row.Cell(d);
    for (const int lambda : lambdas) {
      if (lambda > d) {
        row.Cell("-").Cell("-");
        continue;
      }
      MupSearchOptions limited;
      limited.tau = tau;
      limited.max_level = lambda;
      const auto mups = FindMupsDeepDiver(oracle, limited);
      EnhancementOptions options;
      options.tau = tau;
      options.lambda = lambda;
      options.enumeration_limit = 1u << 21;
      auto plan = PlanCoverageEnhancement(oracle, mups, options);
      if (plan.ok()) {
        row.Cell(static_cast<std::uint64_t>(plan->targets.size()))
            .Cell(static_cast<std::uint64_t>(plan->items.size()));
      } else {
        row.Cell("DNF").Cell("DNF");
      }
      json.Row()
          .Field("n", static_cast<std::uint64_t>(n))
          .Field("d", d)
          .Field("tau", tau)
          .Field("lambda", lambda)
          .Field("input_patterns",
                 static_cast<std::uint64_t>(plan.ok() ? plan->targets.size()
                                                      : 0))
          .Field("output_combinations",
                 static_cast<std::uint64_t>(plan.ok() ? plan->items.size()
                                                      : 0))
          .Field("completed", plan.ok() ? 1 : 0)
          .Done();
    }
    row.Done();
  }
  table.Print(std::cout);
  std::cout << "expected shape: output (combinations to collect) is orders "
               "of magnitude\nsmaller than input (patterns to hit) in every "
               "setting\n";
  return 0;
}

// Micro-benchmarks (google-benchmark) of the kernels behind every search:
// bit-vector AND/dot, inverted-index coverage queries, MUP dominance checks,
// Rule-1/Rule-2 candidate generation, and the greedy hit-count descent.
// These quantify the constants the macro benches (one per paper figure)
// build on.

#include <benchmark/benchmark.h>

#include "coverage_lib.h"

namespace coverage {
namespace {

BitVector MakeRandomBits(std::size_t n, double density, std::uint64_t seed) {
  Rng rng(seed);
  BitVector bv(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.NextBool(density)) bv.Set(i);
  }
  return bv;
}

void BM_BitVectorAnd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  BitVector a = MakeRandomBits(n, 0.3, 1);
  const BitVector b = MakeRandomBits(n, 0.3, 2);
  for (auto _ : state) {
    BitVector c = a;
    c.AndWith(b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_BitVectorAnd)->Arg(1024)->Arg(32768)->Arg(262144);

void BM_BitVectorDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const BitVector a = MakeRandomBits(n, 0.2, 3);
  std::vector<std::uint64_t> counts(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Dot(counts));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_BitVectorDot)->Arg(1024)->Arg(32768)->Arg(262144);

struct AirbnbFixture {
  Dataset data;
  AggregatedData agg;
  BitmapCoverage oracle;
  explicit AirbnbFixture(std::size_t n, int d)
      : data(datagen::MakeAirbnb(n, d)), agg(data), oracle(agg) {}
};

void BM_AndChainDotFused(benchmark::State& state) {
  // The fused coverage kernel vs the materialise-then-dot composition below:
  // the fused form must never lose, or threshold queries regressed.
  const auto n = static_cast<std::size_t>(state.range(0));
  const BitVector a = MakeRandomBits(n, 0.3, 1);
  const BitVector b = MakeRandomBits(n, 0.3, 2);
  const BitVector c = MakeRandomBits(n, 0.3, 4);
  const BitVector* ops[3] = {&a, &b, &c};
  std::vector<std::uint64_t> counts(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BitVector::AndChainDot(ops, 3, counts));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_AndChainDotFused)->Arg(1024)->Arg(32768)->Arg(262144);

void BM_AndChainDotMaterialised(benchmark::State& state) {
  // The seed's composition: copy, AND chain, then dot.
  const auto n = static_cast<std::size_t>(state.range(0));
  const BitVector a = MakeRandomBits(n, 0.3, 1);
  const BitVector b = MakeRandomBits(n, 0.3, 2);
  const BitVector c = MakeRandomBits(n, 0.3, 4);
  std::vector<std::uint64_t> counts(n, 3);
  for (auto _ : state) {
    BitVector acc = a;
    acc.AndWith(b);
    acc.AndWith(c);
    benchmark::DoNotOptimize(acc.Dot(counts));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_AndChainDotMaterialised)->Arg(1024)->Arg(32768)->Arg(262144);

void BM_CoverageQuery(benchmark::State& state) {
  static const AirbnbFixture fixture(100000, 15);
  Rng rng(11);
  std::vector<Pattern> probes;
  for (int i = 0; i < 256; ++i) {
    std::vector<Value> cells(15, kWildcard);
    for (int a = 0; a < 15; ++a) {
      if (rng.NextBool(0.4)) {
        cells[static_cast<std::size_t>(a)] =
            static_cast<Value>(rng.NextUint64(2));
      }
    }
    probes.emplace_back(std::move(cells));
  }
  QueryContext ctx;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.oracle.Coverage(probes[i++ & 255], ctx));
  }
}
BENCHMARK(BM_CoverageQuery);

void BM_CoverageAtLeastQuery(benchmark::State& state) {
  // The cov(P) >= τ oracle call PATTERN-BREAKER and DEEPDIVER issue millions
  // of times, through an explicit reused QueryContext.
  static const AirbnbFixture fixture(100000, 15);
  Rng rng(19);
  std::vector<Pattern> probes;
  for (int i = 0; i < 256; ++i) {
    std::vector<Value> cells(15, kWildcard);
    for (int a = 0; a < 15; ++a) {
      if (rng.NextBool(0.4)) {
        cells[static_cast<std::size_t>(a)] =
            static_cast<Value>(rng.NextUint64(2));
      }
    }
    probes.emplace_back(std::move(cells));
  }
  QueryContext ctx;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.oracle.CoverageAtLeast(probes[i++ & 255], 100, ctx));
  }
}
BENCHMARK(BM_CoverageAtLeastQuery);

void BM_ScanCoverageQuery(benchmark::State& state) {
  static const Dataset data = datagen::MakeAirbnb(100000, 15);
  static const ScanCoverage oracle(data);
  const Pattern probe = *Pattern::Parse("1XX0XXXXX1XXXXX", data.schema());
  QueryContext ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.Coverage(probe, ctx));
  }
}
BENCHMARK(BM_ScanCoverageQuery);

void BM_MupDominanceCheck(benchmark::State& state) {
  const Schema schema = Schema::Binary(15);
  MupDominanceIndex index(schema);
  Rng rng(13);
  const auto num_mups = static_cast<std::size_t>(state.range(0));
  for (std::size_t m = 0; m < num_mups; ++m) {
    std::vector<Value> cells(15, kWildcard);
    // Random level-5 patterns; collisions are skipped.
    for (int k = 0; k < 5; ++k) {
      cells[rng.NextUint64(15)] = static_cast<Value>(rng.NextUint64(2));
    }
    const Pattern p(std::move(cells));
    if (!index.Contains(p)) index.Add(p);
  }
  const Pattern probe = *Pattern::Parse("1X0X1XXXXXXXXXX", schema);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.IsDominated(probe));
    benchmark::DoNotOptimize(index.DominatesSome(probe));
  }
}
BENCHMARK(BM_MupDominanceCheck)->Arg(100)->Arg(10000)->Arg(100000);

// --- Packed pattern key vs the legacy vector<int> representation: the
// hash / equality / dominance constants every frontier set and dominance
// index pays once per node visit. The packed form must stay >= 2x ahead on
// hash+equality or the frontier rewrite lost its reason to exist.

std::vector<Pattern> RandomPatterns(const Schema& schema, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Pattern> out;
  for (int i = 0; i < 256; ++i) {
    std::vector<Value> cells(
        static_cast<std::size_t>(schema.num_attributes()), kWildcard);
    for (int a = 0; a < schema.num_attributes(); ++a) {
      if (rng.NextBool(0.4)) {
        cells[static_cast<std::size_t>(a)] = static_cast<Value>(
            rng.NextUint64(static_cast<std::uint64_t>(schema.cardinality(a))));
      }
    }
    out.emplace_back(std::move(cells));
  }
  return out;
}

void BM_PatternHashLegacy(benchmark::State& state) {
  const Schema schema = Schema::Binary(static_cast<int>(state.range(0)));
  const std::vector<Pattern> probes = RandomPatterns(schema, 17);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(probes[i++ & 255].Hash());
  }
}
BENCHMARK(BM_PatternHashLegacy)->Arg(15)->Arg(60);

void BM_PatternHashPacked(benchmark::State& state) {
  const Schema schema = Schema::Binary(static_cast<int>(state.range(0)));
  const PatternCodec codec = *PatternCodec::Build(schema);
  std::vector<PackedPattern> probes;
  for (const Pattern& p : RandomPatterns(schema, 17)) {
    probes.push_back(codec.Encode(p));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(probes[i++ & 255].Hash());
  }
}
BENCHMARK(BM_PatternHashPacked)->Arg(15)->Arg(60);

void BM_PatternEqualityLegacy(benchmark::State& state) {
  const Schema schema = Schema::Binary(static_cast<int>(state.range(0)));
  const std::vector<Pattern> probes = RandomPatterns(schema, 23);
  // Half the compares are against self so the equal (full-scan) path is
  // exercised, not just an early first-cell mismatch.
  std::size_t i = 0;
  for (auto _ : state) {
    const Pattern& a = probes[i & 255];
    const Pattern& b = probes[(i & 1) ? (i & 255) : ((i + 1) & 255)];
    benchmark::DoNotOptimize(a == b);
    ++i;
  }
}
BENCHMARK(BM_PatternEqualityLegacy)->Arg(15)->Arg(60);

void BM_PatternEqualityPacked(benchmark::State& state) {
  const Schema schema = Schema::Binary(static_cast<int>(state.range(0)));
  const PatternCodec codec = *PatternCodec::Build(schema);
  std::vector<PackedPattern> probes;
  for (const Pattern& p : RandomPatterns(schema, 23)) {
    probes.push_back(codec.Encode(p));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const PackedPattern& a = probes[i & 255];
    const PackedPattern& b = probes[(i & 1) ? (i & 255) : ((i + 1) & 255)];
    benchmark::DoNotOptimize(a == b);
    ++i;
  }
}
BENCHMARK(BM_PatternEqualityPacked)->Arg(15)->Arg(60);

void BM_PatternDominanceLegacy(benchmark::State& state) {
  const Schema schema = Schema::Binary(static_cast<int>(state.range(0)));
  const std::vector<Pattern> probes = RandomPatterns(schema, 31);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        probes[i & 255].DominatesOrEquals(probes[(i + 7) & 255]));
    ++i;
  }
}
BENCHMARK(BM_PatternDominanceLegacy)->Arg(15)->Arg(60);

void BM_PatternDominancePacked(benchmark::State& state) {
  const Schema schema = Schema::Binary(static_cast<int>(state.range(0)));
  const PatternCodec codec = *PatternCodec::Build(schema);
  std::vector<PackedPattern> probes;
  for (const Pattern& p : RandomPatterns(schema, 31)) {
    probes.push_back(codec.Encode(p));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        probes[i & 255].DominatesOrEquals(probes[(i + 7) & 255]));
    ++i;
  }
}
BENCHMARK(BM_PatternDominancePacked)->Arg(15)->Arg(60);

void BM_Rule1Children(benchmark::State& state) {
  const Schema schema = Schema::Binary(20);
  const Pattern p = *Pattern::Parse("1X0XXXXXXXXXXXXXXXXX", schema);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Rule1Children(p, schema));
  }
}
BENCHMARK(BM_Rule1Children);

void BM_Rule2Parents(benchmark::State& state) {
  const Schema schema = Schema::Binary(20);
  const Pattern p = *Pattern::Parse("XX000000001111100000", schema);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Rule2Parents(p));
  }
}
BENCHMARK(BM_Rule2Parents);

void BM_GreedyHittingSet(benchmark::State& state) {
  const Schema schema = Schema::Binary(13);
  Rng rng(7);
  std::vector<Pattern> patterns;
  const auto m = static_cast<std::size_t>(state.range(0));
  for (std::size_t j = 0; j < m; ++j) {
    std::vector<Value> cells(13, kWildcard);
    for (int k = 0; k < 4; ++k) {
      cells[rng.NextUint64(13)] = static_cast<Value>(rng.NextUint64(2));
    }
    patterns.emplace_back(std::move(cells));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyHittingSet(patterns, schema));
  }
}
BENCHMARK(BM_GreedyHittingSet)->Arg(64)->Arg(512)->Arg(4096);

void BM_DeepDiverEndToEnd(benchmark::State& state) {
  static const AirbnbFixture fixture(50000, 13);
  const MupSearchOptions options{.tau = 50};
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindMupsDeepDiver(fixture.oracle, options));
  }
}
BENCHMARK(BM_DeepDiverEndToEnd)->Unit(benchmark::kMillisecond);

void BM_AggregateBuild(benchmark::State& state) {
  static const Dataset data = datagen::MakeAirbnb(100000, 15);
  for (auto _ : state) {
    AggregatedData agg(data);
    benchmark::DoNotOptimize(agg.num_combinations());
  }
}
BENCHMARK(BM_AggregateBuild)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace coverage

BENCHMARK_MAIN();

// Measures what the observability layer costs on the server's hottest
// path. Three closed-loop cells over loopback, same harness as
// bench_server_load:
//
//   baseline       POST /v1/query, observability exactly as shipped
//                  (metrics + tracing always on — this IS the product path)
//   timing         the same request with ?timing=1 (per-stage breakdown
//                  serialised into every response: the opt-in extra)
//   logging-off    baseline with the log level at `off` (isolates the
//                  logging layer's enabled-check cost)
//
// The headline number is timing-vs-baseline overhead; the gate is that
// always-on observability keeps baseline throughput within a few percent
// of the pre-observability PR 5 figures recorded in
// docs/BENCH_TRAJECTORY.md. Emits BENCH_obs_overhead.json.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "obs/log.h"
#include "server/coverage_server.h"
#include "server/http_client.h"

namespace {

using coverage::CoverageServer;
using coverage::CoverageServerOptions;
using coverage::CoverageService;
using coverage::DatagenSpec;
using coverage::ServiceOptions;
using coverage::Stopwatch;
using coverage::http::HttpClient;

struct LoadResult {
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;
  double seconds = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double throughput() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

double Quantile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[index];
}

LoadResult RunClosedLoop(int port, int num_clients, const std::string& target,
                         const std::string& body, double seconds) {
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(num_clients));
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(num_clients), 0);
  std::atomic<std::uint64_t> failures{0};
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};

  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      auto client = HttpClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      auto& mine = latencies[static_cast<std::size_t>(c)];
      mine.reserve(1 << 16);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_acquire)) {
        Stopwatch timer;
        auto response = client->Post(target, body);
        const double us = timer.ElapsedSeconds() * 1e6;
        if (!response.ok() || response->status != 200) {
          failures.fetch_add(1);
        } else {
          mine.push_back(us);
          ++counts[static_cast<std::size_t>(c)];
        }
      }
    });
  }

  Stopwatch wall;
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(seconds * 1000)));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();

  LoadResult result;
  result.seconds = wall.ElapsedSeconds();
  std::vector<double> all;
  for (int c = 0; c < num_clients; ++c) {
    result.requests += counts[static_cast<std::size_t>(c)];
    all.insert(all.end(), latencies[static_cast<std::size_t>(c)].begin(),
               latencies[static_cast<std::size_t>(c)].end());
  }
  result.failures = failures.load();
  std::sort(all.begin(), all.end());
  result.p50_us = Quantile(all, 0.50);
  result.p99_us = Quantile(all, 0.99);
  return result;
}

}  // namespace

int main() {
  using coverage::bench::Banner;
  using coverage::bench::BenchJson;
  using coverage::bench::FullScale;

  Banner("observability overhead",
         "closed-loop POST /v1/query over loopback, instrumented vs bare");

  ServiceOptions sopts;
  sopts.num_threads = 1;
  auto service = CoverageService::FromSpec(DatagenSpec{"compas", 0, 13, 42},
                                           sopts);
  if (!service.ok()) {
    std::cerr << service.status().ToString() << "\n";
    return 1;
  }
  CoverageServerOptions options;
  options.http.port = 0;
  options.http.num_threads = 8;
  CoverageServer server(std::move(*service), options);
  const coverage::Status started = server.Start();
  if (!started.ok()) {
    std::cerr << started.ToString() << "\n";
    return 1;
  }

  const std::string body = R"({"patterns": ["XXXX"]})";
  struct Cell {
    const char* name;
    const char* target;
    coverage::obs::LogLevel level;
  };
  const Cell cells[] = {
      {"baseline", "/v1/query", coverage::obs::LogLevel::kInfo},
      {"timing", "/v1/query?timing=1", coverage::obs::LogLevel::kInfo},
      {"logging-off", "/v1/query", coverage::obs::LogLevel::kOff},
  };
  const int clients = 4;
  const double seconds = FullScale() ? 5.0 : 1.5;

  BenchJson report("obs_overhead");
  std::printf("%-12s %8s %12s %12s %10s %10s %9s\n", "cell", "clients",
              "requests", "req/s", "p50 (us)", "p99 (us)", "failures");
  double baseline_rps = 0.0;
  for (const Cell& cell : cells) {
    coverage::obs::SetLogLevel(cell.level);
    // Warm up sockets and caches, then measure.
    RunClosedLoop(server.port(), clients, cell.target, body, 0.2);
    const LoadResult r =
        RunClosedLoop(server.port(), clients, cell.target, body, seconds);
    if (std::string(cell.name) == "baseline") baseline_rps = r.throughput();
    const double overhead_pct =
        baseline_rps > 0
            ? (baseline_rps - r.throughput()) / baseline_rps * 100.0
            : 0.0;
    std::printf("%-12s %8d %12llu %12.0f %10.1f %10.1f %9llu\n", cell.name,
                clients, static_cast<unsigned long long>(r.requests),
                r.throughput(), r.p50_us, r.p99_us,
                static_cast<unsigned long long>(r.failures));
    report.Row()
        .Field("cell", cell.name)
        .Field("clients", clients)
        .Field("requests", r.requests)
        .Field("seconds", r.seconds)
        .Field("requests_per_second", r.throughput())
        .Field("p50_us", r.p50_us)
        .Field("p99_us", r.p99_us)
        .Field("failures", r.failures)
        .Field("overhead_vs_baseline_pct", overhead_pct)
        .Done();
  }
  coverage::obs::SetLogLevel(coverage::obs::LogLevel::kInfo);
  server.Stop();
  return 0;
}

// Thread-scaling of the parallel MUP searches on the Fig. 15 workload
// (AirBnB, τ = 0.1%): PATTERN-BREAKER and DEEPDIVER at 1/2/4/8 workers
// sharing one BitmapCoverage oracle. Reports wall-clock, speedup over the
// serial run, and verifies that every thread count returns the identical MUP
// set. Machine-readable results land in BENCH_parallel_scaling.json.

#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using namespace coverage;

std::string Fingerprint(const std::vector<Pattern>& mups) {
  std::string out;
  for (const Pattern& p : mups) {
    out += p.ToString();
    out += ';';
  }
  return out;
}

}  // namespace

int main() {
  const std::size_t n = bench::FullScale() ? 1000000 : 100000;
  const int d = bench::FullScale() ? 17 : 13;
  bench::Banner("Parallel scaling: MUP search vs worker count (AirBnB)",
                "n = " + FormatCount(n) + ", d = " + std::to_string(d) +
                    ", tau = 0.1%");

  const Dataset data = datagen::MakeAirbnb(n, d);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  MupSearchOptions options;
  options.tau = std::max<std::uint64_t>(1, n / 1000);

  bench::BenchJson json("parallel_scaling");
  TablePrinter table({"algorithm", "threads", "seconds", "speedup", "# MUPs",
                      "queries"});
  for (const MupAlgorithm algorithm :
       {MupAlgorithm::kPatternBreaker, MupAlgorithm::kDeepDiver}) {
    double serial_seconds = 0.0;
    std::string serial_fingerprint;
    for (const int threads : {1, 2, 4, 8}) {
      options.num_threads = threads;
      MupSearchStats stats;
      const auto mups = FindMups(algorithm, oracle, options, &stats);
      if (!mups.ok()) {
        // Neither benched algorithm has a resource guard, so this is
        // unreachable today; bail out loudly rather than fake a DNF row.
        std::cerr << ToString(algorithm) << ": " << mups.status().ToString()
                  << "\n";
        return 1;
      }
      const std::string fingerprint = Fingerprint(*mups);
      if (threads == 1) {
        serial_seconds = stats.seconds;
        serial_fingerprint = fingerprint;
      } else if (fingerprint != serial_fingerprint) {
        std::cerr << "DETERMINISM VIOLATION: " << ToString(algorithm) << " at "
                  << threads << " threads diverged from the serial output\n";
        return 1;
      }
      const double speedup =
          stats.seconds > 0 ? serial_seconds / stats.seconds : 0.0;
      table.Row()
          .Cell(ToString(algorithm))
          .Cell(threads)
          .Cell(bench::SecondsCell(stats.seconds))
          .Cell(FormatDouble(speedup, 2) + "x")
          .Cell(static_cast<std::uint64_t>(stats.num_mups))
          .Cell(stats.coverage_queries)
          .Done();
      json.Row()
          .Field("workload", "fig15_airbnb_dimensions")
          .Field("n", static_cast<std::uint64_t>(n))
          .Field("d", d)
          .Field("algorithm", ToString(algorithm))
          .Field("threads", threads)
          .Field("seconds", stats.seconds)
          .Field("speedup", speedup)
          .Field("num_mups", static_cast<std::uint64_t>(stats.num_mups))
          .Field("coverage_queries", stats.coverage_queries)
          .Done();
    }
  }
  table.Print(std::cout);
  return 0;
}

// Closed-loop load test of coverage_server's full network stack: an
// in-process CoverageServer on an ephemeral loopback port, N client threads
// each running connect-once / request-reply-repeat over its own keep-alive
// connection. Every request crosses real sockets, real HTTP framing, and
// the real route table — the numbers are what an operator would see from a
// co-located client.
//
// Workloads:
//   query-1   POST /v1/query, one cached single-pattern exact count (the
//             cheapest request: measures wire + dispatch overhead)
//   query-16  POST /v1/query, a 16-pattern batch (amortised framing)
//   healthz   GET /healthz (no JSON decode: the transport floor)
//
// Emits BENCH_server_load.json with throughput and latency quantiles per
// (workload, client-thread-count) cell.

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/coverage_server.h"
#include "server/http_client.h"

namespace {

using coverage::CoverageServer;
using coverage::CoverageServerOptions;
using coverage::CoverageService;
using coverage::DatagenSpec;
using coverage::ServiceOptions;
using coverage::Stopwatch;
using coverage::http::HttpClient;

struct LoadResult {
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;
  double seconds = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double throughput() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

double Quantile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[index];
}

/// Each client thread drives its own keep-alive connection flat out for
/// `seconds`, timestamping every roundtrip.
LoadResult RunClosedLoop(int port, int num_clients, const std::string& method,
                         const std::string& target, const std::string& body,
                         double seconds) {
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(num_clients));
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(num_clients), 0);
  std::atomic<std::uint64_t> failures{0};
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};

  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      auto client = HttpClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      auto& mine = latencies[static_cast<std::size_t>(c)];
      mine.reserve(1 << 16);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_acquire)) {
        Stopwatch timer;
        auto response = method == "GET" ? client->Get(target)
                                        : client->Post(target, body);
        const double us = timer.ElapsedSeconds() * 1e6;
        if (!response.ok() || response->status != 200) {
          failures.fetch_add(1);
        } else {
          mine.push_back(us);
          ++counts[static_cast<std::size_t>(c)];
        }
      }
    });
  }

  Stopwatch wall;
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(seconds * 1000)));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();

  LoadResult result;
  result.seconds = wall.ElapsedSeconds();
  std::vector<double> all;
  for (int c = 0; c < num_clients; ++c) {
    result.requests += counts[static_cast<std::size_t>(c)];
    all.insert(all.end(), latencies[static_cast<std::size_t>(c)].begin(),
               latencies[static_cast<std::size_t>(c)].end());
  }
  result.failures = failures.load();
  std::sort(all.begin(), all.end());
  result.p50_us = Quantile(all, 0.50);
  result.p99_us = Quantile(all, 0.99);
  return result;
}

}  // namespace

int main() {
  using coverage::bench::Banner;
  using coverage::bench::BenchJson;
  using coverage::bench::FullScale;

  Banner("coverage_server loopback load",
         "closed-loop clients, keep-alive, ephemeral port");

  ServiceOptions sopts;
  sopts.num_threads = 1;  // per-leased-pool width; queries here are single
  auto service = CoverageService::FromSpec(DatagenSpec{"compas", 0, 13, 42},
                                           sopts);
  if (!service.ok()) {
    std::cerr << service.status().ToString() << "\n";
    return 1;
  }
  CoverageServerOptions options;
  options.http.port = 0;
  options.http.num_threads = 8;
  CoverageServer server(std::move(*service), options);
  const coverage::Status started = server.Start();
  if (!started.ok()) {
    std::cerr << started.ToString() << "\n";
    return 1;
  }

  std::string batch16 = "{\"patterns\": [";
  for (int i = 0; i < 16; ++i) {
    batch16 += std::string(i > 0 ? ", " : "") + "\"" +
               (i % 2 == 0 ? "XXXX" : "0XXX") + "\"";
  }
  batch16 += "]}";

  struct Workload {
    const char* name;
    const char* method;
    const char* target;
    std::string body;
  };
  const Workload workloads[] = {
      {"query-1", "POST", "/v1/query", R"({"patterns": ["XXXX"]})"},
      {"query-16", "POST", "/v1/query", batch16},
      {"healthz", "GET", "/healthz", ""},
  };
  const std::vector<int> client_counts =
      FullScale() ? std::vector<int>{1, 2, 4, 8, 16}
                  : std::vector<int>{1, 2, 4};
  const double seconds = FullScale() ? 5.0 : 1.0;

  BenchJson report("server_load");
  std::printf("%-10s %8s %12s %12s %10s %10s %9s\n", "workload", "clients",
              "requests", "req/s", "p50 (us)", "p99 (us)", "failures");
  for (const Workload& w : workloads) {
    for (const int clients : client_counts) {
      const LoadResult r = RunClosedLoop(server.port(), clients, w.method,
                                         w.target, w.body, seconds);
      std::printf("%-10s %8d %12llu %12.0f %10.1f %10.1f %9llu\n", w.name,
                  clients, static_cast<unsigned long long>(r.requests),
                  r.throughput(), r.p50_us, r.p99_us,
                  static_cast<unsigned long long>(r.failures));
      report.Row()
          .Field("workload", w.name)
          .Field("clients", clients)
          .Field("requests", r.requests)
          .Field("seconds", r.seconds)
          .Field("requests_per_second", r.throughput())
          .Field("p50_us", r.p50_us)
          .Field("p99_us", r.p99_us)
          .Field("failures", r.failures)
          .Done();
    }
  }
  server.Stop();
  return 0;
}

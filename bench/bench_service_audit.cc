// Façade overhead: the CoverageService request/response surface vs the
// hand-wired pipeline it replaces (aggregate → BitmapCoverage → DEEPDIVER).
// Both sides pay construction + search per repetition; the service adds
// request validation, the planner bypassed (explicit algorithm) and the
// response assembly. The claim the serving layer rests on: overhead < 2%.
//
// Emits BENCH_service_audit.json.
//
//   $ ./bench_service_audit           # default scale
//   $ REPRO_FULL=1 ./bench_service_audit

#include <algorithm>
#include <vector>

#include "bench_common.h"

namespace coverage {
namespace {

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

}  // namespace
}  // namespace coverage

int main() {
  using namespace coverage;
  using bench::BenchJson;

  const std::size_t n = bench::AirbnbRows();
  const int d = 13;
  const std::uint64_t tau = n / 1000;
  const int reps = 5;
  bench::Banner("Service façade overhead",
                "AirBnB n = " + FormatCount(n) + ", d = " +
                    std::to_string(d) + ", tau = " + std::to_string(tau) +
                    ", DEEPDIVER, median of " + std::to_string(reps));

  const Dataset data = datagen::MakeAirbnb(n, d);

  std::vector<double> hand_wired, facade;
  std::size_t hand_mups = 0, facade_mups = 0;
  for (int r = 0; r < reps; ++r) {
    {
      Stopwatch timer;
      const AggregatedData agg(data);
      const BitmapCoverage oracle(agg);
      MupSearchOptions options;
      options.tau = tau;
      const auto mups = FindMupsDeepDiver(oracle, options);
      hand_wired.push_back(timer.ElapsedSeconds());
      hand_mups = mups.size();
    }
    {
      Stopwatch timer;
      auto service = CoverageService::FromDataset(data);
      if (!service.ok()) return 1;
      AuditRequest request;
      request.tau = tau;
      request.algorithm = MupAlgorithm::kDeepDiver;
      const auto result = service->Audit(request);
      if (!result.ok()) return 1;
      facade.push_back(timer.ElapsedSeconds());
      facade_mups = result->mups.size();
    }
  }
  if (hand_mups != facade_mups) {
    std::cerr << "MUP count mismatch: " << hand_mups << " vs " << facade_mups
              << "\n";
    return 1;
  }

  const double hand_med = Median(hand_wired);
  const double facade_med = Median(facade);
  const double overhead_pct = (facade_med - hand_med) / hand_med * 100.0;

  TablePrinter table({"path", "median (s)", "# MUPs"});
  table.Row().Cell("hand-wired").Cell(hand_med, 4).Cell(
      static_cast<std::uint64_t>(hand_mups)).Done();
  table.Row().Cell("CoverageService").Cell(facade_med, 4).Cell(
      static_cast<std::uint64_t>(facade_mups)).Done();
  table.Print(std::cout);
  std::cout << "facade overhead: " << FormatDouble(overhead_pct, 2)
            << "%  (target < 2%)\n";

  BenchJson json("service_audit");
  json.Row()
      .Field("path", "hand_wired")
      .Field("n", static_cast<std::uint64_t>(n))
      .Field("d", static_cast<std::uint64_t>(d))
      .Field("tau", tau)
      .Field("seconds_median", hand_med)
      .Field("num_mups", static_cast<std::uint64_t>(hand_mups))
      .Done();
  json.Row()
      .Field("path", "service")
      .Field("n", static_cast<std::uint64_t>(n))
      .Field("d", static_cast<std::uint64_t>(d))
      .Field("tau", tau)
      .Field("seconds_median", facade_med)
      .Field("num_mups", static_cast<std::uint64_t>(facade_mups))
      .Field("overhead_pct", overhead_pct)
      .Done();
  return 0;
}

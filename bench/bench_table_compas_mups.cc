// Regenerates the §V-B1 in-text result: the COMPAS dataset (sex, age, race,
// marital status; τ = 10) has no uncovered single values yet tens of MUPs —
// the paper reports 65 MUPs with 19 at level 2, 23 at level 3, 23 at level 4
// — including XX23 (widowed Hispanics), which matches only two rows, both of
// whom re-offended.

#include "bench_common.h"

int main() {
  using namespace coverage;
  bench::Banner("Table (SS V-B1): lack of coverage in COMPAS",
                "n = 6889, d = 4 (sex/age/race/marital), tau = 10");

  const auto compas = datagen::MakeCompas();
  const Schema& schema = compas.data.schema();
  const AggregatedData agg(compas.data);
  const BitmapCoverage oracle(agg);
  const std::uint64_t tau = 10;
  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = tau});

  // Single attribute values are all covered.
  QueryContext ctx;
  std::size_t uncovered_singles = 0;
  for (int a = 0; a < schema.num_attributes(); ++a) {
    for (Value v = 0; v < static_cast<Value>(schema.cardinality(a)); ++v) {
      const Pattern p = Pattern::Root(4).WithCell(a, v);
      uncovered_singles += oracle.Coverage(p, ctx) < tau;
    }
  }
  std::cout << "uncovered single attribute values: " << uncovered_singles
            << "  (paper: 0)\n";

  const auto hist = MupLevelHistogram(mups, 4);
  TablePrinter table({"level", "# of MUPs", "paper"});
  bench::BenchJson json("table_compas_mups");
  const char* paper[5] = {"0", "0", "19", "23", "23"};
  for (std::size_t l = 0; l < hist.size(); ++l) {
    table.Row()
        .Cell(static_cast<std::uint64_t>(l))
        .Cell(static_cast<std::uint64_t>(hist[l]))
        .Cell(paper[l])
        .Done();
    json.Row()
        .Field("level", static_cast<std::uint64_t>(l))
        .Field("num_mups", static_cast<std::uint64_t>(hist[l]))
        .Field("uncovered_singles",
               static_cast<std::uint64_t>(uncovered_singles))
        .Field("total_mups", static_cast<std::uint64_t>(mups.size()))
        .Done();
  }
  table.Print(std::cout);
  std::cout << "total MUPs: " << mups.size() << "  (paper: 65)\n\n";

  const Pattern xx23 = *Pattern::Parse("XX23", schema);
  std::cout << "pattern XX23 (" << xx23.ToLabelledString(schema)
            << "): coverage = " << oracle.Coverage(xx23, ctx)
            << "  (paper: 2, both re-offenders)\n\n";

  std::cout << "sample of the most general MUPs:\n";
  const CoverageReport report =
      BuildCoverageReport(schema, mups, compas.data.num_rows(), tau, 8);
  std::cout << RenderNutritionalLabel(report);
  return 0;
}

// Regenerates the §V-B3 result: coverage enhancement on COMPAS targeting
// maximum covered level λ = 2 with a human-in-the-loop validation oracle
// that (a) rules out marital status "unknown" and (b) forbids the under-20
// age group from being non-single. The paper's suggested acquisitions are
// combinations like {over 60, other races, widowed} and {between 20 and 40,
// Hispanic, widowed}.

#include "bench_common.h"

int main() {
  using namespace coverage;
  bench::Banner("Table (SS V-B3): COMPAS coverage enhancement with oracle",
                "tau = 10, lambda = 2, two validation rules");

  const auto compas = datagen::MakeCompas();
  const Schema& schema = compas.data.schema();
  const AggregatedData agg(compas.data);
  const BitmapCoverage oracle(agg);
  const std::uint64_t tau = 10;
  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = tau});

  ValidationOracle validator;
  auto rule_a = ValidationRule::Parse("marital in {unknown}", schema);
  auto rule_b = ValidationRule::Parse(
      "age in {<20} and marital in {married, separated, widowed, sig-other, "
      "divorced}",
      schema);
  validator.AddRule(*rule_a);
  validator.AddRule(*rule_b);
  std::cout << "validation rules (combinations satisfying one are invalid):\n"
            << "  - " << rule_a->ToString(schema) << "\n"
            << "  - " << rule_b->ToString(schema) << "\n\n";

  EnhancementOptions options;
  options.tau = tau;
  options.lambda = 2;
  options.oracle = &validator;
  auto plan = PlanCoverageEnhancement(oracle, mups, options);
  if (!plan.ok()) {
    std::cout << "planning failed: " << plan.status().ToString() << "\n";
    return 1;
  }
  std::cout << RenderAcquisitionPlan(*plan, schema);

  // Verify the plan end to end.
  const Dataset enlarged = ApplyPlan(compas.data, *plan);
  const AggregatedData agg2(enlarged);
  const BitmapCoverage oracle2(agg2);
  const auto mups2 = FindMupsDeepDiver(oracle2, MupSearchOptions{.tau = tau});
  auto remaining = UncoveredPatternsAtLevel(mups2, schema, 2, 1u << 20);
  std::size_t blocked = remaining.ok() ? remaining->size() : 0;
  std::cout << "\nafter applying the plan: " << blocked
            << " level-2 pattern(s) remain uncovered (all blocked by the "
               "validation rules: "
            << plan->unresolvable.size() << " declared unresolvable)\n";

  bench::BenchJson json("table_compas_plan");
  json.Row()
      .Field("tau", tau)
      .Field("lambda", 2)
      .Field("num_mups", static_cast<std::uint64_t>(mups.size()))
      .Field("plan_items", static_cast<std::uint64_t>(plan->items.size()))
      .Field("plan_targets", static_cast<std::uint64_t>(plan->targets.size()))
      .Field("unresolvable",
             static_cast<std::uint64_t>(plan->unresolvable.size()))
      .Field("uncovered_level2_after", static_cast<std::uint64_t>(blocked))
      .Done();
  return 0;
}

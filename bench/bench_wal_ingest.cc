// Durability-tax benchmark: streaming ingest throughput of the persistence
// stack at each WAL policy against the in-memory CoverageEngine baseline.
//
//   memory  — CoverageEngine::AppendRows, no persistence at all
//   none    — DurableEngine with durability=none (snapshots only, no WAL)
//   async   — WAL records written per mutation, never fsynced
//   fsync   — group-commit fdatasync before every acknowledgement
//
// All four variants apply the identical batch sequence and finish with the
// identical MUP set; the rows/s spread is the price of each guarantee.
// REPRO_FULL=1 runs the paper-scale row count.

#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using namespace coverage;

struct RunResult {
  double seconds = 0.0;
  std::uint64_t rows = 0;
  persist::PersistStats persist;
};

double RowsPerSecond(const RunResult& r) {
  return r.seconds > 0 ? static_cast<double>(r.rows) / r.seconds : 0.0;
}

}  // namespace

int main() {
  const std::size_t n = bench::FullScale() ? 500000u : 100000u;
  const int d = 13;
  const std::size_t batch_rows = 2000;
  EngineOptions eopts;
  eopts.tau = std::max<std::uint64_t>(1, n / 1000);

  bench::Banner("WAL ingest: durability tax vs in-memory baseline",
                "AirBnB n = " + FormatCount(n) + ", d = " + std::to_string(d) +
                    ", batches of " + std::to_string(batch_rows) + ", tau = " +
                    std::to_string(eopts.tau));
  bench::BenchJson json("wal_ingest");

  // Pre-generate the batch sequence once so every variant pays identical
  // generation cost (none: it is excluded from the timed region).
  std::vector<Dataset> batches;
  for (std::size_t produced = 0; produced < n; produced += batch_rows) {
    const std::size_t take = std::min(batch_rows, n - produced);
    batches.push_back(datagen::MakeAirbnb(take, d, 7 + produced));
  }
  const Schema schema = batches.front().schema();

  const std::string root =
      (std::filesystem::temp_directory_path() / "bench_wal_ingest").string();
  std::filesystem::remove_all(root);

  TablePrinter table({"variant", "seconds", "rows/s", "wal MiB",
                      "fsyncs", "fsync avg (ms)"});

  auto report = [&](const std::string& variant, const RunResult& r) {
    const persist::PersistStats& ps = r.persist;
    const double fsync_avg_ms =
        ps.sync_calls > 0
            ? ps.sync_seconds * 1e3 / static_cast<double>(ps.sync_calls)
            : 0.0;
    table.Row()
        .Cell(variant)
        .Cell(r.seconds, 3)
        .Cell(static_cast<std::uint64_t>(RowsPerSecond(r)))
        .Cell(static_cast<double>(ps.wal_bytes) / (1024.0 * 1024.0), 2)
        .Cell(ps.sync_calls)
        .Cell(fsync_avg_ms, 3)
        .Done();
    json.Row()
        .Field("variant", variant)
        .Field("rows", static_cast<std::uint64_t>(r.rows))
        .Field("batch_rows", static_cast<std::uint64_t>(batch_rows))
        .Field("seconds", r.seconds)
        .Field("rows_per_s", RowsPerSecond(r))
        .Field("wal_bytes", ps.wal_bytes)
        .Field("fsync_calls", ps.sync_calls)
        .Field("fsync_avg_ms", fsync_avg_ms)
        .Field("checkpoints", ps.checkpoints_written)
        .Done();
  };

  // ---- in-memory baseline -------------------------------------------------
  {
    CoverageEngine engine(schema, eopts);
    RunResult r;
    Stopwatch timer;
    for (const Dataset& batch : batches) {
      if (!engine.AppendRows(batch).ok()) return 1;
      r.rows += batch.num_rows();
    }
    r.seconds = timer.ElapsedSeconds();
    report("memory", r);
  }

  // ---- the three durability policies -------------------------------------
  const struct {
    const char* name;
    DurabilityMode mode;
  } kPolicies[] = {{"none", DurabilityMode::kNone},
                   {"async", DurabilityMode::kAsync},
                   {"fsync", DurabilityMode::kFsync}};
  for (const auto& policy : kPolicies) {
    EngineOptions opts = eopts;
    opts.durability = policy.mode;
    const std::string dir = root + "/" + policy.name;
    auto durable = persist::DurableEngine::Create(dir, schema, opts);
    if (!durable.ok()) {
      std::cerr << durable.status().ToString() << "\n";
      return 1;
    }
    RunResult r;
    Stopwatch timer;
    for (const Dataset& batch : batches) {
      if (!(*durable)->Append(batch).ok()) return 1;
      r.rows += batch.num_rows();
    }
    r.seconds = timer.ElapsedSeconds();
    r.persist = (*durable)->persist_stats();
    report(policy.name, r);
  }

  table.Print(std::cout);
  std::filesystem::remove_all(root);
  return 0;
}

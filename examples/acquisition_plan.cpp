// Catalog acquisition planning: a BlueNile-style retailer wants its catalog
// to cover every pair of diamond properties with at least τ listings, so
// that faceted search and pricing models behave on rare combinations.
//
// Demonstrates: the value-count enhancement variant (Definition 7), multi-
// copy acquisition (τ > 1 deficits), validation rules, and CSV export of the
// acquisition list for a procurement team.
//
//   $ ./examples/acquisition_plan

#include <iostream>
#include <sstream>

#include "coverage_lib.h"

int main() {
  using namespace coverage;

  // A datagen spec spins the catalog service up without any CSV on disk.
  auto service =
      CoverageService::FromSpec(
          DatagenSpec{.name = "bluenile", .n = 30000, .seed = 11});
  if (!service.ok()) {
    std::cerr << service.status().ToString() << "\n";
    return 1;
  }
  const Schema& schema = service->schema();
  const std::uint64_t tau = 15;

  AuditRequest audit;
  audit.tau = tau;
  const auto audited = service->Audit(audit);
  if (!audited.ok()) {
    std::cerr << audited.status().ToString() << "\n";
    return 1;
  }
  const std::vector<Pattern>& mups = audited->mups;
  std::cout << RenderNutritionalLabel(audited->Report(schema, 5));

  // Target: every attribute *triple* covered -> maximum covered level 3.
  // Business rule: fair-cut stones are never stocked in flawless clarity
  // (nobody cuts an FL/IF stone poorly), so the planner must not ask for
  // them.
  EnhanceRequest enhance;
  enhance.tau = tau;
  enhance.lambda = 3;
  enhance.rules = {"cut in {fair} and clarity in {FL, IF}"};
  enhance.mups = mups;
  const auto plan = service->Enhance(enhance);
  if (!plan.ok()) {
    std::cerr << plan.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\n-- level-3 plan (first items) " << std::string(36, '-')
            << "\n";
  {
    // The full plan is long; show the headline numbers and a sample.
    std::cout << "targets: " << plan->targets.size()
              << "  picks: " << plan->items.size()
              << "  tuples: " << FormatCount(plan->TotalTuples())
              << "  unresolvable: " << plan->unresolvable.size() << "\n";
    for (std::size_t k = 0; k < plan->items.size() && k < 5; ++k) {
      const AcquisitionItem& item = plan->items[k];
      std::cout << "  " << (k + 1) << ". collect " << item.copies
                << " matching { " << item.generalized.ToLabelledString(schema)
                << " }\n";
    }
  }

  // Alternative formulation: cover every uncovered *region* that spans at
  // least 1% of the combination space, regardless of its level.
  const std::uint64_t bar = schema.NumValueCombinations() / 100;
  EnhanceRequest by_count_request = enhance;
  by_count_request.min_value_count = bar;
  const auto by_count = service->Enhance(by_count_request);
  if (by_count.ok()) {
    std::cout << "\n-- value-count plan (regions spanning >= "
              << FormatCount(bar) << " combinations) "
              << std::string(15, '-') << "\n"
              << RenderAcquisitionPlan(*by_count, schema);
  }

  // Export the acquisition list as CSV for procurement.
  Dataset to_acquire(schema);
  for (const AcquisitionItem& item : plan->items) {
    for (std::uint64_t c = 0; c < item.copies; ++c) {
      to_acquire.AppendRow(item.combination);
    }
  }
  std::ostringstream csv;
  if (to_acquire.WriteCsv(csv).ok()) {
    std::cout << "\nfirst lines of the procurement CSV ("
              << to_acquire.num_rows() << " rows total):\n";
    std::istringstream lines(csv.str());
    std::string line;
    for (int i = 0; i < 5 && std::getline(lines, line); ++i) {
      std::cout << "  " << line << "\n";
    }
  }
  return 0;
}

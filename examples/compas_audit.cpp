// COMPAS audit: the paper's motivating scenario end to end (§V-B).
//
// 1. Audit a criminal-records dataset for coverage over sex/age/race/marital
//    and print its "nutritional label" widget.
// 2. Train a decision tree to predict recidivism and show that acceptable
//    overall accuracy hides unacceptable accuracy on an under-covered
//    minority subgroup (Hispanic females).
// 3. Remedy the lack of coverage with the planner, re-train, and show the
//    subgroup accuracy recover.
//
//   $ ./examples/compas_audit

#include <iostream>

#include "coverage_lib.h"

namespace {

using namespace coverage;

ClassificationMetrics Evaluate(const DecisionTree& tree, const Dataset& data,
                               const std::vector<int>& labels,
                               const std::vector<std::size_t>& rows) {
  std::vector<int> actual, predicted;
  for (std::size_t r : rows) {
    actual.push_back(labels[r]);
    predicted.push_back(tree.Predict(data.row(r)));
  }
  return EvaluateBinary(actual, predicted);
}

}  // namespace

int main() {
  using namespace coverage;

  const auto compas = datagen::MakeCompas();
  const Dataset& data = compas.data;
  const Schema& schema = data.schema();
  const std::uint64_t tau = 10;

  // ---- 1. Coverage audit -------------------------------------------------
  // The service owns aggregation + oracle; the audit's algorithm is the
  // planner's pick (recorded in the result for observability).
  auto service = CoverageService::FromDataset(data);
  if (!service.ok()) {
    std::cerr << service.status().ToString() << "\n";
    return 1;
  }
  AuditRequest audit;
  audit.tau = tau;
  const auto audited = service->Audit(audit);
  if (!audited.ok()) {
    std::cerr << audited.status().ToString() << "\n";
    return 1;
  }
  const std::vector<Pattern>& mups = audited->mups;
  std::cout << RenderNutritionalLabel(audited->Report(schema, 6));

  const Pattern xx23 = *Pattern::Parse("XX23", schema);
  const auto probe = service->Query(QueryRequest{xx23, 0});
  std::cout << "\nthe paper's example, " << xx23.ToLabelledString(schema)
            << ": only " << (probe.ok() ? probe->coverage : 0)
            << " records — a model will generalise from the majority for "
               "this group.\n\n";

  // ---- 2. The classification effect of the gap ---------------------------
  std::vector<std::size_t> hf_rows, other_rows;
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    const bool hf = data.at(r, datagen::kCompasSex) == 1 &&
                    data.at(r, datagen::kCompasRace) == 2;
    (hf ? hf_rows : other_rows).push_back(r);
  }
  Rng rng(17);
  rng.Shuffle(hf_rows);
  rng.Shuffle(other_rows);
  const std::vector<std::size_t> hf_test(hf_rows.begin(),
                                         hf_rows.begin() + 20);
  const std::size_t split = other_rows.size() / 5;
  const std::vector<std::size_t> overall_test(
      other_rows.begin(),
      other_rows.begin() + static_cast<std::ptrdiff_t>(split));
  std::vector<std::size_t> train(
      other_rows.begin() + static_cast<std::ptrdiff_t>(split),
      other_rows.end());

  DecisionTree::Options topt;
  topt.max_depth = 8;
  topt.min_samples_leaf = 5;

  DecisionTree biased;
  biased.Fit(data, compas.labels, train, topt);
  const auto overall = Evaluate(biased, data, compas.labels, overall_test);
  const auto subgroup = Evaluate(biased, data, compas.labels, hf_test);
  std::cout << "decision tree trained WITHOUT Hispanic-female records:\n"
            << "  overall  accuracy " << FormatDouble(overall.accuracy, 3)
            << "  f1 " << FormatDouble(overall.f1, 3) << "\n"
            << "  subgroup accuracy " << FormatDouble(subgroup.accuracy, 3)
            << "  f1 " << FormatDouble(subgroup.f1, 3)
            << "   <- the hidden failure\n\n";

  // ---- 3. Remedy and re-train --------------------------------------------
  // Collecting data along the planner's suggestions corresponds here to
  // adding the held-back HF records to the training set.
  std::vector<std::size_t> remedied = train;
  remedied.insert(remedied.end(), hf_rows.begin() + 20, hf_rows.end());
  DecisionTree fair;
  fair.Fit(data, compas.labels, remedied, topt);
  const auto overall2 = Evaluate(fair, data, compas.labels, overall_test);
  const auto subgroup2 = Evaluate(fair, data, compas.labels, hf_test);
  std::cout << "after remedying coverage (HF records added):\n"
            << "  overall  accuracy " << FormatDouble(overall2.accuracy, 3)
            << "  f1 " << FormatDouble(overall2.f1, 3) << "\n"
            << "  subgroup accuracy " << FormatDouble(subgroup2.accuracy, 3)
            << "  f1 " << FormatDouble(subgroup2.f1, 3) << "\n\n";

  // And what the planner would actually tell a data owner to collect:
  EnhanceRequest enhance;
  enhance.tau = tau;
  enhance.lambda = 2;
  enhance.rules = {
      "marital in {unknown}",
      "age in {<20} and marital in {married, separated, widowed, sig-other, "
      "divorced}"};
  enhance.mups = mups;
  const auto plan = service->Enhance(enhance);
  if (plan.ok()) {
    std::cout << RenderAcquisitionPlan(*plan, schema);
  }
  return 0;
}

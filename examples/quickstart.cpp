// Quickstart: the paper's Example 1 through the CoverageService façade.
//
// A tiny dataset over three binary attributes is audited for coverage
// (Problem 1: MUP identification), and the minimum acquisition fixing the
// gap is computed (Problem 2: coverage enhancement). One service owns the
// indexing; typed requests go in, Status-checked responses come out.
//
//   $ ./examples/quickstart

#include <iostream>

#include "coverage_lib.h"

int main() {
  using namespace coverage;

  // Example 1 of the paper: D = {010, 001, 000, 011, 001} over A1..A3.
  Dataset data(Schema::Binary(3));
  data.AppendRow(std::vector<Value>{0, 1, 0});
  data.AppendRow(std::vector<Value>{0, 0, 1});
  data.AppendRow(std::vector<Value>{0, 0, 0});
  data.AppendRow(std::vector<Value>{0, 1, 1});
  data.AppendRow(std::vector<Value>{0, 0, 1});

  // One facade owns aggregation, the Appendix-A oracle, and the planner.
  auto service = CoverageService::FromDataset(data);
  if (!service.ok()) {
    std::cerr << service.status().ToString() << "\n";
    return 1;
  }

  // Problem 1 — find the maximal uncovered patterns with threshold τ = 1.
  // algorithm defaults to kAuto: the §V planner picks the search and the
  // result records what ran and why.
  AuditRequest audit;
  audit.tau = 1;
  const auto result = service->Audit(audit);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "MUPs at tau=1 (" << result->algorithm << "):\n";
  for (const Pattern& p : result->mups) {
    std::cout << "  " << p.ToString() << "  (covers "
              << p.ValueCount(service->schema()) << " value combinations)\n";
  }
  std::cout << "planner: " << result->planner_rationale << "\n";
  // -> exactly one MUP: 1XX. The eight other uncovered patterns (1X0, 10X,
  //    111, ...) are dominated by it and correctly suppressed.

  // Problem 2 — the cheapest acquisition reaching maximum covered level 1,
  // planned from the MUPs the audit just found.
  EnhanceRequest enhance;
  enhance.tau = 1;
  enhance.lambda = 1;
  enhance.mups = result->mups;
  const auto plan = service->Enhance(enhance);
  if (!plan.ok()) {
    std::cerr << plan.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\n" << RenderAcquisitionPlan(*plan, service->schema());

  // Apply the plan and re-audit: the gap is gone.
  const Dataset enlarged = ApplyPlan(data, *plan);
  auto service2 = CoverageService::FromDataset(enlarged);
  if (!service2.ok()) return 1;
  const auto result2 = service2->Audit(audit);
  if (!result2.ok()) return 1;
  std::cout << "\nafter acquisition, maximum covered level = "
            << MaximumCoveredLevel(result2->mups, 3) << " (was "
            << MaximumCoveredLevel(result->mups, 3) << ")\n";
  return 0;
}

// Quickstart: the paper's Example 1 in a dozen lines of API.
//
// A tiny dataset over three binary attributes is audited for coverage
// (Problem 1: MUP identification), and the minimum acquisition fixing the
// gap is computed (Problem 2: coverage enhancement).
//
//   $ ./examples/quickstart

#include <iostream>

#include "coverage_lib.h"

int main() {
  using namespace coverage;

  // Example 1 of the paper: D = {010, 001, 000, 011, 001} over A1..A3.
  Dataset data(Schema::Binary(3));
  data.AppendRow(std::vector<Value>{0, 1, 0});
  data.AppendRow(std::vector<Value>{0, 0, 1});
  data.AppendRow(std::vector<Value>{0, 0, 0});
  data.AppendRow(std::vector<Value>{0, 1, 1});
  data.AppendRow(std::vector<Value>{0, 0, 1});

  // Index it: aggregate to distinct combinations, build inverted bitmaps.
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);

  // Problem 1 — find the maximal uncovered patterns with threshold τ = 1.
  const MupSearchOptions options{.tau = 1};
  const auto mups = FindMupsDeepDiver(oracle, options);
  std::cout << "MUPs at tau=1:\n";
  for (const Pattern& p : mups) {
    std::cout << "  " << p.ToString() << "  (covers "
              << p.ValueCount(data.schema()) << " value combinations)\n";
  }
  // -> exactly one MUP: 1XX. The eight other uncovered patterns (1X0, 10X,
  //    111, ...) are dominated by it and correctly suppressed.

  // Problem 2 — the cheapest acquisition reaching maximum covered level 1.
  EnhancementOptions eopts;
  eopts.tau = 1;
  eopts.lambda = 1;
  const auto plan = PlanCoverageEnhancement(oracle, mups, eopts);
  if (!plan.ok()) {
    std::cerr << plan.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\n" << RenderAcquisitionPlan(*plan, data.schema());

  // Apply the plan and re-audit: the gap is gone.
  const Dataset enlarged = ApplyPlan(data, *plan);
  const AggregatedData agg2(enlarged);
  const BitmapCoverage oracle2(agg2);
  const auto mups2 = FindMupsDeepDiver(oracle2, options);
  std::cout << "\nafter acquisition, maximum covered level = "
            << MaximumCoveredLevel(mups2, 3) << " (was "
            << MaximumCoveredLevel(mups, 3) << ")\n";
  return 0;
}

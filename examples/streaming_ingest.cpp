// Streaming ingestion: the paper's assess → acquire → re-assess loop (§I)
// as a long-lived service. A CoverageEngine owns the COMPAS schema, ingests
// the initial extract in chunks (never holding more than one chunk of rows),
// and then absorbs targeted acquisition batches — each append updates the
// MUP set incrementally instead of recomputing from scratch.
//
//   $ ./examples/streaming_ingest

#include <iostream>
#include <sstream>

#include "coverage_lib.h"

int main() {
  using namespace coverage;

  // Stand-in for a CSV landing on disk: the synthetic COMPAS extract.
  const datagen::LabeledData compas = datagen::MakeCompas(6889);
  std::ostringstream csv;
  if (!compas.data.WriteCsv(csv).ok()) return 1;

  // A long-lived engine over the (bucketized, final) schema.
  EngineOptions options;
  options.tau = 10;
  CoverageEngine engine(compas.data.schema(), options);

  // Chunked ingest: 512 rows at a time, one incremental epoch per chunk.
  std::istringstream stream(csv.str());
  const auto ingest = engine.IngestCsvChunked(stream, 512);
  if (!ingest.ok()) {
    std::cerr << ingest.status().ToString() << "\n";
    return 1;
  }
  std::cout << "ingested " << FormatCount(ingest->rows) << " rows in "
            << ingest->chunks << " chunks (peak resident chunk: "
            << ingest->peak_chunk_rows << " rows)\n"
            << "epoch " << engine.epoch() << ": " << engine.Mups().size()
            << " MUPs at tau=" << options.tau << "\n\n";

  // Acquisition loop: pick a MUP, acquire matching rows, re-assess. The
  // engine rechecks the old MUPs and re-expands only beneath the ones the
  // new rows covered.
  for (int round = 0; round < 3 && !engine.Mups().empty(); ++round) {
    const Pattern target = engine.Mups().front();
    std::cout << "round " << round + 1 << ": acquiring 12 rows matching "
              << target.ToString() << "  ("
              << target.ToLabelledString(engine.schema()) << ")\n";

    // Materialise rows matching the target (wildcards fixed to value 0).
    Dataset acquired(engine.schema());
    std::vector<Value> row(static_cast<std::size_t>(
        engine.schema().num_attributes()));
    for (int i = 0; i < engine.schema().num_attributes(); ++i) {
      row[static_cast<std::size_t>(i)] =
          target.is_deterministic(i) ? target.cell(i) : Value{0};
    }
    for (int r = 0; r < 12; ++r) acquired.AppendRow(row);

    EngineUpdateStats update;
    if (!engine.AppendRows(acquired, &update).ok()) return 1;
    std::cout << "  epoch " << engine.epoch() << ": rechecked "
              << update.mups_rechecked << " MUPs, " << update.mups_newly_covered
              << " newly covered, " << update.mups_added << " new ones beneath"
              << " -> " << engine.Mups().size() << " MUPs ("
              << FormatDouble(update.seconds * 1e3, 3) << " ms, "
              << update.coverage_queries << " queries)\n";
  }

  // Any snapshot keeps answering consistently while later epochs build.
  const auto snapshot = engine.snapshot();
  QueryContext ctx;
  std::cout << "\nfinal epoch " << snapshot->epoch() << ": "
            << FormatCount(snapshot->num_rows()) << " rows, cov(root) = "
            << snapshot->oracle().Coverage(
                   Pattern::Root(engine.schema().num_attributes()), ctx)
            << ", " << snapshot->mups().size() << " MUPs remain\n";
  return 0;
}

// Streaming ingestion: the paper's assess → acquire → re-assess loop (§I)
// as a long-lived service. A CoverageService::Session owns the COMPAS
// schema, ingests the initial extract in chunks (never holding more than one
// chunk of rows), and then absorbs targeted acquisition batches — each
// append updates the MUP set incrementally instead of recomputing from
// scratch, so a session Audit() is a snapshot read, not a search.
//
//   $ ./examples/streaming_ingest

#include <iostream>
#include <sstream>

#include "coverage_lib.h"

int main() {
  using namespace coverage;

  // Stand-in for a CSV landing on disk: the synthetic COMPAS extract.
  const datagen::LabeledData compas = datagen::MakeCompas(6889);
  std::ostringstream csv;
  if (!compas.data.WriteCsv(csv).ok()) return 1;

  // A long-lived session over the (bucketized, final) schema.
  CoverageService::SessionOptions options;
  options.tau = 10;
  auto session =
      CoverageService::OpenSession(compas.data.schema(), options);
  if (!session.ok()) {
    std::cerr << session.status().ToString() << "\n";
    return 1;
  }

  // Chunked ingest: 512 rows at a time, one incremental epoch per chunk.
  std::istringstream stream(csv.str());
  const auto ingest = session->IngestCsv(stream, 512);
  if (!ingest.ok()) {
    std::cerr << ingest.status().ToString() << "\n";
    return 1;
  }
  AuditResult audit = session->Audit();
  std::cout << "ingested " << FormatCount(ingest->rows) << " rows in "
            << ingest->chunks << " chunks (peak resident chunk: "
            << ingest->peak_chunk_rows << " rows)\n"
            << "epoch " << session->epoch() << ": " << audit.mups.size()
            << " MUPs at tau=" << options.tau << "\n\n";

  // Acquisition loop: pick a MUP, acquire matching rows, re-assess. The
  // engine rechecks the old MUPs and re-expands only beneath the ones the
  // new rows covered.
  for (int round = 0; round < 3 && !audit.mups.empty(); ++round) {
    const Pattern target = audit.mups.front();
    std::cout << "round " << round + 1 << ": acquiring 12 rows matching "
              << target.ToString() << "  ("
              << target.ToLabelledString(session->schema()) << ")\n";

    // Materialise rows matching the target (wildcards fixed to value 0).
    Dataset acquired(session->schema());
    std::vector<Value> row(static_cast<std::size_t>(
        session->schema().num_attributes()));
    for (int i = 0; i < session->schema().num_attributes(); ++i) {
      row[static_cast<std::size_t>(i)] =
          target.is_deterministic(i) ? target.cell(i) : Value{0};
    }
    for (int r = 0; r < 12; ++r) acquired.AppendRow(row);

    const auto update = session->Append(acquired);
    if (!update.ok()) {
      std::cerr << update.status().ToString() << "\n";
      return 1;
    }
    audit = session->Audit();
    std::cout << "  epoch " << session->epoch() << ": rechecked "
              << update->mups_rechecked << " MUPs, "
              << update->mups_newly_covered << " newly covered, "
              << update->mups_added << " new ones beneath -> "
              << audit.mups.size() << " MUPs ("
              << FormatDouble(update->seconds * 1e3, 3) << " ms, "
              << update->coverage_queries << " queries)\n";
  }

  // Batched probes answer against one consistent epoch snapshot even while
  // writers keep appending.
  QueryBatchRequest probes;
  probes.queries.push_back(
      QueryRequest{Pattern::Root(session->schema().num_attributes()), 0});
  for (const Pattern& p : audit.mups) {
    probes.queries.push_back(QueryRequest{p, 0});
    if (probes.queries.size() >= 4) break;
  }
  const auto batch = session->QueryBatch(probes);
  if (!batch.ok()) {
    std::cerr << batch.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nfinal epoch " << session->epoch() << ": "
            << FormatCount(session->num_rows()) << " rows, cov(root) = "
            << batch->results[0].coverage << ", " << audit.mups.size()
            << " MUPs remain (" << batch->results.size()
            << " probes answered in one batch)\n";
  return 0;
}

// Scaling to wide schemas: a marketplace with 36 boolean amenity attributes
// cannot enumerate its full pattern graph (3^36 nodes), but the dangerous
// coverage gaps are the *general* ones — combinations of one, two, or three
// attributes (paper §V-C3, Fig. 16). Level-limited DEEPDIVER finds exactly
// those, fast, and the report ranks them for a human reviewer.
//
//   $ ./examples/wide_catalog_scaling

#include <iostream>

#include "coverage_lib.h"

int main() {
  using namespace coverage;

  const std::size_t n = 100000;
  const int d = 36;
  std::cout << "generating " << FormatCount(n) << " listings with " << d
            << " boolean attributes...\n";
  const Dataset listings = datagen::MakeAirbnb(n, d);
  const AggregatedData agg(listings);
  const BitmapCoverage oracle(agg);
  std::cout << "distinct value combinations: "
            << FormatCount(agg.num_combinations()) << "\n";
  std::cout << "full pattern graph would have "
            << FormatCount(listings.schema().NumPatterns())
            << " nodes - level-limited search instead:\n\n";

  const std::uint64_t tau = n / 1000;  // 0.1%
  TablePrinter table({"max level", "time (s)", "# MUPs", "most general MUP"});
  for (int max_level : {1, 2, 3}) {
    MupSearchOptions options;
    options.tau = tau;
    options.max_level = max_level;
    MupSearchStats stats;
    const auto mups = FindMupsDeepDiver(oracle, options, &stats);
    std::string example = "-";
    if (!mups.empty()) {
      const CoverageReport report = BuildCoverageReport(
          listings.schema(), mups, n, tau, 1);
      example = report.most_general.empty() ? "-" : report.most_general[0];
    }
    table.Row()
        .Cell(max_level)
        .Cell(stats.seconds, 3)
        .Cell(static_cast<std::uint64_t>(mups.size()))
        .Cell(example)
        .Done();
  }
  table.Print(std::cout);

  // Plan remediation for the pairwise gaps only.
  MupSearchOptions options;
  options.tau = tau;
  options.max_level = 2;
  const auto mups = FindMupsDeepDiver(oracle, options);
  EnhancementOptions eopts;
  eopts.tau = tau;
  eopts.lambda = 2;
  const auto plan = PlanCoverageEnhancement(oracle, mups, eopts);
  if (plan.ok()) {
    std::cout << "\nremediating all pairwise gaps needs "
              << plan->items.size() << " distinct listing profiles ("
              << FormatCount(plan->TotalTuples()) << " listings, vs "
              << plan->targets.size()
              << " uncovered pairs - each profile hits many)\n";
  }
  return 0;
}

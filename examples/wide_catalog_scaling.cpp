// Scaling to wide schemas: a marketplace with 36 boolean amenity attributes
// cannot enumerate its full pattern graph (3^36 nodes), but the dangerous
// coverage gaps are the *general* ones — combinations of one, two, or three
// attributes (paper §V-C3, Fig. 16). The service's kAuto planner detects the
// wide schema and falls back to level-limited DEEPDIVER on its own; the
// explicit sweep below shows what each level cap costs.
//
//   $ ./examples/wide_catalog_scaling

#include <iostream>

#include "coverage_lib.h"

int main() {
  using namespace coverage;

  const std::size_t n = 100000;
  const int d = 36;
  std::cout << "generating " << FormatCount(n) << " listings with " << d
            << " boolean attributes...\n";
  auto service = CoverageService::FromSpec(
      DatagenSpec{.name = "airbnb", .n = n, .d = d, .seed = 7});
  if (!service.ok()) {
    std::cerr << service.status().ToString() << "\n";
    return 1;
  }
  std::cout << "distinct value combinations: "
            << FormatCount(service->data().num_combinations()) << "\n";
  std::cout << "full pattern graph would have "
            << FormatCount(service->schema().NumPatterns())
            << " nodes - the planner refuses to explore it:\n\n";

  const std::uint64_t tau = n / 1000;  // 0.1%

  // kAuto on a wide schema: the planner clamps the search to the general
  // levels and says so.
  AuditRequest auto_audit;
  auto_audit.tau = tau;
  const auto planned = service->Audit(auto_audit);
  if (!planned.ok()) {
    std::cerr << planned.status().ToString() << "\n";
    return 1;
  }
  std::cout << "kAuto ran " << planned->algorithm << " at max level "
            << planned->max_level << " -> " << planned->mups.size()
            << " MUPs\n  planner: " << planned->planner_rationale << "\n\n";

  TablePrinter table({"max level", "time (s)", "# MUPs", "most general MUP"});
  for (int max_level : {1, 2, 3}) {
    AuditRequest audit;
    audit.tau = tau;
    audit.max_level = max_level;
    audit.algorithm = MupAlgorithm::kDeepDiver;
    const auto result = service->Audit(audit);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    std::string example = "-";
    if (!result->mups.empty()) {
      const CoverageReport report = result->Report(service->schema(), 1);
      example = report.most_general.empty() ? "-" : report.most_general[0];
    }
    table.Row()
        .Cell(max_level)
        .Cell(result->stats.seconds, 3)
        .Cell(static_cast<std::uint64_t>(result->mups.size()))
        .Cell(example)
        .Done();
  }
  table.Print(std::cout);

  // Plan remediation for the pairwise gaps only.
  EnhanceRequest enhance;
  enhance.tau = tau;
  enhance.lambda = 2;
  const auto plan = service->Enhance(enhance);
  if (plan.ok()) {
    std::cout << "\nremediating all pairwise gaps needs "
              << plan->items.size() << " distinct listing profiles ("
              << FormatCount(plan->TotalTuples()) << " listings, vs "
              << plan->targets.size()
              << " uncovered pairs - each profile hits many)\n";
  }
  return 0;
}

#!/usr/bin/env python3
"""Checks that every public header compiles standalone.

A header is self-contained when a translation unit consisting of nothing but
`#include "the/header.h"` compiles. This keeps the public surface honest:
users can include exactly what they need (the umbrella coverage_lib.h stays a
convenience, not a requirement), and a header never silently leans on what a
sibling happened to include first.

Usage: python3 scripts/check_header_self_containment.py [--cxx g++]
Run from the repository root. Exits non-zero listing every failing header.
"""

import argparse
import pathlib
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
HEADER_ROOTS = ["src", "tools"]


def headers():
    for root in HEADER_ROOTS:
        yield from sorted((REPO / root).rglob("*.h"))


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--cxx", default="g++", help="compiler to use")
    args = parser.parse_args()

    failures = []
    checked = 0
    for header in headers():
        rel = header.relative_to(REPO)
        # Headers are included the way the build includes them: relative to
        # src/ for the library, relative to the repo root for tools/.
        include = header.relative_to(REPO / "src") if rel.parts[0] == "src" else rel
        with tempfile.NamedTemporaryFile(
            "w", suffix=".cc", dir=str(REPO), delete=False
        ) as tu:
            tu.write(f'#include "{include.as_posix()}"\n')
            tu_path = pathlib.Path(tu.name)
        try:
            proc = subprocess.run(
                [
                    args.cxx,
                    "-std=c++20",
                    "-fsyntax-only",
                    "-Wall",
                    "-Werror=missing-declarations",
                    f"-I{REPO / 'src'}",
                    f"-I{REPO}",
                    str(tu_path),
                ],
                capture_output=True,
                text=True,
            )
        finally:
            tu_path.unlink()
        checked += 1
        if proc.returncode != 0:
            failures.append((rel, proc.stderr.strip()))

    if failures:
        for rel, stderr in failures:
            print(f"NOT SELF-CONTAINED: {rel}\n{stderr}\n", file=sys.stderr)
        print(f"{len(failures)} of {checked} headers failed", file=sys.stderr)
        return 1
    print(f"all {checked} headers are self-contained")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Line-coverage gate over the gcov data a COVERAGE_ENABLE_GCOV build leaves
behind.

Usage:
    check_line_coverage.py --build-dir build [--baseline scripts/coverage_baseline.json]
        [--report coverage_report.json]

Runs `gcov --json-format` over every .gcno with a matching .gcda under the
build directory, merges line hit counts per source file across translation
units, and compares the aggregate line coverage of each directory group in
the baseline file against its floor. Exits non-zero when any group is below
its floor, so CI fails when new code in src/pattern/ or src/mups/ lands
untested. No gcovr/lcov dependency — plain gcov + this script.

The baseline maps a path prefix (relative to the repo root) to the minimum
percentage of executable lines that must be covered:

    {"src/pattern/": 93.0, "src/mups/": 88.0}

Refresh the floors after a coverage-improving PR by re-running with
--print-only and rounding the measured numbers *down* a point (the gate
should catch regressions, not flake on noise).
"""

import argparse
import gzip
import json
import os
import shutil
import subprocess
import sys
import tempfile


def find_gcno_with_gcda(build_dir):
    """Instrumented objects that actually ran (gcda present)."""
    out = []
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcno"):
                gcno = os.path.join(root, name)
                if os.path.exists(gcno[: -len(".gcno")] + ".gcda"):
                    out.append(gcno)
    return out


def run_gcov(gcno_files, workdir):
    """Runs gcov in JSON mode; returns the parsed documents."""
    docs = []
    # Batch to keep command lines bounded.
    for i in range(0, len(gcno_files), 50):
        batch = gcno_files[i : i + 50]
        proc = subprocess.run(
            ["gcov", "--json-format", "--branch-probabilities"] + batch,
            cwd=workdir,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr.decode(errors="replace"))
            raise SystemExit(f"gcov failed on batch starting at {batch[0]}")
    for name in os.listdir(workdir):
        if name.endswith(".gcov.json.gz"):
            with gzip.open(os.path.join(workdir, name), "rt") as f:
                docs.append(json.load(f))
    return docs


def merge_line_hits(docs, repo_root):
    """{relative source path: {line: max hit count across TUs}}."""
    hits = {}
    for doc in docs:
        for f in doc.get("files", []):
            path = os.path.normpath(
                os.path.join(doc.get("current_working_directory", ""), f["file"])
                if not os.path.isabs(f["file"])
                else f["file"]
            )
            try:
                rel = os.path.relpath(path, repo_root)
            except ValueError:
                continue
            if rel.startswith(".."):
                continue
            per_file = hits.setdefault(rel, {})
            for line in f.get("lines", []):
                n = line["line_number"]
                per_file[n] = max(per_file.get(n, 0), line["count"])
    return hits


def group_coverage(hits, prefix):
    covered = total = 0
    files = {}
    for rel, lines in sorted(hits.items()):
        if not rel.startswith(prefix):
            continue
        file_covered = sum(1 for c in lines.values() if c > 0)
        file_total = len(lines)
        covered += file_covered
        total += file_total
        if file_total:
            files[rel] = round(100.0 * file_covered / file_total, 1)
    pct = 100.0 * covered / total if total else 0.0
    return pct, covered, total, files


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument(
        "--baseline",
        default=os.path.join(os.path.dirname(__file__), "coverage_baseline.json"),
    )
    ap.add_argument("--report", help="write the per-file breakdown as JSON here")
    ap.add_argument(
        "--print-only",
        action="store_true",
        help="report coverage without enforcing the baseline floors",
    )
    args = ap.parse_args()

    repo_root = os.path.dirname(os.path.abspath(os.path.dirname(__file__)))
    build_dir = os.path.abspath(args.build_dir)

    gcno_files = find_gcno_with_gcda(build_dir)
    if not gcno_files:
        raise SystemExit(
            "no .gcno/.gcda pairs under %s — configure with "
            "-DCOVERAGE_ENABLE_GCOV=ON and run the tests first" % build_dir
        )

    workdir = tempfile.mkdtemp(prefix="gcov_json_")
    try:
        docs = run_gcov(gcno_files, workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    hits = merge_line_hits(docs, repo_root)

    with open(args.baseline) as f:
        baseline = json.load(f)

    report = {}
    failed = []
    for prefix, floor in sorted(baseline.items()):
        pct, covered, total, files = group_coverage(hits, prefix)
        report[prefix] = {
            "percent": round(pct, 2),
            "covered_lines": covered,
            "total_lines": total,
            "floor": floor,
            "files": files,
        }
        status = "OK " if pct >= floor else "LOW"
        print(
            f"[{status}] {prefix:<16} {pct:6.2f}%  "
            f"({covered}/{total} lines, floor {floor}%)"
        )
        if pct < floor:
            failed.append(prefix)

    if args.report:
        with open(args.report, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")

    if failed and not args.print_only:
        print(
            "coverage below baseline for: %s — add tests or consciously "
            "lower scripts/coverage_baseline.json in the same PR"
            % ", ".join(failed),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

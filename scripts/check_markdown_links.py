#!/usr/bin/env python3
"""Fails if any intra-repo markdown link points at a missing file.

Scans every tracked *.md for inline links and reference definitions,
resolves relative targets against the linking file, and reports the ones
that do not exist. External links (http/https/mailto) and pure anchors are
skipped — this is an offline structural check, not a crawler. Used by the
`docs` CI job; run locally as `python3 scripts/check_markdown_links.py`.
"""

import os
import re
import sys

# Inline [text](target) plus reference definitions `[label]: target`.
INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {".git", "build", "build-seed", "build-tsan", ".claude"}


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def targets_in(text):
    for pattern in (INLINE_LINK, REF_DEF):
        for match in pattern.finditer(text):
            yield match.group(1)


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    broken = []
    checked = 0
    for path in sorted(markdown_files(root)):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for target in targets_in(text):
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            resolved = target.split("#", 1)[0]
            if not resolved:
                continue
            base = root if resolved.startswith("/") else os.path.dirname(path)
            resolved = os.path.normpath(
                os.path.join(base, resolved.lstrip("/")))
            checked += 1
            if not os.path.exists(resolved):
                broken.append((os.path.relpath(path, root), target))
    if broken:
        print(f"{len(broken)} broken intra-repo markdown link(s):")
        for source, target in broken:
            print(f"  {source}: {target}")
        return 1
    print(f"ok: {checked} intra-repo link target(s) exist")
    return 0


if __name__ == "__main__":
    sys.exit(main())

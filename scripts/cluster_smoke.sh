#!/usr/bin/env bash
# Distributed-tier smoke (CI and local): boot 3 shard coverage_servers over
# row slices of one dataset plus a scatter-gather coordinator, run a
# distributed audit over both wire encodings and check it matches a
# single-node audit of the full dataset, kill -9 one shard and assert the
# structured 503 degradation (body names the shard, the per-shard error
# counter moves), restart the shard, and assert full recovery.
#
# usage: scripts/cluster_smoke.sh [server-binary]
set -euo pipefail

SERVER=${1:-build/coverage_server}
BASE_PORT=${BASE_PORT:-18140}
COORD_PORT=$((BASE_PORT + 3))
SPEC=compas
WORK=$(mktemp -d)
PIDS=()
trap 'kill -9 "${PIDS[@]}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

normalize() { sed -E 's/"([a-z_]*seconds)": *[0-9.eE+-]+/"\1": 0/g'; }

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -sf "localhost:$1/healthz" > /dev/null; then return 0; fi
    sleep 0.1
  done
  echo "server on port $1 never became healthy" >&2
  return 1
}

# Extracts the sorted MUP pattern list — the invariant part of an audit.
mups() {
  python3 -c 'import json,sys; print(sorted(m["pattern"] for m in json.load(sys.stdin)["mups"]))'
}

start_shard() {  # $1 = shard index
  "$SERVER" --spec "$SPEC" --role shard --shard-index "$1" --shard-count 3 \
    --port $((BASE_PORT + $1)) --threads 2 > "$WORK/shard$1.log" &
  PIDS+=($!)
}

# ---- boot: 3 shards + coordinator + a single-node reference ------------
for i in 0 1 2; do start_shard "$i"; done
for i in 0 1 2; do wait_healthy $((BASE_PORT + i)); done

"$SERVER" --role coordinator \
  --shards "localhost:$BASE_PORT,localhost:$((BASE_PORT + 1)),localhost:$((BASE_PORT + 2))" \
  --port "$COORD_PORT" --threads 2 > "$WORK/coordinator.log" &
PIDS+=($!)
wait_healthy "$COORD_PORT"

REF_PORT=$((BASE_PORT + 4))
"$SERVER" --spec "$SPEC" --port "$REF_PORT" --threads 2 > "$WORK/ref.log" &
PIDS+=($!)
wait_healthy "$REF_PORT"

# ---- distributed audit == single-node audit (JSON) ---------------------
curl -sf "localhost:$COORD_PORT/v1/audit" -d '{"tau": 30}' > "$WORK/dist.json"
curl -sf "localhost:$REF_PORT/v1/audit" -d '{"tau": 30}' > "$WORK/ref.json"
mups < "$WORK/dist.json" > "$WORK/dist.mups"
mups < "$WORK/ref.json" > "$WORK/ref.mups"
cmp "$WORK/dist.mups" "$WORK/ref.mups"
grep -q '"algorithm": "DISTRIBUTED-BREAKER"' "$WORK/dist.json"
grep -q '"num_rows": 6889' "$WORK/dist.json"

# ---- binary negotiation round-trips the same answer --------------------
curl -sf "localhost:$COORD_PORT/v1/audit" -d '{"tau": 30}' \
  -H 'Accept: application/x-coverage-bin' -o "$WORK/dist.bin" \
  -D "$WORK/bin.headers"
grep -qi 'content-type: application/x-coverage-bin' "$WORK/bin.headers"
# The binary body is the framed form of the same result: magic + nonempty.
head -c 4 "$WORK/dist.bin" | grep -q 'CVW2'

# ---- queries sum exactly across shards ---------------------------------
QUERY='{"queries": [{"pattern": "0XXX", "tau": 5}, {"pattern": "X1XX", "tau": 9999999}]}'
curl -sf "localhost:$COORD_PORT/v1/query" -d "$QUERY" | normalize > "$WORK/q_dist.json"
curl -sf "localhost:$REF_PORT/v1/query" -d "$QUERY" | normalize > "$WORK/q_ref.json"
python3 - "$WORK/q_dist.json" "$WORK/q_ref.json" <<'EOF'
import json, sys
dist, ref = (json.load(open(p)) for p in sys.argv[1:3])
assert dist["results"] == ref["results"], (dist, ref)
EOF

# ---- sessions route through the ring and carry shard annotations -------
SID=$(curl -sf "localhost:$COORD_PORT/v1/sessions" -d '{"tau": 2}' |
  python3 -c 'import json,sys; print(json.load(sys.stdin)["session_id"])')
curl -sf "localhost:$COORD_PORT/v1/sessions/$SID/append" \
  -d '{"rows": [[0, 1, 0, 1], [0, 1, 0, 1]]}' > /dev/null
curl -sf -X POST "localhost:$COORD_PORT/v1/sessions/$SID/audit" > /dev/null
# (never `curl | grep -q`: -q closes the pipe at first match and pipefail
# turns curl's write error into a failure)
curl -sf "localhost:$COORD_PORT/v1/sessions" > "$WORK/sessions.json"
grep -q '"shard"' "$WORK/sessions.json"

# ---- kill -9 one shard: structured 503 + error metric ------------------
KILLED_PORT=$((BASE_PORT + 1))
KILLED_PID=${PIDS[1]}
kill -9 "$KILLED_PID"
wait "$KILLED_PID" 2> /dev/null || true

STATUS=$(curl -s -o "$WORK/degraded.json" -w '%{http_code}' \
  "localhost:$COORD_PORT/v1/audit" -d '{"tau": 30}')
test "$STATUS" = 503
grep -q '"code": "shard_unavailable"' "$WORK/degraded.json"
grep -q "\"shard\": \"127.0.0.1:$KILLED_PORT\"" "$WORK/degraded.json"
curl -sf "localhost:$COORD_PORT/metrics" > "$WORK/metrics.txt"
grep -q "^coverage_cluster_shard_errors_total{shard=\"127.0.0.1:$KILLED_PORT\"} [1-9]" \
  "$WORK/metrics.txt"
# The coordinator itself must stay healthy while degraded.
curl -sf "localhost:$COORD_PORT/healthz" > /dev/null

# ---- restart the shard: the coordinator recovers without a reboot ------
start_shard 1
wait_healthy "$KILLED_PORT"
for _ in $(seq 1 50); do
  if curl -sf "localhost:$COORD_PORT/v1/audit" -d '{"tau": 30}' \
    > "$WORK/recovered.json" 2>/dev/null; then break; fi
  sleep 0.1
done
mups < "$WORK/recovered.json" > "$WORK/recovered.mups"
cmp "$WORK/recovered.mups" "$WORK/ref.mups"

echo "cluster smoke: OK"

#!/usr/bin/env bash
# End-to-end crash-recovery smoke (CI and local): boot coverage_server
# with --data-dir, mutate a durable session over HTTP, kill -9 the
# process, reboot on the same directory, and assert the recovered audit
# is byte-identical. Only wall-clock timing fields are normalized —
# every other byte must match.
#
# usage: scripts/crash_recovery_smoke.sh [server-binary] [csv]
set -euo pipefail

SERVER=${1:-build/coverage_server}
CSV=${2:-compas.csv}
PORT=${PORT:-18091}
WORK=$(mktemp -d)
SERVER_PID=""
trap '[ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

normalize() { sed -E 's/"([a-z_]*seconds)": *[0-9.eE+-]+/"\1": 0/g'; }

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -sf "localhost:$1/healthz" > /dev/null; then return 0; fi
    sleep 0.1
  done
  echo "server on port $1 never became healthy" >&2
  return 1
}

"$SERVER" --data "$CSV" --port "$PORT" --threads 4 \
  --data-dir "$WORK/sessions" --durability fsync > "$WORK/boot1.log" &
SERVER_PID=$!
wait_healthy "$PORT"

SID=$(curl -sf "localhost:$PORT/v1/sessions" -d '{
  "tau": 2,
  "schema": {"attributes": [
    {"name": "gender", "cardinality": 2},
    {"name": "age", "cardinality": 3}]}}' |
  python3 -c 'import json,sys; print(json.load(sys.stdin)["session_id"])')
curl -sf "localhost:$PORT/v1/sessions/$SID/append" \
  -d '{"rows": [[0, 0], [0, 1], [1, 2], [1, 1]]}' > /dev/null
curl -sf "localhost:$PORT/v1/sessions/$SID/retract" \
  -d '{"rows": [[0, 1]]}' > /dev/null
curl -sf -X POST "localhost:$PORT/v1/sessions/$SID/audit" |
  normalize > "$WORK/audit_before.json"

# No shutdown courtesy whatsoever.
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2> /dev/null || true

PORT2=$((PORT + 1))
"$SERVER" --data "$CSV" --port "$PORT2" --threads 4 \
  --data-dir "$WORK/sessions" --durability fsync > "$WORK/boot2.log" &
SERVER_PID=$!
wait_healthy "$PORT2"

curl -sf -X POST "localhost:$PORT2/v1/sessions/$SID/audit" |
  normalize > "$WORK/audit_after.json"
cmp "$WORK/audit_before.json" "$WORK/audit_after.json"
curl -sf "localhost:$PORT2/v1/stats" | grep -q '"sessions_recovered": 1'
# The recovered session is live, not a read-only fossil.
curl -sf "localhost:$PORT2/v1/sessions/$SID/append" \
  -d '{"rows": [[0, 2]]}' > /dev/null
# The durable append above fsynced through the instrumented WAL: the
# persistence histograms must be live on the rebooted process too.
curl -sf "localhost:$PORT2/metrics" |
  grep -q '^coverage_persist_fsync_seconds_count [1-9]'

kill -INT "$SERVER_PID"
wait "$SERVER_PID"
SERVER_PID=""
echo "crash-recovery smoke: OK"

#!/usr/bin/env python3
"""Regenerates the golden files for the `coverage_cli --json` tests.

The goldens are the CLI's --json output with every "seconds" member zeroed
(wall-clock timings are the one nondeterministic part of the wire format),
re-serialised in the canonical layout (sorted keys, 2-space indent) — the
same normalisation tests/cli_test.cc applies before comparing. All values
in these documents are integers and strings, so Python's json module
reproduces the C++ writer byte-for-byte.

Usage: python3 scripts/update_golden_files.py [--build-dir build]
Run from the repository root after building coverage_cli + coverage_datagen.
"""

import argparse
import json
import pathlib
import subprocess
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
GOLDEN = REPO / "tests" / "golden"


def zero_seconds(node):
    if isinstance(node, list):
        for item in node:
            zero_seconds(item)
    elif isinstance(node, dict):
        for key, value in node.items():
            if key == "seconds":
                node[key] = 0
            else:
                zero_seconds(value)


def normalize(text):
    doc = json.loads(text)
    zero_seconds(doc)
    return (
        json.dumps(doc, indent=2, sort_keys=True, ensure_ascii=False,
                   separators=(",", ": "))
        + "\n"
    )


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", default="build")
    args = parser.parse_args()
    build = REPO / args.build_dir

    # The same dataset tests/cli_test.cc generates in its fixture.
    csv = subprocess.run(
        [str(build / "coverage_datagen"), "--dataset", "compas", "--n",
         "2000", "--seed", "3"],
        check=True, capture_output=True, text=True,
    ).stdout
    with tempfile.NamedTemporaryFile("w", suffix=".csv", delete=False) as f:
        f.write(csv)
        csv_path = f.name

    cases = {
        "cli_audit_compas_tau10.json": [
            "audit", "--csv", csv_path, "--tau", "10", "--json"],
        "cli_query_compas.json": [
            "query", "--csv", csv_path, "--pattern", "XXXX", "--pattern",
            "X0XX", "--json"],
    }
    GOLDEN.mkdir(exist_ok=True)
    for name, argv in cases.items():
        out = subprocess.run(
            [str(build / "coverage_cli")] + argv,
            check=True, capture_output=True, text=True,
        ).stdout
        (GOLDEN / name).write_text(normalize(out))
        print(f"wrote {GOLDEN / name}")
    pathlib.Path(csv_path).unlink()


if __name__ == "__main__":
    main()


# The goldens double as documentation of the wire format, so keep them
# reviewed like source: a diff here means the wire format changed.

#include "cluster/client_pool.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/stopwatch.h"

namespace coverage {
namespace cluster {

Status RetryPolicy::Validate() const {
  if (max_attempts < 1) {
    return Status::InvalidArgument("retry max_attempts must be >= 1");
  }
  if (backoff_ms < 0 || max_backoff_ms < 0) {
    return Status::InvalidArgument("retry backoff must be non-negative");
  }
  return Status::OK();
}

ClientPool::ClientPool(std::string host, int port, ClientPoolOptions options)
    : host_(std::move(host)),
      port_(port),
      endpoint_(host_ + ":" + std::to_string(port_)),
      options_(std::move(options)) {}

StatusOr<http::HttpClient> ClientPool::Lease(bool* reused) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      http::HttpClient client = std::move(idle_.back());
      idle_.pop_back();
      ++stats_.reuses;
      *reused = true;
      return client;
    }
  }
  *reused = false;
  auto client = http::HttpClient::Connect(host_, port_, options_.client);
  if (client.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.connects;
  }
  return client;
}

void ClientPool::Park(http::HttpClient client) {
  std::lock_guard<std::mutex> lock(mu_);
  if (idle_.size() < options_.max_idle) idle_.push_back(std::move(client));
  // else: drop — the destructor closes the socket.
}

void ClientPool::Backoff(int attempt) {
  // attempt is the one about to run (>= 2 here): sleep backoff << (k-1)
  // before the k-th retry, capped.
  if (options_.retry.backoff_ms <= 0) return;
  const int shift = std::min(attempt - 2, 16);
  const int ms = std::min(options_.retry.max_backoff_ms,
                          options_.retry.backoff_ms << shift);
  if (ms <= 0) return;
  if (options_.sleep_fn) {
    options_.sleep_fn(ms);
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
}

StatusOr<http::Response> ClientPool::Roundtrip(const http::Request& request,
                                               bool idempotent) {
  Stopwatch timer;
  Status last = Status::Internal("no attempts made");
  const int max_attempts = std::max(1, options_.retry.max_attempts);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.retries;
      }
      Backoff(attempt);
    }
    if (options_.fault_hook) {
      Status injected = options_.fault_hook(attempt);
      if (!injected.ok()) {
        // Injected connect-stage failure: nothing was sent, keep retrying
        // regardless of idempotency, exactly like a refused connect below.
        last = injected;
        continue;
      }
    }
    bool reused = false;
    StatusOr<http::HttpClient> client = Lease(&reused);
    if (!client.ok()) {
      last = client.status();
      continue;
    }
    StatusOr<http::Response> response = client->Roundtrip(request);
    if (response.ok()) {
      Park(std::move(*client));
      if (options_.rpc_seconds != nullptr) {
        options_.rpc_seconds->Observe(timer.ElapsedSeconds());
      }
      return response;
    }
    // The connection is suspect: drop it (never re-park a failed one).
    last = response.status();
    if (!idempotent) break;  // the request may have reached the server
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.failures;
  }
  if (options_.errors != nullptr) options_.errors->Increment();
  return last;
}

StatusOr<http::Response> ClientPool::Get(const std::string& target) {
  http::Request request;
  request.method = "GET";
  request.target = target;
  request.version = "HTTP/1.1";
  return Roundtrip(request);
}

StatusOr<http::Response> ClientPool::Post(const std::string& target,
                                          std::string body,
                                          const std::string& content_type) {
  http::Request request;
  request.method = "POST";
  request.target = target;
  request.version = "HTTP/1.1";
  request.headers.push_back({"Content-Type", content_type});
  request.body = std::move(body);
  return Roundtrip(request);
}

ClientPool::Stats ClientPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace cluster
}  // namespace coverage

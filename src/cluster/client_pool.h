#ifndef COVERAGE_CLUSTER_CLIENT_POOL_H_
#define COVERAGE_CLUSTER_CLIENT_POOL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "server/http.h"
#include "server/http_client.h"

namespace coverage {
namespace cluster {

/// Bounded retry with exponential backoff for transient transport failures.
struct RetryPolicy {
  /// Total tries, including the first. 1 = never retry.
  int max_attempts = 3;

  /// Sleep before the k-th retry is backoff_ms << (k-1), capped at
  /// max_backoff_ms. 0 disables sleeping (tests).
  int backoff_ms = 50;
  int max_backoff_ms = 2000;

  Status Validate() const;
};

struct ClientPoolOptions {
  http::HttpClient::Options client;  ///< connect/read timeouts per attempt
  RetryPolicy retry;

  /// Keep-alive connections parked for reuse; beyond this, returned
  /// connections are simply closed. Concurrency is NOT capped — each
  /// concurrent caller that finds the pool empty dials its own connection.
  std::size_t max_idle = 8;

  /// Test seam: called at the top of every attempt; a non-OK status is
  /// treated as a transport failure *before anything was sent* (so it is
  /// always retryable, like a refused connect). Null = off.
  std::function<Status(int attempt)> fault_hook;

  /// Test seam for the backoff sleep; null = real sleep_for.
  std::function<void(int ms)> sleep_fn;

  /// Optional instruments (must outlive the pool; null = off):
  /// per-roundtrip wall latency (successful calls) and one increment per
  /// call that failed after exhausting its attempts.
  obs::Histogram* rpc_seconds = nullptr;
  obs::Counter* errors = nullptr;
};

/// A thread-safe keep-alive connection pool for one endpoint, wrapping
/// http::HttpClient (which is single-connection and single-threaded) with:
///
///  - per-endpoint connection reuse: a finished roundtrip parks its
///    connection for the next caller instead of closing it;
///  - stale-connection handling: a connection that fails is dropped, never
///    re-parked (HttpClient additionally retries byte-less keep-alive
///    failures on a fresh connection internally);
///  - bounded retry with exponential backoff (RetryPolicy) around connect
///    and transport failures.
///
/// Idempotency: pass `idempotent = false` for requests that must not be
/// re-sent once they may have reached the server (session append/retract).
/// Connect-stage failures — including fault_hook rejections — still retry,
/// because nothing was sent; failures after the request went out do not.
class ClientPool {
 public:
  ClientPool(std::string host, int port, ClientPoolOptions options);

  /// "host:port" — the ring member name and metrics label.
  const std::string& endpoint() const { return endpoint_; }
  const std::string& host() const { return host_; }
  int port() const { return port_; }

  StatusOr<http::Response> Roundtrip(const http::Request& request,
                                     bool idempotent = true);

  /// Convenience wrappers mirroring HttpClient's.
  StatusOr<http::Response> Get(const std::string& target);
  StatusOr<http::Response> Post(const std::string& target, std::string body,
                                const std::string& content_type =
                                    "application/json");

  struct Stats {
    std::uint64_t connects = 0;  ///< fresh connections dialed
    std::uint64_t reuses = 0;    ///< roundtrips served by a parked connection
    std::uint64_t retries = 0;   ///< attempts after the first
    std::uint64_t failures = 0;  ///< calls that exhausted every attempt
  };
  Stats stats() const;

 private:
  /// Pops a parked connection or dials a new one (`*reused` reports which).
  StatusOr<http::HttpClient> Lease(bool* reused);
  void Park(http::HttpClient client);
  void Backoff(int attempt);

  const std::string host_;
  const int port_;
  const std::string endpoint_;
  const ClientPoolOptions options_;

  mutable std::mutex mu_;
  std::vector<http::HttpClient> idle_;
  Stats stats_;
};

}  // namespace cluster
}  // namespace coverage

#endif  // COVERAGE_CLUSTER_CLIENT_POOL_H_

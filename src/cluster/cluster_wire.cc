#include "cluster/cluster_wire.h"

#include <bit>
#include <utility>

#include "pattern/packed_pattern.h"
#include "persist/codec.h"
#include "server/json.h"
#include "server/wire_binary.h"

namespace coverage {
namespace cluster {

using persist::ByteReader;
using persist::ByteWriter;

std::string EncodeShardCountsBinary(std::uint64_t num_rows,
                                    const QueryBatchResult& batch) {
  ByteWriter payload;
  payload.PutU64(num_rows);
  payload.PutU64(batch.coverage_queries);
  payload.PutU64(std::bit_cast<std::uint64_t>(batch.seconds));
  payload.PutU64(batch.results.size());
  for (const QueryOutcome& q : batch.results) payload.PutU64(q.coverage);
  return wire::FrameBinaryMessage(kMsgShardCounts, payload.Take());
}

StatusOr<ShardCountsResponse> DecodeShardCountsBinary(std::string_view bytes) {
  StatusOr<std::string_view> payload =
      wire::UnframeBinaryMessage(bytes, kMsgShardCounts);
  COVERAGE_RETURN_IF_ERROR(payload.status());
  ByteReader in(*payload);

  ShardCountsResponse response;
  COVERAGE_RETURN_IF_ERROR(in.GetU64(&response.num_rows));
  COVERAGE_RETURN_IF_ERROR(in.GetU64(&response.coverage_queries));
  std::uint64_t seconds_bits = 0;
  COVERAGE_RETURN_IF_ERROR(in.GetU64(&seconds_bits));
  response.seconds = std::bit_cast<double>(seconds_bits);
  std::uint64_t count = 0;
  COVERAGE_RETURN_IF_ERROR(in.GetU64(&count));
  COVERAGE_RETURN_IF_ERROR(in.Need(static_cast<std::size_t>(count) * 8));
  response.counts.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t coverage = 0;
    COVERAGE_RETURN_IF_ERROR(in.GetU64(&coverage));
    response.counts.push_back(coverage);
  }
  COVERAGE_RETURN_IF_ERROR(in.ExpectDone());
  return response;
}

std::string EncodeShardCandidatesBinary(std::uint64_t num_rows,
                                        const AuditResult& audit) {
  ByteWriter payload;
  payload.PutU64(num_rows);
  payload.PutString(wire::EncodeAuditResultBinary(audit));
  return wire::FrameBinaryMessage(kMsgShardCandidates, payload.Take());
}

StatusOr<ShardCandidatesResponse> DecodeShardCandidatesBinary(
    std::string_view bytes, const Schema& schema) {
  StatusOr<std::string_view> payload =
      wire::UnframeBinaryMessage(bytes, kMsgShardCandidates);
  COVERAGE_RETURN_IF_ERROR(payload.status());
  ByteReader in(*payload);

  ShardCandidatesResponse response;
  COVERAGE_RETURN_IF_ERROR(in.GetU64(&response.num_rows));
  std::string audit_frame;
  COVERAGE_RETURN_IF_ERROR(in.GetString(&audit_frame));
  COVERAGE_RETURN_IF_ERROR(in.ExpectDone());

  StatusOr<AuditResult> audit =
      wire::DecodeAuditResultBinary(audit_frame, schema);
  COVERAGE_RETURN_IF_ERROR(audit.status());
  response.audit = std::move(*audit);

  // The merge algorithm walks legacy patterns; materialize once here and
  // drop the packed set so every caller sees one representation.
  if (response.audit.packed.has_value()) {
    const PackedMupSet& packed = *response.audit.packed;
    const int d = packed.codec.num_attributes();
    response.audit.mups.clear();
    response.audit.mups.reserve(packed.mups.size());
    for (const PackedPattern& p : packed.mups) {
      std::vector<Value> cells(static_cast<std::size_t>(d), kWildcard);
      for (int attr = 0; attr < d; ++attr) {
        if (packed.codec.is_deterministic(p, attr)) {
          cells[static_cast<std::size_t>(attr)] = packed.codec.cell(p, attr);
        }
      }
      response.audit.mups.emplace_back(std::move(cells));
    }
    response.audit.packed.reset();
  }
  return response;
}

namespace {

const char* AlgorithmWireName(MupAlgorithm algorithm) {
  switch (algorithm) {
    case MupAlgorithm::kNaive:
      return "naive";
    case MupAlgorithm::kPatternBreaker:
      return "breaker";
    case MupAlgorithm::kPatternCombiner:
      return "combiner";
    case MupAlgorithm::kDeepDiver:
      return "deepdiver";
    case MupAlgorithm::kApriori:
      return "apriori";
    case MupAlgorithm::kAuto:
      return "auto";
  }
  return "auto";
}

const char* DominanceWireName(MupSearchOptions::DominanceMode mode) {
  switch (mode) {
    case MupSearchOptions::DominanceMode::kBitmapIndex:
      return "bitmap";
    case MupSearchOptions::DominanceMode::kLinearScan:
      return "scan";
    case MupSearchOptions::DominanceMode::kNoPruning:
      return "none";
  }
  return "bitmap";
}

}  // namespace

std::string AuditRequestJson(const AuditRequest& request) {
  json::JsonValue::Object o;
  o["tau"] = request.tau;
  o["max_level"] = request.max_level;
  o["algorithm"] = AlgorithmWireName(request.algorithm);
  o["dominance_mode"] = DominanceWireName(request.dominance_mode);
  o["enumeration_limit"] = request.enumeration_limit;
  return json::Serialize(json::JsonValue(std::move(o)));
}

std::string CountsRequestJson(const std::vector<Pattern>& patterns) {
  json::JsonValue::Array list;
  list.reserve(patterns.size());
  for (const Pattern& p : patterns) list.push_back(p.ToString());
  json::JsonValue::Object o;
  o["patterns"] = std::move(list);
  return json::Serialize(json::JsonValue(std::move(o)));
}

}  // namespace cluster
}  // namespace coverage

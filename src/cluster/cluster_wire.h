#ifndef COVERAGE_CLUSTER_CLUSTER_WIRE_H_
#define COVERAGE_CLUSTER_CLUSTER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "dataset/schema.h"
#include "pattern/pattern.h"
#include "service/coverage_service.h"

namespace coverage {
namespace cluster {

/// The internal shard-merge protocol: what a coordinator and a shard say to
/// each other on the `/internal/v1/*` routes.
///
/// Requests are JSON (the public wire's request decoders, reused verbatim,
/// keep one strict parser); responses are wire-v2 binary unconditionally —
/// these routes are machine-to-machine hot paths, so there is no Accept
/// negotiation to get wrong. Errors stay JSON like everywhere else.
///
/// Frame layout is the public CVW2 frame (server/wire_binary.h); the
/// cluster owns message types 3+:
///
/// Shard counts payload (msg_type 3) — answer to POST /internal/v1/counts,
/// whose body is the public query-batch shorthand {"patterns": [...]}; the
/// shard answers *exact* counts (tau = 0) because threshold answers are not
/// additive across shards:
///
///   u64 num_rows          rows in this shard's slice
///   u64 coverage_queries  oracle calls the batch cost
///   u64 seconds           IEEE-754 bits of the batch wall-clock
///   u64 count             = |patterns| of the request, in request order
///   per pattern: u64 coverage
///
/// Shard candidates payload (msg_type 4) — answer to
/// POST /internal/v1/candidates, whose body is the public audit request
/// JSON. The shard runs a *local* MUP search over its slice with the global
/// tau and returns:
///
///   u64    num_rows       rows in this shard's slice
///   string audit          a complete nested audit frame (msg_type 1),
///                         exactly what POST /v1/audit would answer in
///                         binary — one MUP codec, one golden surface
///
/// Decoders are strict (truncation, checksum, trailing bytes, out-of-range
/// cells → InvalidArgument) and tests/golden/ pins the exact bytes so
/// protocol drift shows up as a golden diff like the public wire's.

inline constexpr std::uint8_t kMsgShardCounts = 3;
inline constexpr std::uint8_t kMsgShardCandidates = 4;

/// Decoded msg_type 3.
struct ShardCountsResponse {
  std::uint64_t num_rows = 0;
  std::uint64_t coverage_queries = 0;
  double seconds = 0.0;
  std::vector<std::uint64_t> counts;  ///< exact cov(P) per request pattern
};

/// Decoded msg_type 4.
struct ShardCandidatesResponse {
  std::uint64_t num_rows = 0;
  /// The shard-local audit (MUPs materialized; `packed` cleared so callers
  /// hold plain patterns).
  AuditResult audit;
};

std::string EncodeShardCountsBinary(std::uint64_t num_rows,
                                    const QueryBatchResult& batch);
StatusOr<ShardCountsResponse> DecodeShardCountsBinary(std::string_view bytes);

std::string EncodeShardCandidatesBinary(std::uint64_t num_rows,
                                        const AuditResult& audit);
/// `schema` expands the nested audit frame's sparse cells, exactly as in
/// wire::DecodeAuditResultBinary.
StatusOr<ShardCandidatesResponse> DecodeShardCandidatesBinary(
    std::string_view bytes, const Schema& schema);

/// The JSON body of POST /internal/v1/counts for `patterns` — the public
/// query-batch shorthand, built here so coordinator and tests agree on the
/// exact bytes.
std::string CountsRequestJson(const std::vector<Pattern>& patterns);

/// The JSON body of POST /internal/v1/candidates for `request` — the public
/// audit-request vocabulary (wire::AuditRequestFromJson round-trips it).
/// materialize_patterns is server-local and deliberately not on the wire.
std::string AuditRequestJson(const AuditRequest& request);

}  // namespace cluster
}  // namespace coverage

#endif  // COVERAGE_CLUSTER_CLUSTER_WIRE_H_

#include "cluster/coordinator.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/stopwatch.h"
#include "obs/log.h"
#include "obs/prometheus.h"
#include "server/json.h"
#include "server/wire.h"
#include "server/wire_binary.h"

namespace coverage {
namespace cluster {

using http::Request;
using http::Response;
using json::JsonValue;

namespace {

// Mirrors coverage_server.cc's status mapping so a forwarded cluster and a
// single node answer errors identically.
int StatusToHttp(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kOutOfRange: return 400;
    case StatusCode::kResourceExhausted: return 429;
    case StatusCode::kInternal: return 500;
  }
  return 500;
}

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kInternal: return "internal";
  }
  return "internal";
}

Response ErrorResponse(const Status& status) {
  JsonValue::Object error;
  error["code"] = StatusCodeName(status.code());
  error["message"] = status.message();
  JsonValue::Object body;
  body["error"] = std::move(error);
  return Response::Json(StatusToHttp(status),
                        json::Serialize(JsonValue(std::move(body))));
}

Response OkJson(JsonValue value) {
  return Response::Json(200, json::Serialize(value));
}

Response OkBinary(std::string bytes) {
  Response r;
  r.status = 200;
  r.headers.push_back({"Content-Type", wire::kBinaryContentType});
  r.body = std::move(bytes);
  return r;
}

bool AcceptsBinary(const Request& request) {
  const std::string* accept = request.FindHeader("Accept");
  return accept != nullptr &&
         accept->find(wire::kBinaryContentType) != std::string::npos;
}

StatusOr<JsonValue> ParseBody(const std::string& body) {
  if (body.empty()) return JsonValue(JsonValue::Object{});
  auto parsed = json::Parse(body);
  if (!parsed.ok()) return parsed.status();
  if (!parsed->is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  return parsed;
}

/// One thread per shard, the caller is worker 0 (same shape as the
/// distributed audit's scatter).
template <typename Fn>
void ForEachShard(std::size_t num_shards, Fn&& fn) {
  if (num_shards == 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(num_shards - 1);
  for (std::size_t s = 1; s < num_shards; ++s) {
    workers.emplace_back([&fn, s] { fn(s); });
  }
  fn(0);
  for (std::thread& w : workers) w.join();
}

/// The canonical schema bytes — key-sorted JSON — for the boot-time
/// "all shards agree" check.
std::string SchemaFingerprint(const Schema& schema) {
  return json::Serialize(wire::ToJson(schema));
}

}  // namespace

StatusOr<std::pair<std::string, int>> ParseEndpoint(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) {
    return Status::InvalidArgument("shard endpoint must be host:port (got '" +
                                   text + "')");
  }
  int port = 0;
  for (std::size_t i = colon + 1; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') {
      return Status::InvalidArgument("bad port in shard endpoint '" + text +
                                     "'");
    }
    port = port * 10 + (text[i] - '0');
    if (port > 65535) {
      return Status::InvalidArgument("bad port in shard endpoint '" + text +
                                     "'");
    }
  }
  if (port < 1) {
    return Status::InvalidArgument("bad port in shard endpoint '" + text +
                                   "'");
  }
  std::string host = text.substr(0, colon);
  // HttpClient dials numeric IPv4 only; accept the one hostname every
  // smoke script types. The dialed form is also the shard's canonical
  // identity everywhere it surfaces (ring, metrics labels, 503 bodies).
  if (host == "localhost") host = "127.0.0.1";
  return std::make_pair(std::move(host), port);
}

Status CoordinatorOptions::Validate() const {
  COVERAGE_RETURN_IF_ERROR(http.Validate());
  COVERAGE_RETURN_IF_ERROR(retry.Validate());
  if (shards.empty()) {
    return Status::InvalidArgument("coordinator needs at least one shard");
  }
  for (const std::string& shard : shards) {
    COVERAGE_RETURN_IF_ERROR(ParseEndpoint(shard).status());
  }
  if (ring_vnodes < 1) {
    return Status::InvalidArgument("ring_vnodes must be >= 1");
  }
  if (max_batch_patterns < 1) {
    return Status::InvalidArgument("max_batch_patterns must be >= 1");
  }
  if (boot_attempts < 1) {
    return Status::InvalidArgument("boot_attempts must be >= 1");
  }
  return Status::OK();
}

ClusterCoordinator::ClusterCoordinator(CoordinatorOptions options)
    : options_(std::move(options)),
      http_(options_.http,
            [this](const Request& request) { return Handle(request); }),
      ring_(options_.ring_vnodes) {
  if (options_.metrics_registry != nullptr) {
    metrics_ = options_.metrics_registry;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }

  shards_.reserve(options_.shards.size());
  for (const std::string& raw : options_.shards) {
    auto parsed = ParseEndpoint(raw);
    if (!parsed.ok()) continue;  // Validate() rejects these before Start()
    // One canonical identity per shard ("127.0.0.1:9000" even when the
    // flag said "localhost:9000") so the 503 body, the metric label and
    // the ring member always agree.
    const std::string endpoint =
        parsed->first + ":" + std::to_string(parsed->second);
    if (shard_index_.contains(endpoint)) continue;  // dedup

    ClientPoolOptions pool_options;
    pool_options.client = options_.rpc;
    pool_options.retry = options_.retry;
    pool_options.rpc_seconds = metrics_->GetHistogram(
        "coverage_cluster_rpc_seconds",
        "Coordinator-observed shard roundtrip latency (successful calls)",
        {{"shard", endpoint}});
    pool_options.errors = metrics_->GetCounter(
        "coverage_cluster_shard_errors_total",
        "Shard calls that exhausted every retry attempt",
        {{"shard", endpoint}});

    ShardEntry entry;
    entry.endpoint = endpoint;
    entry.pool = std::make_unique<ClientPool>(parsed->first, parsed->second,
                                              std::move(pool_options));
    entry.backend =
        std::make_unique<HttpShardBackend>(entry.pool.get(), &schema_);
    shard_index_[endpoint] = shards_.size();
    shards_.push_back(std::move(entry));
    ring_.AddMember(endpoint);
  }
  backends_.reserve(shards_.size());
  for (ShardEntry& entry : shards_) backends_.push_back(entry.backend.get());

  metrics_
      ->GetGauge("coverage_cluster_ring_members",
                 "Shard members on the consistent-hash ring")
      ->Set(static_cast<std::int64_t>(ring_.num_members()));
  metrics_
      ->GetGauge("coverage_cluster_ring_points",
                 "Virtual nodes on the consistent-hash ring")
      ->Set(static_cast<std::int64_t>(ring_.num_points()));
  audits_total_ = metrics_->GetCounter(
      "coverage_cluster_audits_total",
      "Distributed audits completed successfully");

  static const char* const kRouteKeys[] = {
      "GET /healthz",
      "GET /metrics",
      "GET /v1/stats",
      "GET /v1/schema",
      "POST /v1/audit",
      "POST /v1/query",
      "GET /v1/sessions",
      "POST /v1/sessions",
      "DELETE /v1/sessions/{id}",
      "POST /v1/sessions/{id}/append",
      "POST /v1/sessions/{id}/retract",
      "POST /v1/sessions/{id}/audit",
      "POST /v1/sessions/{id}/query",
  };
  const char* const latency_help =
      "HTTP request latency by route (transport excluded: measured around "
      "the route handler)";
  const char* const errors_help = "HTTP responses with status >= 400";
  for (const char* key : kRouteKeys) {
    routes_[key] = RouteSeries{
        metrics_->GetHistogram("coverage_http_request_seconds", latency_help,
                               {{"route", key}}),
        metrics_->GetCounter("coverage_http_request_errors_total",
                             errors_help, {{"route", key}})};
  }
  unrouted_ = RouteSeries{
      metrics_->GetHistogram("coverage_http_request_seconds", latency_help,
                             {{"route", "unrouted"}}),
      metrics_->GetCounter("coverage_http_request_errors_total", errors_help,
                           {{"route", "unrouted"}})};
}

ClusterCoordinator::~ClusterCoordinator() { Stop(); }

Status ClusterCoordinator::ConnectShards() {
  COVERAGE_RETURN_IF_ERROR(options_.Validate());
  std::string fingerprint;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardEntry& shard = shards_[s];
    StatusOr<http::Response> response =
        Status::Internal("shard never contacted");
    for (int attempt = 0; attempt < options_.boot_attempts; ++attempt) {
      if (attempt > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.boot_backoff_ms));
      }
      response = shard.pool->Get("/v1/schema");
      if (response.ok() && response->status == 200) break;
    }
    if (!response.ok()) {
      return Status::Internal("shard " + shard.endpoint +
                              " unreachable during boot: " +
                              response.status().message());
    }
    if (response->status != 200) {
      return Status::Internal("shard " + shard.endpoint +
                              " answered /v1/schema with " +
                              std::to_string(response->status));
    }
    auto parsed = json::Parse(response->body);
    if (!parsed.ok()) {
      return Status::Internal("shard " + shard.endpoint +
                              ": bad schema body: " +
                              parsed.status().message());
    }
    auto schema = wire::SchemaFromJson(*parsed);
    if (!schema.ok()) {
      return Status::Internal("shard " + shard.endpoint +
                              ": bad schema body: " +
                              schema.status().message());
    }
    const std::string this_fingerprint = SchemaFingerprint(*schema);
    if (s == 0) {
      schema_ = std::move(*schema);
      fingerprint = this_fingerprint;
    } else if (this_fingerprint != fingerprint) {
      return Status::InvalidArgument(
          "shard " + shard.endpoint + " serves a different schema than " +
          shards_[0].endpoint + " — all shards must slice one dataset");
    }
  }
  connected_ = true;
  obs::LogInfo("cluster_connected")
      .Int("shards", static_cast<std::int64_t>(shards_.size()))
      .Int("ring_points", static_cast<std::int64_t>(ring_.num_points()));
  return Status::OK();
}

Status ClusterCoordinator::Start() {
  if (!connected_) COVERAGE_RETURN_IF_ERROR(ConnectShards());
  return http_.Start();
}

void ClusterCoordinator::Stop() { http_.Stop(); }
void ClusterCoordinator::Wait() { http_.Wait(); }
void ClusterCoordinator::StopOnSignal() { http_.StopOnSignal(); }

Response ClusterCoordinator::Handle(const Request& request) {
  Stopwatch timer;
  std::string route_key;
  Response response = Dispatch(request, &route_key);
  const double seconds = timer.ElapsedSeconds();
  auto it = routes_.find(route_key);
  const RouteSeries& series = it != routes_.end() ? it->second : unrouted_;
  series.latency->Observe(seconds);
  if (response.status >= 400) series.errors->Increment();
  return response;
}

Response ClusterCoordinator::Dispatch(const Request& request,
                                      std::string* route_key) {
  std::string path = request.target;
  const std::size_t question = path.find('?');
  if (question != std::string::npos) path.resize(question);

  const auto route = [&](const char* key) {
    *route_key = key;
    return true;
  };

  if (request.method == "GET") {
    if (path == "/healthz" && route("GET /healthz")) return HandleHealth();
    if (path == "/metrics" && route("GET /metrics")) return HandleMetrics();
    if (path == "/v1/stats" && route("GET /v1/stats")) return HandleStats();
    if (path == "/v1/schema" && route("GET /v1/schema")) {
      return OkJson(wire::ToJson(schema_));
    }
    if (path == "/v1/sessions" && route("GET /v1/sessions")) {
      return HandleSessionsList();
    }
  }
  if (request.method == "POST") {
    if (path == "/v1/audit" && route("POST /v1/audit")) {
      return HandleAudit(request.body, AcceptsBinary(request));
    }
    if (path == "/v1/query" && route("POST /v1/query")) {
      return HandleQuery(request.body, AcceptsBinary(request));
    }
    if (path == "/v1/sessions" && route("POST /v1/sessions")) {
      return HandleSessionCreate(request.body);
    }
  }

  // /v1/sessions/{id} and /v1/sessions/{id}/{verb}: route by ring owner.
  const std::string prefix = "/v1/sessions/";
  if (path.compare(0, prefix.size(), prefix) == 0) {
    const std::string rest = path.substr(prefix.size());
    const std::size_t slash = rest.find('/');
    const std::string id = rest.substr(0, slash);
    if (!id.empty()) {
      if (slash == std::string::npos) {
        if (request.method == "DELETE" && route("DELETE /v1/sessions/{id}")) {
          return ForwardToShard(OwnerShard(id), request,
                                /*idempotent=*/false);
        }
      } else {
        const std::string verb = rest.substr(slash + 1);
        if (request.method == "POST" &&
            (verb == "append" || verb == "retract" || verb == "audit" ||
             verb == "query")) {
          *route_key = "POST /v1/sessions/{id}/" + verb;
          // Mutations must never be silently re-sent once they may have
          // reached the shard; reads retry freely.
          const bool idempotent = verb == "audit" || verb == "query";
          return ForwardToShard(OwnerShard(id), request, idempotent);
        }
      }
    }
  }

  static const char* const kPaths[] = {"/healthz", "/metrics", "/v1/stats",
                                       "/v1/schema", "/v1/audit", "/v1/query",
                                       "/v1/sessions"};
  for (const char* known : kPaths) {
    if (path == known) {
      Response r = ErrorResponse(Status::InvalidArgument(
          "method " + request.method + " is not supported on " + path));
      r.status = 405;
      return r;
    }
  }
  if (path == "/v1/enhance") {
    return ErrorResponse(Status::InvalidArgument(
        "/v1/enhance is not distributed; send it to a shard directly"));
  }
  return ErrorResponse(Status::NotFound("no route for " + request.method +
                                        " " + path));
}

Response ClusterCoordinator::ShardUnavailable(const std::string& shard,
                                              const Status& status) const {
  JsonValue::Object error;
  error["code"] = "shard_unavailable";
  error["message"] = status.message();
  error["shard"] = shard;
  JsonValue::Object body;
  body["error"] = std::move(error);
  return Response::Json(503, json::Serialize(JsonValue(std::move(body))));
}

ClusterCoordinator::ShardEntry& ClusterCoordinator::OwnerShard(
    const std::string& session_id) {
  return shards_[shard_index_.at(ring_.OwnerOf(session_id))];
}

Response ClusterCoordinator::ForwardToShard(ShardEntry& shard,
                                            const Request& request,
                                            bool idempotent) {
  Request forward;
  forward.method = request.method;
  forward.target = request.target;
  forward.version = "HTTP/1.1";
  for (const char* header : {"Accept", "Content-Type", "X-Request-Id"}) {
    const std::string* value = request.FindHeader(header);
    if (value != nullptr) forward.headers.push_back({header, *value});
  }
  forward.body = request.body;
  StatusOr<http::Response> response =
      shard.pool->Roundtrip(forward, idempotent);
  if (!response.ok()) {
    return ShardUnavailable(shard.endpoint, response.status());
  }
  Response out;
  out.status = response->status;
  const std::string* content_type = response->FindHeader("Content-Type");
  if (content_type != nullptr) {
    out.headers.push_back({"Content-Type", *content_type});
  }
  out.body = std::move(response->body);
  return out;
}

Response ClusterCoordinator::HandleHealth() const {
  JsonValue::Object o;
  o["status"] = "serving";
  o["role"] = "coordinator";
  o["shards"] = static_cast<std::uint64_t>(shards_.size());
  o["ring_points"] = static_cast<std::uint64_t>(ring_.num_points());
  return OkJson(JsonValue(std::move(o)));
}

Response ClusterCoordinator::HandleMetrics() const {
  Response response = Response::Text(200, obs::RenderPrometheus(*metrics_));
  for (auto& [name, value] : response.headers) {
    if (name == "Content-Type") value = obs::kPrometheusContentType;
  }
  return response;
}

Response ClusterCoordinator::HandleStats() const {
  JsonValue::Object routes;
  for (const auto& [key, series] : routes_) {
    if (series.latency->count() == 0) continue;
    JsonValue::Object r;
    r["count"] = series.latency->count();
    r["errors"] = series.errors->value();
    r["p50_seconds"] = series.latency->QuantileSeconds(0.50);
    r["p99_seconds"] = series.latency->QuantileSeconds(0.99);
    r["total_seconds"] = series.latency->sum_seconds();
    routes[key] = std::move(r);
  }

  JsonValue::Array shard_list;
  for (const ShardEntry& shard : shards_) {
    const ClientPool::Stats stats = shard.pool->stats();
    JsonValue::Object s;
    s["endpoint"] = shard.endpoint;
    s["connects"] = stats.connects;
    s["reuses"] = stats.reuses;
    s["retries"] = stats.retries;
    s["failures"] = stats.failures;
    shard_list.push_back(std::move(s));
  }
  JsonValue::Object ring;
  ring["members"] = static_cast<std::uint64_t>(ring_.num_members());
  ring["vnodes_per_member"] =
      static_cast<std::uint64_t>(ring_.vnodes_per_member());
  ring["points"] = static_cast<std::uint64_t>(ring_.num_points());
  JsonValue::Object last_audit;
  last_audit["patterns_counted"] =
      last_audit_rpc_patterns_.load(std::memory_order_relaxed);
  last_audit["pruned_local"] =
      last_audit_pruned_local_.load(std::memory_order_relaxed);
  JsonValue::Object cluster;
  cluster["role"] = "coordinator";
  cluster["shards"] = std::move(shard_list);
  cluster["ring"] = std::move(ring);
  cluster["audits"] = audits_total_->value();
  cluster["last_audit"] = std::move(last_audit);

  const http::ServerStats hs = http_.stats();
  JsonValue::Object server;
  server["connections_accepted"] = hs.connections_accepted;
  server["requests_handled"] = hs.requests_handled;
  server["protocol_errors"] = hs.protocol_errors;
  server["connections_shed"] = hs.connections_shed;

  JsonValue::Object o;
  o["cluster"] = std::move(cluster);
  o["routes"] = std::move(routes);
  o["server"] = std::move(server);
  return OkJson(JsonValue(std::move(o)));
}

Response ClusterCoordinator::HandleAudit(const std::string& body,
                                         bool binary) {
  auto parsed = ParseBody(body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  auto request = wire::AuditRequestFromJson(*parsed);
  if (!request.ok()) return ErrorResponse(request.status());

  DistributedAuditOptions options;
  options.tau = request->tau;
  options.max_level = request->max_level;
  options.dominance_mode = request->dominance_mode;
  options.shard_algorithm = request->algorithm;
  options.enumeration_limit = request->enumeration_limit;
  options.max_batch_patterns = options_.max_batch_patterns;

  std::string failed_shard;
  auto result =
      RunDistributedAudit(schema_, backends_, options, &failed_shard);
  if (!result.ok()) {
    if (!failed_shard.empty()) {
      return ShardUnavailable(failed_shard, result.status());
    }
    return ErrorResponse(result.status());
  }
  audits_total_->Increment();
  last_audit_rpc_patterns_.store(result->stats.patterns_counted,
                                 std::memory_order_relaxed);
  last_audit_pruned_local_.store(result->stats.nodes_pruned_local,
                                 std::memory_order_relaxed);
  const AuditResult audit = result->ToAuditResult();
  if (binary) return OkBinary(wire::EncodeAuditResultBinary(audit));
  return OkJson(wire::ToJson(audit, schema_));
}

Response ClusterCoordinator::HandleQuery(const std::string& body,
                                         bool binary) {
  Stopwatch timer;
  auto parsed = ParseBody(body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  auto request = wire::QueryBatchRequestFromJson(*parsed, schema_);
  if (!request.ok()) return ErrorResponse(request.status());

  QueryBatchResult merged;
  merged.results.resize(request->queries.size());
  // Shards only ever answer exact counts (threshold probes are not
  // additive); the threshold semantics are applied after the sum.
  for (std::size_t begin = 0; begin < request->queries.size();
       begin += options_.max_batch_patterns) {
    const std::size_t end = std::min(
        begin + options_.max_batch_patterns, request->queries.size());
    std::vector<Pattern> batch;
    batch.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      batch.push_back(request->queries[i].pattern);
    }
    std::vector<StatusOr<ShardCountsResponse>> slots(
        shards_.size(), StatusOr<ShardCountsResponse>(
                            Status::Internal("shard response missing")));
    ForEachShard(shards_.size(), [&](std::size_t s) {
      slots[s] = backends_[s]->Counts(batch);
    });
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (!slots[s].ok()) {
        return ShardUnavailable(shards_[s].endpoint, slots[s].status());
      }
      merged.coverage_queries += slots[s]->coverage_queries;
    }
    for (std::size_t i = begin; i < end; ++i) {
      std::uint64_t total = 0;
      for (const auto& slot : slots) total += slot->counts[i - begin];
      const std::uint64_t tau = request->queries[i].tau;
      QueryOutcome& out = merged.results[i];
      // Same contract as QueryOutcome: exact count only for tau == 0.
      out.coverage = tau == 0 ? total : 0;
      out.covered = tau > 0 ? total >= tau : total >= 1;
    }
  }
  merged.seconds = timer.ElapsedSeconds();
  if (binary) return OkBinary(wire::EncodeQueryBatchResultBinary(merged));
  return OkJson(wire::ToJson(merged));
}

Response ClusterCoordinator::HandleSessionsList() {
  JsonValue::Array merged;
  for (ShardEntry& shard : shards_) {
    StatusOr<http::Response> response = shard.pool->Get("/v1/sessions");
    if (!response.ok()) {
      return ShardUnavailable(shard.endpoint, response.status());
    }
    if (response->status != 200) {
      return ShardUnavailable(
          shard.endpoint,
          Status::Internal("shard answered /v1/sessions with " +
                           std::to_string(response->status)));
    }
    auto parsed = json::Parse(response->body);
    if (!parsed.ok() || !parsed->is_object()) {
      return ShardUnavailable(shard.endpoint,
                              Status::Internal("bad session list body"));
    }
    const JsonValue* sessions = parsed->Find("sessions");
    if (sessions == nullptr || !sessions->is_array()) continue;
    for (const JsonValue& entry : sessions->AsArray()) {
      JsonValue annotated = entry;
      if (annotated.is_object()) {
        annotated.AsObject()["shard"] = shard.endpoint;
      }
      merged.push_back(std::move(annotated));
    }
  }
  JsonValue::Object o;
  o["sessions"] = std::move(merged);
  return OkJson(JsonValue(std::move(o)));
}

Response ClusterCoordinator::HandleSessionCreate(const std::string& body) {
  auto parsed = ParseBody(body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  if (parsed->Find("session_id") != nullptr) {
    return ErrorResponse(Status::InvalidArgument(
        "session_id is assigned by the coordinator"));
  }

  // Ids come from the coordinator's counter; a collision (shard kept a
  // session from a previous coordinator life) just burns the id and tries
  // the next one.
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::string id = "s" + std::to_string(next_session_id_.fetch_add(
                                     1, std::memory_order_relaxed));
    ShardEntry& owner = OwnerShard(id);
    JsonValue create = *parsed;
    create.AsObject()["session_id"] = id;
    StatusOr<http::Response> response = owner.pool->Roundtrip(
        [&] {
          Request r;
          r.method = "POST";
          r.target = "/internal/v1/sessions";
          r.version = "HTTP/1.1";
          r.headers.push_back({"Content-Type", "application/json"});
          r.body = json::Serialize(create);
          return r;
        }(),
        /*idempotent=*/false);
    if (!response.ok()) {
      return ShardUnavailable(owner.endpoint, response.status());
    }
    if (response->status == 400 &&
        response->body.find("already exists") != std::string::npos) {
      continue;
    }
    Response out;
    out.status = response->status;
    if (response->status == 201) {
      auto created = json::Parse(response->body);
      if (created.ok() && created->is_object()) {
        created->AsObject()["shard"] = owner.endpoint;
        out.headers.push_back({"Content-Type", "application/json"});
        out.body = json::Serialize(*created);
        return out;
      }
    }
    const std::string* content_type = response->FindHeader("Content-Type");
    if (content_type != nullptr) {
      out.headers.push_back({"Content-Type", *content_type});
    }
    out.body = std::move(response->body);
    return out;
  }
  return ErrorResponse(Status::Internal(
      "could not allocate a session id (16 consecutive collisions)"));
}

}  // namespace cluster
}  // namespace coverage

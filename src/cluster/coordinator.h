#ifndef COVERAGE_CLUSTER_COORDINATOR_H_
#define COVERAGE_CLUSTER_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/client_pool.h"
#include "cluster/distributed_audit.h"
#include "cluster/hash_ring.h"
#include "cluster/shard_backend.h"
#include "common/status.h"
#include "dataset/schema.h"
#include "obs/metrics.h"
#include "server/http.h"
#include "server/http_server.h"

namespace coverage {
namespace cluster {

/// Configuration of the scatter-gather front-end.
struct CoordinatorOptions {
  http::ServerOptions http;

  /// Shard endpoints, "host:port" each — coverage_server processes started
  /// with --role shard over slices of one dataset. Fixed for the process
  /// lifetime (static membership; the ring exists to keep session placement
  /// stable, not to rebalance live).
  std::vector<std::string> shards;

  /// Per-RPC transport knobs and the retry envelope around them.
  http::HttpClient::Options rpc;
  RetryPolicy retry;

  /// Virtual nodes per shard on the session-routing ring.
  int ring_vnodes = 128;

  /// Patterns per counts scatter (forwarded to the distributed audit).
  std::size_t max_batch_patterns = 4096;

  /// Boot handshake: how long to wait for every shard to come up and agree
  /// on a schema. Attempts are per shard, `boot_backoff_ms` apart (each
  /// attempt already carries the RetryPolicy envelope).
  int boot_attempts = 40;
  int boot_backoff_ms = 250;

  /// Shared registry; null = the coordinator owns a private one.
  obs::MetricsRegistry* metrics_registry = nullptr;

  Status Validate() const;
};

/// The cluster front-end: one HTTP server speaking the same public wire as
/// a single coverage_server, fanned out over N shard nodes.
///
///   method  route                       behaviour
///   ------  --------------------------  ---------------------------------
///   GET     /healthz                    liveness + shard/ring summary
///   GET     /metrics                    Prometheus (coverage_cluster_*)
///   GET     /v1/stats                   routes + `cluster` section
///   GET     /v1/schema                  the verified common schema
///   POST    /v1/audit                   RunDistributedAudit scatter-gather
///   POST    /v1/query                   exact counts summed across shards
///   GET     /v1/sessions                merged shard listings (+"shard")
///   POST    /v1/sessions                allocate id, create on ring owner
///   *       /v1/sessions/{id}[/verb]    forwarded to the ring owner
///
/// Audit and query answers are wire-compatible with a single node's (JSON
/// and `Accept: application/x-coverage-bin` binary both negotiate exactly
/// like coverage_server), so clients cannot tell one node from a cluster —
/// the bit-identity property tests rely on that.
///
/// Degradation: any shard failure answers
///   503 {"error": {"code": "shard_unavailable", "message": ..., "shard": ...}}
/// naming the shard, and the per-shard `coverage_cluster_shard_errors_total`
/// counter increments (via the pool). The coordinator holds no data — a
/// restarted shard rejoins by simply answering again.
///
/// Sessions: the coordinator allocates "s<n>" ids and routes every
/// /v1/sessions/{id} request to HashRing::OwnerOf(id); it keeps only the
/// ring (routing state), never session data. Mutating verbs forward with
/// idempotent=false so a request that may have reached a shard is never
/// silently re-sent.
class ClusterCoordinator {
 public:
  explicit ClusterCoordinator(CoordinatorOptions options);
  ~ClusterCoordinator();

  ClusterCoordinator(const ClusterCoordinator&) = delete;
  ClusterCoordinator& operator=(const ClusterCoordinator&) = delete;

  /// Boot handshake (ConnectShards) then serve. InvalidArgument on bad
  /// options or schema disagreement, Internal when a shard never answered.
  Status Start();
  void Stop();
  void Wait();
  void StopOnSignal();

  int port() const { return http_.port(); }
  bool running() const { return http_.running(); }

  /// Fetches every shard's /v1/schema (with boot retry) and verifies they
  /// are identical. Start() calls this; public so transport-free tests can
  /// boot against live shards and then drive Handle() directly.
  Status ConnectShards();

  /// The full request → response mapping (transport-free; thread-safe).
  http::Response Handle(const http::Request& request);

  /// Valid after ConnectShards().
  const Schema& schema() const { return schema_; }
  const HashRing& ring() const { return ring_; }
  obs::MetricsRegistry& metrics_registry() { return *metrics_; }

 private:
  struct ShardEntry {
    std::string endpoint;
    std::unique_ptr<ClientPool> pool;
    std::unique_ptr<HttpShardBackend> backend;
  };

  http::Response Dispatch(const http::Request& request,
                          std::string* route_key);
  http::Response HandleHealth() const;
  http::Response HandleMetrics() const;
  http::Response HandleStats() const;
  http::Response HandleAudit(const std::string& body, bool binary);
  http::Response HandleQuery(const std::string& body, bool binary);
  http::Response HandleSessionsList();
  http::Response HandleSessionCreate(const std::string& body);
  /// Forwards `request` verbatim to `shard`'s pool and passes the answer
  /// through (status, body, Content-Type).
  http::Response ForwardToShard(ShardEntry& shard,
                                const http::Request& request,
                                bool idempotent);
  /// The structured 503 naming the failed shard.
  http::Response ShardUnavailable(const std::string& shard,
                                  const Status& status) const;

  ShardEntry& OwnerShard(const std::string& session_id);

  CoordinatorOptions options_;
  http::HttpServer http_;

  std::vector<ShardEntry> shards_;
  std::map<std::string, std::size_t> shard_index_;  ///< endpoint → slot
  std::vector<ShardBackend*> backends_;             ///< parallel to shards_
  HashRing ring_;
  Schema schema_;  ///< set by ConnectShards
  bool connected_ = false;

  std::atomic<std::uint64_t> next_session_id_{1};
  obs::Counter* audits_total_ = nullptr;
  std::atomic<std::uint64_t> last_audit_rpc_patterns_{0};
  std::atomic<std::uint64_t> last_audit_pruned_local_{0};

  /// Per-route instruments, same families as CoverageServer's so one
  /// Grafana board covers both roles.
  struct RouteSeries {
    obs::Histogram* latency = nullptr;
    obs::Counter* errors = nullptr;
  };
  std::map<std::string, RouteSeries> routes_;
  RouteSeries unrouted_;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

/// Splits "host:port"; InvalidArgument on anything else.
StatusOr<std::pair<std::string, int>> ParseEndpoint(const std::string& text);

}  // namespace cluster
}  // namespace coverage

#endif  // COVERAGE_CLUSTER_COORDINATOR_H_

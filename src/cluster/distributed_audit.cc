#include "cluster/distributed_audit.h"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/stopwatch.h"
#include "mups/mup_index.h"

namespace coverage {
namespace cluster {

namespace {

using DominanceMode = MupSearchOptions::DominanceMode;

/// Runs `fn(shard_index)` once per shard, concurrently. Shard RPCs are
/// dominated by network/search latency, so one thread per shard (the caller
/// is worker 0) is the right shape at realistic shard counts.
template <typename Fn>
void ForEachShard(std::size_t num_shards, Fn&& fn) {
  if (num_shards == 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(num_shards - 1);
  for (std::size_t s = 1; s < num_shards; ++s) {
    workers.emplace_back([&fn, s] { fn(s); });
  }
  fn(0);
  for (std::thread& w : workers) w.join();
}

/// First failing slot in shard order, for a deterministic error/503.
template <typename T>
Status FirstError(const std::vector<ShardBackend*>& shards,
                  const std::vector<StatusOr<T>>& slots,
                  std::string* failed_shard) {
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (!slots[s].ok()) {
      if (failed_shard != nullptr) *failed_shard = shards[s]->name();
      return slots[s].status();
    }
  }
  return Status::OK();
}

/// Tier 1: "is `p` under shard i's local-MUP antichain?" — i.e. still
/// possibly uncovered there. The three modes are the repo's ablation knob:
/// identical answers, different cost (kNoPruning answers "yes" so every
/// node pays the exact tier).
class DownClosureCheck {
 public:
  DownClosureCheck(const Schema& schema, DominanceMode mode,
                   const std::vector<ShardCandidatesResponse>& candidates)
      : mode_(mode), candidates_(candidates) {
    if (mode_ == DominanceMode::kBitmapIndex) {
      indices_.reserve(candidates.size());
      for (const ShardCandidatesResponse& c : candidates) {
        auto index = std::make_unique<MupDominanceIndex>(schema);
        index->AddBatch(c.audit.mups);
        indices_.push_back(std::move(index));
      }
    }
  }

  bool MaybeUncoveredEverywhere(const Pattern& p) const {
    switch (mode_) {
      case DominanceMode::kBitmapIndex:
        for (const auto& index : indices_) {
          if (!index->Contains(p) && !index->IsDominated(p)) return false;
        }
        return true;
      case DominanceMode::kLinearScan:
        for (const ShardCandidatesResponse& c : candidates_) {
          bool under = false;
          for (const Pattern& m : c.audit.mups) {
            if (m.DominatesOrEquals(p)) {
              under = true;
              break;
            }
          }
          if (!under) return false;
        }
        return true;
      case DominanceMode::kNoPruning:
        return true;
    }
    return true;
  }

 private:
  DominanceMode mode_;
  const std::vector<ShardCandidatesResponse>& candidates_;
  std::vector<std::unique_ptr<MupDominanceIndex>> indices_;
};

enum class NodeState : std::uint8_t { kSkipped, kPending, kCovered, kMup };

}  // namespace

Status DistributedAuditOptions::Validate() const {
  if (tau < 1) return Status::InvalidArgument("tau must be >= 1");
  if (max_batch_patterns < 1) {
    return Status::InvalidArgument("max_batch_patterns must be >= 1");
  }
  return Status::OK();
}

AuditResult DistributedAuditResult::ToAuditResult() const {
  AuditResult result;
  result.mups = mups;
  result.algorithm = "DISTRIBUTED-BREAKER";
  result.max_level = max_level;
  result.tau = tau;
  result.num_rows = num_rows;
  result.planner_rationale =
      "scatter-gather over " + std::to_string(shards.size()) + " shard(s)";
  result.stats.nodes_generated = stats.nodes_generated;
  result.stats.nodes_pruned = stats.nodes_pruned_local;
  result.stats.seconds = stats.seconds;
  result.stats.num_mups = mups.size();
  for (const DistributedShardStats& s : shards) {
    result.stats.coverage_queries += s.coverage_queries;
  }
  return result;
}

StatusOr<DistributedAuditResult> RunDistributedAudit(
    const Schema& schema, const std::vector<ShardBackend*>& shards,
    const DistributedAuditOptions& options, std::string* failed_shard) {
  COVERAGE_RETURN_IF_ERROR(options.Validate());
  if (shards.empty()) {
    return Status::InvalidArgument("distributed audit needs >= 1 shard");
  }
  Stopwatch timer;
  const int d = schema.num_attributes();
  const std::size_t num_shards = shards.size();

  // --- Phase 1: one candidate scatter — every shard's local MUP search with
  // the global tau, fetched up front and never refreshed (the data is
  // immutable for the duration of the audit).
  AuditRequest shard_request;
  shard_request.tau = options.tau;
  shard_request.max_level = options.max_level;
  shard_request.algorithm = options.shard_algorithm;
  shard_request.dominance_mode = options.dominance_mode;
  shard_request.enumeration_limit = options.enumeration_limit;
  COVERAGE_RETURN_IF_ERROR(shard_request.Validate());

  std::vector<StatusOr<ShardCandidatesResponse>> slots(
      num_shards, StatusOr<ShardCandidatesResponse>(
                      Status::Internal("shard response missing")));
  ForEachShard(num_shards, [&](std::size_t s) {
    slots[s] = shards[s]->Candidates(shard_request);
  });
  COVERAGE_RETURN_IF_ERROR(FirstError(shards, slots, failed_shard));

  DistributedAuditResult result;
  result.tau = options.tau;
  result.shards.resize(num_shards);
  std::vector<ShardCandidatesResponse> candidates;
  candidates.reserve(num_shards);
  int cap = options.max_level;
  for (std::size_t s = 0; s < num_shards; ++s) {
    candidates.push_back(std::move(*slots[s]));
    const ShardCandidatesResponse& c = candidates.back();
    DistributedShardStats& ss = result.shards[s];
    ss.name = shards[s]->name();
    ss.num_rows = c.num_rows;
    ss.local_mups = c.audit.mups.size();
    ss.candidate_seconds = c.audit.stats.seconds;
    ss.coverage_queries = c.audit.stats.coverage_queries;
    result.num_rows += c.num_rows;
    // A shard that clamped its search bounds how deep tier 1 stays sound.
    if (c.audit.max_level >= 0) {
      cap = cap < 0 ? c.audit.max_level : std::min(cap, c.audit.max_level);
    }
  }
  result.max_level = cap;
  const int bfs_max = cap < 0 ? d : std::min(cap, d);

  const DownClosureCheck closure(schema, options.dominance_mode, candidates);

  // --- Phase 2: the PATTERN-BREAKER BFS, verbatim except that the coverage
  // probe is tier-1-or-scatter. See pattern_breaker.cc for the structure
  // this mirrors; the merge below is the same queue-order loop.
  std::vector<Pattern> queue;
  queue.push_back(Pattern::Root(d));
  std::vector<Pattern> mups;
  std::unordered_set<Pattern, PatternHash> mup_set;
  std::unordered_set<Pattern, PatternHash> prev_covered;
  DistributedAuditStats& stats = result.stats;
  stats.nodes_generated = 1;

  for (int level = 0; level <= bfs_max && !queue.empty(); ++level) {
    stats.levels = static_cast<std::uint64_t>(level) + 1;
    std::vector<NodeState> state(queue.size(), NodeState::kSkipped);
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < queue.size(); ++i) {
      const Pattern& p = queue[i];
      // Skip candidates with an unverified or uncovered parent — identical
      // to EvaluateNode's parent check (parents in ascending attr order).
      bool skip = false;
      for (int a = 0; a < d && !skip; ++a) {
        if (!p.is_deterministic(a)) continue;
        const Pattern parent = p.WithCell(a, kWildcard);
        if (!prev_covered.contains(parent) || mup_set.contains(parent)) {
          skip = true;
        }
      }
      if (skip) continue;
      ++stats.nodes_evaluated;
      if (!closure.MaybeUncoveredEverywhere(p)) {
        // Covered somewhere locally ⇒ covered globally. Zero RPCs.
        state[i] = NodeState::kCovered;
        ++stats.nodes_pruned_local;
      } else {
        state[i] = NodeState::kPending;
        pending.push_back(i);
      }
    }

    // Exact tier: scatter the pending nodes (in chunks) and sum counts.
    for (std::size_t begin = 0; begin < pending.size();
         begin += options.max_batch_patterns) {
      const std::size_t end =
          std::min(begin + options.max_batch_patterns, pending.size());
      std::vector<Pattern> batch;
      batch.reserve(end - begin);
      for (std::size_t j = begin; j < end; ++j) batch.push_back(queue[pending[j]]);

      std::vector<StatusOr<ShardCountsResponse>> counts(
          num_shards, StatusOr<ShardCountsResponse>(
                          Status::Internal("shard response missing")));
      ForEachShard(num_shards,
                   [&](std::size_t s) { counts[s] = shards[s]->Counts(batch); });
      COVERAGE_RETURN_IF_ERROR(FirstError(shards, counts, failed_shard));
      ++stats.count_rounds;
      stats.patterns_counted += batch.size();

      for (std::size_t s = 0; s < num_shards; ++s) {
        if (counts[s]->counts.size() != batch.size()) {
          return Status::Internal("shard " + shards[s]->name() +
                                  ": counts size mismatch");
        }
        DistributedShardStats& ss = result.shards[s];
        ++ss.count_rpcs;
        ss.patterns_counted += batch.size();
        ss.coverage_queries += counts[s]->coverage_queries;
      }
      for (std::size_t j = begin; j < end; ++j) {
        std::uint64_t total = 0;
        for (std::size_t s = 0; s < num_shards; ++s) {
          total += counts[s]->counts[j - begin];
        }
        state[pending[j]] =
            total >= options.tau ? NodeState::kCovered : NodeState::kMup;
      }
    }

    // Deterministic merge in queue order: identical to the single-node loop.
    std::vector<Pattern> next_queue;
    std::unordered_set<Pattern, PatternHash> covered_here;
    for (std::size_t i = 0; i < queue.size(); ++i) {
      const Pattern& p = queue[i];
      switch (state[i]) {
        case NodeState::kSkipped:
          break;
        case NodeState::kPending:
          return Status::Internal("BFS node left pending after scatter");
        case NodeState::kMup:
          mup_set.insert(p);
          mups.push_back(p);
          break;
        case NodeState::kCovered:
          if (level < bfs_max) {
            // Rule-1 children: every attribute right of the right-most
            // deterministic cell, one child per value.
            const int start = p.RightmostDeterministic() + 1;
            for (int a = start; a < d; ++a) {
              const Value c = static_cast<Value>(schema.cardinality(a));
              for (Value v = 0; v < c; ++v) {
                ++stats.nodes_generated;
                next_queue.push_back(p.WithCell(a, v));
              }
            }
          }
          covered_here.insert(p);
          break;
      }
    }
    prev_covered = std::move(covered_here);
    queue = std::move(next_queue);
  }

  std::sort(mups.begin(), mups.end());
  result.mups = std::move(mups);
  stats.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace cluster
}  // namespace coverage

#ifndef COVERAGE_CLUSTER_DISTRIBUTED_AUDIT_H_
#define COVERAGE_CLUSTER_DISTRIBUTED_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/shard_backend.h"
#include "common/status.h"
#include "dataset/schema.h"
#include "mups/mups.h"
#include "pattern/pattern.h"
#include "service/coverage_service.h"

namespace coverage {
namespace cluster {

/// Scatter-gather Problem 1 over row-sharded data.
///
/// Coverage is additive across row shards — cov(P) = Σᵢ covᵢ(P) — but MUP
/// sets are not: a pattern can be locally uncovered everywhere yet globally
/// covered, and a local MUP of one shard can sit strictly above or below a
/// global MUP. What *is* transferable is one inclusion: a pattern covered in
/// any single shard is globally covered. Equivalently, since every locally
/// uncovered pattern lies (dominates-or-equal-wise) under some local MUP,
///
///     globally-uncovered  ⊆  R := ∩ᵢ down-closure(Mᵢ)
///
/// where Mᵢ is shard i's local MUP set computed with the *global* τ.
///
/// RunDistributedAudit therefore mirrors the paper's PATTERN-BREAKER BFS at
/// the coordinator — same root, same Rule-1 child generation, same
/// parent-prune, same queue-order merge — but answers "is this node
/// covered?" in two tiers:
///
///   1. Free tier: if the node escapes any shard's down-closure (checked
///      against the Mᵢ antichains fetched once up front — zero RPCs), it is
///      globally covered.
///   2. Exact tier: nodes inside R are batched into one scatter per BFS
///      level; every shard answers exact (τ = 0) counts, the coordinator
///      sums them, and covered ⇔ Σ ≥ τ. (Threshold answers are NOT additive
///      across shards, which is why the protocol only ever ships counts.)
///
/// Because both tiers decide exactly cov(P) ≥ τ and the BFS structure is
/// the single-node one, the result is bit-identical to auditing the
/// concatenated rows on one node — the property tests prove it across shard
/// counts × dominance modes.
///
/// The dominance_mode knob mirrors the repo's ablation modes and picks how
/// tier 1 consults the antichains: kBitmapIndex uses the Appendix-B index,
/// kLinearScan scans the antichain, kNoPruning disables tier 1 entirely
/// (every surviving node pays an RPC). Identical output, different cost.
///
/// Level caps: a shard may clamp an unlimited search on wide schemas (the
/// planner's §V-C3 fallback); the BFS then runs to the *minimum* effective
/// cap so tier 1 stays sound (a dominating local MUP always has a level no
/// greater than the node it prunes, so within the cap no witness is
/// missed). The effective cap is reported in the result.
struct DistributedAuditOptions {
  std::uint64_t tau = 30;  ///< global coverage threshold (>= 1)
  int max_level = -1;      ///< BFS depth cap; -1 = unlimited

  /// Tier-1 strategy (ablation knob; identical output).
  MupSearchOptions::DominanceMode dominance_mode =
      MupSearchOptions::DominanceMode::kBitmapIndex;

  /// Algorithm each shard runs for its local candidate search.
  MupAlgorithm shard_algorithm = MupAlgorithm::kAuto;

  std::uint64_t enumeration_limit = std::uint64_t{1} << 26;

  /// Cap on patterns per counts RPC; a larger BFS level scatters in
  /// several rounds.
  std::size_t max_batch_patterns = 4096;

  Status Validate() const;
};

/// Per-shard accounting for the cluster stats section.
struct DistributedShardStats {
  std::string name;
  std::uint64_t num_rows = 0;
  std::uint64_t local_mups = 0;        ///< candidate antichain size
  double candidate_seconds = 0.0;      ///< shard-local search wall-clock
  std::uint64_t count_rpcs = 0;        ///< counts scatters sent to the shard
  std::uint64_t patterns_counted = 0;  ///< patterns asked across those RPCs
  std::uint64_t coverage_queries = 0;  ///< shard-side oracle calls, all RPCs
};

struct DistributedAuditStats {
  std::uint64_t nodes_generated = 0;    ///< BFS candidates materialised
  std::uint64_t nodes_evaluated = 0;    ///< survived the parent-prune
  std::uint64_t nodes_pruned_local = 0; ///< settled covered by tier 1 (free)
  std::uint64_t patterns_counted = 0;   ///< settled by the exact tier
  std::uint64_t count_rounds = 0;       ///< scatter rounds issued
  std::uint64_t levels = 0;             ///< BFS levels walked
  double seconds = 0.0;                 ///< end-to-end wall-clock
};

struct DistributedAuditResult {
  std::vector<Pattern> mups;  ///< sorted lexicographically
  std::uint64_t tau = 0;
  int max_level = -1;          ///< effective cap (see options doc)
  std::uint64_t num_rows = 0;  ///< Σ shard rows
  DistributedAuditStats stats;
  std::vector<DistributedShardStats> shards;

  /// Repackages as the single-node response type so the coordinator's
  /// /v1/audit answers are wire-compatible (JSON and binary) with a shard's.
  AuditResult ToAuditResult() const;
};

/// Runs the scatter-gather audit over `shards` (all slices of one dataset
/// with schema `schema`). On a shard failure, returns that shard's error
/// and, when `failed_shard` is non-null, stores the shard's name for the
/// coordinator's 503 body.
StatusOr<DistributedAuditResult> RunDistributedAudit(
    const Schema& schema, const std::vector<ShardBackend*>& shards,
    const DistributedAuditOptions& options,
    std::string* failed_shard = nullptr);

}  // namespace cluster
}  // namespace coverage

#endif  // COVERAGE_CLUSTER_DISTRIBUTED_AUDIT_H_

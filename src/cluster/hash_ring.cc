#include "cluster/hash_ring.h"

#include <algorithm>
#include <cassert>

namespace coverage {
namespace cluster {

namespace {

/// splitmix64 finalizer: FNV-1a alone clusters on short sequential suffixes
/// ("host:1#0", "host:1#1", ...); the finalizer spreads those over the full
/// ring. Both stages are fixed constants — nothing process-dependent.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t HashRing::HashKey(std::string_view key) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;  // FNV-1a prime
  }
  return Mix(h);
}

HashRing::HashRing(int vnodes_per_member)
    : vnodes_per_member_(vnodes_per_member > 0 ? vnodes_per_member : 1) {}

void HashRing::AddMember(const std::string& member) {
  auto it = std::lower_bound(members_.begin(), members_.end(), member);
  if (it != members_.end() && *it == member) return;
  members_.insert(it, member);
  Rebuild();
}

void HashRing::RemoveMember(const std::string& member) {
  auto it = std::lower_bound(members_.begin(), members_.end(), member);
  if (it == members_.end() || *it != member) return;
  members_.erase(it);
  Rebuild();
}

bool HashRing::HasMember(const std::string& member) const {
  return std::binary_search(members_.begin(), members_.end(), member);
}

void HashRing::Rebuild() {
  // Full rebuild keeps the member indices dense and the code obviously
  // order-independent; with single-digit members × 1k vnodes this is
  // microseconds, and membership only changes at boot or reconfiguration.
  points_.clear();
  points_.reserve(members_.size() *
                  static_cast<std::size_t>(vnodes_per_member_));
  for (std::uint32_t m = 0; m < members_.size(); ++m) {
    for (int v = 0; v < vnodes_per_member_; ++v) {
      const std::string point_key = members_[m] + "#" + std::to_string(v);
      points_.push_back(Point{HashKey(point_key), m});
    }
  }
  std::sort(points_.begin(), points_.end());
}

const std::string& HashRing::OwnerOf(std::string_view key) const {
  assert(!points_.empty() && "OwnerOf on an empty ring");
  const std::uint64_t h = HashKey(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t value) { return p.hash < value; });
  if (it == points_.end()) it = points_.begin();  // wrap around
  return members_[it->member];
}

}  // namespace cluster
}  // namespace coverage

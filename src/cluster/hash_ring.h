#ifndef COVERAGE_CLUSTER_HASH_RING_H_
#define COVERAGE_CLUSTER_HASH_RING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace coverage {
namespace cluster {

/// Deterministic consistent-hash ring with virtual nodes.
///
/// Each member (a shard endpoint, "host:port") contributes
/// `vnodes_per_member` points on a 64-bit ring, hashed purely from the
/// member name and the vnode index — no process randomness, no insertion
/// order — so a restarted coordinator rebuilds the *identical* routing
/// table, and two coordinators configured with the same shard list agree on
/// every placement (tests/hash_ring_test.cc pins this).
///
/// A key (a session id) routes to the member owning the first ring point at
/// or clockwise after Hash(key). Adding or removing one member only remaps
/// the keys whose nearest point belonged to the arc it gained or lost —
/// ~1/N of the keyspace — which is the whole reason sessions ride a ring
/// instead of `hash % N`.
///
/// Not thread-safe for mutation; the coordinator builds it once at boot and
/// only reads afterwards (reads are const and safe to share).
class HashRing {
 public:
  /// 1024 vnodes keeps per-member load within a few percent of fair share
  /// at single-digit member counts while the full ring stays ~24 KB.
  explicit HashRing(int vnodes_per_member = 1024);

  /// No-op if the member is already present.
  void AddMember(const std::string& member);
  void RemoveMember(const std::string& member);
  bool HasMember(const std::string& member) const;

  /// The member owning `key`. Must not be called on an empty ring.
  const std::string& OwnerOf(std::string_view key) const;

  std::size_t num_members() const { return members_.size(); }
  std::size_t num_points() const { return points_.size(); }
  int vnodes_per_member() const { return vnodes_per_member_; }

  /// Members in sorted order (stable for stats/exposition).
  const std::vector<std::string>& members() const { return members_; }

  /// The position hash, exposed for tests (FNV-1a with a splitmix64
  /// finalizer — deterministic across platforms and processes).
  static std::uint64_t HashKey(std::string_view key);

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t member;  ///< index into members_
    bool operator<(const Point& other) const {
      return hash != other.hash ? hash < other.hash : member < other.member;
    }
  };

  void Rebuild();

  int vnodes_per_member_;
  std::vector<std::string> members_;  ///< sorted
  std::vector<Point> points_;        ///< sorted by (hash, member)
};

}  // namespace cluster
}  // namespace coverage

#endif  // COVERAGE_CLUSTER_HASH_RING_H_

#include "cluster/shard_backend.h"

#include <utility>

namespace coverage {
namespace cluster {

namespace {

/// Re-wraps `status` with the shard's identity so a scatter-gather failure
/// reads "shard host:9401: connect: ...". The code is preserved.
Status ShardError(const std::string& shard, const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument("shard " + shard + ": " +
                                     status.message());
    case StatusCode::kNotFound:
      return Status::NotFound("shard " + shard + ": " + status.message());
    default:
      return Status::Internal("shard " + shard + ": " + status.message());
  }
}

/// The shard answered HTTP but not 200: surface the status line plus a
/// bounded body snippet (the JSON error object, usually).
Status HttpError(const std::string& shard, const std::string& route,
                 const http::Response& response) {
  std::string snippet = response.body.substr(0, 200);
  return Status::Internal("shard " + shard + ": " + route + " returned " +
                          std::to_string(response.status) + ": " + snippet);
}

}  // namespace

StatusOr<ShardCountsResponse> LocalShardBackend::Counts(
    const std::vector<Pattern>& patterns) {
  QueryBatchRequest request;
  request.queries.reserve(patterns.size());
  for (const Pattern& p : patterns) request.queries.push_back({p, 0});
  StatusOr<QueryBatchResult> batch = service_.QueryBatch(request);
  COVERAGE_RETURN_IF_ERROR(batch.status());

  ShardCountsResponse response;
  response.num_rows = service_.num_rows();
  response.coverage_queries = batch->coverage_queries;
  response.seconds = batch->seconds;
  response.counts.reserve(batch->results.size());
  for (const QueryOutcome& q : batch->results) response.counts.push_back(q.coverage);
  return response;
}

StatusOr<ShardCandidatesResponse> LocalShardBackend::Candidates(
    const AuditRequest& request) {
  AuditRequest local = request;
  local.materialize_patterns = true;
  StatusOr<AuditResult> audit = service_.Audit(local);
  COVERAGE_RETURN_IF_ERROR(audit.status());

  ShardCandidatesResponse response;
  response.num_rows = service_.num_rows();
  response.audit = std::move(*audit);
  response.audit.packed.reset();  // one representation, like the HTTP path
  return response;
}

StatusOr<ShardCountsResponse> HttpShardBackend::Counts(
    const std::vector<Pattern>& patterns) {
  StatusOr<http::Response> response =
      pool_->Post("/internal/v1/counts", CountsRequestJson(patterns));
  if (!response.ok()) return ShardError(name(), response.status());
  if (response->status != 200) {
    return HttpError(name(), "/internal/v1/counts", *response);
  }
  StatusOr<ShardCountsResponse> decoded =
      DecodeShardCountsBinary(response->body);
  if (!decoded.ok()) return ShardError(name(), decoded.status());
  if (decoded->counts.size() != patterns.size()) {
    return Status::Internal(
        "shard " + name() + ": counts response has " +
        std::to_string(decoded->counts.size()) + " entries for " +
        std::to_string(patterns.size()) + " patterns");
  }
  return decoded;
}

StatusOr<ShardCandidatesResponse> HttpShardBackend::Candidates(
    const AuditRequest& request) {
  StatusOr<http::Response> response =
      pool_->Post("/internal/v1/candidates", AuditRequestJson(request));
  if (!response.ok()) return ShardError(name(), response.status());
  if (response->status != 200) {
    return HttpError(name(), "/internal/v1/candidates", *response);
  }
  StatusOr<ShardCandidatesResponse> decoded =
      DecodeShardCandidatesBinary(response->body, *schema_);
  if (!decoded.ok()) return ShardError(name(), decoded.status());
  return decoded;
}

}  // namespace cluster
}  // namespace coverage

#ifndef COVERAGE_CLUSTER_SHARD_BACKEND_H_
#define COVERAGE_CLUSTER_SHARD_BACKEND_H_

#include <string>
#include <vector>

#include "cluster/client_pool.h"
#include "cluster/cluster_wire.h"
#include "common/status.h"
#include "dataset/schema.h"
#include "pattern/pattern.h"
#include "service/coverage_service.h"

namespace coverage {
namespace cluster {

/// What the distributed-audit algorithm needs from one shard: exact counts
/// for a batch of patterns over the shard's row slice, and the shard-local
/// MUP set (the candidate antichain that prunes the global BFS).
///
/// Two implementations: LocalShardBackend wraps an in-process
/// CoverageService (tests, and the reference for bit-identity proofs);
/// HttpShardBackend speaks the /internal/v1/* wire to a remote shard. The
/// algorithm cannot tell them apart — that symmetry is what lets the
/// property tests compare a real scatter-gather against in-process truth.
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  /// Stable shard identity for errors and metrics ("host:port" for HTTP).
  virtual const std::string& name() const = 0;

  /// Exact cov(P) per pattern over this shard's slice (tau = 0 semantics —
  /// threshold answers are not additive, so the protocol never asks them).
  virtual StatusOr<ShardCountsResponse> Counts(
      const std::vector<Pattern>& patterns) = 0;

  /// The shard-local MUP search with the *global* tau. MUPs come back
  /// materialized (audit.mups set, audit.packed cleared).
  virtual StatusOr<ShardCandidatesResponse> Candidates(
      const AuditRequest& request) = 0;
};

/// An in-process shard: owns a CoverageService over one row slice.
class LocalShardBackend : public ShardBackend {
 public:
  LocalShardBackend(std::string name, CoverageService service)
      : name_(std::move(name)), service_(std::move(service)) {}

  const std::string& name() const override { return name_; }
  StatusOr<ShardCountsResponse> Counts(
      const std::vector<Pattern>& patterns) override;
  StatusOr<ShardCandidatesResponse> Candidates(
      const AuditRequest& request) override;

  const CoverageService& service() const { return service_; }

 private:
  std::string name_;
  CoverageService service_;
};

/// A remote shard behind a ClientPool. POSTs the JSON request bodies from
/// cluster_wire.h to /internal/v1/{counts,candidates} and decodes the
/// binary responses; every error is prefixed "shard <host:port>: " so a
/// scatter-gather failure names its shard.
class HttpShardBackend : public ShardBackend {
 public:
  /// `pool` and `schema` must outlive the backend (the coordinator owns
  /// both).
  HttpShardBackend(ClientPool* pool, const Schema* schema)
      : pool_(pool), schema_(schema) {}

  const std::string& name() const override { return pool_->endpoint(); }
  StatusOr<ShardCountsResponse> Counts(
      const std::vector<Pattern>& patterns) override;
  StatusOr<ShardCandidatesResponse> Candidates(
      const AuditRequest& request) override;

  ClientPool* pool() { return pool_; }

 private:
  ClientPool* pool_;
  const Schema* schema_;
};

}  // namespace cluster
}  // namespace coverage

#endif  // COVERAGE_CLUSTER_SHARD_BACKEND_H_

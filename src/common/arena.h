#ifndef COVERAGE_COMMON_ARENA_H_
#define COVERAGE_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace coverage {

/// Chunked bump allocator in the style of mtplz's util::Pool: allocations are
/// O(1) pointer bumps out of geometrically growing chunks, and the only way to
/// free is all-at-once. `Reset()` rewinds to empty while keeping every chunk
/// for reuse, so a search loop that resets between BFS levels allocates from
/// the OS only on its high-water-mark level.
///
/// Only trivially destructible payloads belong here — the arena never runs
/// destructors.
class Arena {
 public:
  explicit Arena(std::size_t first_chunk_bytes = kDefaultFirstChunk)
      : next_chunk_bytes_(first_chunk_bytes < kMinChunk ? kMinChunk
                                                        : first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw allocation, aligned to `alignment` (a power of two).
  void* Allocate(std::size_t bytes, std::size_t alignment = alignof(std::max_align_t)) {
    std::size_t cursor = (cursor_ + (alignment - 1)) & ~(alignment - 1);
    if (chunk_ >= chunks_.size() || cursor + bytes > chunks_[chunk_].size) {
      NextChunk(bytes + alignment);
      cursor = (cursor_ + (alignment - 1)) & ~(alignment - 1);
    }
    void* out = chunks_[chunk_].data.get() + cursor;
    cursor_ = cursor + bytes;
    allocated_ += bytes;
    return out;
  }

  /// Typed array allocation; the memory is uninitialized.
  template <typename T>
  T* AllocateArray(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory never runs destructors");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty. Every chunk is kept, so subsequent allocations reuse
  /// the existing capacity. Pointers handed out before the reset are invalid.
  void Reset() {
    chunk_ = 0;
    cursor_ = 0;
    allocated_ = 0;
  }

  /// Bytes handed out since construction / the last Reset().
  std::size_t allocated_bytes() const { return allocated_; }

  /// Bytes owned by the arena across all chunks (the high-water capacity).
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

  static constexpr std::size_t kDefaultFirstChunk = std::size_t{1} << 14;
  static constexpr std::size_t kMinChunk = 256;

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  void NextChunk(std::size_t at_least) {
    // Advance into an existing retained chunk if one is big enough, else grow.
    while (chunk_ + 1 < chunks_.size()) {
      ++chunk_;
      cursor_ = 0;
      if (chunks_[chunk_].size >= at_least) return;
    }
    std::size_t size = next_chunk_bytes_;
    if (size < at_least) size = at_least;
    next_chunk_bytes_ = size * 2;
    chunks_.push_back(Chunk{std::make_unique<char[]>(size), size});
    chunk_ = chunks_.size() - 1;
    cursor_ = 0;
  }

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;        // index of the chunk being bumped
  std::size_t cursor_ = 0;       // bump offset within chunks_[chunk_]
  std::size_t allocated_ = 0;
  std::size_t next_chunk_bytes_;
};

/// A contiguous growable array whose storage comes from an Arena. Grow-by-copy
/// leaves the old block stranded until the arena resets — the intended usage
/// is short-lived BFS frontiers where the whole level dies at once.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVector grows by memcpy");

 public:
  explicit ArenaVector(Arena* arena) : arena_(arena) {}

  void push_back(const T& value) {
    if (size_ == capacity_) Grow();
    data_[size_++] = value;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow();
    data_[size_] = T(std::forward<Args>(args)...);
    return data_[size_++];
  }

  void clear() { size_ = 0; }
  void reserve(std::size_t n) {
    if (n > capacity_) Regrow(n);
  }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  void pop_back() { --size_; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  void Grow() { Regrow(capacity_ == 0 ? kFirstCapacity : capacity_ * 2); }

  void Regrow(std::size_t capacity) {
    T* fresh = arena_->AllocateArray<T>(capacity);
    if (size_ != 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    data_ = fresh;
    capacity_ = capacity;
  }

  static constexpr std::size_t kFirstCapacity = 16;

  Arena* arena_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace coverage

#endif  // COVERAGE_COMMON_ARENA_H_

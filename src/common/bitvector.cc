#include "common/bitvector.h"

#include <bit>
#include <cassert>

namespace coverage {

namespace {
std::size_t WordsFor(std::size_t num_bits) {
  return (num_bits + BitVector::kBitsPerWord - 1) / BitVector::kBitsPerWord;
}
}  // namespace

BitVector::BitVector(std::size_t num_bits, bool value)
    : words_(WordsFor(num_bits), value ? ~Word{0} : Word{0}),
      num_bits_(num_bits) {
  ClearPadding();
}

void BitVector::Set(std::size_t i, bool value) {
  assert(i < num_bits_);
  const Word mask = Word{1} << (i % kBitsPerWord);
  if (value) {
    words_[i / kBitsPerWord] |= mask;
  } else {
    words_[i / kBitsPerWord] &= ~mask;
  }
}

void BitVector::Fill(bool value) {
  for (Word& w : words_) w = value ? ~Word{0} : Word{0};
  ClearPadding();
}

void BitVector::PushBack(bool value) {
  Resize(num_bits_ + 1);
  if (value) Set(num_bits_ - 1, true);
}

void BitVector::Resize(std::size_t num_bits, bool value) {
  const std::size_t old_bits = num_bits_;
  words_.resize(WordsFor(num_bits), value ? ~Word{0} : Word{0});
  num_bits_ = num_bits;
  if (num_bits > old_bits && value) {
    // The tail of the old last word must be raised by hand.
    for (std::size_t i = old_bits; i < num_bits && i % kBitsPerWord != 0; ++i) {
      Set(i, true);
    }
  }
  ClearPadding();
}

std::size_t BitVector::Count() const {
  std::size_t total = 0;
  for (Word w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool BitVector::Any() const {
  for (Word w : words_) {
    if (w != 0) return true;
  }
  return false;
}

void BitVector::AndWith(const BitVector& other) {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void BitVector::OrWith(const BitVector& other) {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void BitVector::AndNotWith(const BitVector& other) {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
}

bool BitVector::IntersectsWith(const BitVector& other) const {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

std::size_t BitVector::AndCount(const BitVector& other) const {
  assert(num_bits_ == other.num_bits_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total +=
        static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return total;
}

std::uint64_t BitVector::Dot(const std::vector<std::uint64_t>& counts) const {
  assert(counts.size() == num_bits_);
  std::uint64_t total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    Word word = words_[w];
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      total += counts[w * kBitsPerWord + static_cast<std::size_t>(bit)];
      word &= word - 1;
    }
  }
  return total;
}

std::size_t BitVector::AndCount3(const BitVector& a, const BitVector& b,
                                 const BitVector& c) {
  assert(a.size() == b.size() && b.size() == c.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < a.words_.size(); ++i) {
    total += static_cast<std::size_t>(
        std::popcount(a.words_[i] & b.words_[i] & c.words_[i]));
  }
  return total;
}

std::size_t BitVector::FindFirst() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kBitsPerWord +
             static_cast<std::size_t>(__builtin_ctzll(words_[w]));
    }
  }
  return num_bits_;
}

std::size_t BitVector::FindNext(std::size_t i) const {
  ++i;
  if (i >= num_bits_) return num_bits_;
  std::size_t w = i / kBitsPerWord;
  Word word = words_[w] >> (i % kBitsPerWord);
  if (word != 0) {
    return i + static_cast<std::size_t>(__builtin_ctzll(word));
  }
  for (++w; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kBitsPerWord +
             static_cast<std::size_t>(__builtin_ctzll(words_[w]));
    }
  }
  return num_bits_;
}

std::string BitVector::ToString() const {
  std::string out;
  out.reserve(num_bits_);
  for (std::size_t i = 0; i < num_bits_; ++i) out.push_back(Get(i) ? '1' : '0');
  return out;
}

bool BitVector::operator==(const BitVector& other) const {
  return num_bits_ == other.num_bits_ && words_ == other.words_;
}

void BitVector::ClearPadding() {
  const std::size_t tail = num_bits_ % kBitsPerWord;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (Word{1} << tail) - 1;
  }
}

}  // namespace coverage

#include "common/bitvector.h"

#include <bit>
#include <cassert>

namespace coverage {

namespace {
std::size_t WordsFor(std::size_t num_bits) {
  return (num_bits + BitVector::kBitsPerWord - 1) / BitVector::kBitsPerWord;
}
}  // namespace

BitVector::BitVector(std::size_t num_bits, bool value)
    : words_(WordsFor(num_bits), value ? ~Word{0} : Word{0}),
      num_bits_(num_bits) {
  ClearPadding();
}

void BitVector::Set(std::size_t i, bool value) {
  assert(i < num_bits_);
  const Word mask = Word{1} << (i % kBitsPerWord);
  if (value) {
    words_[i / kBitsPerWord] |= mask;
  } else {
    words_[i / kBitsPerWord] &= ~mask;
  }
}

void BitVector::Fill(bool value) {
  for (Word& w : words_) w = value ? ~Word{0} : Word{0};
  ClearPadding();
}

void BitVector::PushBack(bool value) {
  const std::size_t bit = num_bits_ % kBitsPerWord;
  if (bit == 0) words_.push_back(Word{0});
  if (value) words_.back() |= Word{1} << bit;
  ++num_bits_;
}

void BitVector::Resize(std::size_t num_bits, bool value) {
  const std::size_t old_bits = num_bits_;
  words_.resize(WordsFor(num_bits), value ? ~Word{0} : Word{0});
  num_bits_ = num_bits;
  if (num_bits > old_bits && value) {
    // The tail of the old last word must be raised by hand.
    for (std::size_t i = old_bits; i < num_bits && i % kBitsPerWord != 0; ++i) {
      Set(i, true);
    }
  }
  ClearPadding();
}

void BitVector::Reserve(std::size_t num_bits) {
  words_.reserve(WordsFor(num_bits));
}

void BitVector::AppendWords(const Word* words, std::size_t num_bits) {
  if (num_bits == 0) return;
  const std::size_t in_words = WordsFor(num_bits);
  const std::size_t offset = num_bits_ % kBitsPerWord;
  // The unaligned loop pushes all in_words words before the trailing trim,
  // so reserve for the transient peak, not the final word count.
  words_.reserve(words_.size() + in_words);
  if (offset == 0) {
    words_.insert(words_.end(), words, words + in_words);
  } else {
    // Shift-merge across the boundary: the low (64 - offset) bits of each
    // incoming word land in the current last word, the rest start the next.
    const std::size_t shift = kBitsPerWord - offset;
    for (std::size_t i = 0; i < in_words; ++i) {
      words_.back() |= words[i] << offset;
      words_.push_back(words[i] >> shift);
    }
    // The loop may have opened one word more than the new size needs.
    words_.resize(WordsFor(num_bits_ + num_bits));
  }
  num_bits_ += num_bits;
  ClearPadding();
}

std::size_t BitVector::Count() const {
  std::size_t total = 0;
  for (Word w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool BitVector::Any() const {
  for (Word w : words_) {
    if (w != 0) return true;
  }
  return false;
}

void BitVector::AndWith(const BitVector& other) {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void BitVector::OrWith(const BitVector& other) {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void BitVector::AndNotWith(const BitVector& other) {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
}

bool BitVector::IntersectsWith(const BitVector& other) const {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

std::size_t BitVector::AndCount(const BitVector& other) const {
  assert(num_bits_ == other.num_bits_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total +=
        static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return total;
}

std::uint64_t BitVector::Dot(const std::vector<std::uint64_t>& counts) const {
  assert(counts.size() == num_bits_);
  std::uint64_t total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    Word word = words_[w];
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      total += counts[w * kBitsPerWord + static_cast<std::size_t>(bit)];
      word &= word - 1;
    }
  }
  return total;
}

std::size_t BitVector::AndCount3(const BitVector& a, const BitVector& b,
                                 const BitVector& c) {
  assert(a.size() == b.size() && b.size() == c.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < a.words_.size(); ++i) {
    total += static_cast<std::size_t>(
        std::popcount(a.words_[i] & b.words_[i] & c.words_[i]));
  }
  return total;
}

namespace {

/// Adds counts[base + i] for every set bit i of `word` to `sum`.
inline void DotWord(BitVector::Word word, const std::uint64_t* counts,
                    std::size_t base, std::uint64_t& sum) {
  while (word != 0) {
    const int bit = __builtin_ctzll(word);
    sum += counts[base + static_cast<std::size_t>(bit)];
    word &= word - 1;
  }
}

/// ANDs word `w` of all `n` operands, branchlessly — the exact-count kernel
/// has no early exit, so keeping the chain free of data-dependent branches
/// lets the compiler vectorise across the 4-word blocks.
inline BitVector::Word ChainWord(const BitVector* const* ops, int n,
                                 std::size_t w) {
  BitVector::Word word = ops[0]->words()[w];
  for (int k = 1; k < n; ++k) word &= ops[k]->words()[w];
  return word;
}

/// ANDs word `w` of all `n` operands, stopping once the word zeroes. With
/// operands ordered sparsest first (the threshold path), most words die
/// after one or two ANDs, which beats the vectorised full chain.
inline BitVector::Word ChainWordEarly(const BitVector* const* ops, int n,
                                      std::size_t w) {
  BitVector::Word word = ops[0]->words()[w];
  for (int k = 1; k < n && word != 0; ++k) word &= ops[k]->words()[w];
  return word;
}

}  // namespace

std::uint64_t BitVector::AndChainDot(
    const BitVector* const* ops, int n,
    const std::vector<std::uint64_t>& counts) {
  assert(n >= 1);
  assert(counts.size() == ops[0]->size());
  const std::size_t num_words = ops[0]->num_words();
  const std::uint64_t* c = counts.data();
  std::uint64_t sum = 0;
  std::size_t w = 0;
  // 4-way unrolled main loop: the chain ANDs are independent across the four
  // words, and the combined zero test skips the bit-scatter dot entirely for
  // the (common) fully-pruned blocks.
  for (; w + 4 <= num_words; w += 4) {
    const Word w0 = ChainWord(ops, n, w);
    const Word w1 = ChainWord(ops, n, w + 1);
    const Word w2 = ChainWord(ops, n, w + 2);
    const Word w3 = ChainWord(ops, n, w + 3);
    if ((w0 | w1 | w2 | w3) == 0) continue;
    DotWord(w0, c, w * kBitsPerWord, sum);
    DotWord(w1, c, (w + 1) * kBitsPerWord, sum);
    DotWord(w2, c, (w + 2) * kBitsPerWord, sum);
    DotWord(w3, c, (w + 3) * kBitsPerWord, sum);
  }
  for (; w < num_words; ++w) {
    DotWord(ChainWord(ops, n, w), c, w * kBitsPerWord, sum);
  }
  return sum;
}

bool BitVector::AndChainAtLeast(const BitVector* const* ops, int n,
                                const std::vector<std::uint64_t>& counts,
                                std::uint64_t tau) {
  assert(n >= 1);
  assert(counts.size() == ops[0]->size());
  if (tau == 0) return true;
  const std::size_t num_words = ops[0]->num_words();
  const std::uint64_t* c = counts.data();
  std::uint64_t sum = 0;
  std::size_t w = 0;
  for (; w + 4 <= num_words; w += 4) {
    const Word w0 = ChainWordEarly(ops, n, w);
    const Word w1 = ChainWordEarly(ops, n, w + 1);
    const Word w2 = ChainWordEarly(ops, n, w + 2);
    const Word w3 = ChainWordEarly(ops, n, w + 3);
    if ((w0 | w1 | w2 | w3) == 0) continue;
    DotWord(w0, c, w * kBitsPerWord, sum);
    DotWord(w1, c, (w + 1) * kBitsPerWord, sum);
    DotWord(w2, c, (w + 2) * kBitsPerWord, sum);
    DotWord(w3, c, (w + 3) * kBitsPerWord, sum);
    if (sum >= tau) return true;
  }
  for (; w < num_words; ++w) {
    DotWord(ChainWordEarly(ops, n, w), c, w * kBitsPerWord, sum);
    if (sum >= tau) return true;
  }
  return false;
}

std::size_t BitVector::FindFirst() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kBitsPerWord +
             static_cast<std::size_t>(__builtin_ctzll(words_[w]));
    }
  }
  return num_bits_;
}

std::size_t BitVector::FindNext(std::size_t i) const {
  ++i;
  if (i >= num_bits_) return num_bits_;
  std::size_t w = i / kBitsPerWord;
  Word word = words_[w] >> (i % kBitsPerWord);
  if (word != 0) {
    return i + static_cast<std::size_t>(__builtin_ctzll(word));
  }
  for (++w; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kBitsPerWord +
             static_cast<std::size_t>(__builtin_ctzll(words_[w]));
    }
  }
  return num_bits_;
}

std::string BitVector::ToString() const {
  std::string out;
  out.reserve(num_bits_);
  for (std::size_t i = 0; i < num_bits_; ++i) out.push_back(Get(i) ? '1' : '0');
  return out;
}

bool BitVector::operator==(const BitVector& other) const {
  return num_bits_ == other.num_bits_ && words_ == other.words_;
}

void BitVector::ClearPadding() {
  const std::size_t tail = num_bits_ % kBitsPerWord;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (Word{1} << tail) - 1;
  }
}

}  // namespace coverage

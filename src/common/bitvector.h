#ifndef COVERAGE_COMMON_BITVECTOR_H_
#define COVERAGE_COMMON_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace coverage {

/// A fixed-length dynamic bit vector tuned for the inverted-index kernels of
/// the coverage library (paper, Appendices A and B).
///
/// The hot operations are word-wise AND / OR-AND chains with early exit, a
/// popcount, and a dot product against a 64-bit count vector. All of them are
/// branch-light loops over packed 64-bit words.
class BitVector {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kBitsPerWord = 64;

  BitVector() = default;

  /// Creates a vector of `num_bits` bits, all initialised to `value`.
  explicit BitVector(std::size_t num_bits, bool value = false);

  /// Number of addressable bits.
  std::size_t size() const { return num_bits_; }

  /// Number of backing 64-bit words.
  std::size_t num_words() const { return words_.size(); }

  bool empty() const { return num_bits_ == 0; }

  /// Reads bit `i`. Precondition: `i < size()`.
  bool Get(std::size_t i) const {
    return (words_[i / kBitsPerWord] >> (i % kBitsPerWord)) & Word{1};
  }

  /// Sets bit `i` to `value`. Precondition: `i < size()`.
  void Set(std::size_t i, bool value = true);

  /// Sets every bit to `value`.
  void Fill(bool value);

  /// Appends one bit, growing the vector by one. Backing words grow one
  /// 64-bit block at a time (amortised by the word vector's geometric
  /// growth), so repeated PushBack never rewrites existing words.
  void PushBack(bool value);

  /// Grows or shrinks to `num_bits`; new bits are `value`.
  void Resize(std::size_t num_bits, bool value = false);

  /// Reserves backing storage for at least `num_bits` bits without changing
  /// size(); subsequent appends up to that capacity never reallocate.
  void Reserve(std::size_t num_bits);

  /// Appends `num_bits` bits read LSB-first from `words` (which must hold at
  /// least ceil(num_bits / 64) words; bits past `num_bits` in the last word
  /// are ignored). The append is word-blocked: when the current size is not
  /// word-aligned the incoming words are shift-merged across the boundary,
  /// touching each word exactly once — this is the allocation-amortised bulk
  /// growth path behind the incremental coverage index.
  void AppendWords(const Word* words, std::size_t num_bits);

  /// Number of set bits.
  std::size_t Count() const;

  /// True iff at least one bit is set.
  bool Any() const;

  /// True iff no bit is set.
  bool None() const { return !Any(); }

  /// `*this &= other`. Both operands must have equal size.
  void AndWith(const BitVector& other);

  /// `*this |= other`. Both operands must have equal size.
  void OrWith(const BitVector& other);

  /// `*this &= ~other`. Both operands must have equal size.
  void AndNotWith(const BitVector& other);

  /// True iff `(*this & other)` has at least one set bit. Early-exits on the
  /// first non-zero word; this is the kernel behind MUP-dominance checks.
  bool IntersectsWith(const BitVector& other) const;

  /// Popcount of `(*this & other)` without materialising the intersection.
  std::size_t AndCount(const BitVector& other) const;

  /// Sum of `counts[i]` over all set bits `i`; the coverage dot product of
  /// Appendix A. `counts.size()` must equal `size()`.
  std::uint64_t Dot(const std::vector<std::uint64_t>& counts) const;

  /// Popcount of `(a & b & c)`; used by three-way filter probes.
  static std::size_t AndCount3(const BitVector& a, const BitVector& b,
                               const BitVector& c);

  /// Dot product of `(ops[0] & ops[1] & ... & ops[n-1])` against `counts`
  /// without materialising the intersection: the AND chain and the dot are
  /// fused into one word-blocked pass, so a threshold/coverage query touches
  /// each operand word exactly once and allocates nothing. Preconditions:
  /// `n >= 1`, all operands share one size, `counts.size() == size()`.
  static std::uint64_t AndChainDot(const BitVector* const* ops, int n,
                                   const std::vector<std::uint64_t>& counts);

  /// True iff `AndChainDot(ops, n, counts) >= tau`, early-exiting as soon as
  /// the partial sum reaches `tau`. This is the cov(P) >= τ kernel behind
  /// PATTERN-BREAKER and DEEPDIVER; callers order `ops` most-selective first
  /// so the chain zeroes words as early as possible.
  static bool AndChainAtLeast(const BitVector* const* ops, int n,
                              const std::vector<std::uint64_t>& counts,
                              std::uint64_t tau);

  /// Index of the first set bit, or `size()` if none.
  std::size_t FindFirst() const;

  /// Index of the first set bit strictly after `i`, or `size()` if none.
  std::size_t FindNext(std::size_t i) const;

  /// Calls `fn(i)` for every set bit `i`, in increasing order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      Word word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * kBitsPerWord + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// "0101..." rendering, LSB first; intended for tests and debugging.
  std::string ToString() const;

  bool operator==(const BitVector& other) const;
  bool operator!=(const BitVector& other) const { return !(*this == other); }

  const std::vector<Word>& words() const { return words_; }

 private:
  /// Clears the unused high bits of the last word so popcounts stay exact.
  void ClearPadding();

  std::vector<Word> words_;
  std::size_t num_bits_ = 0;
};

}  // namespace coverage

#endif  // COVERAGE_COMMON_BITVECTOR_H_

#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace coverage {

std::uint64_t Rng::NextUint64(std::uint64_t bound) {
  assert(bound > 0);
  std::uniform_int_distribution<std::uint64_t> dist(0, bound - 1);
  return dist(engine_);
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::NextDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: the first k slots are the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + NextUint64(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

CategoricalSampler::CategoricalSampler(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  cdf_.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    acc += w / total;
    cdf_.push_back(acc);
  }
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

std::size_t CategoricalSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

namespace {
std::vector<double> ZipfWeights(std::size_t n, double s) {
  assert(n > 0);
  std::vector<double> w(n);
  for (std::size_t k = 0; k < n; ++k) {
    w[k] = 1.0 / std::pow(static_cast<double>(k + 1), s);
  }
  return w;
}
}  // namespace

ZipfSampler::ZipfSampler(std::size_t n, double s)
    : categorical_(ZipfWeights(n, s)) {}

}  // namespace coverage

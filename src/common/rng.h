#ifndef COVERAGE_COMMON_RNG_H_
#define COVERAGE_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace coverage {

/// Deterministic random source used by every generator and experiment in the
/// library. All experiment entry points take an explicit seed so that results
/// are reproducible bit-for-bit across runs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t NextUint64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with success probability `p`.
  bool NextBool(double p = 0.5);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[NextUint64(i)]);
    }
  }

  /// Samples `k` distinct indices from [0, n) without replacement.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Samples from a fixed categorical distribution by inverse-CDF lookup.
class CategoricalSampler {
 public:
  /// `weights` need not be normalised; they must be non-negative with a
  /// positive sum.
  explicit CategoricalSampler(const std::vector<double>& weights);

  /// Draws a category index in [0, weights.size()).
  std::size_t Sample(Rng& rng) const;

  std::size_t num_categories() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // normalised, non-decreasing, back() == 1.0
};

/// Zipf(s) sampler over {0, 1, ..., n-1}: P(k) ∝ 1 / (k+1)^s. Used to skew
/// the synthetic BlueNile catalog the way real retail catalogs are skewed.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t Sample(Rng& rng) const { return categorical_.Sample(rng); }
  std::size_t num_categories() const { return categorical_.num_categories(); }

 private:
  CategoricalSampler categorical_;
};

}  // namespace coverage

#endif  // COVERAGE_COMMON_RNG_H_

#ifndef COVERAGE_COMMON_STATUS_H_
#define COVERAGE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace coverage {

/// Error categories used across the library's fallible interfaces.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,  // guarded exponential enumerations that would blow up
  kInternal,
};

/// Lightweight status object in the style of LevelDB/Arrow: fallible
/// operations return `Status` (or `StatusOr<T>`); programming errors assert.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<category>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Minimal StatusOr: either an OK status plus a value, or a non-OK status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define COVERAGE_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::coverage::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace coverage

#endif  // COVERAGE_COMMON_STATUS_H_

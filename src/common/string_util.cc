#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace coverage {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  std::size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    while (!out.empty() && out.back() == '0') out.pop_back();
    if (!out.empty() && out.back() == '.') out.pop_back();
  }
  return out;
}

std::string FormatCount(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace coverage

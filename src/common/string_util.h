#ifndef COVERAGE_COMMON_STRING_UTIL_H_
#define COVERAGE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace coverage {

/// Splits `input` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view input, char delim);

/// Joins `parts` with `delim` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// Removes ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Formats a double with `digits` significant decimal places, trimming
/// trailing zeros ("3.1400" -> "3.14").
std::string FormatDouble(double value, int digits = 4);

/// Groups thousands for readability: 1234567 -> "1,234,567".
std::string FormatCount(std::uint64_t value);

}  // namespace coverage

#endif  // COVERAGE_COMMON_STRING_UTIL_H_

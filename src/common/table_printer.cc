#include "common/table_printer.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>

#include "common/string_util.h"

namespace coverage {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  assert(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

TablePrinter::RowBuilder& TablePrinter::RowBuilder::Cell(std::string value) {
  cells_.push_back(std::move(value));
  return *this;
}
TablePrinter::RowBuilder& TablePrinter::RowBuilder::Cell(const char* value) {
  cells_.emplace_back(value);
  return *this;
}
TablePrinter::RowBuilder& TablePrinter::RowBuilder::Cell(double value,
                                                         int digits) {
  cells_.push_back(FormatDouble(value, digits));
  return *this;
}
TablePrinter::RowBuilder& TablePrinter::RowBuilder::Cell(std::uint64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}
TablePrinter::RowBuilder& TablePrinter::RowBuilder::Cell(std::int64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}
TablePrinter::RowBuilder& TablePrinter::RowBuilder::Cell(int value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

void TablePrinter::RowBuilder::Done() { table_->AddRow(std::move(cells_)); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit_row(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

}  // namespace coverage

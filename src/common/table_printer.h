#ifndef COVERAGE_COMMON_TABLE_PRINTER_H_
#define COVERAGE_COMMON_TABLE_PRINTER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace coverage {

/// Renders aligned plain-text tables. Every benchmark binary prints the
/// table/figure it regenerates through this class so EXPERIMENTS.md and the
/// bench output share one format.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; it must have exactly as many cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience for mixed numeric rows.
  class RowBuilder {
   public:
    explicit RowBuilder(TablePrinter* table) : table_(table) {}
    RowBuilder& Cell(std::string value);
    RowBuilder& Cell(const char* value);
    RowBuilder& Cell(double value, int digits = 4);
    RowBuilder& Cell(std::uint64_t value);
    RowBuilder& Cell(std::int64_t value);
    RowBuilder& Cell(int value);
    /// Commits the row to the table.
    void Done();

   private:
    TablePrinter* table_;
    std::vector<std::string> cells_;
  };

  RowBuilder Row() { return RowBuilder(this); }

  /// Writes the table, padded with spaces, with a `---` rule under the header.
  void Print(std::ostream& os) const;

  /// Returns the rendered table as a string.
  std::string ToString() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace coverage

#endif  // COVERAGE_COMMON_TABLE_PRINTER_H_

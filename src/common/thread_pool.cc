#include "common/thread_pool.h"

#include <atomic>

namespace coverage {

ThreadPool::ThreadPool(int num_workers) {
  if (num_workers <= 0) {
    num_workers = static_cast<int>(std::thread::hardware_concurrency());
    if (num_workers < 1) num_workers = 1;
  }
  const int extra = num_workers > 1 ? num_workers - 1 : 0;
  threads_.reserve(static_cast<std::size_t>(extra));
  for (int i = 0; i < extra; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop(int worker) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    try {
      (*job)(worker);
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::RunOnAll(const std::function<void(int)>& fn) {
  if (threads_.empty()) {
    fn(0);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    job_ = &fn;
    remaining_ = static_cast<int>(threads_.size());
    first_error_ = nullptr;
    ++generation_;
  }
  job_cv_.notify_all();
  try {
    fn(0);
  } catch (...) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return remaining_ == 0; });
  job_ = nullptr;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::ParallelFor(std::size_t n, std::size_t chunk,
                             const std::function<void(int, std::size_t)>& fn) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  std::atomic<std::size_t> next{0};
  RunOnAll([&](int worker) {
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk);
      if (begin >= n) return;
      const std::size_t end = begin + chunk < n ? begin + chunk : n;
      for (std::size_t i = begin; i < end; ++i) fn(worker, i);
    }
  });
}

}  // namespace coverage

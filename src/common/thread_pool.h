#ifndef COVERAGE_COMMON_THREAD_POOL_H_
#define COVERAGE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace coverage {

/// A fixed-size worker pool for the parallel MUP searches. The pool spawns
/// `num_workers - 1` threads; the calling thread always participates as
/// worker 0, so `ThreadPool(1)` costs nothing and runs everything inline.
///
/// `num_workers <= 0` means "use the hardware": it is clamped to
/// `std::thread::hardware_concurrency()` (at least 1) in the constructor.
/// This is the single place that defaulting happens — call sites pass
/// their thread-count option through untouched instead of each inventing
/// its own zero handling.
///
/// The pool exposes exactly the two primitives the searches need:
///
///   RunOnAll(fn)        — run `fn(worker)` once on every worker concurrently
///                         (DEEPDIVER's sharded dive loops).
///   ParallelFor(n, fn)  — distribute indices [0, n) across the workers in
///                         dynamically balanced chunks (PATTERN-BREAKER's
///                         per-level frontier evaluation).
///
/// Both block until all work finishes, and rethrow the first exception any
/// worker raised. Workers are reused across calls; only one call may be in
/// flight at a time (the pool is owned by one search).
class ThreadPool {
 public:
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker count including the calling thread; always >= 1.
  int num_workers() const { return static_cast<int>(threads_.size()) + 1; }

  /// Runs `fn(worker)` on every worker (worker in [0, num_workers())),
  /// the calling thread serving worker 0. Returns once every invocation has
  /// finished; rethrows the first exception raised.
  void RunOnAll(const std::function<void(int)>& fn);

  /// Invokes `fn(worker, index)` exactly once for every index in [0, n),
  /// handing out chunks of `chunk` consecutive indices to idle workers.
  void ParallelFor(std::size_t n, std::size_t chunk,
                   const std::function<void(int, std::size_t)>& fn);

 private:
  void WorkerLoop(int worker);

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable job_cv_;   // workers wait here for a job
  std::condition_variable done_cv_;  // RunOnAll waits here for completion
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;  // bumped per job so workers run each once
  int remaining_ = 0;             // workers still inside the current job
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace coverage

#endif  // COVERAGE_COMMON_THREAD_POOL_H_

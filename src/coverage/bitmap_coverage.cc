#include "coverage/bitmap_coverage.h"

#include <algorithm>
#include <cassert>

namespace coverage {

BitmapCoverage::BitmapCoverage(const AggregatedData& data) : data_(data) {
  const Schema& schema = data.schema();
  const int d = schema.num_attributes();
  offsets_.resize(static_cast<std::size_t>(d));
  int total = 0;
  for (int i = 0; i < d; ++i) {
    offsets_[static_cast<std::size_t>(i)] = total;
    total += schema.cardinality(i);
  }
  indices_.assign(static_cast<std::size_t>(total),
                  BitVector(data.num_combinations()));
  for (std::size_t k = 0; k < data.num_combinations(); ++k) {
    const auto combo = data.combination(k);
    for (int i = 0; i < d; ++i) {
      indices_[static_cast<std::size_t>(offsets_[static_cast<std::size_t>(i)]) +
               static_cast<std::size_t>(combo[static_cast<std::size_t>(i)])]
          .Set(k, true);
    }
  }
  index_popcounts_.reserve(indices_.size());
  for (const BitVector& bv : indices_) index_popcounts_.push_back(bv.Count());
  scratch_ = BitVector(data.num_combinations());
}

std::uint64_t BitmapCoverage::Coverage(const Pattern& pattern) const {
  ++num_queries_;
  // Fast paths: the root pattern needs no index work, and single-cell
  // patterns need no AND.
  int first_det = -1;
  int num_det = 0;
  for (int i = 0; i < pattern.num_attributes(); ++i) {
    if (pattern.is_deterministic(i)) {
      if (first_det < 0) first_det = i;
      ++num_det;
    }
  }
  if (num_det == 0) return data_.total_count();
  if (num_det == 1) {
    return index(first_det, pattern.cell(first_det)).Dot(data_.counts());
  }
  BitVector acc = index(first_det, pattern.cell(first_det));
  for (int i = first_det + 1; i < pattern.num_attributes(); ++i) {
    if (!pattern.is_deterministic(i)) continue;
    acc.AndWith(index(i, pattern.cell(i)));
    if (acc.None()) return 0;
  }
  return acc.Dot(data_.counts());
}

bool BitmapCoverage::CoverageAtLeast(const Pattern& pattern,
                                     std::uint64_t tau) const {
  ++num_queries_;
  // Gather deterministic cells ordered by index selectivity (sparsest
  // first) so the accumulator shrinks as fast as possible.
  assert(pattern.level() <= 64 && "CoverageAtLeast supports up to 64 cells");
  int det_slots[64];
  int num_det = 0;
  for (int i = 0; i < pattern.num_attributes(); ++i) {
    if (!pattern.is_deterministic(i)) continue;
    det_slots[num_det++] =
        offsets_[static_cast<std::size_t>(i)] + pattern.cell(i);
  }
  if (num_det == 0) return data_.total_count() >= tau;

  std::sort(det_slots, det_slots + num_det, [&](int a, int b) {
    return index_popcounts_[static_cast<std::size_t>(a)] <
           index_popcounts_[static_cast<std::size_t>(b)];
  });

  const std::vector<std::uint64_t>& counts = data_.counts();
  const std::size_t num_words = scratch_.num_words();

  if (num_det == 1) {
    // Single index: stream its words directly against the counts.
    const BitVector& only = indices_[static_cast<std::size_t>(det_slots[0])];
    std::uint64_t sum = 0;
    for (std::size_t w = 0; w < num_words; ++w) {
      BitVector::Word word = only.words()[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        sum += counts[w * BitVector::kBitsPerWord +
                      static_cast<std::size_t>(bit)];
        if (sum >= tau) return true;
        word &= word - 1;
      }
    }
    return false;
  }

  scratch_ = indices_[static_cast<std::size_t>(det_slots[0])];
  for (int k = 1; k < num_det; ++k) {
    scratch_.AndWith(indices_[static_cast<std::size_t>(det_slots[k])]);
    if (scratch_.None()) return false;
  }
  std::uint64_t sum = 0;
  for (std::size_t w = 0; w < num_words; ++w) {
    BitVector::Word word = scratch_.words()[w];
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      sum +=
          counts[w * BitVector::kBitsPerWord + static_cast<std::size_t>(bit)];
      if (sum >= tau) return true;
      word &= word - 1;
    }
  }
  return false;
}

BitVector BitmapCoverage::MatchVector(const Pattern& pattern) const {
  BitVector acc(data_.num_combinations(), true);
  for (int i = 0; i < pattern.num_attributes(); ++i) {
    if (!pattern.is_deterministic(i)) continue;
    acc.AndWith(index(i, pattern.cell(i)));
  }
  return acc;
}

}  // namespace coverage

#include "coverage/bitmap_coverage.h"

#include <algorithm>
#include <cassert>

namespace coverage {

BitmapCoverage::BitmapCoverage(const AggregatedData& data) : data_(data) {
  const Schema& schema = data.schema();
  const int d = schema.num_attributes();
  offsets_.resize(static_cast<std::size_t>(d));
  int total = 0;
  for (int i = 0; i < d; ++i) {
    offsets_[static_cast<std::size_t>(i)] = total;
    total += schema.cardinality(i);
  }
  indices_.assign(static_cast<std::size_t>(total),
                  BitVector(data.num_combinations()));
  for (std::size_t k = 0; k < data.num_combinations(); ++k) {
    const auto combo = data.combination(k);
    for (int i = 0; i < d; ++i) {
      indices_[static_cast<std::size_t>(offsets_[static_cast<std::size_t>(i)]) +
               static_cast<std::size_t>(combo[static_cast<std::size_t>(i)])]
          .Set(k, true);
    }
  }
  index_popcounts_.reserve(indices_.size());
  for (const BitVector& bv : indices_) index_popcounts_.push_back(bv.Count());
}

int BitmapCoverage::GatherSlots(const Pattern& pattern,
                                QueryContext& ctx) const {
  ctx.slots.clear();
  for (int i = 0; i < pattern.num_attributes(); ++i) {
    if (!pattern.is_deterministic(i)) continue;
    ctx.slots.push_back(&index(i, pattern.cell(i)));
  }
  const BitVector* base = indices_.data();
  std::sort(ctx.slots.begin(), ctx.slots.end(),
            [&](const BitVector* a, const BitVector* b) {
              return index_popcounts_[static_cast<std::size_t>(a - base)] <
                     index_popcounts_[static_cast<std::size_t>(b - base)];
            });
  return static_cast<int>(ctx.slots.size());
}

std::uint64_t BitmapCoverage::Coverage(const Pattern& pattern,
                                       QueryContext& ctx) const {
  ctx.CountQuery();
  // No selectivity sort here: without an early exit the fused chain does
  // identical work in any operand order.
  ctx.slots.clear();
  for (int i = 0; i < pattern.num_attributes(); ++i) {
    if (!pattern.is_deterministic(i)) continue;
    ctx.slots.push_back(&index(i, pattern.cell(i)));
  }
  if (ctx.slots.empty()) return data_.total_count();
  return BitVector::AndChainDot(ctx.slots.data(),
                                static_cast<int>(ctx.slots.size()),
                                data_.counts());
}

bool BitmapCoverage::CoverageAtLeast(const Pattern& pattern, std::uint64_t tau,
                                     QueryContext& ctx) const {
  ctx.CountQuery();
  const int num_det = GatherSlots(pattern, ctx);
  if (num_det == 0) return data_.total_count() >= tau;
  return BitVector::AndChainAtLeast(ctx.slots.data(), num_det, data_.counts(),
                                    tau);
}

BitVector BitmapCoverage::MatchVector(const Pattern& pattern) const {
  BitVector acc(data_.num_combinations(), true);
  for (int i = 0; i < pattern.num_attributes(); ++i) {
    if (!pattern.is_deterministic(i)) continue;
    acc.AndWith(index(i, pattern.cell(i)));
  }
  return acc;
}

}  // namespace coverage

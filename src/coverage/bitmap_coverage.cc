#include "coverage/bitmap_coverage.h"

#include <algorithm>
#include <cassert>

namespace coverage {

BitmapCoverage::BitmapCoverage(const AggregatedData& data) : data_(data) {
  const Schema& schema = data.schema();
  const int d = schema.num_attributes();
  offsets_.resize(static_cast<std::size_t>(d));
  int total = 0;
  for (int i = 0; i < d; ++i) {
    offsets_[static_cast<std::size_t>(i)] = total;
    total += schema.cardinality(i);
  }
  indices_.assign(static_cast<std::size_t>(total),
                  BitVector(data.num_combinations()));
  for (std::size_t k = 0; k < data.num_combinations(); ++k) {
    const auto combo = data.combination(k);
    for (int i = 0; i < d; ++i) {
      indices_[static_cast<std::size_t>(offsets_[static_cast<std::size_t>(i)]) +
               static_cast<std::size_t>(combo[static_cast<std::size_t>(i)])]
          .Set(k, true);
    }
  }
  index_popcounts_.reserve(indices_.size());
  for (const BitVector& bv : indices_) index_popcounts_.push_back(bv.Count());
}

BitmapCoverage::BitmapCoverage(const AggregatedData& data,
                               const BitmapCoverage& prev)
    : data_(data),
      offsets_(prev.offsets_),
      indices_(prev.indices_),
      index_popcounts_(prev.index_popcounts_) {
  assert(data.schema() == prev.data_.schema());
  assert(prev.data_.num_tombstones() == 0 &&
         "a prefix with tombstones may revive combinations; use the "
         "decremental constructor");
  ExtendWithNewCombinations(prev.data_.num_combinations());
}

BitmapCoverage::BitmapCoverage(const AggregatedData& data,
                               const BitmapCoverage& prev,
                               std::span<const std::size_t> tombstoned,
                               std::span<const std::size_t> revived)
    : data_(data),
      offsets_(prev.offsets_),
      indices_(prev.indices_),
      index_popcounts_(prev.index_popcounts_) {
  assert(data.schema() == prev.data_.schema());
  const std::size_t prev_n = prev.data_.num_combinations();
  for (const std::size_t k : tombstoned) {
    assert(k < prev_n && data.count(k) == 0);
    SetCombinationBits(k, false);
  }
  for (const std::size_t k : revived) {
    assert(k < prev_n && data.count(k) > 0);
    SetCombinationBits(k, true);
  }
  ExtendWithNewCombinations(prev_n);
}

void BitmapCoverage::SetCombinationBits(std::size_t k, bool value) {
  const auto combo = data_.combination(k);
  const int d = data_.schema().num_attributes();
  for (int i = 0; i < d; ++i) {
    const std::size_t slot =
        static_cast<std::size_t>(offsets_[static_cast<std::size_t>(i)]) +
        static_cast<std::size_t>(combo[static_cast<std::size_t>(i)]);
    assert(indices_[slot].Get(k) != value);
    indices_[slot].Set(k, value);
    if (value) {
      ++index_popcounts_[slot];
    } else {
      --index_popcounts_[slot];
    }
  }
}

void BitmapCoverage::ExtendWithNewCombinations(std::size_t prev_n) {
  const std::size_t new_n = data_.num_combinations();
  assert(prev_n <= new_n);
  if (prev_n == new_n) return;
  const int d = data_.schema().num_attributes();
  // Pack the new combinations' membership bits slot-major, then extend every
  // slot vector with one AppendWords call.
  const std::size_t delta_words =
      (new_n - prev_n + BitVector::kBitsPerWord - 1) / BitVector::kBitsPerWord;
  std::vector<BitVector::Word> deltas(indices_.size() * delta_words, 0);
  for (std::size_t k = prev_n; k < new_n; ++k) {
    const auto combo = data_.combination(k);
    const std::size_t j = k - prev_n;
    for (int i = 0; i < d; ++i) {
      const std::size_t slot =
          static_cast<std::size_t>(offsets_[static_cast<std::size_t>(i)]) +
          static_cast<std::size_t>(combo[static_cast<std::size_t>(i)]);
      deltas[slot * delta_words + j / BitVector::kBitsPerWord] |=
          BitVector::Word{1} << (j % BitVector::kBitsPerWord);
      ++index_popcounts_[slot];
    }
  }
  for (std::size_t slot = 0; slot < indices_.size(); ++slot) {
    indices_[slot].AppendWords(deltas.data() + slot * delta_words,
                               new_n - prev_n);
  }
}

int BitmapCoverage::GatherSlots(const Pattern& pattern,
                                QueryContext& ctx) const {
  ctx.slots.clear();
  for (int i = 0; i < pattern.num_attributes(); ++i) {
    if (!pattern.is_deterministic(i)) continue;
    ctx.slots.push_back(&index(i, pattern.cell(i)));
  }
  const BitVector* base = indices_.data();
  std::sort(ctx.slots.begin(), ctx.slots.end(),
            [&](const BitVector* a, const BitVector* b) {
              return index_popcounts_[static_cast<std::size_t>(a - base)] <
                     index_popcounts_[static_cast<std::size_t>(b - base)];
            });
  return static_cast<int>(ctx.slots.size());
}

std::uint64_t BitmapCoverage::Coverage(const Pattern& pattern,
                                       QueryContext& ctx) const {
  ctx.CountQuery();
  // No selectivity sort here: without an early exit the fused chain does
  // identical work in any operand order.
  ctx.slots.clear();
  for (int i = 0; i < pattern.num_attributes(); ++i) {
    if (!pattern.is_deterministic(i)) continue;
    ctx.slots.push_back(&index(i, pattern.cell(i)));
  }
  if (ctx.slots.empty()) return data_.total_count();
  return BitVector::AndChainDot(ctx.slots.data(),
                                static_cast<int>(ctx.slots.size()),
                                data_.counts());
}

bool BitmapCoverage::CoverageAtLeast(const Pattern& pattern, std::uint64_t tau,
                                     QueryContext& ctx) const {
  ctx.CountQuery();
  const int num_det = GatherSlots(pattern, ctx);
  if (num_det == 0) return data_.total_count() >= tau;
  return BitVector::AndChainAtLeast(ctx.slots.data(), num_det, data_.counts(),
                                    tau);
}

std::uint64_t BitmapCoverage::Coverage(const PackedPattern& pattern,
                                       const PatternCodec& codec,
                                       QueryContext& ctx) const {
  ctx.CountQuery();
  ctx.slots.clear();
  codec.ForEachDeterministic(pattern, [&](int attr) {
    ctx.slots.push_back(&index(attr, codec.cell(pattern, attr)));
  });
  if (ctx.slots.empty()) return data_.total_count();
  return BitVector::AndChainDot(ctx.slots.data(),
                                static_cast<int>(ctx.slots.size()),
                                data_.counts());
}

bool BitmapCoverage::CoverageAtLeast(const PackedPattern& pattern,
                                     const PatternCodec& codec,
                                     std::uint64_t tau,
                                     QueryContext& ctx) const {
  ctx.CountQuery();
  ctx.slots.clear();
  codec.ForEachDeterministic(pattern, [&](int attr) {
    ctx.slots.push_back(&index(attr, codec.cell(pattern, attr)));
  });
  if (ctx.slots.empty()) return data_.total_count() >= tau;
  const BitVector* base = indices_.data();
  std::sort(ctx.slots.begin(), ctx.slots.end(),
            [&](const BitVector* a, const BitVector* b) {
              return index_popcounts_[static_cast<std::size_t>(a - base)] <
                     index_popcounts_[static_cast<std::size_t>(b - base)];
            });
  return BitVector::AndChainAtLeast(ctx.slots.data(),
                                    static_cast<int>(ctx.slots.size()),
                                    data_.counts(), tau);
}

BitVector BitmapCoverage::MatchVector(const Pattern& pattern) const {
  BitVector acc(data_.num_combinations(), true);
  for (int i = 0; i < pattern.num_attributes(); ++i) {
    if (!pattern.is_deterministic(i)) continue;
    acc.AndWith(index(i, pattern.cell(i)));
  }
  return acc;
}

}  // namespace coverage

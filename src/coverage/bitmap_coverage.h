#ifndef COVERAGE_COVERAGE_BITMAP_COVERAGE_H_
#define COVERAGE_COVERAGE_BITMAP_COVERAGE_H_

#include <vector>

#include "common/bitvector.h"
#include "coverage/coverage_oracle.h"
#include "dataset/aggregate.h"

namespace coverage {

/// The inverted-index coverage oracle of Appendix A. One bit vector per
/// (attribute, value) over the *distinct* value combinations of D; coverage
/// of a pattern is the AND of the vectors of its deterministic cells dotted
/// with the multiplicity vector.
///
/// All query state lives in the caller's QueryContext and the AND chain is
/// fused with the dot product (BitVector::AndChainDot / AndChainAtLeast), so
/// queries materialise no intermediate vector, allocate nothing, and one
/// oracle instance is safely shareable across any number of threads.
class BitmapCoverage : public CoverageOracle {
 public:
  /// The aggregated data must outlive the oracle.
  explicit BitmapCoverage(const AggregatedData& data);

  /// Incremental build: `data` must extend `prev.data()` — same schema, and
  /// the first prev.data().num_combinations() combinations identical (the
  /// prefix stability AggregatedData::AppendRows guarantees). The per-slot
  /// vectors are copied from `prev` and grown by one word-blocked append
  /// that sets only the new combinations' bits; multiplicity changes of
  /// existing combinations live entirely in `data.counts()` and need no
  /// index work. This is the epoch-advance path of the streaming engine.
  BitmapCoverage(const AggregatedData& data, const BitmapCoverage& prev);

  using CoverageOracle::Coverage;
  using CoverageOracle::CoverageAtLeast;

  std::uint64_t Coverage(const Pattern& pattern,
                         QueryContext& ctx) const override;

  /// Threshold query with two early exits: the fused chain runs
  /// most-selective index first so blocks zero out as fast as possible, and
  /// the running dot product stops as soon as the partial sum reaches `tau`.
  /// This is the kernel PATTERN-BREAKER and DEEPDIVER issue millions of
  /// times.
  bool CoverageAtLeast(const Pattern& pattern, std::uint64_t tau,
                       QueryContext& ctx) const override;

  /// The bit vector of distinct combinations matching `pattern` (AND of the
  /// deterministic cells' vectors). Exposed for DEEPDIVER's climb phase and
  /// the tests.
  BitVector MatchVector(const Pattern& pattern) const;

  const AggregatedData& data() const { return data_; }

  /// Inverted index for attribute `attr` = value `v`.
  const BitVector& index(int attr, Value v) const {
    return indices_[static_cast<std::size_t>(offsets_[
        static_cast<std::size_t>(attr)]) + static_cast<std::size_t>(v)];
  }

 private:
  /// Fills `ctx.slots` with the pattern's deterministic-cell index vectors,
  /// ordered sparsest first. Returns the slot count.
  int GatherSlots(const Pattern& pattern, QueryContext& ctx) const;

  const AggregatedData& data_;
  std::vector<int> offsets_;        // attr -> first index slot
  std::vector<BitVector> indices_;  // per (attr, value), Σ c_i vectors
  std::vector<std::size_t> index_popcounts_;  // parallel to indices_
};

}  // namespace coverage

#endif  // COVERAGE_COVERAGE_BITMAP_COVERAGE_H_

#ifndef COVERAGE_COVERAGE_BITMAP_COVERAGE_H_
#define COVERAGE_COVERAGE_BITMAP_COVERAGE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/bitvector.h"
#include "coverage/coverage_oracle.h"
#include "dataset/aggregate.h"

namespace coverage {

/// The inverted-index coverage oracle of Appendix A. One bit vector per
/// (attribute, value) over the *distinct* value combinations of D; coverage
/// of a pattern is the AND of the vectors of its deterministic cells dotted
/// with the multiplicity vector.
///
/// Thread-safety: immutable after construction. All query state lives in
/// the caller's QueryContext and the AND chain is fused with the dot product
/// (BitVector::AndChainDot / AndChainAtLeast), so queries materialise no
/// intermediate vector, allocate nothing, and one oracle instance is safely
/// shareable across any number of threads (one QueryContext per thread).
///
/// Complexity: construction is O(N·d) bit sets over N distinct combinations;
/// a query is one fused word-blocked pass over ℓ(P) index vectors of
/// ⌈N/64⌉ words, i.e. O(ℓ(P)·N/64) word operations with early exit for the
/// threshold form.
class BitmapCoverage : public CoverageOracle {
 public:
  /// The aggregated data must outlive the oracle.
  explicit BitmapCoverage(const AggregatedData& data);

  /// Incremental build: `data` must extend `prev.data()` — same schema, and
  /// the first prev.data().num_combinations() combinations identical (the
  /// prefix stability AggregatedData::AppendRows guarantees). The per-slot
  /// vectors are copied from `prev` and grown by one word-blocked append
  /// that sets only the new combinations' bits; multiplicity changes of
  /// existing combinations live entirely in `data.counts()` and need no
  /// index work. This is the append-epoch path of the streaming engine,
  /// valid only while `prev` carries no tombstoned (zeroed) combinations.
  BitmapCoverage(const AggregatedData& data, const BitmapCoverage& prev);

  /// Decremental / mixed build: like the incremental constructor, but first
  /// applies liveness changes within the shared prefix. Bits of `tombstoned`
  /// combination ids (multiplicity fell to 0 since `prev`) are zeroed in all
  /// d of their index vectors; bits of `revived` ids (multiplicity rose from
  /// 0) are set again. Zero counts already keep query *results* correct
  /// without any masking — the masking is what keeps a long-lived sliding
  /// window *fast*: dead combinations would otherwise hold their bits
  /// forever, inflating the selectivity estimates and defeating the
  /// zero-word early exits of the threshold kernel. This is the
  /// retraction-epoch path of the streaming engine. O(prefix copy +
  /// (|tombstoned| + |revived|)·d + new-combination append).
  BitmapCoverage(const AggregatedData& data, const BitmapCoverage& prev,
                 std::span<const std::size_t> tombstoned,
                 std::span<const std::size_t> revived);

  using CoverageOracle::Coverage;
  using CoverageOracle::CoverageAtLeast;

  std::uint64_t Coverage(const Pattern& pattern,
                         QueryContext& ctx) const override;

  /// Threshold query with two early exits: the fused chain runs
  /// most-selective index first so blocks zero out as fast as possible, and
  /// the running dot product stops as soon as the partial sum reaches `tau`.
  /// This is the kernel PATTERN-BREAKER and DEEPDIVER issue millions of
  /// times.
  bool CoverageAtLeast(const Pattern& pattern, std::uint64_t tau,
                       QueryContext& ctx) const override;

  /// Packed-key forms: identical kernels, slots gathered by walking the
  /// codec's deterministic fields (O(level), no Pattern materialized). Slot
  /// order — ascending attribute, then the same popcount sort — matches the
  /// vector<int> path bit for bit, which the differential suite relies on.
  std::uint64_t Coverage(const PackedPattern& pattern,
                         const PatternCodec& codec,
                         QueryContext& ctx) const override;
  bool CoverageAtLeast(const PackedPattern& pattern, const PatternCodec& codec,
                       std::uint64_t tau, QueryContext& ctx) const override;

  /// The bit vector of distinct combinations matching `pattern` (AND of the
  /// deterministic cells' vectors). Exposed for DEEPDIVER's climb phase and
  /// the tests.
  BitVector MatchVector(const Pattern& pattern) const;

  const AggregatedData& data() const { return data_; }

  /// Inverted index for attribute `attr` = value `v`.
  const BitVector& index(int attr, Value v) const {
    return indices_[static_cast<std::size_t>(offsets_[
        static_cast<std::size_t>(attr)]) + static_cast<std::size_t>(v)];
  }

 private:
  /// Fills `ctx.slots` with the pattern's deterministic-cell index vectors,
  /// ordered sparsest first. Returns the slot count.
  int GatherSlots(const Pattern& pattern, QueryContext& ctx) const;

  /// Shared tail of the incremental constructors: appends membership bits
  /// for combinations [prev_n, data.num_combinations()) to every slot in one
  /// word-blocked AppendWords pass per slot.
  void ExtendWithNewCombinations(std::size_t prev_n);

  /// Sets or clears combination `k`'s bit in each of its d index vectors,
  /// keeping the popcounts exact.
  void SetCombinationBits(std::size_t k, bool value);

  const AggregatedData& data_;
  std::vector<int> offsets_;        // attr -> first index slot
  std::vector<BitVector> indices_;  // per (attr, value), Σ c_i vectors
  std::vector<std::size_t> index_popcounts_;  // parallel to indices_
};

}  // namespace coverage

#endif  // COVERAGE_COVERAGE_BITMAP_COVERAGE_H_

#ifndef COVERAGE_COVERAGE_COVERAGE_ORACLE_H_
#define COVERAGE_COVERAGE_COVERAGE_ORACLE_H_

#include <cstdint>

#include "pattern/pattern.h"

namespace coverage {

/// The coverage oracle of Appendix A: answers cov(P, D) (Definition 2).
/// Implementations track how many times they were consulted, the cost metric
/// the paper's search algorithms are designed to minimise.
class CoverageOracle {
 public:
  virtual ~CoverageOracle() = default;

  /// Number of tuples of D matching `pattern`.
  virtual std::uint64_t Coverage(const Pattern& pattern) const = 0;

  /// True iff cov(pattern) >= tau. Implementations may answer this much
  /// faster than an exact count (early exit once tau matches are found);
  /// the search algorithms only ever need the comparison.
  virtual bool CoverageAtLeast(const Pattern& pattern,
                               std::uint64_t tau) const {
    return Coverage(pattern) >= tau;
  }

  /// True iff cov(pattern) >= tau (Definition 3).
  bool IsCovered(const Pattern& pattern, std::uint64_t tau) const {
    return CoverageAtLeast(pattern, tau);
  }

  /// Number of Coverage() calls served so far.
  std::uint64_t num_queries() const { return num_queries_; }
  void ResetQueryCounter() { num_queries_ = 0; }

 protected:
  mutable std::uint64_t num_queries_ = 0;
};

}  // namespace coverage

#endif  // COVERAGE_COVERAGE_COVERAGE_ORACLE_H_

#ifndef COVERAGE_COVERAGE_COVERAGE_ORACLE_H_
#define COVERAGE_COVERAGE_COVERAGE_ORACLE_H_

#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "pattern/packed_pattern.h"
#include "pattern/pattern.h"

namespace coverage {

/// Per-caller state for coverage queries: reusable scratch buffers plus the
/// query counter the paper's efficiency argument is stated in. Oracles keep
/// no mutable per-query state of their own, so one oracle instance can serve
/// any number of threads as long as each thread brings its own QueryContext.
/// Contexts are cheap to construct and intended to be reused across queries —
/// the buffers grow to the working-set size once and are never reallocated on
/// the hot path.
class QueryContext {
 public:
  /// Number of Coverage() / CoverageAtLeast() calls served through this
  /// context so far.
  std::uint64_t num_queries() const { return num_queries_; }
  void ResetQueryCounter() { num_queries_ = 0; }

  // --- implementation state, used by oracle implementations ---------------

  /// Selectivity-ordered operand buffer for the fused AND-chain kernels
  /// (one slot per deterministic cell of the queried pattern).
  std::vector<const BitVector*> slots;

  void CountQuery() { ++num_queries_; }

 private:
  std::uint64_t num_queries_ = 0;
};

/// The coverage oracle of Appendix A: answers cov(P, D) (Definition 2).
///
/// The primary entry points take an explicit QueryContext and are const in
/// the strong sense: implementations must not mutate any member state, so
/// concurrent queries on one oracle are safe provided each thread uses its
/// own context. The context-free overloads are single-threaded conveniences
/// that route through an internal default context (which also backs
/// `num_queries()`, the cost metric the search algorithms minimise).
class CoverageOracle {
 public:
  virtual ~CoverageOracle() = default;

  /// Number of tuples of D matching `pattern`. Thread-safe with a private
  /// `ctx` per thread.
  virtual std::uint64_t Coverage(const Pattern& pattern,
                                 QueryContext& ctx) const = 0;

  /// True iff cov(pattern) >= tau. Implementations may answer this much
  /// faster than an exact count (early exit once tau matches are found);
  /// the search algorithms only ever need the comparison.
  virtual bool CoverageAtLeast(const Pattern& pattern, std::uint64_t tau,
                               QueryContext& ctx) const {
    return Coverage(pattern, ctx) >= tau;
  }

  /// Packed-key entry points used by the packed search loops. The defaults
  /// decode and answer through the vector<int> path (one materialization per
  /// query — only non-indexed oracles like ScanCoverage pay it); BitmapCoverage
  /// overrides both to gather index slots straight from the codec's fields.
  /// Either way exactly one query is counted, so the paper's cost metric is
  /// representation-independent.
  virtual std::uint64_t Coverage(const PackedPattern& pattern,
                                 const PatternCodec& codec,
                                 QueryContext& ctx) const {
    return Coverage(codec.Decode(pattern), ctx);
  }
  virtual bool CoverageAtLeast(const PackedPattern& pattern,
                               const PatternCodec& codec, std::uint64_t tau,
                               QueryContext& ctx) const {
    return CoverageAtLeast(codec.Decode(pattern), tau, ctx);
  }

  /// Single-threaded convenience overloads on the oracle's default context.
  ///
  /// Deprecated: the hidden mutable default context makes these a
  /// thread-safety trap — two threads innocently calling `Coverage(p)` on a
  /// shared oracle race on its scratch buffers. Pass an explicit
  /// QueryContext (one per thread), or go through CoverageService, whose
  /// batched query API manages contexts for you.
  [[deprecated(
      "routes through a hidden shared QueryContext; pass an explicit "
      "context (or use CoverageService::QueryBatch)")]]
  std::uint64_t Coverage(const Pattern& pattern) const {
    return Coverage(pattern, default_context_);
  }
  [[deprecated(
      "routes through a hidden shared QueryContext; pass an explicit "
      "context (or use CoverageService::QueryBatch)")]]
  bool CoverageAtLeast(const Pattern& pattern, std::uint64_t tau) const {
    return CoverageAtLeast(pattern, tau, default_context_);
  }

  /// True iff cov(pattern) >= tau (Definition 3).
  [[deprecated(
      "routes through a hidden shared QueryContext; pass an explicit "
      "context (or use CoverageService::QueryBatch)")]]
  bool IsCovered(const Pattern& pattern, std::uint64_t tau) const {
    return CoverageAtLeast(pattern, tau, default_context_);
  }
  bool IsCovered(const Pattern& pattern, std::uint64_t tau,
                 QueryContext& ctx) const {
    return CoverageAtLeast(pattern, tau, ctx);
  }

  /// Number of Coverage() calls served through the default context.
  std::uint64_t num_queries() const { return default_context_.num_queries(); }
  void ResetQueryCounter() { default_context_.ResetQueryCounter(); }

  /// The context behind the convenience overloads; exposed so serial callers
  /// can mix both API styles against one counter.
  QueryContext& default_context() const { return default_context_; }

 private:
  mutable QueryContext default_context_;
};

}  // namespace coverage

#endif  // COVERAGE_COVERAGE_COVERAGE_ORACLE_H_

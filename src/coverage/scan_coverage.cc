#include "coverage/scan_coverage.h"

namespace coverage {

std::uint64_t ScanCoverage::Coverage(const Pattern& pattern,
                                     QueryContext& ctx) const {
  ctx.CountQuery();
  std::uint64_t count = 0;
  for (std::size_t r = 0; r < dataset_.num_rows(); ++r) {
    if (pattern.Matches(dataset_.row(r))) ++count;
  }
  return count;
}

}  // namespace coverage

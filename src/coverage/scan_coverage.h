#ifndef COVERAGE_COVERAGE_SCAN_COVERAGE_H_
#define COVERAGE_COVERAGE_SCAN_COVERAGE_H_

#include "coverage/coverage_oracle.h"
#include "dataset/dataset.h"

namespace coverage {

/// Reference coverage oracle: a full scan of D per query, following
/// Definition 2 literally. O(n·d) per query; used by tests as ground truth
/// and by the naive baselines.
class ScanCoverage : public CoverageOracle {
 public:
  /// The dataset must outlive the oracle.
  explicit ScanCoverage(const Dataset& dataset) : dataset_(dataset) {}

  using CoverageOracle::Coverage;
  using CoverageOracle::CoverageAtLeast;

  std::uint64_t Coverage(const Pattern& pattern,
                         QueryContext& ctx) const override;

 private:
  const Dataset& dataset_;
};

}  // namespace coverage

#endif  // COVERAGE_COVERAGE_SCAN_COVERAGE_H_

#ifndef COVERAGE_COVERAGE_LIB_H_
#define COVERAGE_COVERAGE_LIB_H_

/// \file
/// Umbrella header for libcoverage, a reproduction of
/// "Assessing and Remedying Coverage for a Given Dataset" (ICDE 2019).
///
/// Typical use goes through the CoverageService façade — typed requests in,
/// StatusOr<> responses out, with the paper's §V algorithm guidance built in
/// as the kAuto planner:
///
///   #include "coverage_lib.h"
///   using namespace coverage;
///
///   Dataset data = ...;                            // categorical relation
///   auto service = CoverageService::FromDataset(data);
///   auto audit = service->Audit(AuditRequest{.tau = 30});    // Problem 1
///   //   audit->mups + the planner's recorded decision
///
///   EnhanceRequest enhance{.tau = 30, .lambda = 2};
///   enhance.mups = audit->mups;
///   auto plan = service->Enhance(enhance);                   // Problem 2
///
/// Mutable data (appends, retractions, sliding windows) goes through
/// CoverageService::OpenSession, which wraps the incremental CoverageEngine
/// behind the same request/response types.
///
/// To serve over the network, wrap the service in a CoverageServer
/// (server/coverage_server.h): an embedded HTTP/1.1 front-end speaking the
/// JSON wire protocol of server/wire.h — the same serializer behind
/// `coverage_cli --json`.
///
/// The lower layers stay public for hand-wiring (every header below is
/// self-contained — include exactly what you need):
///
///   AggregatedData agg(data);                 // distinct combos + counts
///   BitmapCoverage oracle(agg);               // Appendix-A inverted index
///   MupSearchOptions opts{.tau = 30};
///   auto mups = FindMupsDeepDiver(oracle, opts);   // Problem 1

#include "common/bitvector.h"           // IWYU pragma: export
#include "common/rng.h"                 // IWYU pragma: export
#include "common/status.h"              // IWYU pragma: export
#include "common/stopwatch.h"           // IWYU pragma: export
#include "common/string_util.h"         // IWYU pragma: export
#include "common/table_printer.h"       // IWYU pragma: export
#include "coverage/bitmap_coverage.h"   // IWYU pragma: export
#include "coverage/coverage_oracle.h"   // IWYU pragma: export
#include "coverage/scan_coverage.h"     // IWYU pragma: export
#include "datagen/adversarial.h"        // IWYU pragma: export
#include "datagen/airbnb.h"             // IWYU pragma: export
#include "datagen/bluenile.h"           // IWYU pragma: export
#include "datagen/compas.h"             // IWYU pragma: export
#include "dataset/aggregate.h"          // IWYU pragma: export
#include "dataset/bucketize.h"          // IWYU pragma: export
#include "dataset/csv_stream.h"         // IWYU pragma: export
#include "dataset/dataset.h"            // IWYU pragma: export
#include "dataset/schema.h"             // IWYU pragma: export
#include "engine/coverage_engine.h"     // IWYU pragma: export
#include "enhancement/enhancement.h"    // IWYU pragma: export
#include "enhancement/expansion.h"      // IWYU pragma: export
#include "enhancement/hitting_set.h"    // IWYU pragma: export
#include "enhancement/report.h"         // IWYU pragma: export
#include "enhancement/validation.h"     // IWYU pragma: export
#include "ml/decision_tree.h"           // IWYU pragma: export
#include "ml/model_metrics.h"           // IWYU pragma: export
#include "ml/split.h"                   // IWYU pragma: export
#include "mups/mup_index.h"             // IWYU pragma: export
#include "mups/mups.h"                  // IWYU pragma: export
#include "pattern/packed_pattern.h"     // IWYU pragma: export
#include "pattern/packed_set.h"         // IWYU pragma: export
#include "pattern/pattern.h"            // IWYU pragma: export
#include "persist/durable_engine.h"     // IWYU pragma: export
#include "persist/fault_fs.h"           // IWYU pragma: export
#include "persist/snapshot.h"           // IWYU pragma: export
#include "persist/wal.h"                // IWYU pragma: export
#include "pattern/pattern_graph.h"      // IWYU pragma: export
#include "pattern/pattern_ops.h"        // IWYU pragma: export
#include "server/coverage_server.h"     // IWYU pragma: export
#include "server/http.h"                // IWYU pragma: export
#include "server/http_client.h"         // IWYU pragma: export
#include "server/http_server.h"         // IWYU pragma: export
#include "server/json.h"                // IWYU pragma: export
#include "server/wire.h"                // IWYU pragma: export
#include "service/coverage_service.h"   // IWYU pragma: export
#include "service/pool_arena.h"         // IWYU pragma: export

#endif  // COVERAGE_COVERAGE_LIB_H_

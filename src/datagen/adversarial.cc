#include "datagen/adversarial.h"

#include <cassert>

namespace coverage {
namespace datagen {

Dataset MakeDiagonal(int n) {
  assert(n >= 1);
  Dataset data(Schema::Binary(n));
  std::vector<Value> row(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    row[static_cast<std::size_t>(i)] = 1;
    data.AppendRow(row);
    row[static_cast<std::size_t>(i)] = 0;
  }
  return data;
}

Dataset MakeVertexCoverReduction(
    int num_vertices, const std::vector<std::pair<int, int>>& edges) {
  assert(num_vertices >= 1);
  const int d = static_cast<int>(edges.size());
  assert(d >= 1);
  Dataset data(Schema::Binary(d));
  std::vector<Value> row(static_cast<std::size_t>(d));
  for (int v = 0; v < num_vertices; ++v) {
    for (int j = 0; j < d; ++j) {
      const auto& [a, b] = edges[static_cast<std::size_t>(j)];
      assert(a >= 0 && a < num_vertices && b >= 0 && b < num_vertices);
      row[static_cast<std::size_t>(j)] = (a == v || b == v) ? 1 : 0;
    }
    data.AppendRow(row);
  }
  std::fill(row.begin(), row.end(), 0);
  for (int k = 0; k < 3; ++k) data.AppendRow(row);
  return data;
}

}  // namespace datagen
}  // namespace coverage

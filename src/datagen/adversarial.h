#ifndef COVERAGE_DATAGEN_ADVERSARIAL_H_
#define COVERAGE_DATAGEN_ADVERSARIAL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "dataset/dataset.h"

namespace coverage {
namespace datagen {

/// The Theorem-1 construction: n rows over n binary attributes with ones on
/// the diagonal only. With τ = n/2 + 1 the dataset has exactly
/// n + C(n, n/2) > 2^n MUPs, witnessing that MUP enumeration cannot be
/// polynomial. Used by tests to validate the theorem and stress the search
/// algorithms.
Dataset MakeDiagonal(int n);

/// The Theorem-2 reduction from Vertex Cover: given an undirected graph with
/// `num_vertices` vertices and `edges`, builds the dataset with |V| + 3 rows
/// over |E| binary attributes (row i has 1 exactly on the attributes of the
/// edges incident to vertex i; plus three all-zero rows). With τ = 3 and
/// λ = 1, a minimum coverage-enhancement solution corresponds to a minimum
/// vertex cover.
Dataset MakeVertexCoverReduction(
    int num_vertices, const std::vector<std::pair<int, int>>& edges);

}  // namespace datagen
}  // namespace coverage

#endif  // COVERAGE_DATAGEN_ADVERSARIAL_H_

#include "datagen/airbnb.h"

#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace coverage {
namespace datagen {

namespace {
constexpr int kMaxAttributes = 36;  // the crawl has 36 boolean attributes
}  // namespace

double AirbnbRate(int i) {
  // Log-uniform spread over [0.02, 0.5] by attribute index, shuffled by a
  // fixed stride so adjacent attributes do not have adjacent rates.
  const int slot = (i * 17) % kMaxAttributes;
  const double t = static_cast<double>(slot) / (kMaxAttributes - 1);
  return std::exp(std::log(0.5) + t * (std::log(0.02) - std::log(0.5)));
}

Dataset MakeAirbnb(std::size_t n, int d, std::uint64_t seed) {
  assert(d >= 1 && d <= kMaxAttributes);
  Rng rng(seed);
  std::vector<Attribute> attrs;
  attrs.reserve(static_cast<std::size_t>(d));
  for (int i = 0; i < d; ++i) {
    Attribute a;
    a.name = "amenity" + std::to_string(i + 1);
    a.value_names = {"no", "yes"};
    attrs.push_back(std::move(a));
  }
  Dataset data(Schema(std::move(attrs)));
  std::vector<double> rates(static_cast<std::size_t>(d));
  for (int i = 0; i < d; ++i) rates[static_cast<std::size_t>(i)] = AirbnbRate(i);

  std::vector<Value> row(static_cast<std::size_t>(d));
  for (std::size_t r = 0; r < n; ++r) {
    for (int i = 0; i < d; ++i) {
      row[static_cast<std::size_t>(i)] =
          rng.NextBool(rates[static_cast<std::size_t>(i)]) ? Value{1}
                                                           : Value{0};
    }
    data.AppendRow(row);
  }
  return data;
}

}  // namespace datagen
}  // namespace coverage

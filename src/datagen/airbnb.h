#ifndef COVERAGE_DATAGEN_AIRBNB_H_
#define COVERAGE_DATAGEN_AIRBNB_H_

#include <cstdint>

#include "dataset/dataset.h"

namespace coverage {
namespace datagen {

/// Synthetic substitute for the AirBnB listings crawl (§V-A): `d` boolean
/// amenity-style attributes over `n` listings. Attribute i is a Bernoulli
/// draw whose rate is spread log-uniformly over [0.02, 0.5] by attribute
/// index — common amenities (TV, internet) are near 50%, rare ones (hot tub,
/// EV charger) near 2%. This marginal skew is what produces the bell-shaped
/// MUP-level distribution of Fig. 6 and the τ-sweep behaviour of Fig. 12.
///
/// The rate schedule depends only on (i, d_max=36), so projecting a wide
/// dataset onto its first d' attributes is consistent with the paper's
/// dimensionality sweeps.
Dataset MakeAirbnb(std::size_t n, int d, std::uint64_t seed = 7);

/// Bernoulli rate of attribute `i` in the schedule above.
double AirbnbRate(int i);

}  // namespace datagen
}  // namespace coverage

#endif  // COVERAGE_DATAGEN_AIRBNB_H_

#include "datagen/bluenile.h"

#include "common/rng.h"

namespace coverage {
namespace datagen {

Schema BlueNileSchema() {
  std::vector<Attribute> attrs(7);
  attrs[0].name = "shape";
  attrs[0].value_names = {"round",   "princess", "cushion", "oval",
                          "emerald", "pear",     "asscher", "heart",
                          "radiant", "marquise"};
  attrs[1].name = "cut";
  attrs[1].value_names = {"ideal", "very-good", "good", "fair"};
  attrs[2].name = "color";
  attrs[2].value_names = {"D", "E", "F", "G", "H", "I", "J"};
  attrs[3].name = "clarity";
  attrs[3].value_names = {"FL", "IF", "VVS1", "VVS2", "VS1", "VS2", "SI1",
                          "SI2"};
  attrs[4].name = "polish";
  attrs[4].value_names = {"excellent", "very-good", "good"};
  attrs[5].name = "symmetry";
  attrs[5].value_names = {"excellent", "very-good", "good"};
  attrs[6].name = "fluorescence";
  attrs[6].value_names = {"none", "faint", "medium", "strong", "very-strong"};
  return Schema(std::move(attrs));
}

Dataset MakeBlueNile(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const Schema schema = BlueNileSchema();
  const int d = schema.num_attributes();

  // Popularity skew per attribute; shapes are strongly skewed toward round,
  // quality grades moderately toward the middle/top.
  const double zipf_s[7] = {1.4, 1.0, 0.7, 0.8, 1.2, 1.2, 1.1};
  std::vector<ZipfSampler> samplers;
  samplers.reserve(static_cast<std::size_t>(d));
  for (int i = 0; i < d; ++i) {
    samplers.emplace_back(static_cast<std::size_t>(schema.cardinality(i)),
                          zipf_s[i]);
  }

  Dataset data(schema);
  std::vector<Value> row(static_cast<std::size_t>(d));
  for (std::size_t r = 0; r < n; ++r) {
    for (int i = 0; i < d; ++i) {
      row[static_cast<std::size_t>(i)] =
          static_cast<Value>(samplers[static_cast<std::size_t>(i)].Sample(rng));
    }
    // A mild correlation: flawless-clarity stones rarely have poor cut.
    if (row[3] <= 1 && row[1] == 3) row[1] = 1;
    data.AppendRow(row);
  }
  return data;
}

}  // namespace datagen
}  // namespace coverage

#ifndef COVERAGE_DATAGEN_BLUENILE_H_
#define COVERAGE_DATAGEN_BLUENILE_H_

#include <cstdint>

#include "dataset/dataset.h"

namespace coverage {
namespace datagen {

/// The BlueNile catalog schema (§V-A): 7 categorical attributes with
/// cardinalities 10, 4, 7, 8, 3, 3, 5 (shape, cut, color, clarity, polish,
/// symmetry, fluorescence).
Schema BlueNileSchema();

/// Synthetic substitute for the 116,300-diamond BlueNile catalog: each
/// attribute is Zipf-skewed (retail catalogs concentrate on popular shapes
/// and mid-range grades). The high cardinalities are the point — they widen
/// the bottom of the pattern graph (>100K level-7 nodes), which is what
/// degrades PATTERN-COMBINER in Fig. 13.
Dataset MakeBlueNile(std::size_t n = 116300, std::uint64_t seed = 11);

}  // namespace datagen
}  // namespace coverage

#endif  // COVERAGE_DATAGEN_BLUENILE_H_

#include "datagen/compas.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"

namespace coverage {
namespace datagen {

Schema CompasSchema() {
  std::vector<Attribute> attrs(4);
  attrs[0].name = "sex";
  attrs[0].value_names = {"male", "female"};
  attrs[1].name = "age";
  attrs[1].value_names = {"<20", "20-39", "40-59", "60+"};
  attrs[2].name = "race";
  attrs[2].value_names = {"African-American", "Caucasian", "Hispanic",
                          "other"};
  attrs[3].name = "marital";
  attrs[3].value_names = {"single",  "married", "separated", "widowed",
                          "sig-other", "divorced", "unknown"};
  return Schema(std::move(attrs));
}

namespace {

/// Re-offence probability. The Hispanic-female subgroup deliberately follows
/// an age relationship opposite to everyone else's, so a model trained
/// without HF rows mispredicts them (the §V-B2 effect).
double ReoffendProbability(Value sex, Value age, Value race, Value marital) {
  const bool hispanic_female = race == 2 && sex == 1;
  if (hispanic_female) {
    // Inverted age slope: young HF rarely re-offend here, older HF often do
    // — the opposite of the majority relationship below.
    double p = 0.12 + 0.26 * static_cast<double>(age);
    if (marital == 1) p += 0.10;
    return std::clamp(p, 0.05, 0.95);
  }
  double p = 0.72 - 0.16 * static_cast<double>(age);
  if (sex == 1) p -= 0.08;
  if (marital == 1 || marital == 3) p -= 0.10;  // married/widowed
  return std::clamp(p, 0.05, 0.95);
}

}  // namespace

LabeledData MakeCompas(std::size_t n, std::uint64_t seed) {
  assert(n >= 200 && "the forced minority cells need a few hundred rows");
  Rng rng(seed);
  const Schema schema = CompasSchema();

  const CategoricalSampler sex_sampler({0.81, 0.19});
  const CategoricalSampler age_sampler({0.02, 0.57, 0.33, 0.08});
  const CategoricalSampler race_sampler({0.51, 0.34, 0.085, 0.065});
  // Marital status conditioned on age bucket (younger -> overwhelmingly
  // single; older -> married/widowed/divorced). "unknown" stays rare so it
  // seeds higher-level MUPs, as in the real extract.
  const CategoricalSampler marital_by_age[4] = {
      CategoricalSampler({0.97, 0.01, 0.002, 0.0005, 0.01, 0.005, 0.002}),
      CategoricalSampler({0.72, 0.14, 0.02, 0.003, 0.06, 0.05, 0.007}),
      CategoricalSampler({0.42, 0.28, 0.05, 0.02, 0.05, 0.17, 0.01}),
      CategoricalSampler({0.20, 0.38, 0.05, 0.14, 0.03, 0.19, 0.01}),
  };

  Dataset data(schema);
  std::vector<int> labels;
  labels.reserve(n);
  std::vector<Value> row(4);
  std::size_t hispanic_females = 0;
  for (std::size_t i = 0; i < n; ++i) {
    row[kCompasSex] = static_cast<Value>(sex_sampler.Sample(rng));
    row[kCompasAge] = static_cast<Value>(age_sampler.Sample(rng));
    row[kCompasRace] = static_cast<Value>(race_sampler.Sample(rng));
    row[kCompasMarital] = static_cast<Value>(
        marital_by_age[row[kCompasAge]].Sample(rng));

    // Keep the Hispanic-female cell near 100 rows (the paper's count) and
    // reserve the widowed-Hispanic pattern for the two forced rows below.
    if (row[kCompasRace] == 2 && row[kCompasSex] == 1) {
      if (hispanic_females >= 100 * n / 6889) {
        row[kCompasRace] = 1;  // spill into Caucasian
      } else {
        ++hispanic_females;
      }
    }
    if (row[kCompasRace] == 2 && row[kCompasMarital] == 3) {
      row[kCompasMarital] = 5;  // widowed Hispanic -> divorced
    }

    data.AppendRow(row);
    labels.push_back(rng.NextBool(ReoffendProbability(
                         row[kCompasSex], row[kCompasAge], row[kCompasRace],
                         row[kCompasMarital]))
                         ? 1
                         : 0);
  }

  // Exactly two widowed Hispanics (the paper's XX23 example), both of whom
  // re-offended: rebuild with the last two rows replaced (Dataset rows are
  // immutable).
  Dataset final_data(schema);
  std::vector<int> final_labels;
  final_labels.reserve(n);
  for (std::size_t i = 0; i + 2 < n; ++i) {
    final_data.AppendRow(data.row(i));
    final_labels.push_back(labels[i]);
  }
  final_data.AppendRow(std::vector<Value>{1, 2, 2, 3});  // widowed HF, 40-59
  final_labels.push_back(1);
  final_data.AppendRow(std::vector<Value>{1, 3, 2, 3});  // widowed HF, 60+
  final_labels.push_back(1);

  return LabeledData{std::move(final_data), std::move(final_labels)};
}

}  // namespace datagen
}  // namespace coverage

#ifndef COVERAGE_DATAGEN_COMPAS_H_
#define COVERAGE_DATAGEN_COMPAS_H_

#include <cstdint>
#include <vector>

#include "dataset/dataset.h"

namespace coverage {
namespace datagen {

/// Attribute encodings of the paper's COMPAS study (§V-A):
///   sex:     0 male, 1 female
///   age:     0 under 20, 1 between 20 and 39, 2 between 40 and 59, 3 above 60
///   race:    0 African-American, 1 Caucasian, 2 Hispanic, 3 other
///   marital: 0 single, 1 married, 2 separated, 3 widowed,
///            4 significant other, 5 divorced, 6 unknown
inline constexpr int kCompasSex = 0;
inline constexpr int kCompasAge = 1;
inline constexpr int kCompasRace = 2;
inline constexpr int kCompasMarital = 3;

/// A dataset together with the binary "re-offended" label attribute (labels
/// are not part of the schema — §II keeps label attributes out of the
/// coverage computation).
struct LabeledData {
  Dataset data;
  std::vector<int> labels;
};

/// The COMPAS schema (4 attributes, cardinalities 2/4/4/7) with the paper's
/// value names.
Schema CompasSchema();

/// Synthetic substitute for the ProPublica COMPAS extract (offline
/// environment — see DESIGN.md's substitution table). Reproduces the
/// properties the paper's experiments rely on:
///   * every single attribute value occurs more than tau=10 times, but tens
///     of MUPs exist at levels 2-4 (none at levels 0-1);
///   * exactly two widowed Hispanics (pattern XX23), both re-offenders;
///   * roughly 100 Hispanic females, whose re-offence behaviour follows a
///     different rule than the majority so that a model trained without
///     them generalises badly to them (§V-B2);
///   * the re-offence label correlates with age/sex/priors for the majority.
LabeledData MakeCompas(std::size_t n = 6889, std::uint64_t seed = 42);

}  // namespace datagen
}  // namespace coverage

#endif  // COVERAGE_DATAGEN_COMPAS_H_

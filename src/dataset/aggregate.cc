#include "dataset/aggregate.h"

#include <cassert>
#include <utility>

namespace coverage {

AggregatedData::AggregatedData(Schema schema) : schema_(std::move(schema)) {
  keyable_ = schema_.NumValueCombinations() < Schema::kCombinationLimit;
  assert(keyable_ &&
         "aggregation requires the combination space to fit in 64 bits");
}

AggregatedData::AggregatedData(const Dataset& dataset)
    : AggregatedData(dataset.schema()) {
  index_.reserve(dataset.num_rows());
  AppendRows(dataset);
}

StatusOr<AggregatedData> AggregatedData::Restore(
    Schema schema, std::vector<Value> cells,
    std::vector<std::uint64_t> counts) {
  AggregatedData agg(std::move(schema));
  const std::size_t d = static_cast<std::size_t>(agg.num_attributes());
  if (d == 0) {
    return Status::InvalidArgument("restore: schema has no attributes");
  }
  if (cells.size() != counts.size() * d) {
    return Status::InvalidArgument(
        "restore: cells/counts shape mismatch (" +
        std::to_string(cells.size()) + " cells for " +
        std::to_string(counts.size()) + " combinations of width " +
        std::to_string(d) + ")");
  }
  agg.index_.reserve(counts.size());
  for (std::size_t k = 0; k < counts.size(); ++k) {
    const std::span<const Value> combo(cells.data() + k * d, d);
    for (std::size_t i = 0; i < d; ++i) {
      if (combo[i] < 0 ||
          combo[i] >= agg.schema_.cardinality(static_cast<int>(i))) {
        return Status::InvalidArgument(
            "restore: combination " + std::to_string(k) + " attribute " +
            std::to_string(i) + " value " + std::to_string(combo[i]) +
            " out of range");
      }
    }
    const auto [it, inserted] = agg.index_.try_emplace(agg.KeyOf(combo), k);
    (void)it;
    if (!inserted) {
      return Status::InvalidArgument("restore: duplicate combination at id " +
                                     std::to_string(k));
    }
    agg.total_count_ += counts[k];
    if (counts[k] == 0) ++agg.tombstones_;
  }
  agg.cells_ = std::move(cells);
  agg.counts_ = std::move(counts);
  return agg;
}

void AggregatedData::AppendRow(std::span<const Value> row) {
  assert(static_cast<int>(row.size()) == num_attributes());
  const std::uint64_t key = KeyOf(row);
  auto [it, inserted] = index_.try_emplace(key, counts_.size());
  if (inserted) {
    cells_.insert(cells_.end(), row.begin(), row.end());
    counts_.push_back(0);
  } else if (counts_[it->second] == 0) {
    --tombstones_;  // the combination revives in place, keeping its id
  }
  ++counts_[it->second];
  ++total_count_;
}

bool AggregatedData::DecrementRow(std::span<const Value> row) {
  assert(static_cast<int>(row.size()) == num_attributes());
  const auto it = index_.find(KeyOf(row));
  if (it == index_.end() || counts_[it->second] == 0) return false;
  if (--counts_[it->second] == 0) ++tombstones_;
  --total_count_;
  return true;
}

void AggregatedData::AppendRows(const Dataset& rows) {
  assert(rows.schema() == schema_);
  for (std::size_t r = 0; r < rows.num_rows(); ++r) AppendRow(rows.row(r));
}

std::uint64_t AggregatedData::KeyOf(std::span<const Value> combination) const {
  std::uint64_t key = 0;
  for (int i = 0; i < num_attributes(); ++i) {
    key = key * static_cast<std::uint64_t>(schema_.cardinality(i)) +
          static_cast<std::uint64_t>(combination[static_cast<std::size_t>(i)]);
  }
  return key;
}

std::uint64_t AggregatedData::CountOf(
    std::span<const Value> combination) const {
  const auto it = index_.find(KeyOf(combination));
  return it == index_.end() ? 0 : counts_[it->second];
}

}  // namespace coverage

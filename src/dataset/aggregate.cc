#include "dataset/aggregate.h"

#include <cassert>
#include <utility>

namespace coverage {

AggregatedData::AggregatedData(Schema schema) : schema_(std::move(schema)) {
  keyable_ = schema_.NumValueCombinations() < Schema::kCombinationLimit;
  assert(keyable_ &&
         "aggregation requires the combination space to fit in 64 bits");
}

AggregatedData::AggregatedData(const Dataset& dataset)
    : AggregatedData(dataset.schema()) {
  index_.reserve(dataset.num_rows());
  AppendRows(dataset);
}

void AggregatedData::AppendRow(std::span<const Value> row) {
  assert(static_cast<int>(row.size()) == num_attributes());
  const std::uint64_t key = KeyOf(row);
  auto [it, inserted] = index_.try_emplace(key, counts_.size());
  if (inserted) {
    cells_.insert(cells_.end(), row.begin(), row.end());
    counts_.push_back(0);
  } else if (counts_[it->second] == 0) {
    --tombstones_;  // the combination revives in place, keeping its id
  }
  ++counts_[it->second];
  ++total_count_;
}

bool AggregatedData::DecrementRow(std::span<const Value> row) {
  assert(static_cast<int>(row.size()) == num_attributes());
  const auto it = index_.find(KeyOf(row));
  if (it == index_.end() || counts_[it->second] == 0) return false;
  if (--counts_[it->second] == 0) ++tombstones_;
  --total_count_;
  return true;
}

void AggregatedData::AppendRows(const Dataset& rows) {
  assert(rows.schema() == schema_);
  for (std::size_t r = 0; r < rows.num_rows(); ++r) AppendRow(rows.row(r));
}

std::uint64_t AggregatedData::KeyOf(std::span<const Value> combination) const {
  std::uint64_t key = 0;
  for (int i = 0; i < num_attributes(); ++i) {
    key = key * static_cast<std::uint64_t>(schema_.cardinality(i)) +
          static_cast<std::uint64_t>(combination[static_cast<std::size_t>(i)]);
  }
  return key;
}

std::uint64_t AggregatedData::CountOf(
    std::span<const Value> combination) const {
  const auto it = index_.find(KeyOf(combination));
  return it == index_.end() ? 0 : counts_[it->second];
}

}  // namespace coverage

#ifndef COVERAGE_DATASET_AGGREGATE_H_
#define COVERAGE_DATASET_AGGREGATE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "dataset/dataset.h"
#include "dataset/schema.h"

namespace coverage {

/// The aggregated relation of Appendix A: the distinct value combinations of
/// `D` together with their multiplicities. All coverage machinery operates on
/// this compression — its size is bounded by min(n, Π c_i), which is why data
/// size has little effect on MUP-identification runtime (paper, Fig. 14).
///
/// The relation is appendable: new rows either bump the multiplicity of an
/// existing combination in place or append a new combination *at the end*,
/// so combination ids are stable across appends. This prefix stability is
/// what lets BitmapCoverage extend a previous epoch's index instead of
/// rebuilding it (see the incremental constructor there).
///
/// The relation is also decrementable (sliding windows, GDPR erasure): a
/// combination whose multiplicity falls to 0 is *tombstoned* — it keeps its
/// id, its slot in the table, and its entry in the key index, so ids stay
/// prefix-stable through any append/retract interleaving — and revives in
/// place if the same combination is appended again. Tombstones contribute 0
/// to every coverage query by construction (the dot runs over counts), so
/// correctness never depends on compacting them; BitmapCoverage's
/// decremental constructor zeroes their bits to keep queries fast.
///
/// Not thread-safe; the streaming engine mutates copies under its writer
/// lock and publishes them as immutable snapshots.
class AggregatedData {
 public:
  /// An empty relation over `schema`; rows arrive through AppendRows.
  explicit AggregatedData(Schema schema);

  /// Groups the rows of `dataset` by full value combination.
  explicit AggregatedData(const Dataset& dataset);

  /// Rebuilds a relation from its serialized image: `cells` holds the
  /// distinct combinations row-major in combination-id order, `counts` the
  /// parallel multiplicities (zeros restore as tombstones). The key index,
  /// total count, and tombstone count are derived; shape, value ranges,
  /// and combination uniqueness are validated (a corrupt-but-checksummed
  /// snapshot must not crash recovery).
  static StatusOr<AggregatedData> Restore(Schema schema,
                                          std::vector<Value> cells,
                                          std::vector<std::uint64_t> counts);

  /// Folds in one row (must match the schema in width and value ranges).
  /// Amortised O(d) (one hash probe + possible tail append).
  void AppendRow(std::span<const Value> row);

  /// Folds in every row of `rows` (whose schema must equal ours).
  void AppendRows(const Dataset& rows);

  /// Removes one occurrence of `row`. Returns false — leaving the relation
  /// unchanged — if the combination is absent or already at multiplicity 0.
  /// When a count reaches 0 the combination is tombstoned, never erased
  /// (see the class comment). Amortised O(d).
  bool DecrementRow(std::span<const Value> row);

  const Schema& schema() const { return schema_; }

  /// Number of distinct value combinations, tombstones included (this is
  /// the width of every bitmap built over the relation).
  std::size_t num_combinations() const { return counts_.size(); }

  /// Number of combinations currently at multiplicity 0. Zero for any
  /// relation that has only ever been appended to.
  std::size_t num_tombstones() const { return tombstones_; }

  /// Total number of underlying rows (Σ counts).
  std::uint64_t total_count() const { return total_count_; }

  /// The k-th distinct combination.
  std::span<const Value> combination(std::size_t k) const {
    return {cells_.data() + k * static_cast<std::size_t>(num_attributes()),
            static_cast<std::size_t>(num_attributes())};
  }

  /// Multiplicity of the k-th combination.
  std::uint64_t count(std::size_t k) const { return counts_[k]; }

  const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Multiplicity of an arbitrary full value combination (0 if absent). Used
  /// by PATTERN-COMBINER's level-d pass.
  std::uint64_t CountOf(std::span<const Value> combination) const;

  int num_attributes() const { return schema_.num_attributes(); }

  /// The mixed-radix key of a full value combination — the canonical 64-bit
  /// row identity (well-defined because construction asserts Π cᵢ fits).
  /// Exposed so row-multiset bookkeeping outside the relation (e.g. the
  /// engine's sliding-window scrub) keys rows identically.
  std::uint64_t KeyOf(std::span<const Value> combination) const;

 private:
  Schema schema_;
  std::vector<Value> cells_;            // distinct combinations, row-major
  std::vector<std::uint64_t> counts_;   // parallel multiplicities
  std::uint64_t total_count_ = 0;
  std::size_t tombstones_ = 0;          // combinations at multiplicity 0
  bool keyable_ = false;                // Π c_i fits in 64 bits
  std::unordered_map<std::uint64_t, std::size_t> index_;  // key -> combo id
};

}  // namespace coverage

#endif  // COVERAGE_DATASET_AGGREGATE_H_

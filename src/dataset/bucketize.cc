#include "dataset/bucketize.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace coverage {

Bucketizer::Bucketizer(std::string attribute_name,
                       std::vector<double> upper_bounds)
    : attribute_name_(std::move(attribute_name)),
      upper_bounds_(std::move(upper_bounds)) {
  assert(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()));
  assert(std::adjacent_find(upper_bounds_.begin(), upper_bounds_.end()) ==
         upper_bounds_.end());
}

Bucketizer Bucketizer::EquiWidth(std::string attribute_name, double lo,
                                 double hi, int num_buckets) {
  assert(num_buckets >= 1);
  assert(lo < hi);
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(num_buckets - 1));
  const double width = (hi - lo) / num_buckets;
  for (int i = 1; i < num_buckets; ++i) bounds.push_back(lo + width * i);
  return Bucketizer(std::move(attribute_name), std::move(bounds));
}

StatusOr<Bucketizer> Bucketizer::EquiDepth(std::string attribute_name,
                                           std::vector<double> values,
                                           int num_buckets) {
  if (num_buckets < 1) {
    return Status::InvalidArgument("num_buckets must be >= 1");
  }
  if (values.empty()) {
    return Status::InvalidArgument("cannot fit equi-depth buckets to no data");
  }
  std::sort(values.begin(), values.end());
  std::vector<double> bounds;
  for (int i = 1; i < num_buckets; ++i) {
    const std::size_t idx =
        values.size() * static_cast<std::size_t>(i) /
        static_cast<std::size_t>(num_buckets);
    const double bound = values[std::min(idx, values.size() - 1)];
    if (bounds.empty() || bound > bounds.back()) bounds.push_back(bound);
  }
  return Bucketizer(std::move(attribute_name), std::move(bounds));
}

Value Bucketizer::Bucket(double x) const {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), x);
  return static_cast<Value>(it - upper_bounds_.begin());
}

Attribute Bucketizer::ToAttribute() const {
  Attribute attr;
  attr.name = attribute_name_;
  attr.value_names.reserve(static_cast<std::size_t>(num_buckets()));
  for (int b = 0; b < num_buckets(); ++b) {
    std::string label;
    if (b == 0) {
      label = "<=" + FormatDouble(upper_bounds_.empty() ? 0.0
                                                        : upper_bounds_[0]);
      if (upper_bounds_.empty()) label = "all";
    } else if (b == num_buckets() - 1) {
      label = ">" + FormatDouble(upper_bounds_.back());
    } else {
      label = "(" + FormatDouble(upper_bounds_[static_cast<std::size_t>(b) - 1]) +
              "," + FormatDouble(upper_bounds_[static_cast<std::size_t>(b)]) +
              "]";
    }
    attr.value_names.push_back(std::move(label));
  }
  return attr;
}

}  // namespace coverage

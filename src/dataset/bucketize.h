#ifndef COVERAGE_DATASET_BUCKETIZE_H_
#define COVERAGE_DATASET_BUCKETIZE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dataset/schema.h"

namespace coverage {

/// Maps a continuous (or high-cardinality ordinal) column onto a small
/// categorical attribute, the preprocessing step the paper prescribes in §II
/// ("bucketization: putting similar values into the same bucket").
class Bucketizer {
 public:
  /// Buckets are defined by their upper bounds: value x falls in the first
  /// bucket i with x <= upper_bounds[i]; anything above the last bound falls
  /// in a final overflow bucket. With k bounds there are k+1 buckets.
  Bucketizer(std::string attribute_name, std::vector<double> upper_bounds);

  /// Equi-width buckets spanning [lo, hi] split into `num_buckets` cells.
  static Bucketizer EquiWidth(std::string attribute_name, double lo, double hi,
                              int num_buckets);

  /// Buckets with (approximately) equal population computed from `values`
  /// (equi-depth / quantile bucketization).
  static StatusOr<Bucketizer> EquiDepth(std::string attribute_name,
                                        std::vector<double> values,
                                        int num_buckets);

  /// Encoded bucket id for `x`.
  Value Bucket(double x) const;

  /// The categorical attribute this bucketizer induces, with human-readable
  /// range labels like "(3.5, 7.25]".
  Attribute ToAttribute() const;

  int num_buckets() const {
    return static_cast<int>(upper_bounds_.size()) + 1;
  }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }

 private:
  std::string attribute_name_;
  std::vector<double> upper_bounds_;  // strictly increasing
};

}  // namespace coverage

#endif  // COVERAGE_DATASET_BUCKETIZE_H_

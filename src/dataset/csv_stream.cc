#include "dataset/csv_stream.h"

#include <istream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/string_util.h"

namespace coverage {

StatusOr<Schema> InferSchemaFromCsv(std::istream& is, int max_cardinality,
                                    std::vector<Value>* encoded_rows) {
  if (max_cardinality < 1) {
    return Status::InvalidArgument("max_cardinality must be >= 1");
  }
  std::string line;
  if (!std::getline(is, line)) {
    return Status::InvalidArgument("CSV input is empty (missing header)");
  }
  std::vector<std::string> names;
  for (const std::string& field : Split(Trim(line), ',')) {
    names.emplace_back(Trim(field));
    if (names.back().empty()) {
      return Status::InvalidArgument("CSV header has an empty column name");
    }
  }
  const std::size_t d = names.size();

  std::vector<std::vector<std::string>> dictionaries(d);
  std::vector<std::unordered_map<std::string, Value>> lookup(d);
  std::size_t num_rows = 0;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    const std::vector<std::string> fields = Split(trimmed, ',');
    if (fields.size() != d) {
      return Status::InvalidArgument(
          "CSV line " + std::to_string(line_no) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(d));
    }
    for (std::size_t c = 0; c < d; ++c) {
      std::string value(Trim(fields[c]));
      auto [it, inserted] = lookup[c].try_emplace(
          value, static_cast<Value>(dictionaries[c].size()));
      if (inserted) {
        if (static_cast<int>(dictionaries[c].size()) >= max_cardinality) {
          return Status::InvalidArgument(
              "column '" + names[c] + "' exceeds " +
              std::to_string(max_cardinality) +
              " distinct values; bucketize it first (see Bucketizer)");
        }
        dictionaries[c].push_back(std::move(value));
      }
      if (encoded_rows != nullptr) encoded_rows->push_back(it->second);
    }
    ++num_rows;
  }
  if (num_rows == 0) {
    return Status::InvalidArgument("CSV has a header but no data rows");
  }

  std::vector<Attribute> attrs(d);
  for (std::size_t c = 0; c < d; ++c) {
    attrs[c].name = names[c];
    attrs[c].value_names = std::move(dictionaries[c]);
  }
  return Schema(std::move(attrs));
}

StatusOr<CsvChunkReader> CsvChunkReader::Open(std::istream& is,
                                              const Schema& schema) {
  std::string line;
  if (!std::getline(is, line)) {
    return Status::InvalidArgument("CSV input is empty (missing header)");
  }
  const std::vector<std::string> header = Split(Trim(line), ',');
  if (static_cast<int>(header.size()) != schema.num_attributes()) {
    return Status::InvalidArgument(
        "CSV header has " + std::to_string(header.size()) +
        " columns, schema has " + std::to_string(schema.num_attributes()));
  }
  for (int i = 0; i < schema.num_attributes(); ++i) {
    if (std::string(Trim(header[static_cast<std::size_t>(i)])) !=
        schema.attribute(i).name) {
      return Status::InvalidArgument(
          "CSV column '" + header[static_cast<std::size_t>(i)] +
          "' does not match schema attribute '" + schema.attribute(i).name +
          "'");
    }
  }
  return CsvChunkReader(is, schema);
}

StatusOr<std::size_t> CsvChunkReader::ReadChunk(Dataset& out,
                                                std::size_t max_rows) {
  const Schema& schema = *schema_;
  std::vector<Value> buf(static_cast<std::size_t>(schema.num_attributes()));
  std::string line;
  std::size_t appended = 0;
  while (appended < max_rows && std::getline(*is_, line)) {
    ++line_no_;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    const std::vector<std::string> fields = Split(trimmed, ',');
    if (static_cast<int>(fields.size()) != schema.num_attributes()) {
      return Status::InvalidArgument("CSV line " + std::to_string(line_no_) +
                                     " has " + std::to_string(fields.size()) +
                                     " fields, expected " +
                                     std::to_string(schema.num_attributes()));
    }
    for (int i = 0; i < schema.num_attributes(); ++i) {
      auto value = schema.ValueIndex(
          i, std::string(Trim(fields[static_cast<std::size_t>(i)])));
      if (!value.ok()) {
        return Status::InvalidArgument("CSV line " + std::to_string(line_no_) +
                                       ": " + value.status().message());
      }
      buf[static_cast<std::size_t>(i)] = *value;
    }
    out.AppendRow(buf);
    ++appended;
  }
  rows_read_ += appended;
  return appended;
}

}  // namespace coverage

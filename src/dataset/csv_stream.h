#ifndef COVERAGE_DATASET_CSV_STREAM_H_
#define COVERAGE_DATASET_CSV_STREAM_H_

#include <cstddef>
#include <iosfwd>
#include <limits>

#include "common/status.h"
#include "dataset/dataset.h"
#include "dataset/schema.h"

namespace coverage {

/// Streaming pass over a CSV that builds the schema: attribute names from
/// the header, per-column value dictionaries in order of first appearance.
/// With `encoded_rows == nullptr` peak memory is O(Σ c_i) — the
/// dictionaries — no matter how many rows the stream holds, which makes it
/// the schema-discovery companion of the chunked ingest path. When
/// `encoded_rows` is given, every row's encoded values are appended to it
/// row-major (this is the single implementation of the inference grammar;
/// Dataset::InferFromCsv is this pass plus materialisation). A column
/// exceeding `max_cardinality` distinct values yields InvalidArgument with
/// a hint to bucketize (§II preprocessing).
///
/// One pass over the stream, O(d) hash probes per row. Not thread-safe (it
/// advances the caller's istream); run one inference per stream.
StatusOr<Schema> InferSchemaFromCsv(std::istream& is,
                                    int max_cardinality = 100,
                                    std::vector<Value>* encoded_rows = nullptr);

/// Pull-based chunked CSV reader against a known schema: validates the
/// header eagerly, then hands out row blocks of any requested size without
/// ever materialising the remainder of the stream. The CSV grammar (header
/// of attribute names, labelled values, trimmed fields, blank lines
/// skipped) is exactly Dataset::ReadCsv's — which is implemented on top of
/// this reader.
///
/// Thread-safety: none — the reader owns the stream cursor, so exactly one
/// thread may pump it (CoverageEngine::IngestCsvChunked pumps under its
/// writer lock). Each ReadChunk is one pass over at most `max_rows` lines:
/// O(rows · d) dictionary lookups, O(chunk) peak memory in `out`.
class CsvChunkReader {
 public:
  /// Reads and validates the header row. The stream and schema must outlive
  /// the reader.
  static StatusOr<CsvChunkReader> Open(std::istream& is, const Schema& schema);

  /// Parses up to `max_rows` data rows and appends them to `out` (whose
  /// schema must equal the reader's). Returns the number of rows appended;
  /// 0 means the stream is exhausted. Malformed rows yield InvalidArgument
  /// with the 1-based line number.
  StatusOr<std::size_t> ReadChunk(
      Dataset& out,
      std::size_t max_rows = std::numeric_limits<std::size_t>::max());

  /// Data rows successfully handed out so far.
  std::size_t rows_read() const { return rows_read_; }

  const Schema& schema() const { return *schema_; }

 private:
  CsvChunkReader(std::istream& is, const Schema& schema)
      : is_(&is), schema_(&schema) {}

  std::istream* is_;
  const Schema* schema_;
  std::size_t line_no_ = 1;  // the header
  std::size_t rows_read_ = 0;
};

}  // namespace coverage

#endif  // COVERAGE_DATASET_CSV_STREAM_H_

#include "dataset/dataset.h"

#include <cassert>
#include <istream>
#include <ostream>
#include <utility>

#include "common/string_util.h"
#include "dataset/csv_stream.h"

namespace coverage {

Dataset::Dataset(Schema schema) : schema_(std::move(schema)) {}

void Dataset::AppendRow(std::span<const Value> row) {
  assert(static_cast<int>(row.size()) == num_attributes());
  for (int i = 0; i < num_attributes(); ++i) {
    assert(row[static_cast<std::size_t>(i)] >= 0);
    assert(row[static_cast<std::size_t>(i)] <
           static_cast<Value>(schema_.cardinality(i)));
  }
  cells_.insert(cells_.end(), row.begin(), row.end());
  ++num_rows_;
}

Dataset Dataset::Project(const std::vector<int>& attribute_indices) const {
  Dataset out(schema_.Project(attribute_indices));
  std::vector<Value> buf(attribute_indices.size());
  for (std::size_t r = 0; r < num_rows_; ++r) {
    const auto src = row(r);
    for (std::size_t i = 0; i < attribute_indices.size(); ++i) {
      buf[i] = src[static_cast<std::size_t>(attribute_indices[i])];
    }
    out.AppendRow(buf);
  }
  return out;
}

Dataset Dataset::Sample(std::size_t k, Rng& rng) const {
  assert(k <= num_rows_);
  Dataset out(schema_);
  for (std::size_t r : rng.SampleWithoutReplacement(num_rows_, k)) {
    out.AppendRow(row(r));
  }
  return out;
}

Dataset Dataset::Head(std::size_t k) const {
  assert(k <= num_rows_);
  Dataset out(schema_);
  for (std::size_t r = 0; r < k; ++r) out.AppendRow(row(r));
  return out;
}

Status Dataset::WriteCsv(std::ostream& os) const {
  std::vector<std::string> header;
  header.reserve(static_cast<std::size_t>(num_attributes()));
  for (const Attribute& a : schema_.attributes()) header.push_back(a.name);
  os << Join(header, ",") << "\n";
  for (std::size_t r = 0; r < num_rows_; ++r) {
    const auto values = row(r);
    for (int i = 0; i < num_attributes(); ++i) {
      if (i != 0) os << ',';
      os << schema_.attribute(i)
                .value_names[static_cast<std::size_t>(values[i])];
    }
    os << "\n";
  }
  if (!os.good()) return Status::Internal("CSV write failed");
  return Status::OK();
}

StatusOr<Dataset> Dataset::ReadCsv(std::istream& is, const Schema& schema) {
  auto reader = CsvChunkReader::Open(is, schema);
  if (!reader.ok()) return reader.status();
  Dataset out(schema);
  auto read = reader->ReadChunk(out);
  if (!read.ok()) return read.status();
  return out;
}

StatusOr<Dataset> Dataset::InferFromCsv(std::istream& is,
                                        int max_cardinality) {
  std::vector<Value> encoded;
  auto schema = InferSchemaFromCsv(is, max_cardinality, &encoded);
  if (!schema.ok()) return schema.status();
  const std::size_t d = static_cast<std::size_t>(schema->num_attributes());
  Dataset out(std::move(*schema));
  for (std::size_t r = 0; r < encoded.size() / d; ++r) {
    out.AppendRow(std::span<const Value>(encoded.data() + r * d, d));
  }
  return out;
}

}  // namespace coverage

#include "dataset/dataset.h"

#include <cassert>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "common/string_util.h"

namespace coverage {

Dataset::Dataset(Schema schema) : schema_(std::move(schema)) {}

void Dataset::AppendRow(std::span<const Value> row) {
  assert(static_cast<int>(row.size()) == num_attributes());
  for (int i = 0; i < num_attributes(); ++i) {
    assert(row[static_cast<std::size_t>(i)] >= 0);
    assert(row[static_cast<std::size_t>(i)] <
           static_cast<Value>(schema_.cardinality(i)));
  }
  cells_.insert(cells_.end(), row.begin(), row.end());
  ++num_rows_;
}

Dataset Dataset::Project(const std::vector<int>& attribute_indices) const {
  Dataset out(schema_.Project(attribute_indices));
  std::vector<Value> buf(attribute_indices.size());
  for (std::size_t r = 0; r < num_rows_; ++r) {
    const auto src = row(r);
    for (std::size_t i = 0; i < attribute_indices.size(); ++i) {
      buf[i] = src[static_cast<std::size_t>(attribute_indices[i])];
    }
    out.AppendRow(buf);
  }
  return out;
}

Dataset Dataset::Sample(std::size_t k, Rng& rng) const {
  assert(k <= num_rows_);
  Dataset out(schema_);
  for (std::size_t r : rng.SampleWithoutReplacement(num_rows_, k)) {
    out.AppendRow(row(r));
  }
  return out;
}

Dataset Dataset::Head(std::size_t k) const {
  assert(k <= num_rows_);
  Dataset out(schema_);
  for (std::size_t r = 0; r < k; ++r) out.AppendRow(row(r));
  return out;
}

Status Dataset::WriteCsv(std::ostream& os) const {
  std::vector<std::string> header;
  header.reserve(static_cast<std::size_t>(num_attributes()));
  for (const Attribute& a : schema_.attributes()) header.push_back(a.name);
  os << Join(header, ",") << "\n";
  for (std::size_t r = 0; r < num_rows_; ++r) {
    const auto values = row(r);
    for (int i = 0; i < num_attributes(); ++i) {
      if (i != 0) os << ',';
      os << schema_.attribute(i)
                .value_names[static_cast<std::size_t>(values[i])];
    }
    os << "\n";
  }
  if (!os.good()) return Status::Internal("CSV write failed");
  return Status::OK();
}

StatusOr<Dataset> Dataset::ReadCsv(std::istream& is, const Schema& schema) {
  std::string line;
  if (!std::getline(is, line)) {
    return Status::InvalidArgument("CSV input is empty (missing header)");
  }
  const std::vector<std::string> header = Split(Trim(line), ',');
  if (static_cast<int>(header.size()) != schema.num_attributes()) {
    return Status::InvalidArgument(
        "CSV header has " + std::to_string(header.size()) +
        " columns, schema has " + std::to_string(schema.num_attributes()));
  }
  for (int i = 0; i < schema.num_attributes(); ++i) {
    if (std::string(Trim(header[static_cast<std::size_t>(i)])) !=
        schema.attribute(i).name) {
      return Status::InvalidArgument(
          "CSV column '" + header[static_cast<std::size_t>(i)] +
          "' does not match schema attribute '" + schema.attribute(i).name +
          "'");
    }
  }

  Dataset out(schema);
  std::vector<Value> buf(static_cast<std::size_t>(schema.num_attributes()));
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    const std::vector<std::string> fields = Split(trimmed, ',');
    if (static_cast<int>(fields.size()) != schema.num_attributes()) {
      return Status::InvalidArgument("CSV line " + std::to_string(line_no) +
                                     " has " + std::to_string(fields.size()) +
                                     " fields, expected " +
                                     std::to_string(schema.num_attributes()));
    }
    for (int i = 0; i < schema.num_attributes(); ++i) {
      auto value = schema.ValueIndex(
          i, std::string(Trim(fields[static_cast<std::size_t>(i)])));
      if (!value.ok()) {
        return Status::InvalidArgument("CSV line " + std::to_string(line_no) +
                                       ": " + value.status().message());
      }
      buf[static_cast<std::size_t>(i)] = *value;
    }
    out.AppendRow(buf);
  }
  return out;
}

StatusOr<Dataset> Dataset::InferFromCsv(std::istream& is,
                                        int max_cardinality) {
  if (max_cardinality < 1) {
    return Status::InvalidArgument("max_cardinality must be >= 1");
  }
  std::string line;
  if (!std::getline(is, line)) {
    return Status::InvalidArgument("CSV input is empty (missing header)");
  }
  std::vector<std::string> names;
  for (const std::string& field : Split(Trim(line), ',')) {
    names.emplace_back(Trim(field));
    if (names.back().empty()) {
      return Status::InvalidArgument("CSV header has an empty column name");
    }
  }
  const std::size_t d = names.size();

  // First pass materialises the raw field matrix while building per-column
  // dictionaries in order of first appearance.
  std::vector<std::vector<std::string>> dictionaries(d);
  std::vector<std::unordered_map<std::string, Value>> lookup(d);
  std::vector<Value> encoded;
  std::size_t num_rows = 0;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    const std::vector<std::string> fields = Split(trimmed, ',');
    if (fields.size() != d) {
      return Status::InvalidArgument(
          "CSV line " + std::to_string(line_no) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(d));
    }
    for (std::size_t c = 0; c < d; ++c) {
      const std::string value(Trim(fields[c]));
      auto [it, inserted] = lookup[c].try_emplace(
          value, static_cast<Value>(dictionaries[c].size()));
      if (inserted) {
        if (static_cast<int>(dictionaries[c].size()) >= max_cardinality) {
          return Status::InvalidArgument(
              "column '" + names[c] + "' exceeds " +
              std::to_string(max_cardinality) +
              " distinct values; bucketize it first (see Bucketizer)");
        }
        dictionaries[c].push_back(value);
      }
      encoded.push_back(it->second);
    }
    ++num_rows;
  }
  if (num_rows == 0) {
    return Status::InvalidArgument("CSV has a header but no data rows");
  }

  std::vector<Attribute> attrs(d);
  for (std::size_t c = 0; c < d; ++c) {
    attrs[c].name = names[c];
    attrs[c].value_names = std::move(dictionaries[c]);
  }
  Dataset out{Schema(std::move(attrs))};
  for (std::size_t r = 0; r < num_rows; ++r) {
    out.AppendRow(std::span<const Value>(encoded.data() + r * d, d));
  }
  return out;
}

}  // namespace coverage

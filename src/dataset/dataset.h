#ifndef COVERAGE_DATASET_DATASET_H_
#define COVERAGE_DATASET_DATASET_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "dataset/schema.h"

namespace coverage {

/// An immutable-schema, row-major categorical relation: the dataset `D` of the
/// paper restricted to the attributes of interest. Values are stored as a flat
/// `Value` array for cache locality (n rows × d columns).
class Dataset {
 public:
  explicit Dataset(Schema schema);

  const Schema& schema() const { return schema_; }
  std::size_t num_rows() const { return num_rows_; }
  int num_attributes() const { return schema_.num_attributes(); }

  /// Appends a row; it must have exactly `num_attributes()` values, each in
  /// range for its attribute.
  void AppendRow(std::span<const Value> row);
  void AppendRow(const std::vector<Value>& row) {
    AppendRow(std::span<const Value>(row));
  }

  /// Read-only view of row `r`.
  std::span<const Value> row(std::size_t r) const {
    return {cells_.data() + r * static_cast<std::size_t>(num_attributes()),
            static_cast<std::size_t>(num_attributes())};
  }

  Value at(std::size_t r, int attr) const {
    return cells_[r * static_cast<std::size_t>(num_attributes()) +
                  static_cast<std::size_t>(attr)];
  }

  /// Keeps only the listed attributes (projection onto a subset of the
  /// attributes of interest, as done for the dimensionality sweeps in §V-C).
  Dataset Project(const std::vector<int>& attribute_indices) const;

  /// Uniform random sample of `k` rows without replacement.
  Dataset Sample(std::size_t k, Rng& rng) const;

  /// First `k` rows.
  Dataset Head(std::size_t k) const;

  /// Serialises to CSV with a header row of attribute names; values are
  /// written as their dictionary labels.
  Status WriteCsv(std::ostream& os) const;

  /// Parses a CSV produced by WriteCsv (header + labelled values) against
  /// `schema`. Unknown labels or ragged rows yield InvalidArgument.
  static StatusOr<Dataset> ReadCsv(std::istream& is, const Schema& schema);

  /// Parses a CSV and *infers* the schema: attribute names come from the
  /// header, the value dictionary of each column is built in order of first
  /// appearance. A column exceeding `max_cardinality` distinct values yields
  /// InvalidArgument with a hint to bucketize (§II preprocessing).
  static StatusOr<Dataset> InferFromCsv(std::istream& is,
                                        int max_cardinality = 100);

 private:
  Schema schema_;
  std::vector<Value> cells_;
  std::size_t num_rows_ = 0;
};

}  // namespace coverage

#endif  // COVERAGE_DATASET_DATASET_H_

#include "dataset/schema.h"

#include <cassert>

namespace coverage {

Attribute Attribute::Anonymous(std::string name, int cardinality) {
  assert(cardinality >= 1);
  Attribute attr;
  attr.name = std::move(name);
  attr.value_names.reserve(static_cast<std::size_t>(cardinality));
  for (int v = 0; v < cardinality; ++v) {
    attr.value_names.push_back(std::to_string(v));
  }
  return attr;
}

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {
  cardinalities_.reserve(attributes_.size());
  for (const Attribute& a : attributes_) {
    assert(a.cardinality() >= 1);
    cardinalities_.push_back(a.cardinality());
  }
}

Schema Schema::Uniform(const std::vector<int>& cardinalities) {
  std::vector<Attribute> attrs;
  attrs.reserve(cardinalities.size());
  for (std::size_t i = 0; i < cardinalities.size(); ++i) {
    attrs.push_back(Attribute::Anonymous("A" + std::to_string(i + 1),
                                         cardinalities[i]));
  }
  return Schema(std::move(attrs));
}

Schema Schema::Binary(int d) {
  return Uniform(std::vector<int>(static_cast<std::size_t>(d), 2));
}

StatusOr<int> Schema::AttributeIndex(const std::string& name) const {
  for (int i = 0; i < num_attributes(); ++i) {
    if (attributes_[static_cast<std::size_t>(i)].name == name) return i;
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

StatusOr<Value> Schema::ValueIndex(int attr,
                                   const std::string& value_name) const {
  assert(attr >= 0 && attr < num_attributes());
  const Attribute& a = attributes_[static_cast<std::size_t>(attr)];
  for (std::size_t v = 0; v < a.value_names.size(); ++v) {
    if (a.value_names[v] == value_name) return static_cast<Value>(v);
  }
  return Status::NotFound("attribute '" + a.name + "' has no value '" +
                          value_name + "'");
}

std::uint64_t Schema::NumValueCombinations() const {
  std::uint64_t total = 1;
  for (int c : cardinalities_) {
    if (total > kCombinationLimit / static_cast<std::uint64_t>(c)) {
      return kCombinationLimit;
    }
    total *= static_cast<std::uint64_t>(c);
  }
  return total;
}

std::uint64_t Schema::NumPatterns() const {
  std::uint64_t total = 1;
  for (int c : cardinalities_) {
    const auto factor = static_cast<std::uint64_t>(c + 1);
    if (total > kCombinationLimit / factor) return kCombinationLimit;
    total *= factor;
  }
  return total;
}

Schema Schema::Project(const std::vector<int>& attribute_indices) const {
  std::vector<Attribute> attrs;
  attrs.reserve(attribute_indices.size());
  for (int idx : attribute_indices) {
    assert(idx >= 0 && idx < num_attributes());
    attrs.push_back(attributes_[static_cast<std::size_t>(idx)]);
  }
  return Schema(std::move(attrs));
}

bool Schema::operator==(const Schema& other) const {
  if (num_attributes() != other.num_attributes()) return false;
  for (int i = 0; i < num_attributes(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (attributes_[idx].name != other.attributes_[idx].name ||
        attributes_[idx].value_names != other.attributes_[idx].value_names) {
      return false;
    }
  }
  return true;
}

}  // namespace coverage

#ifndef COVERAGE_DATASET_SCHEMA_H_
#define COVERAGE_DATASET_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace coverage {

/// Encoded value of a categorical attribute: a small non-negative integer in
/// [0, cardinality). Patterns additionally use `kWildcard`.
using Value = std::int16_t;

/// One categorical attribute of interest: a name, and the dictionary of value
/// labels. The encoded value `v` corresponds to `value_names[v]`.
struct Attribute {
  std::string name;
  std::vector<std::string> value_names;

  /// Builds an attribute with `cardinality` anonymous values "0".."c-1".
  static Attribute Anonymous(std::string name, int cardinality);

  int cardinality() const { return static_cast<int>(value_names.size()); }
};

/// The attributes of interest of a dataset (paper §II). Label attributes are
/// deliberately *not* part of the schema; they live beside the dataset.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  /// Schema of `d` attributes with the given cardinalities and names "A1..Ad"
  /// (matching the paper's notation).
  static Schema Uniform(const std::vector<int>& cardinalities);

  /// Schema of `d` binary attributes (the AirBnB shape).
  static Schema Binary(int d);

  int num_attributes() const { return static_cast<int>(attributes_.size()); }
  const Attribute& attribute(int i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  int cardinality(int i) const { return attributes_[i].cardinality(); }
  const std::vector<int>& cardinalities() const { return cardinalities_; }

  /// Index of the attribute with the given name.
  StatusOr<int> AttributeIndex(const std::string& name) const;

  /// Encoded id of `value_name` within attribute `attr`.
  StatusOr<Value> ValueIndex(int attr, const std::string& value_name) const;

  /// Π c_i — the number of full value combinations. Saturates at
  /// `kCombinationLimit` to keep guarded enumerations honest.
  std::uint64_t NumValueCombinations() const;

  /// Π (c_i + 1) — the number of nodes of the pattern graph (§III-B).
  std::uint64_t NumPatterns() const;

  /// Keeps only the attributes whose indices are listed, in the given order.
  Schema Project(const std::vector<int>& attribute_indices) const;

  bool operator==(const Schema& other) const;

  static constexpr std::uint64_t kCombinationLimit = std::uint64_t{1} << 62;

 private:
  std::vector<Attribute> attributes_;
  std::vector<int> cardinalities_;
};

}  // namespace coverage

#endif  // COVERAGE_DATASET_SCHEMA_H_

#include "engine/coverage_engine.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_set>
#include <utility>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "dataset/csv_stream.h"
#include "mups/mup_index.h"

namespace coverage {

namespace {

using DominanceMode = MupSearchOptions::DominanceMode;

/// "Is `p` strictly dominated by a maintained MUP?" under the engine's
/// dominance mode. `mups` is the live set (survivors + MUPs found so far
/// this epoch); `index` is only populated in kBitmapIndex mode.
bool IsDominatedByMups(const std::vector<Pattern>& mups,
                       const MupDominanceIndex& index, DominanceMode mode,
                       const Pattern& p) {
  switch (mode) {
    case DominanceMode::kBitmapIndex:
      return index.IsDominated(p);
    case DominanceMode::kLinearScan:
      for (const Pattern& m : mups) {
        if (m.Dominates(p)) return true;
      }
      return false;
    case DominanceMode::kNoPruning:
      return false;
  }
  return false;
}

}  // namespace

CoverageEngine::CoverageEngine(Schema schema, EngineOptions options)
    : schema_(std::move(schema)), options_(options) {
  assert(options_.num_threads >= 1);
  auto first = std::shared_ptr<Snapshot>(
      new Snapshot(AggregatedData(schema_), nullptr, 0));
  // cov(P) = 0 for every pattern of the empty dataset, so the root is the
  // unique MUP whenever tau >= 1; the first append bootstraps the full
  // search by re-expanding beneath it once it crosses τ.
  if (options_.tau >= 1) {
    first->mups_.push_back(Pattern::Root(schema_.num_attributes()));
  }
  current_ = std::move(first);
}

CoverageEngine::~CoverageEngine() = default;

std::shared_ptr<const CoverageEngine::Snapshot> CoverageEngine::snapshot()
    const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return current_;
}

void CoverageEngine::Publish(std::shared_ptr<const Snapshot> next) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  current_ = std::move(next);
}

Status CoverageEngine::AppendRows(std::span<const Row> rows,
                                  EngineUpdateStats* stats) {
  Dataset chunk(schema_);
  const int d = schema_.num_attributes();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (static_cast<int>(rows[r].size()) != d) {
      return Status::InvalidArgument(
          "row " + std::to_string(r) + " has " +
          std::to_string(rows[r].size()) + " values, schema has " +
          std::to_string(d));
    }
    for (int i = 0; i < d; ++i) {
      const Value v = rows[r][static_cast<std::size_t>(i)];
      if (v < 0 || v >= static_cast<Value>(schema_.cardinality(i))) {
        return Status::InvalidArgument(
            "row " + std::to_string(r) + ", attribute '" +
            schema_.attribute(i).name + "': value " + std::to_string(v) +
            " out of range [0, " + std::to_string(schema_.cardinality(i)) +
            ")");
      }
    }
    chunk.AppendRow(rows[r]);
  }
  return AppendRows(chunk, stats);
}

Status CoverageEngine::AppendRows(const Dataset& rows,
                                  EngineUpdateStats* stats) {
  if (!(rows.schema() == schema_)) {
    return Status::InvalidArgument(
        "appended rows' schema does not match the engine schema");
  }
  std::lock_guard<std::mutex> writer(writer_mu_);
  Stopwatch timer;
  const std::shared_ptr<const Snapshot> cur = snapshot();

  AggregatedData agg = cur->agg_;  // prefix-stable copy, extended in place
  agg.AppendRows(rows);
  auto next = std::shared_ptr<Snapshot>(
      new Snapshot(std::move(agg), &cur->oracle_, cur->epoch_ + 1));

  EngineUpdateStats local;
  EngineUpdateStats* s = stats != nullptr ? stats : &local;
  *s = EngineUpdateStats{};
  s->rows_appended = rows.num_rows();
  s->new_combinations =
      next->agg_.num_combinations() - cur->agg_.num_combinations();

  next->mups_ = UpdateMups(*next, cur->mups_, s);
  Publish(std::move(next));
  s->seconds = timer.ElapsedSeconds();
  return Status::OK();
}

StatusOr<IngestStats> CoverageEngine::IngestCsvChunked(std::istream& is,
                                                       std::size_t chunk_rows) {
  if (chunk_rows == 0) {
    return Status::InvalidArgument("chunk_rows must be >= 1");
  }
  auto reader = CsvChunkReader::Open(is, schema_);
  if (!reader.ok()) return reader.status();

  IngestStats stats;
  Stopwatch read_timer;
  for (;;) {
    read_timer.Restart();
    Dataset chunk(schema_);  // only this chunk is ever resident
    auto read = reader->ReadChunk(chunk, chunk_rows);
    if (!read.ok()) return read.status();
    stats.read_seconds += read_timer.ElapsedSeconds();
    if (*read == 0) break;

    EngineUpdateStats update;
    const Status appended = AppendRows(chunk, &update);
    if (!appended.ok()) return appended;
    ++stats.chunks;
    stats.rows += *read;
    stats.peak_chunk_rows = std::max(stats.peak_chunk_rows, *read);
    stats.update_seconds += update.seconds;
    stats.coverage_queries += update.coverage_queries;
  }
  return stats;
}

std::vector<Pattern> CoverageEngine::UpdateMups(
    const Snapshot& next, const std::vector<Pattern>& old_mups,
    EngineUpdateStats* stats) {
  const BitmapCoverage& oracle = next.oracle();
  const Schema& schema = next.data().schema();
  const std::uint64_t tau = options_.tau;
  const int d = schema.num_attributes();
  const int max_level = options_.max_level < 0 ? d : options_.max_level;
  const DominanceMode mode = options_.dominance_mode;

  // Phase 1 — recheck every previous MUP against the grown counts. The
  // probes are independent, so they parallelise over the pool with a
  // deterministic merge by index.
  std::vector<char> covered(old_mups.size(), 0);
  if (options_.num_threads > 1 && old_mups.size() >= 128) {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    }
    ThreadPool& pool = *pool_;
    std::vector<QueryContext> ctxs(
        static_cast<std::size_t>(pool.num_workers()));
    pool.ParallelFor(old_mups.size(), 64, [&](int worker, std::size_t i) {
      covered[i] = oracle.CoverageAtLeast(
                       old_mups[i], tau,
                       ctxs[static_cast<std::size_t>(worker)])
                       ? 1
                       : 0;
    });
    for (const QueryContext& ctx : ctxs) {
      stats->coverage_queries += ctx.num_queries();
    }
  } else {
    QueryContext ctx;
    for (std::size_t i = 0; i < old_mups.size(); ++i) {
      covered[i] = oracle.CoverageAtLeast(old_mups[i], tau, ctx) ? 1 : 0;
    }
    stats->coverage_queries += ctx.num_queries();
  }

  std::vector<Pattern> mups;      // survivors, then fresh discoveries
  std::vector<Pattern> frontier;  // newly covered → re-expansion roots
  for (std::size_t i = 0; i < old_mups.size(); ++i) {
    (covered[i] != 0 ? frontier : mups).push_back(old_mups[i]);
  }
  stats->mups_rechecked = old_mups.size();
  stats->mups_newly_covered = frontier.size();
  if (frontier.empty()) return mups;  // still sorted: a subsequence

  // Phase 2 — re-seed the Appendix-B dominance index from the survivors in
  // one batched append; fresh MUPs join it as they are found.
  MupDominanceIndex index(schema);
  if (mode == DominanceMode::kBitmapIndex) index.AddBatch(mups);

  // Phase 3 — BFS over the covered region beneath the newly covered MUPs.
  // Insert monotonicity confines every fresh MUP to these subtrees: an
  // uncovered child with every parent covered is a MUP; a covered child is
  // expanded further. `seen` dedups nodes shared between subtrees.
  QueryContext ctx;
  std::unordered_set<Pattern, PatternHash> seen(frontier.begin(),
                                                frontier.end());
  std::deque<Pattern> queue(frontier.begin(), frontier.end());
  while (!queue.empty()) {
    const Pattern p = std::move(queue.front());
    queue.pop_front();
    if (p.level() >= max_level) continue;  // children would exceed the cap
    for (int attr = 0; attr < d; ++attr) {
      if (p.is_deterministic(attr)) continue;
      for (Value v = 0; v < static_cast<Value>(schema.cardinality(attr));
           ++v) {
        Pattern child = p.WithCell(attr, v);
        if (!seen.insert(child).second) continue;
        if (oracle.CoverageAtLeast(child, tau, ctx)) {
          queue.push_back(std::move(child));
          continue;
        }
        // Uncovered. Beneath a maintained MUP → not maximal, whole subtree
        // already accounted for.
        if (IsDominatedByMups(mups, index, mode, child)) continue;
        // Maximal iff every parent is covered; `p` is one of them and is
        // known covered.
        bool maximal = true;
        for (const Pattern& parent : child.Parents()) {
          if (parent == p) continue;
          if (!oracle.CoverageAtLeast(parent, tau, ctx)) {
            maximal = false;
            break;
          }
        }
        if (!maximal) continue;
        mups.push_back(child);
        ++stats->mups_added;
        if (mode == DominanceMode::kBitmapIndex) index.Add(child);
      }
    }
  }
  stats->coverage_queries += ctx.num_queries();
  std::sort(mups.begin(), mups.end());
  return mups;
}

}  // namespace coverage

#include "engine/coverage_engine.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/arena.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "dataset/csv_stream.h"
#include "mups/mup_index.h"
#include "mups/packed_index.h"
#include "pattern/packed_set.h"

namespace coverage {

namespace {

using DominanceMode = MupSearchOptions::DominanceMode;

/// "Is `p` strictly dominated by a maintained MUP?" under the engine's
/// dominance mode. `mups` is the live set (survivors + MUPs found so far
/// this epoch); `index` is only populated in kBitmapIndex mode.
bool IsDominatedByMups(const std::vector<Pattern>& mups,
                       const MupDominanceIndex& index, DominanceMode mode,
                       const Pattern& p) {
  switch (mode) {
    case DominanceMode::kBitmapIndex:
      return index.IsDominated(p);
    case DominanceMode::kLinearScan:
      for (const Pattern& m : mups) {
        if (m.Dominates(p)) return true;
      }
      return false;
    case DominanceMode::kNoPruning:
      return false;
  }
  return false;
}

/// Validates borrowed rows against `schema` (width + value ranges) and
/// materialises them as a Dataset batch.
Status EncodeRows(const Schema& schema,
                  std::span<const CoverageEngine::Row> rows, Dataset* out) {
  const int d = schema.num_attributes();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (static_cast<int>(rows[r].size()) != d) {
      return Status::InvalidArgument(
          "row " + std::to_string(r) + " has " +
          std::to_string(rows[r].size()) + " values, schema has " +
          std::to_string(d));
    }
    for (int i = 0; i < d; ++i) {
      const Value v = rows[r][static_cast<std::size_t>(i)];
      if (v < 0 || v >= static_cast<Value>(schema.cardinality(i))) {
        return Status::InvalidArgument(
            "row " + std::to_string(r) + ", attribute '" +
            schema.attribute(i).name + "': value " + std::to_string(v) +
            " out of range [0, " + std::to_string(schema.cardinality(i)) +
            ")");
      }
    }
    out->AppendRow(rows[r]);
  }
  return Status::OK();
}

}  // namespace

CoverageEngine::CoverageEngine(Schema schema, EngineOptions options)
    : schema_(std::move(schema)), options_(options) {
  assert(options_.num_threads >= 1);
  if (options_.use_packed_representation) {
    auto codec = PatternCodec::Build(schema_);
    if (codec.ok()) {
      codec_ = std::move(*codec);
      packed_ok_ = true;
    }
  }
  auto first = std::shared_ptr<Snapshot>(
      new Snapshot(AggregatedData(schema_), nullptr, 0));
  // cov(P) = 0 for every pattern of the empty dataset, so the root is the
  // unique MUP whenever tau >= 1; the first append bootstraps the full
  // search by re-expanding beneath it once it crosses τ.
  if (options_.tau >= 1) {
    first->mups_.push_back(Pattern::Root(schema_.num_attributes()));
  }
  current_ = std::move(first);
}

CoverageEngine::~CoverageEngine() = default;

std::shared_ptr<const CoverageEngine::Snapshot> CoverageEngine::snapshot()
    const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return current_;
}

void CoverageEngine::Publish(std::shared_ptr<const Snapshot> next) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  current_ = std::move(next);
}

EngineImage CoverageEngine::CaptureImage() const {
  std::lock_guard<std::mutex> writer(writer_mu_);
  const std::shared_ptr<const Snapshot> snap = snapshot();
  const AggregatedData& agg = snap->data();

  EngineImage image;
  image.schema = schema_;
  image.options = options_;
  image.epoch = snap->epoch();
  image.agg_cells.reserve(agg.num_combinations() *
                          static_cast<std::size_t>(agg.num_attributes()));
  for (std::size_t k = 0; k < agg.num_combinations(); ++k) {
    const auto combo = agg.combination(k);
    image.agg_cells.insert(image.agg_cells.end(), combo.begin(), combo.end());
  }
  image.agg_counts = agg.counts();
  image.mups = snap->mups();
  image.window_batches.assign(window_batches_.begin(), window_batches_.end());
  return image;
}

StatusOr<std::unique_ptr<CoverageEngine>> CoverageEngine::Restore(
    EngineImage image) {
  auto agg = AggregatedData::Restore(image.schema, std::move(image.agg_cells),
                                     std::move(image.agg_counts));
  if (!agg.ok()) return agg.status();
  const int d = image.schema.num_attributes();
  for (const Pattern& mup : image.mups) {
    if (mup.num_attributes() != d) {
      return Status::InvalidArgument(
          "restore: MUP width does not match the schema");
    }
  }
  std::size_t window_rows = 0;
  for (const Dataset& batch : image.window_batches) {
    if (!(batch.schema() == image.schema)) {
      return Status::InvalidArgument(
          "restore: window batch schema does not match the engine schema");
    }
    window_rows += batch.num_rows();
  }
  if (image.options.num_threads < 1) image.options.num_threads = 1;

  auto engine =
      std::make_unique<CoverageEngine>(image.schema, image.options);
  auto snap = std::shared_ptr<Snapshot>(
      new Snapshot(std::move(*agg), nullptr, image.epoch));
  snap->mups_ = std::move(image.mups);
  engine->window_batches_.assign(
      std::make_move_iterator(image.window_batches.begin()),
      std::make_move_iterator(image.window_batches.end()));
  engine->window_rows_ = window_rows;
  engine->Publish(std::move(snap));
  return engine;
}

Status CoverageEngine::AppendRows(std::span<const Row> rows,
                                  EngineUpdateStats* stats) {
  Dataset chunk(schema_);
  const Status encoded = EncodeRows(schema_, rows, &chunk);
  if (!encoded.ok()) return encoded;
  return AppendRows(chunk, stats);
}

Status CoverageEngine::AppendRows(const Dataset& rows,
                                  EngineUpdateStats* stats) {
  if (!(rows.schema() == schema_)) {
    return Status::InvalidArgument(
        "appended rows' schema does not match the engine schema");
  }
  std::lock_guard<std::mutex> writer(writer_mu_);
  Stopwatch timer;
  const std::shared_ptr<const Snapshot> cur = snapshot();

  EngineUpdateStats local;
  EngineUpdateStats* s = stats != nullptr ? stats : &local;
  *s = EngineUpdateStats{};
  s->rows_appended = rows.num_rows();

  // Window bookkeeping: retain the batch, then collect whole oldest batches
  // past either limit for eviction in this same epoch. Empty batches are
  // not retained — they would occupy a window_max_epochs slot and evict a
  // real batch without any data having arrived.
  Dataset evicted(schema_);
  if (Windowed() && rows.num_rows() > 0) {
    window_batches_.push_back(rows);
    window_rows_ += rows.num_rows();
    while (!window_batches_.empty() &&
           ((options_.window_max_rows > 0 &&
             window_rows_ > options_.window_max_rows) ||
            (options_.window_max_epochs > 0 &&
             window_batches_.size() > options_.window_max_epochs))) {
      const Dataset& oldest = window_batches_.front();
      for (std::size_t r = 0; r < oldest.num_rows(); ++r) {
        evicted.AppendRow(oldest.row(r));
      }
      window_rows_ -= oldest.num_rows();
      window_batches_.pop_front();
    }
  }

  // Step 1 — the append epoch.
  std::shared_ptr<Snapshot> next;
  {
    AggregatedData agg = cur->agg_;  // prefix-stable copy, extended in place
    agg.AppendRows(rows);
    if (cur->agg_.num_tombstones() == 0) {
      // Pure accumulation: multiplicity changes need no index work.
      next = std::shared_ptr<Snapshot>(
          new Snapshot(std::move(agg), &cur->oracle_, cur->epoch_ + 1));
    } else {
      // Appending over tombstones can revive combinations in place; diff
      // the prefix so the oracle re-sets their masked bits.
      std::vector<std::size_t> revived;
      for (std::size_t k = 0; k < cur->agg_.num_combinations(); ++k) {
        if (cur->agg_.count(k) == 0 && agg.count(k) > 0) revived.push_back(k);
      }
      next = std::shared_ptr<Snapshot>(new Snapshot(
          std::move(agg), cur->oracle_, {}, revived, cur->epoch_ + 1));
    }
  }
  s->new_combinations =
      next->agg_.num_combinations() - cur->agg_.num_combinations();
  next->mups_ = UpdateMups(*next, cur->mups_, s);

  // Step 2 — the eviction (retraction) epoch, folded into the same publish.
  if (evicted.num_rows() > 0) {
    std::shared_ptr<Snapshot> shrunk;
    const Status retracted =
        RetractFrom(next, evicted, cur->epoch_ + 1, s, &shrunk);
    if (!retracted.ok()) {
      return Status::Internal("window eviction failed to retract: " +
                              retracted.ToString());
    }
    next = std::move(shrunk);
  }

  Publish(std::move(next));
  s->seconds = timer.ElapsedSeconds();
  return Status::OK();
}

Status CoverageEngine::RetractRows(std::span<const Row> rows,
                                   EngineUpdateStats* stats) {
  Dataset chunk(schema_);
  const Status encoded = EncodeRows(schema_, rows, &chunk);
  if (!encoded.ok()) return encoded;
  return RetractRows(chunk, stats);
}

Status CoverageEngine::RetractRows(const Dataset& rows,
                                   EngineUpdateStats* stats) {
  if (!(rows.schema() == schema_)) {
    return Status::InvalidArgument(
        "retracted rows' schema does not match the engine schema");
  }
  std::lock_guard<std::mutex> writer(writer_mu_);
  Stopwatch timer;
  const std::shared_ptr<const Snapshot> cur = snapshot();

  EngineUpdateStats local;
  EngineUpdateStats* s = stats != nullptr ? stats : &local;
  *s = EngineUpdateStats{};

  std::shared_ptr<Snapshot> next;
  const Status retracted =
      RetractFrom(cur, rows, cur->epoch_ + 1, s, &next);
  if (!retracted.ok()) return retracted;  // nothing published
  // Only after the retraction is known good: keep the retained window in
  // sync so a later eviction cannot double-retract these occurrences.
  if (Windowed()) ScrubWindow(rows);
  Publish(std::move(next));
  s->seconds = timer.ElapsedSeconds();
  return Status::OK();
}

Status CoverageEngine::RetractFrom(const std::shared_ptr<const Snapshot>& base,
                                   const Dataset& removed, std::uint64_t epoch,
                                   EngineUpdateStats* stats,
                                   std::shared_ptr<Snapshot>* out) {
  AggregatedData agg = base->agg_;  // same combinations, counts shrink
  for (std::size_t r = 0; r < removed.num_rows(); ++r) {
    if (!agg.DecrementRow(removed.row(r))) {
      return Status::InvalidArgument(
          "retracted row " + std::to_string(r) +
          " is not present in the engine's current data");
    }
  }

  // Diff the shared prefix (a retraction adds no combinations): combinations
  // whose multiplicity reached 0 are tombstoned and have their index bits
  // masked; every changed combination now below τ seeds the upward climb.
  std::vector<std::size_t> tombstoned;
  std::vector<Pattern> seeds;
  for (std::size_t k = 0; k < agg.num_combinations(); ++k) {
    if (agg.count(k) == base->agg_.count(k)) continue;
    if (agg.count(k) == 0) tombstoned.push_back(k);
    if (agg.count(k) < options_.tau) {
      seeds.push_back(Pattern::FromTuple(agg.combination(k)));
    }
  }
  stats->rows_retracted += removed.num_rows();
  stats->combinations_tombstoned += tombstoned.size();

  auto next = std::shared_ptr<Snapshot>(
      new Snapshot(std::move(agg), base->oracle_, tombstoned, {}, epoch));
  next->mups_ = RetractMups(*next, base->mups_, std::move(seeds), stats);

  // Tombstone compaction: once dead combinations pass the configured
  // fraction, republish this epoch over a dense rebuild. The MUP set is
  // carried over verbatim — the live multiset is unchanged, only ids
  // shift — and the next epoch diffs against the compacted snapshot, so
  // downstream maintenance never sees the old ids.
  const AggregatedData& data = next->agg_;
  if (options_.compact_tombstone_fraction > 0.0 &&
      data.num_combinations() > 0 &&
      static_cast<double>(data.num_tombstones()) >
          options_.compact_tombstone_fraction *
              static_cast<double>(data.num_combinations())) {
    const std::size_t live = data.num_combinations() - data.num_tombstones();
    std::vector<Value> cells;
    std::vector<std::uint64_t> counts;
    cells.reserve(live * static_cast<std::size_t>(schema_.num_attributes()));
    counts.reserve(live);
    for (std::size_t k = 0; k < data.num_combinations(); ++k) {
      if (data.count(k) == 0) continue;
      const auto combo = data.combination(k);
      cells.insert(cells.end(), combo.begin(), combo.end());
      counts.push_back(data.count(k));
    }
    auto dense =
        AggregatedData::Restore(schema_, std::move(cells), std::move(counts));
    // Live combinations always restore (they were valid in `data`); the
    // assert documents that, and release builds just skip compacting.
    assert(dense.ok());
    if (dense.ok()) {
      auto compacted = std::shared_ptr<Snapshot>(
          new Snapshot(std::move(*dense), nullptr, epoch));
      compacted->mups_ = std::move(next->mups_);
      next = std::move(compacted);
    }
  }

  *out = std::move(next);
  return Status::OK();
}

void CoverageEngine::ScrubWindow(const Dataset& removed) {
  // Key rows exactly as the aggregated relation does, so the scrub and the
  // retraction agree on row identity.
  const AggregatedData& agg = snapshot()->data();
  std::unordered_map<std::uint64_t, std::uint64_t> pending;
  for (std::size_t r = 0; r < removed.num_rows(); ++r) {
    ++pending[agg.KeyOf(removed.row(r))];
  }
  for (Dataset& batch : window_batches_) {
    if (pending.empty()) break;
    Dataset kept(schema_);
    bool changed = false;
    for (std::size_t r = 0; r < batch.num_rows(); ++r) {
      const auto it = pending.find(agg.KeyOf(batch.row(r)));
      if (it != pending.end()) {
        if (--it->second == 0) pending.erase(it);
        changed = true;
        --window_rows_;
        continue;
      }
      kept.AppendRow(batch.row(r));
    }
    if (changed) batch = std::move(kept);
  }
  // The engine's data is exactly the window multiset, so a validated
  // retraction always finds its rows here.
  assert(pending.empty());
  std::erase_if(window_batches_,
                [](const Dataset& b) { return b.num_rows() == 0; });
}

StatusOr<IngestStats> CoverageEngine::IngestCsvChunked(std::istream& is,
                                                       std::size_t chunk_rows) {
  if (chunk_rows == 0) {
    return Status::InvalidArgument("chunk_rows must be >= 1");
  }
  auto reader = CsvChunkReader::Open(is, schema_);
  if (!reader.ok()) return reader.status();

  IngestStats stats;
  Stopwatch read_timer;
  for (;;) {
    read_timer.Restart();
    Dataset chunk(schema_);  // only this chunk is ever resident
    auto read = reader->ReadChunk(chunk, chunk_rows);
    if (!read.ok()) return read.status();
    stats.read_seconds += read_timer.ElapsedSeconds();
    if (*read == 0) break;

    EngineUpdateStats update;
    const Status appended = AppendRows(chunk, &update);
    if (!appended.ok()) return appended;
    ++stats.chunks;
    stats.rows += *read;
    stats.peak_chunk_rows = std::max(stats.peak_chunk_rows, *read);
    stats.update_seconds += update.seconds;
    stats.coverage_queries += update.coverage_queries;
  }
  return stats;
}

std::vector<Pattern> CoverageEngine::UpdateMupsPacked(
    const Snapshot& next, const std::vector<Pattern>& old_mups,
    EngineUpdateStats* stats) {
  const BitmapCoverage& oracle = next.oracle();
  const PatternCodec& codec = codec_;
  const std::uint64_t tau = options_.tau;
  const int d = schema_.num_attributes();
  const int max_level = options_.max_level < 0 ? d : options_.max_level;
  const DominanceMode mode = options_.dominance_mode;

  std::vector<PackedPattern> old_packed;
  old_packed.reserve(old_mups.size());
  for (const Pattern& m : old_mups) old_packed.push_back(codec.Encode(m));

  // Phase 1 — recheck every previous MUP against the grown counts (same
  // probe sequence as the legacy path: one CoverageAtLeast per MUP).
  std::vector<char> covered(old_packed.size(), 0);
  if (options_.num_threads > 1 && old_packed.size() >= 128) {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    }
    ThreadPool& pool = *pool_;
    std::vector<QueryContext> ctxs(
        static_cast<std::size_t>(pool.num_workers()));
    pool.ParallelFor(old_packed.size(), 64, [&](int worker, std::size_t i) {
      covered[i] = oracle.CoverageAtLeast(
                       old_packed[i], codec, tau,
                       ctxs[static_cast<std::size_t>(worker)])
                       ? 1
                       : 0;
    });
    for (const QueryContext& ctx : ctxs) {
      stats->coverage_queries += ctx.num_queries();
    }
  } else {
    QueryContext ctx;
    for (std::size_t i = 0; i < old_packed.size(); ++i) {
      covered[i] = oracle.CoverageAtLeast(old_packed[i], codec, tau, ctx)
                       ? 1
                       : 0;
    }
    stats->coverage_queries += ctx.num_queries();
  }

  std::vector<PackedPattern> mups;  // survivors, then fresh discoveries
  std::vector<PackedPattern> frontier;  // newly covered → re-expansion roots
  for (std::size_t i = 0; i < old_packed.size(); ++i) {
    (covered[i] != 0 ? frontier : mups).push_back(old_packed[i]);
  }
  stats->mups_rechecked = old_mups.size();
  stats->mups_newly_covered = frontier.size();
  if (frontier.empty()) {
    // Still sorted: a subsequence of the sorted old set.
    std::vector<Pattern> out;
    out.reserve(mups.size());
    for (const PackedPattern& p : mups) out.push_back(codec.Decode(p));
    return out;
  }

  // Phase 2 — re-seed the Appendix-B dominance index from the survivors.
  PackedMupIndex index(schema_, codec);
  if (mode == DominanceMode::kBitmapIndex) index.AddBatch(mups);
  const auto dominated_by_mups = [&](const PackedPattern& p) -> bool {
    switch (mode) {
      case DominanceMode::kBitmapIndex:
        return index.IsDominated(p);
      case DominanceMode::kLinearScan:
        for (const PackedPattern& m : mups) {
          if (m.Dominates(p)) return true;
        }
        return false;
      case DominanceMode::kNoPruning:
        return false;
    }
    return false;
  };

  // Phase 3 — BFS over the covered region beneath the newly covered MUPs,
  // frontier and dedup set both arena-backed (the FIFO is an ArenaVector
  // with a head cursor; nothing is ever popped physically).
  QueryContext ctx;
  Arena arena;
  PackedPatternSet seen(&arena);
  ArenaVector<PackedPattern> queue(&arena);
  for (const PackedPattern& f : frontier) {
    seen.Insert(f);
    queue.push_back(f);
  }
  std::size_t head = 0;
  while (head < queue.size()) {
    const PackedPattern p = queue[head++];
    if (p.level() >= max_level) continue;  // children would exceed the cap
    for (int attr = 0; attr < d; ++attr) {
      if (codec.is_deterministic(p, attr)) continue;
      for (Value v = 0; v < static_cast<Value>(schema_.cardinality(attr));
           ++v) {
        const PackedPattern child = codec.WithCell(p, attr, v);
        if (!seen.Insert(child)) continue;
        if (oracle.CoverageAtLeast(child, codec, tau, ctx)) {
          queue.push_back(child);
          continue;
        }
        // Uncovered. Beneath a maintained MUP → not maximal, whole subtree
        // already accounted for.
        if (dominated_by_mups(child)) continue;
        // Maximal iff every parent is covered; `p` is one of them and is
        // known covered. Parents visit ascending, like Pattern::Parents().
        bool maximal = true;
        for (int i = 0; i < d && maximal; ++i) {
          if (!codec.is_deterministic(child, i)) continue;
          const PackedPattern parent = codec.WithCell(child, i, kWildcard);
          if (parent == p) continue;
          if (!oracle.CoverageAtLeast(parent, codec, tau, ctx)) {
            maximal = false;
          }
        }
        if (!maximal) continue;
        mups.push_back(child);
        ++stats->mups_added;
        if (mode == DominanceMode::kBitmapIndex) index.Add(child);
      }
    }
  }
  stats->coverage_queries += ctx.num_queries();
  std::sort(mups.begin(), mups.end(), PackedLess{&codec});
  std::vector<Pattern> out;
  out.reserve(mups.size());
  for (const PackedPattern& p : mups) out.push_back(codec.Decode(p));
  return out;
}

std::vector<Pattern> CoverageEngine::UpdateMups(
    const Snapshot& next, const std::vector<Pattern>& old_mups,
    EngineUpdateStats* stats) {
  if (packed_ok_) return UpdateMupsPacked(next, old_mups, stats);
  const BitmapCoverage& oracle = next.oracle();
  const Schema& schema = next.data().schema();
  const std::uint64_t tau = options_.tau;
  const int d = schema.num_attributes();
  const int max_level = options_.max_level < 0 ? d : options_.max_level;
  const DominanceMode mode = options_.dominance_mode;

  // Phase 1 — recheck every previous MUP against the grown counts. The
  // probes are independent, so they parallelise over the pool with a
  // deterministic merge by index.
  std::vector<char> covered(old_mups.size(), 0);
  if (options_.num_threads > 1 && old_mups.size() >= 128) {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    }
    ThreadPool& pool = *pool_;
    std::vector<QueryContext> ctxs(
        static_cast<std::size_t>(pool.num_workers()));
    pool.ParallelFor(old_mups.size(), 64, [&](int worker, std::size_t i) {
      covered[i] = oracle.CoverageAtLeast(
                       old_mups[i], tau,
                       ctxs[static_cast<std::size_t>(worker)])
                       ? 1
                       : 0;
    });
    for (const QueryContext& ctx : ctxs) {
      stats->coverage_queries += ctx.num_queries();
    }
  } else {
    QueryContext ctx;
    for (std::size_t i = 0; i < old_mups.size(); ++i) {
      covered[i] = oracle.CoverageAtLeast(old_mups[i], tau, ctx) ? 1 : 0;
    }
    stats->coverage_queries += ctx.num_queries();
  }

  std::vector<Pattern> mups;      // survivors, then fresh discoveries
  std::vector<Pattern> frontier;  // newly covered → re-expansion roots
  for (std::size_t i = 0; i < old_mups.size(); ++i) {
    (covered[i] != 0 ? frontier : mups).push_back(old_mups[i]);
  }
  stats->mups_rechecked = old_mups.size();
  stats->mups_newly_covered = frontier.size();
  if (frontier.empty()) return mups;  // still sorted: a subsequence

  // Phase 2 — re-seed the Appendix-B dominance index from the survivors in
  // one batched append; fresh MUPs join it as they are found.
  MupDominanceIndex index(schema);
  if (mode == DominanceMode::kBitmapIndex) index.AddBatch(mups);

  // Phase 3 — BFS over the covered region beneath the newly covered MUPs.
  // Insert monotonicity confines every fresh MUP to these subtrees: an
  // uncovered child with every parent covered is a MUP; a covered child is
  // expanded further. `seen` dedups nodes shared between subtrees.
  QueryContext ctx;
  std::unordered_set<Pattern, PatternHash> seen(frontier.begin(),
                                                frontier.end());
  std::deque<Pattern> queue(frontier.begin(), frontier.end());
  while (!queue.empty()) {
    const Pattern p = std::move(queue.front());
    queue.pop_front();
    if (p.level() >= max_level) continue;  // children would exceed the cap
    for (int attr = 0; attr < d; ++attr) {
      if (p.is_deterministic(attr)) continue;
      for (Value v = 0; v < static_cast<Value>(schema.cardinality(attr));
           ++v) {
        Pattern child = p.WithCell(attr, v);
        if (!seen.insert(child).second) continue;
        if (oracle.CoverageAtLeast(child, tau, ctx)) {
          queue.push_back(std::move(child));
          continue;
        }
        // Uncovered. Beneath a maintained MUP → not maximal, whole subtree
        // already accounted for.
        if (IsDominatedByMups(mups, index, mode, child)) continue;
        // Maximal iff every parent is covered; `p` is one of them and is
        // known covered.
        bool maximal = true;
        for (const Pattern& parent : child.Parents()) {
          if (parent == p) continue;
          if (!oracle.CoverageAtLeast(parent, tau, ctx)) {
            maximal = false;
            break;
          }
        }
        if (!maximal) continue;
        mups.push_back(child);
        ++stats->mups_added;
        if (mode == DominanceMode::kBitmapIndex) index.Add(child);
      }
    }
  }
  stats->coverage_queries += ctx.num_queries();
  std::sort(mups.begin(), mups.end());
  return mups;
}

std::vector<Pattern> CoverageEngine::RetractMupsPacked(
    const Snapshot& next, const std::vector<Pattern>& old_mups,
    const std::vector<Pattern>& seeds, EngineUpdateStats* stats) {
  const BitmapCoverage& oracle = next.oracle();
  const PatternCodec& codec = codec_;
  const std::uint64_t tau = options_.tau;
  const int d = schema_.num_attributes();
  const int max_level = options_.max_level < 0 ? d : options_.max_level;
  const DominanceMode mode = options_.dominance_mode;

  std::vector<PackedPattern> old_packed;
  old_packed.reserve(old_mups.size());
  for (const Pattern& m : old_mups) old_packed.push_back(codec.Encode(m));

  // Phase 1 — recheck each previous MUP's parents (see the legacy body for
  // the monotonicity argument; probe sequence is identical).
  std::vector<char> maximal(old_packed.size(), 1);
  const auto recheck = [&](const PackedPattern& m, QueryContext& ctx) -> char {
    for (int i = 0; i < d; ++i) {
      if (!codec.is_deterministic(m, i)) continue;
      const PackedPattern parent = codec.WithCell(m, i, kWildcard);
      if (!oracle.CoverageAtLeast(parent, codec, tau, ctx)) return 0;
    }
    return 1;
  };
  if (options_.num_threads > 1 && old_packed.size() >= 128) {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    }
    ThreadPool& pool = *pool_;
    std::vector<QueryContext> ctxs(
        static_cast<std::size_t>(pool.num_workers()));
    pool.ParallelFor(old_packed.size(), 64, [&](int worker, std::size_t i) {
      maximal[i] =
          recheck(old_packed[i], ctxs[static_cast<std::size_t>(worker)]);
    });
    for (const QueryContext& ctx : ctxs) {
      stats->coverage_queries += ctx.num_queries();
    }
  } else {
    QueryContext ctx;
    for (std::size_t i = 0; i < old_packed.size(); ++i) {
      maximal[i] = recheck(old_packed[i], ctx);
    }
    stats->coverage_queries += ctx.num_queries();
  }
  stats->mups_rechecked += old_mups.size();

  // Phase 2 — seed the index with the whole previous set, then Remove the
  // demoted MUPs.
  Arena arena;
  PackedMupIndex index(schema_, codec);
  if (mode == DominanceMode::kBitmapIndex) index.AddBatch(old_packed);
  std::vector<PackedPattern> mups;  // survivors, then fresh discoveries
  PackedPatternSet member(&arena);
  for (std::size_t i = 0; i < old_packed.size(); ++i) {
    if (maximal[i] != 0) {
      mups.push_back(old_packed[i]);
      member.Insert(old_packed[i]);
    } else {
      if (mode == DominanceMode::kBitmapIndex) index.Remove(old_packed[i]);
      ++stats->mups_demoted;
    }
  }

  // Phase 3 — upward BFS from the retracted combinations now below τ (see
  // the legacy body). The memo packs three states into one byte: -1 unknown
  // slot just created, 0 uncovered, 1 covered.
  QueryContext ctx;
  PackedPatternMap<std::int8_t> covered(&arena);
  ArenaVector<PackedPattern> queue(&arena);
  for (const Pattern& s : seeds) {
    const PackedPattern seed = codec.Encode(s);
    std::int8_t& slot = covered.FindOrInsert(seed, std::int8_t{-1});
    if (slot == -1) {
      slot = 0;  // a seed is below τ by construction
      queue.push_back(seed);
    }
  }
  const auto is_covered = [&](const PackedPattern& q) -> bool {
    {
      const std::int8_t* hit = covered.Find(q);
      if (hit != nullptr) return *hit == 1;
    }
    bool cov = false;
    bool known = false;
    switch (mode) {
      case DominanceMode::kBitmapIndex:
        if (index.Contains(q) || index.IsDominated(q)) {
          known = true;  // a maintained MUP, or beneath one: uncovered
        } else if (index.DominatesSome(q)) {
          cov = true;  // generalises a covered parent of a maintained MUP
          known = true;
        }
        break;
      case DominanceMode::kLinearScan:
        for (const PackedPattern& m : mups) {
          if (m.DominatesOrEquals(q)) {
            known = true;
            break;
          }
          if (q.Dominates(m)) {
            cov = true;
            known = true;
            break;
          }
        }
        break;
      case DominanceMode::kNoPruning:
        break;
    }
    if (!known) cov = oracle.CoverageAtLeast(q, codec, tau, ctx);
    covered.FindOrInsert(q, std::int8_t{-1}) = cov ? 1 : 0;
    if (!cov) queue.push_back(q);
    return cov;
  };
  std::size_t head = 0;
  while (head < queue.size()) {
    const PackedPattern p = queue[head++];
    bool is_maximal = true;
    for (int i = 0; i < d; ++i) {
      if (!codec.is_deterministic(p, i)) continue;
      const PackedPattern parent = codec.WithCell(p, i, kWildcard);
      if (!is_covered(parent)) is_maximal = false;  // keep probing: routes
    }
    if (!is_maximal || p.level() > max_level) continue;
    if (!member.Insert(p)) continue;  // already a survivor
    mups.push_back(p);
    if (mode == DominanceMode::kBitmapIndex) index.Add(p);
    ++stats->mups_added;
  }
  stats->coverage_queries += ctx.num_queries();
  std::sort(mups.begin(), mups.end(), PackedLess{&codec});
  std::vector<Pattern> out;
  out.reserve(mups.size());
  for (const PackedPattern& p : mups) out.push_back(codec.Decode(p));
  return out;
}

std::vector<Pattern> CoverageEngine::RetractMups(
    const Snapshot& next, const std::vector<Pattern>& old_mups,
    std::vector<Pattern> seeds, EngineUpdateStats* stats) {
  // No retracted combination crossed below τ ⇒ the MUP set is unchanged
  // (see the comment below); checked here so both representations share the
  // early exit.
  if (seeds.empty()) return old_mups;
  if (packed_ok_) return RetractMupsPacked(next, old_mups, seeds, stats);
  const BitmapCoverage& oracle = next.oracle();
  const Schema& schema = next.data().schema();
  const std::uint64_t tau = options_.tau;
  const int d = schema.num_attributes();
  const int max_level = options_.max_level < 0 ? d : options_.max_level;
  const DominanceMode mode = options_.dominance_mode;

  // No retracted combination crossed below τ ⇒ the MUP set is unchanged:
  // a demotion would need a parent below τ, which in turn forces a changed
  // matched combination below τ — i.e. a seed. Skip all maintenance.
  if (seeds.empty()) return old_mups;

  // Phase 1 — deletion keeps every previous MUP uncovered, but maximality
  // can break: a parent whose count fell below τ is now an uncovered strict
  // ancestor. Recheck each previous MUP's parents; the probes are
  // independent, so they parallelise over the pool with a deterministic
  // merge by index, exactly like the append-path recheck.
  std::vector<char> maximal(old_mups.size(), 1);
  const auto recheck = [&](const Pattern& m, QueryContext& ctx) -> char {
    for (const Pattern& parent : m.Parents()) {
      if (!oracle.CoverageAtLeast(parent, tau, ctx)) return 0;
    }
    return 1;
  };
  if (options_.num_threads > 1 && old_mups.size() >= 128) {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    }
    ThreadPool& pool = *pool_;
    std::vector<QueryContext> ctxs(
        static_cast<std::size_t>(pool.num_workers()));
    pool.ParallelFor(old_mups.size(), 64, [&](int worker, std::size_t i) {
      maximal[i] =
          recheck(old_mups[i], ctxs[static_cast<std::size_t>(worker)]);
    });
    for (const QueryContext& ctx : ctxs) {
      stats->coverage_queries += ctx.num_queries();
    }
  } else {
    QueryContext ctx;
    for (std::size_t i = 0; i < old_mups.size(); ++i) {
      maximal[i] = recheck(old_mups[i], ctx);
    }
    stats->coverage_queries += ctx.num_queries();
  }
  stats->mups_rechecked += old_mups.size();

  // Phase 2 — seed the Appendix-B index with the whole previous set in one
  // batched append, then Remove the demoted MUPs: only verified-maximal
  // patterns may stay, because both pruning directions below lean on
  // maximality (a pattern strictly dominating a maintained MUP generalises
  // one of its covered parents).
  MupDominanceIndex index(schema);
  if (mode == DominanceMode::kBitmapIndex) index.AddBatch(old_mups);
  std::vector<Pattern> mups;  // survivors, then fresh discoveries
  std::unordered_set<Pattern, PatternHash> member;
  for (std::size_t i = 0; i < old_mups.size(); ++i) {
    if (maximal[i] != 0) {
      mups.push_back(old_mups[i]);
      member.insert(old_mups[i]);
    } else {
      if (mode == DominanceMode::kBitmapIndex) index.Remove(old_mups[i]);
      ++stats->mups_demoted;
    }
  }

  // Phase 3 — upward BFS from the retracted combinations now below τ,
  // expanding only through uncovered patterns. Every new MUP is an ancestor
  // of such a combination (its count changed, so it matches a retracted
  // row), and the whole lattice interval between the two is uncovered by
  // monotonicity, so the walk reaches it. A visited pattern is a MUP iff
  // every parent is covered; all parents are probed regardless, because
  // each uncovered parent is itself a climb route. The memo answers each
  // pattern once; the dominance index converts both strict-dominance
  // directions into free coverage answers (below a MUP ⇒ uncovered, above
  // one ⇒ covered).
  QueryContext ctx;
  std::unordered_map<Pattern, bool, PatternHash> covered;  // pattern → cov≥τ
  std::deque<Pattern> queue;
  for (Pattern& seed : seeds) {
    if (covered.try_emplace(seed, false).second) {
      queue.push_back(std::move(seed));
    }
  }
  const auto is_covered = [&](const Pattern& q) -> bool {
    const auto [it, inserted] = covered.try_emplace(q, false);
    if (!inserted) return it->second;
    bool cov = false;
    bool known = false;
    switch (mode) {
      case DominanceMode::kBitmapIndex:
        if (index.Contains(q) || index.IsDominated(q)) {
          known = true;  // a maintained MUP, or beneath one: uncovered
        } else if (index.DominatesSome(q)) {
          cov = true;  // generalises a covered parent of a maintained MUP
          known = true;
        }
        break;
      case DominanceMode::kLinearScan:
        for (const Pattern& m : mups) {
          if (m.DominatesOrEquals(q)) {
            known = true;
            break;
          }
          if (q.Dominates(m)) {
            cov = true;
            known = true;
            break;
          }
        }
        break;
      case DominanceMode::kNoPruning:
        break;
    }
    if (!known) cov = oracle.CoverageAtLeast(q, tau, ctx);
    it->second = cov;
    if (!cov) queue.push_back(q);
    return cov;
  };
  while (!queue.empty()) {
    const Pattern p = std::move(queue.front());
    queue.pop_front();
    bool is_maximal = true;
    for (const Pattern& parent : p.Parents()) {
      if (!is_covered(parent)) is_maximal = false;  // keep probing: routes
    }
    if (!is_maximal || p.level() > max_level) continue;
    if (!member.insert(p).second) continue;  // already a survivor
    mups.push_back(p);
    if (mode == DominanceMode::kBitmapIndex) index.Add(p);
    ++stats->mups_added;
  }
  stats->coverage_queries += ctx.num_queries();
  std::sort(mups.begin(), mups.end());
  return mups;
}

}  // namespace coverage

#ifndef COVERAGE_ENGINE_COVERAGE_ENGINE_H_
#define COVERAGE_ENGINE_COVERAGE_ENGINE_H_

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/status.h"
#include "coverage/bitmap_coverage.h"
#include "coverage/coverage_oracle.h"
#include "dataset/aggregate.h"
#include "dataset/dataset.h"
#include "dataset/schema.h"
#include "mups/mups.h"
#include "pattern/pattern.h"

namespace coverage {

class ThreadPool;

/// Write-ahead-log durability policy. Consumed by persist::DurableEngine —
/// the engine itself performs no IO; the knob lives here so one options
/// struct configures a session end to end.
enum class DurabilityMode {
  kNone,   ///< no WAL; persistence only through explicit checkpoints
  kAsync,  ///< WAL written per commit, no fsync (crash may lose a tail)
  kFsync,  ///< group-commit fdatasync before acknowledging each mutation
};

/// Configuration of a CoverageEngine; fixed for the engine's lifetime so
/// every epoch answers the same Problem-1 instance.
struct EngineOptions {
  /// Coverage threshold τ (Definition 3).
  std::uint64_t tau = 30;

  /// When >= 0, maintain only MUPs of level <= max_level (§V-C3).
  int max_level = -1;

  /// Worker count for the epoch updates: the old-MUP recheck sweep is
  /// distributed over a pool of this size (deterministic — results are
  /// merged by index). 1 runs everything inline.
  int num_threads = 1;

  /// Dominance strategy for the incremental maintenance pruning, mirroring
  /// DEEPDIVER's ablation modes; all three produce identical MUP sets.
  MupSearchOptions::DominanceMode dominance_mode =
      MupSearchOptions::DominanceMode::kBitmapIndex;

  /// Sliding-window mode. When `window_max_rows > 0`, each append retains
  /// the batch and then evicts the *oldest retained batches whole* until at
  /// most window_max_rows rows remain (so a batch larger than the window
  /// is evicted in the very epoch that appended it, leaving the window
  /// empty). When `window_max_epochs > 0`, at most that many most-recent
  /// append batches are retained. Both zero (the default) disables
  /// windowing: nothing is retained and appends are pure accumulation.
  /// Either limit alone or both together may be set.
  std::size_t window_max_rows = 0;
  std::size_t window_max_epochs = 0;

  /// Durability policy when the engine is wrapped by persist::DurableEngine;
  /// ignored by the in-memory engine itself.
  DurabilityMode durability = DurabilityMode::kNone;

  /// Tombstone compaction: when a retraction epoch leaves more than this
  /// fraction of the aggregated relation's combinations tombstoned
  /// (zero-count), the epoch is published over a dense rebuild instead —
  /// live combinations re-packed into fresh ids, a from-scratch oracle,
  /// the MUP set carried over verbatim (compaction never changes the live
  /// multiset, so query answers and MUPs are bit-identical; only internal
  /// ids shift). Long retraction/sliding-window workloads otherwise
  /// accumulate dead columns in every bitmap forever. 0 disables (the
  /// historical behaviour). Not persisted: a restored engine applies its
  /// caller's setting.
  double compact_tombstone_fraction = 0.0;

  /// Run the incremental maintenance (MUP recheck + re-expansion / upward
  /// climb) on the packed pattern representation. Identical results and
  /// query counts either way — the flag exists for the differential suite
  /// and as an escape hatch. Schemas too wide for a PatternCodec fall back
  /// to the legacy representation automatically. Not persisted: a restored
  /// engine picks its own representation.
  bool use_packed_representation = true;
};

/// A serializable full-state image of an engine: everything needed to
/// reconstruct the published epoch bit-identically (same MUP set, same
/// query answers) without re-running any MUP search. Captured as a
/// consistent cut under the engine's writer lock.
struct EngineImage {
  Schema schema;
  EngineOptions options;  ///< problem knobs; runtime knobs reset by caller
  std::uint64_t epoch = 0;
  std::vector<Value> agg_cells;           ///< combos row-major, id order
  std::vector<std::uint64_t> agg_counts;  ///< parallel counts (0 = tombstone)
  std::vector<Pattern> mups;              ///< sorted, as published
  std::vector<Dataset> window_batches;    ///< retained batches, oldest first
};

/// Instrumentation of one epoch advance (one AppendRows / RetractRows call;
/// a windowed append that evicts covers both its append and its retraction
/// step).
struct EngineUpdateStats {
  std::size_t rows_appended = 0;
  std::size_t rows_retracted = 0;     ///< evicted or explicitly retracted
  std::size_t new_combinations = 0;   ///< distinct combos added this epoch
  std::size_t combinations_tombstoned = 0;  ///< combos whose count hit 0
  std::size_t mups_rechecked = 0;     ///< previous MUPs re-probed
  std::size_t mups_newly_covered = 0; ///< previous MUPs that crossed τ
  std::size_t mups_demoted = 0;       ///< previous MUPs that lost maximality
  std::size_t mups_added = 0;         ///< fresh MUPs discovered
  std::uint64_t coverage_queries = 0; ///< oracle calls spent on maintenance
  double seconds = 0.0;               ///< epoch build wall-clock
};

/// Instrumentation of one IngestCsvChunked call.
struct IngestStats {
  std::size_t chunks = 0;
  std::size_t rows = 0;
  /// Largest number of decoded rows resident at any instant — bounded by the
  /// requested chunk size by construction; the engine never materialises the
  /// stream (only the aggregated relation, whose size is min(n, Π c_i)).
  std::size_t peak_chunk_rows = 0;
  double read_seconds = 0.0;    ///< CSV parsing + dictionary encoding
  double update_seconds = 0.0;  ///< epoch builds (bitmap append + MUPs)
  std::uint64_t coverage_queries = 0;
};

/// A long-lived, incrementally maintained coverage service: the paper's
/// assess → acquire → re-assess loop (§I) without ever recomputing from
/// scratch. The engine owns a fixed (bucketized) schema and advances through
/// *epochs*: each AppendRows / ingest chunk copies the current aggregated
/// relation, extends it in place, grows the inverted bitmap index by one
/// word-blocked append (BitmapCoverage's incremental constructor), and
/// updates the MUP set incrementally.
///
/// MUP maintenance exploits insert monotonicity: appending rows only
/// increases pattern counts, so covered patterns stay covered, a previous
/// MUP that is still uncovered is still a MUP, and every *new* MUP lies
/// strictly beneath a previous MUP whose count crossed τ. The update
/// therefore rechecks the previous MUPs and re-expands only from the newly
/// covered ones, pruning with the Appendix-B dominance index (re-seeded per
/// epoch via MupDominanceIndex::AddBatch). The result is bit-identical to a
/// from-scratch search on the accumulated data.
///
/// Data also shrinks (sliding windows, retention, GDPR erasure), through
/// RetractRows or the EngineOptions sliding-window mode, and deletion
/// *inverts* the monotonicity argument: counts only fall, so uncovered
/// patterns stay uncovered — every previous MUP survives unless a parent
/// dropped below τ, in which case it is no longer maximal and its
/// replacement MUPs sit strictly *above* it in the pattern graph. The
/// retraction update rechecks each previous MUP's parents, then walks
/// ancestors upward from the retracted combinations that are below τ,
/// through the uncovered region only, confirming as a MUP every uncovered
/// pattern whose parents are all covered. Both dominance directions of the
/// Appendix-B index prune oracle calls during the climb (dominated by a
/// MUP ⇒ uncovered; strictly dominating a MUP ⇒ covered). Retracted
/// combinations whose multiplicity reaches 0 are tombstoned in
/// AggregatedData (ids stay prefix-stable) and their bits masked by
/// BitmapCoverage's decremental constructor. Again the result is
/// bit-identical to a from-scratch search on the surviving rows.
///
/// Concurrency: epochs are immutable once published. Readers take a
/// shared_ptr snapshot (Query / Mups / snapshot()) and are never blocked by
/// or exposed to an in-flight epoch build; writers serialise among
/// themselves on an internal writer lock. Queries go through the caller's
/// QueryContext exactly as with a standalone BitmapCoverage.
///
/// Complexity per epoch: O(distinct combinations) for the aggregated-
/// relation copy and index extension, plus maintenance work proportional to
/// the affected region of the pattern graph (rechecked MUPs + the BFS /
/// climb frontier), not to the total data size.
class CoverageEngine {
 public:
  /// One immutable epoch: the aggregated relation, its oracle, and the MUP
  /// set. Handed out as shared_ptr<const Snapshot>; safe to hold across
  /// later appends (it simply keeps answering for its epoch) and to share
  /// across threads.
  class Snapshot {
   public:
    const AggregatedData& data() const { return agg_; }
    const BitmapCoverage& oracle() const { return oracle_; }
    /// Sorted lexicographically, like every FindMups* result.
    const std::vector<Pattern>& mups() const { return mups_; }
    std::uint64_t epoch() const { return epoch_; }
    std::uint64_t num_rows() const { return agg_.total_count(); }

   private:
    friend class CoverageEngine;
    Snapshot(AggregatedData agg, const BitmapCoverage* prev,
             std::uint64_t epoch)
        : agg_(std::move(agg)),
          oracle_(prev == nullptr ? BitmapCoverage(agg_)
                                  : BitmapCoverage(agg_, *prev)),
          epoch_(epoch) {}

    /// Retraction / mixed epoch: combination liveness changed within the
    /// shared prefix, so the oracle masks `tombstoned` ids and re-sets
    /// `revived` ones (see BitmapCoverage's decremental constructor).
    Snapshot(AggregatedData agg, const BitmapCoverage& prev,
             std::span<const std::size_t> tombstoned,
             std::span<const std::size_t> revived, std::uint64_t epoch)
        : agg_(std::move(agg)),
          oracle_(agg_, prev, tombstoned, revived),
          epoch_(epoch) {}

    AggregatedData agg_;
    BitmapCoverage oracle_;  // references agg_
    std::vector<Pattern> mups_;
    std::uint64_t epoch_;
  };

  /// A borrowed row of encoded values, schema-width.
  using Row = std::span<const Value>;

  /// Starts at epoch 0 over the empty dataset (whose only MUP is the root
  /// whenever tau >= 1). The schema must be final — bucketize first.
  explicit CoverageEngine(Schema schema, EngineOptions options = {});
  ~CoverageEngine();

  const Schema& schema() const { return schema_; }
  const EngineOptions& options() const { return options_; }

  /// The currently published epoch; never null.
  std::shared_ptr<const Snapshot> snapshot() const;

  /// Streams CSV data (header validated against the schema) in chunks of
  /// `chunk_rows`, advancing one epoch per chunk. Only one chunk of decoded
  /// rows is ever resident; the stream itself is never materialised.
  StatusOr<IngestStats> IngestCsvChunked(std::istream& is,
                                         std::size_t chunk_rows);

  /// Appends encoded rows (validated against the schema) as one epoch.
  Status AppendRows(std::span<const Row> rows,
                    EngineUpdateStats* stats = nullptr);

  /// Appends every row of `rows` (whose schema must equal ours) as one
  /// epoch. In sliding-window mode the batch is retained and the epoch
  /// additionally evicts the oldest retained batches past the configured
  /// limit (EngineOptions::window_max_rows / window_max_epochs); the
  /// published snapshot reflects append and eviction together.
  Status AppendRows(const Dataset& rows, EngineUpdateStats* stats = nullptr);

  /// Removes one occurrence per row of `rows` (GDPR erasure / manual
  /// retention) as one epoch. Every row must currently be present in the
  /// requested multiplicity — otherwise InvalidArgument is returned and
  /// nothing is published. In sliding-window mode the retracted occurrences
  /// are also scrubbed from the retained batches, oldest first, so a later
  /// eviction never double-retracts them.
  Status RetractRows(std::span<const Row> rows,
                     EngineUpdateStats* stats = nullptr);

  /// As above, for a whole Dataset (whose schema must equal ours).
  Status RetractRows(const Dataset& rows, EngineUpdateStats* stats = nullptr);

  /// Captures the current epoch plus the sliding-window bookkeeping as one
  /// consistent cut (serialises with writers on the writer lock). The image
  /// round-trips through Restore.
  EngineImage CaptureImage() const;

  /// Reconstructs an engine from a captured image. The restored engine
  /// publishes the image's epoch with a from-scratch oracle over the
  /// restored relation and the image's MUP set verbatim — no MUP search
  /// runs, and query answers are bit-identical to the captured engine's
  /// (tombstoned combinations contribute 0 either way). The image is
  /// validated; a corrupted one yields InvalidArgument, never UB.
  static StatusOr<std::unique_ptr<CoverageEngine>> Restore(EngineImage image);

  /// The current MUP set (Problem 1 on the accumulated data), sorted.
  std::vector<Pattern> Mups() const { return snapshot()->mups(); }

  /// cov(pattern) on the current epoch.
  std::uint64_t Query(const Pattern& pattern, QueryContext& ctx) const {
    return snapshot()->oracle().Coverage(pattern, ctx);
  }
  std::uint64_t Query(const Pattern& pattern) const {
    QueryContext ctx;
    return Query(pattern, ctx);
  }

  /// cov(pattern) >= tau on the current epoch.
  bool QueryAtLeast(const Pattern& pattern, std::uint64_t tau,
                    QueryContext& ctx) const {
    return snapshot()->oracle().CoverageAtLeast(pattern, tau, ctx);
  }

  std::uint64_t epoch() const { return snapshot()->epoch(); }
  std::uint64_t num_rows() const { return snapshot()->num_rows(); }

  /// Rows currently retained by the sliding window (0 when windowing is
  /// off). Takes the writer mutex briefly — a monitoring read, not a
  /// hot-path one.
  std::size_t window_rows() const {
    std::lock_guard<std::mutex> lock(writer_mu_);
    return window_rows_;
  }

 private:
  /// Incremental Problem-1 maintenance for an append epoch (insert
  /// monotonicity, downward re-expansion); returns the new MUP set, sorted.
  /// Dispatches to the packed core when the codec is available. Caller holds
  /// writer_mu_.
  std::vector<Pattern> UpdateMups(const Snapshot& next,
                                  const std::vector<Pattern>& old_mups,
                                  EngineUpdateStats* stats);

  /// Incremental Problem-1 maintenance for a retraction epoch (deletion
  /// monotonicity, upward climb from `seeds` — the retracted combinations
  /// now below τ); returns the new MUP set, sorted. Dispatches to the packed
  /// core when the codec is available. Caller holds writer_mu_.
  std::vector<Pattern> RetractMups(const Snapshot& next,
                                   const std::vector<Pattern>& old_mups,
                                   std::vector<Pattern> seeds,
                                   EngineUpdateStats* stats);

  /// Packed cores of the two maintenance paths: same phases, same query
  /// sequence, arena-backed frontiers instead of per-node vector<int>.
  std::vector<Pattern> UpdateMupsPacked(const Snapshot& next,
                                        const std::vector<Pattern>& old_mups,
                                        EngineUpdateStats* stats);
  std::vector<Pattern> RetractMupsPacked(const Snapshot& next,
                                         const std::vector<Pattern>& old_mups,
                                         const std::vector<Pattern>& seeds,
                                         EngineUpdateStats* stats);

  /// Builds the retraction snapshot: copies `base`'s relation, decrements
  /// every row of `removed` (InvalidArgument if one is absent; nothing
  /// published), diffs the prefix into tombstoned ids + climb seeds, and
  /// runs RetractMups. On success stores the ready-to-publish snapshot in
  /// `out`. Caller holds writer_mu_.
  Status RetractFrom(const std::shared_ptr<const Snapshot>& base,
                     const Dataset& removed, std::uint64_t epoch,
                     EngineUpdateStats* stats,
                     std::shared_ptr<Snapshot>* out);

  /// Removes one occurrence per row of `removed` from the retained window
  /// batches, oldest occurrences first (keyed by AggregatedData::KeyOf);
  /// drops batches scrubbed empty. Caller holds writer_mu_ and has already
  /// validated availability.
  void ScrubWindow(const Dataset& removed);

  bool Windowed() const {
    return options_.window_max_rows > 0 || options_.window_max_epochs > 0;
  }

  void Publish(std::shared_ptr<const Snapshot> next);

  Schema schema_;
  EngineOptions options_;
  /// Built once at construction when use_packed_representation is set and
  /// the schema fits; packed_ok_ false routes maintenance to the legacy
  /// representation.
  PatternCodec codec_;
  bool packed_ok_ = false;
  mutable std::mutex snapshot_mu_;  // guards current_ (pointer swap only)
  /// Serialises epoch builds; mutable so const CaptureImage can take a
  /// consistent cut of snapshot + window state.
  mutable std::mutex writer_mu_;
  std::shared_ptr<const Snapshot> current_;
  /// Lazily built recheck pool, reused across epochs (guarded by writer_mu_)
  /// so a long chunked ingest pays thread spawn once, not per chunk.
  std::unique_ptr<ThreadPool> pool_;
  /// Sliding-window bookkeeping (guarded by writer_mu_): the retained
  /// append batches, oldest first, and their total row count. Empty unless
  /// a window limit is configured.
  std::deque<Dataset> window_batches_;
  std::size_t window_rows_ = 0;
};

}  // namespace coverage

#endif  // COVERAGE_ENGINE_COVERAGE_ENGINE_H_

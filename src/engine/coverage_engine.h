#ifndef COVERAGE_ENGINE_COVERAGE_ENGINE_H_
#define COVERAGE_ENGINE_COVERAGE_ENGINE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/status.h"
#include "coverage/bitmap_coverage.h"
#include "coverage/coverage_oracle.h"
#include "dataset/aggregate.h"
#include "dataset/dataset.h"
#include "dataset/schema.h"
#include "mups/mups.h"
#include "pattern/pattern.h"

namespace coverage {

class ThreadPool;

/// Configuration of a CoverageEngine; fixed for the engine's lifetime so
/// every epoch answers the same Problem-1 instance.
struct EngineOptions {
  /// Coverage threshold τ (Definition 3).
  std::uint64_t tau = 30;

  /// When >= 0, maintain only MUPs of level <= max_level (§V-C3).
  int max_level = -1;

  /// Worker count for the epoch updates: the old-MUP recheck sweep is
  /// distributed over a pool of this size (deterministic — results are
  /// merged by index). 1 runs everything inline.
  int num_threads = 1;

  /// Dominance strategy for the incremental maintenance pruning, mirroring
  /// DEEPDIVER's ablation modes; all three produce identical MUP sets.
  MupSearchOptions::DominanceMode dominance_mode =
      MupSearchOptions::DominanceMode::kBitmapIndex;
};

/// Instrumentation of one epoch advance (one AppendRows call).
struct EngineUpdateStats {
  std::size_t rows_appended = 0;
  std::size_t new_combinations = 0;   ///< distinct combos added this epoch
  std::size_t mups_rechecked = 0;     ///< previous MUPs whose count was probed
  std::size_t mups_newly_covered = 0; ///< previous MUPs that crossed τ
  std::size_t mups_added = 0;         ///< fresh MUPs found beneath them
  std::uint64_t coverage_queries = 0; ///< oracle calls spent on maintenance
  double seconds = 0.0;               ///< epoch build wall-clock
};

/// Instrumentation of one IngestCsvChunked call.
struct IngestStats {
  std::size_t chunks = 0;
  std::size_t rows = 0;
  /// Largest number of decoded rows resident at any instant — bounded by the
  /// requested chunk size by construction; the engine never materialises the
  /// stream (only the aggregated relation, whose size is min(n, Π c_i)).
  std::size_t peak_chunk_rows = 0;
  double read_seconds = 0.0;    ///< CSV parsing + dictionary encoding
  double update_seconds = 0.0;  ///< epoch builds (bitmap append + MUPs)
  std::uint64_t coverage_queries = 0;
};

/// A long-lived, incrementally maintained coverage service: the paper's
/// assess → acquire → re-assess loop (§I) without ever recomputing from
/// scratch. The engine owns a fixed (bucketized) schema and advances through
/// *epochs*: each AppendRows / ingest chunk copies the current aggregated
/// relation, extends it in place, grows the inverted bitmap index by one
/// word-blocked append (BitmapCoverage's incremental constructor), and
/// updates the MUP set incrementally.
///
/// MUP maintenance exploits insert monotonicity: appending rows only
/// increases pattern counts, so covered patterns stay covered, a previous
/// MUP that is still uncovered is still a MUP, and every *new* MUP lies
/// strictly beneath a previous MUP whose count crossed τ. The update
/// therefore rechecks the previous MUPs and re-expands only from the newly
/// covered ones, pruning with the Appendix-B dominance index (re-seeded per
/// epoch via MupDominanceIndex::AddBatch). The result is bit-identical to a
/// from-scratch search on the accumulated data.
///
/// Concurrency: epochs are immutable once published. Readers take a
/// shared_ptr snapshot (Query / Mups / snapshot()) and are never blocked by
/// or exposed to an in-flight epoch build; writers serialise among
/// themselves. Queries go through the caller's QueryContext exactly as with
/// a standalone BitmapCoverage.
class CoverageEngine {
 public:
  /// One immutable epoch: the aggregated relation, its oracle, and the MUP
  /// set. Handed out as shared_ptr<const Snapshot>; safe to hold across
  /// later appends (it simply keeps answering for its epoch) and to share
  /// across threads.
  class Snapshot {
   public:
    const AggregatedData& data() const { return agg_; }
    const BitmapCoverage& oracle() const { return oracle_; }
    /// Sorted lexicographically, like every FindMups* result.
    const std::vector<Pattern>& mups() const { return mups_; }
    std::uint64_t epoch() const { return epoch_; }
    std::uint64_t num_rows() const { return agg_.total_count(); }

   private:
    friend class CoverageEngine;
    Snapshot(AggregatedData agg, const BitmapCoverage* prev,
             std::uint64_t epoch)
        : agg_(std::move(agg)),
          oracle_(prev == nullptr ? BitmapCoverage(agg_)
                                  : BitmapCoverage(agg_, *prev)),
          epoch_(epoch) {}

    AggregatedData agg_;
    BitmapCoverage oracle_;  // references agg_
    std::vector<Pattern> mups_;
    std::uint64_t epoch_;
  };

  /// A borrowed row of encoded values, schema-width.
  using Row = std::span<const Value>;

  /// Starts at epoch 0 over the empty dataset (whose only MUP is the root
  /// whenever tau >= 1). The schema must be final — bucketize first.
  explicit CoverageEngine(Schema schema, EngineOptions options = {});
  ~CoverageEngine();

  const Schema& schema() const { return schema_; }
  const EngineOptions& options() const { return options_; }

  /// The currently published epoch; never null.
  std::shared_ptr<const Snapshot> snapshot() const;

  /// Streams CSV data (header validated against the schema) in chunks of
  /// `chunk_rows`, advancing one epoch per chunk. Only one chunk of decoded
  /// rows is ever resident; the stream itself is never materialised.
  StatusOr<IngestStats> IngestCsvChunked(std::istream& is,
                                         std::size_t chunk_rows);

  /// Appends encoded rows (validated against the schema) as one epoch.
  Status AppendRows(std::span<const Row> rows,
                    EngineUpdateStats* stats = nullptr);

  /// Appends every row of `rows` (whose schema must equal ours) as one
  /// epoch.
  Status AppendRows(const Dataset& rows, EngineUpdateStats* stats = nullptr);

  /// The current MUP set (Problem 1 on the accumulated data), sorted.
  std::vector<Pattern> Mups() const { return snapshot()->mups(); }

  /// cov(pattern) on the current epoch.
  std::uint64_t Query(const Pattern& pattern, QueryContext& ctx) const {
    return snapshot()->oracle().Coverage(pattern, ctx);
  }
  std::uint64_t Query(const Pattern& pattern) const {
    QueryContext ctx;
    return Query(pattern, ctx);
  }

  /// cov(pattern) >= tau on the current epoch.
  bool QueryAtLeast(const Pattern& pattern, std::uint64_t tau,
                    QueryContext& ctx) const {
    return snapshot()->oracle().CoverageAtLeast(pattern, tau, ctx);
  }

  std::uint64_t epoch() const { return snapshot()->epoch(); }
  std::uint64_t num_rows() const { return snapshot()->num_rows(); }

 private:
  /// Incremental Problem-1 maintenance described above; returns the new MUP
  /// set, sorted. Caller holds writer_mu_.
  std::vector<Pattern> UpdateMups(const Snapshot& next,
                                  const std::vector<Pattern>& old_mups,
                                  EngineUpdateStats* stats);

  void Publish(std::shared_ptr<const Snapshot> next);

  Schema schema_;
  EngineOptions options_;
  mutable std::mutex snapshot_mu_;  // guards current_ (pointer swap only)
  std::mutex writer_mu_;            // serialises epoch builds
  std::shared_ptr<const Snapshot> current_;
  /// Lazily built recheck pool, reused across epochs (guarded by writer_mu_)
  /// so a long chunked ingest pays thread spawn once, not per chunk.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace coverage

#endif  // COVERAGE_ENGINE_COVERAGE_ENGINE_H_

#include "enhancement/enhancement.h"

#include <algorithm>

#include "enhancement/expansion.h"

namespace coverage {

namespace {

/// Runs the configured hitting-set solver over `targets` and assembles the
/// plan, computing per-item copy counts from current coverage.
StatusOr<CoveragePlan> SolveOverTargets(const BitmapCoverage& oracle,
                                        std::vector<Pattern> targets,
                                        const EnhancementOptions& options) {
  CoveragePlan plan;
  HittingSetResult hs;
  if (options.use_naive_greedy) {
    auto solved =
        NaiveGreedyHittingSet(targets, oracle.data().schema(), options.oracle,
                              &plan.stats, options.enumeration_limit);
    if (!solved.ok()) return solved.status();
    hs = std::move(*solved);
  } else {
    hs = GreedyHittingSet(targets, oracle.data().schema(), options.oracle,
                          &plan.stats);
  }

  // A pick is responsible for the targets it newly hit; to push each of them
  // to τ it must be collected max(τ - cov) times. (Later picks may also hit
  // them, so this is a safe upper bound per pattern and exact when matches
  // are disjoint.)
  std::vector<bool> assigned(targets.size(), false);
  QueryContext ctx;
  for (std::size_t k = 0; k < hs.combinations.size(); ++k) {
    AcquisitionItem item;
    item.combination = std::move(hs.combinations[k]);
    item.generalized = hs.generalized[k];
    std::uint64_t copies = 1;
    for (std::size_t j = 0; j < targets.size(); ++j) {
      if (assigned[j] || !targets[j].Matches(item.combination)) continue;
      assigned[j] = true;
      const std::uint64_t cov = oracle.Coverage(targets[j], ctx);
      if (cov < options.tau) copies = std::max(copies, options.tau - cov);
    }
    item.copies = copies;
    plan.items.push_back(std::move(item));
  }
  plan.unresolvable = std::move(hs.unresolvable);
  plan.targets = std::move(targets);
  return plan;
}

}  // namespace

std::uint64_t CoveragePlan::TotalTuples() const {
  std::uint64_t total = 0;
  for (const AcquisitionItem& item : items) total += item.copies;
  return total;
}

StatusOr<CoveragePlan> PlanCoverageEnhancement(
    const BitmapCoverage& oracle, const std::vector<Pattern>& mups,
    const EnhancementOptions& options) {
  auto targets =
      UncoveredPatternsAtLevel(mups, oracle.data().schema(), options.lambda,
                               options.enumeration_limit);
  if (!targets.ok()) return targets.status();
  return SolveOverTargets(oracle, std::move(*targets), options);
}

StatusOr<CoveragePlan> PlanCoverageEnhancementByValueCount(
    const BitmapCoverage& oracle, const std::vector<Pattern>& mups,
    std::uint64_t min_value_count, const EnhancementOptions& options) {
  auto targets = UncoveredPatternsByValueCount(mups, oracle.data().schema(),
                                               min_value_count,
                                               options.enumeration_limit);
  if (!targets.ok()) return targets.status();
  return SolveOverTargets(oracle, std::move(*targets), options);
}

Dataset ApplyPlan(const Dataset& dataset, const CoveragePlan& plan) {
  Dataset out = dataset;
  for (const AcquisitionItem& item : plan.items) {
    for (std::uint64_t c = 0; c < item.copies; ++c) {
      out.AppendRow(item.combination);
    }
  }
  return out;
}

}  // namespace coverage

#ifndef COVERAGE_ENHANCEMENT_ENHANCEMENT_H_
#define COVERAGE_ENHANCEMENT_ENHANCEMENT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "coverage/bitmap_coverage.h"
#include "enhancement/hitting_set.h"
#include "enhancement/validation.h"
#include "pattern/pattern.h"

namespace coverage {

/// Options for Problem 2 (Coverage Enhancement).
struct EnhancementOptions {
  /// Coverage threshold τ the patterns must reach.
  std::uint64_t tau = 1;

  /// Target maximum covered level λ: after acquisition no pattern of level
  /// <= lambda may remain uncovered.
  int lambda = 1;

  /// Optional semantic-feasibility oracle (Definitions 10/11); may be null.
  const ValidationOracle* oracle = nullptr;

  /// Use the naive per-iteration full enumeration instead of the indexed
  /// GREEDY (for the Fig. 17 baseline comparison).
  bool use_naive_greedy = false;

  /// Guard for the Appendix-C expansion and the naive solver.
  std::uint64_t enumeration_limit = std::uint64_t{1} << 26;
};

/// One acquisition instruction: collect `copies` tuples matching
/// `combination` (or, equivalently, matching `generalized`, which describes
/// the full set of equally useful combinations — the §IV implementation
/// note).
struct AcquisitionItem {
  std::vector<Value> combination;
  Pattern generalized;
  std::uint64_t copies = 1;
};

/// The output of coverage-enhancement planning.
struct CoveragePlan {
  /// Patterns the plan must hit (M_λ of Appendix C). Fig. 19's "input size".
  std::vector<Pattern> targets;

  /// Acquisition instructions, in greedy pick order. Fig. 19's "output size"
  /// is items.size().
  std::vector<AcquisitionItem> items;

  /// Targets that no valid combination can match (ruled out by the
  /// validation oracle); flagged for the human in the loop.
  std::vector<Pattern> unresolvable;

  HittingSetStats stats;

  /// Σ copies across items: the total number of tuples to collect.
  std::uint64_t TotalTuples() const;
};

/// Solves Problem 2: expands the material MUPs (level <= λ) into M_λ, runs
/// the greedy hitting set, and annotates each pick with the number of copies
/// needed so every pattern it is responsible for actually reaches τ.
///
/// `mups` must be the MUPs of the dataset behind `oracle` for the same τ
/// (typically from FindMups* — minus any MUPs the domain expert discarded
/// as immaterial).
StatusOr<CoveragePlan> PlanCoverageEnhancement(const BitmapCoverage& oracle,
                                               const std::vector<Pattern>& mups,
                                               const EnhancementOptions& options);

/// The value-count flavour: every uncovered pattern with value count >=
/// `min_value_count` must reach τ. Same solving machinery over a different
/// target set (Definition 7 / §IV).
StatusOr<CoveragePlan> PlanCoverageEnhancementByValueCount(
    const BitmapCoverage& oracle, const std::vector<Pattern>& mups,
    std::uint64_t min_value_count, const EnhancementOptions& options);

/// Applies a plan to a dataset: appends `copies` rows of each item's
/// combination and returns the enlarged dataset. Used by tests and by the
/// Fig. 11-style before/after experiments.
Dataset ApplyPlan(const Dataset& dataset, const CoveragePlan& plan);

}  // namespace coverage

#endif  // COVERAGE_ENHANCEMENT_ENHANCEMENT_H_

#include "enhancement/expansion.h"

#include <algorithm>
#include <unordered_set>

#include "pattern/pattern_ops.h"

namespace coverage {

StatusOr<std::vector<Pattern>> UncoveredPatternsAtLevel(
    const std::vector<Pattern>& mups, const Schema& schema, int lambda,
    std::uint64_t limit) {
  if (lambda < 0 || lambda > schema.num_attributes()) {
    return Status::InvalidArgument("lambda " + std::to_string(lambda) +
                                   " outside [0, d]");
  }
  std::unordered_set<Pattern, PatternHash> seen;
  std::vector<Pattern> out;
  for (const Pattern& mup : mups) {
    if (mup.level() > lambda) continue;
    auto descendants = DescendantsAtLevel(mup, schema, lambda, limit);
    if (!descendants.ok()) return descendants.status();
    for (Pattern& p : *descendants) {
      if (seen.insert(p).second) {
        if (out.size() >= limit) {
          return Status::ResourceExhausted(
              "more than " + std::to_string(limit) +
              " uncovered patterns at level " + std::to_string(lambda));
        }
        out.push_back(std::move(p));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

StatusOr<std::vector<Pattern>> UncoveredPatternsByValueCount(
    const std::vector<Pattern>& mups, const Schema& schema,
    std::uint64_t min_value_count, std::uint64_t limit) {
  if (min_value_count == 0) {
    return Status::InvalidArgument("min_value_count must be positive");
  }
  // DFS downward from each qualifying MUP: a node is *minimal* when every
  // one-cell specialisation falls below the value-count bar. All visited
  // nodes are uncovered (descendants of MUPs).
  std::unordered_set<Pattern, PatternHash> seen;
  std::vector<Pattern> out;
  std::vector<Pattern> stack;
  for (const Pattern& mup : mups) {
    if (mup.ValueCount(schema) < min_value_count) continue;
    stack.push_back(mup);
  }
  while (!stack.empty()) {
    Pattern p = std::move(stack.back());
    stack.pop_back();
    if (!seen.insert(p).second) continue;
    if (seen.size() > limit) {
      return Status::ResourceExhausted(
          "value-count expansion visited more than " + std::to_string(limit) +
          " patterns");
    }
    const std::uint64_t vc = p.ValueCount(schema);
    bool minimal = true;
    for (int i = 0; i < p.num_attributes(); ++i) {
      if (p.is_deterministic(i)) continue;
      const auto c = static_cast<std::uint64_t>(schema.cardinality(i));
      if (vc / c >= min_value_count) {
        minimal = false;
        for (Value v = 0; v < static_cast<Value>(c); ++v) {
          stack.push_back(p.WithCell(i, v));
        }
      }
    }
    if (minimal) out.push_back(std::move(p));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace coverage

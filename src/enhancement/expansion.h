#ifndef COVERAGE_ENHANCEMENT_EXPANSION_H_
#define COVERAGE_ENHANCEMENT_EXPANSION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "dataset/schema.h"
#include "pattern/pattern.h"

namespace coverage {

/// M_λ of Appendix C: all (not necessarily maximal) uncovered patterns at
/// exactly level `lambda` — the union of the level-λ descendants of every
/// MUP with level <= λ, deduplicated. Covering all of M_λ is necessary and
/// sufficient for the maximum covered level to reach λ: covering only the
/// MUPs themselves can leave level-λ children uncovered (the paper's
/// `1X11X` counterexample), while every uncovered pattern above level λ
/// generalises some member of M_λ and is therefore hit with it.
///
/// Returns ResourceExhausted when the expansion would exceed `limit`
/// patterns.
StatusOr<std::vector<Pattern>> UncoveredPatternsAtLevel(
    const std::vector<Pattern>& mups, const Schema& schema, int lambda,
    std::uint64_t limit);

/// The value-count variant (Definition 7 / §IV): the patterns to hit when
/// the goal is that every uncovered pattern with value count >= min_value_count
/// becomes covered. Returns the *minimal* such patterns under domination
/// (the most specific uncovered patterns still meeting the value-count bar);
/// hitting them hits every dominating pattern as well, so the hitting-set
/// stage is unchanged.
StatusOr<std::vector<Pattern>> UncoveredPatternsByValueCount(
    const std::vector<Pattern>& mups, const Schema& schema,
    std::uint64_t min_value_count, std::uint64_t limit);

}  // namespace coverage

#endif  // COVERAGE_ENHANCEMENT_EXPANSION_H_

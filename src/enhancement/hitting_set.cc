#include "enhancement/hitting_set.h"

#include <algorithm>
#include <cassert>

#include "common/bitvector.h"
#include "common/stopwatch.h"
#include "pattern/pattern_ops.h"

namespace coverage {

namespace {

/// Inverted indices of Figure 9: for (attribute i, value v), the bit vector
/// over patterns with bit j set iff pattern j can still be hit by a
/// combination taking value v on attribute i (its cell is X or equals v).
class PatternIndices {
 public:
  PatternIndices(const std::vector<Pattern>& patterns, const Schema& schema) {
    const int d = schema.num_attributes();
    offsets_.resize(static_cast<std::size_t>(d));
    int total = 0;
    for (int i = 0; i < d; ++i) {
      offsets_[static_cast<std::size_t>(i)] = total;
      total += schema.cardinality(i);
    }
    vectors_.assign(static_cast<std::size_t>(total),
                    BitVector(patterns.size()));
    for (std::size_t j = 0; j < patterns.size(); ++j) {
      const Pattern& p = patterns[j];
      for (int i = 0; i < d; ++i) {
        if (p.is_deterministic(i)) {
          mutable_at(i, p.cell(i)).Set(j, true);
        } else {
          for (Value v = 0; v < static_cast<Value>(schema.cardinality(i));
               ++v) {
            mutable_at(i, v).Set(j, true);
          }
        }
      }
    }
  }

  const BitVector& at(int attr, Value v) const {
    return vectors_[static_cast<std::size_t>(offsets_[
        static_cast<std::size_t>(attr)]) + static_cast<std::size_t>(v)];
  }

 private:
  BitVector& mutable_at(int attr, Value v) {
    return vectors_[static_cast<std::size_t>(offsets_[
        static_cast<std::size_t>(attr)]) + static_cast<std::size_t>(v)];
  }

  std::vector<int> offsets_;
  std::vector<BitVector> vectors_;
};

/// The threshold-pruned DFS of Algorithm 4. The bit vector of a node is an
/// upper bound on what any leaf below it can hit, so subtrees whose count
/// cannot beat the incumbent are skipped.
class HitCountSearch {
 public:
  HitCountSearch(const PatternIndices& indices, const Schema& schema,
                 const ValidationOracle* oracle, HittingSetStats* stats)
      : indices_(indices), schema_(schema), oracle_(oracle), stats_(stats) {}

  /// Finds the valid combination hitting the most patterns still set in
  /// `filter`. Returns the hit count (0 when no valid combination hits
  /// anything); `*best` holds the combination.
  std::size_t Run(const BitVector& filter, std::vector<Value>* best) {
    best_count_ = 0;
    best_.assign(static_cast<std::size_t>(schema_.num_attributes()), 0);
    found_ = false;
    partial_.clear();
    Descend(filter, 0);
    *best = best_;
    return found_ ? best_count_ : 0;
  }

 private:
  void Descend(const BitVector& bv, int level) {
    if (stats_ != nullptr) ++stats_->tree_nodes_visited;
    const int d = schema_.num_attributes();
    if (level == d) {
      const std::size_t cnt = bv.Count();
      if (cnt > best_count_ || !found_) {
        best_count_ = cnt;
        best_ = partial_;
        found_ = true;
      }
      return;
    }
    // Rank this node's children by their remaining-hit upper bound.
    struct Child {
      Value v;
      std::size_t count;
      BitVector bv;
    };
    std::vector<Child> children;
    children.reserve(static_cast<std::size_t>(schema_.cardinality(level)));
    for (Value v = 0; v < static_cast<Value>(schema_.cardinality(level));
         ++v) {
      partial_.push_back(v);
      const bool invalid =
          oracle_ != nullptr && oracle_->PrefixInvalid(partial_);
      partial_.pop_back();
      if (invalid) continue;
      BitVector child_bv = bv;
      child_bv.AndWith(indices_.at(level, v));
      const std::size_t cnt = child_bv.Count();
      children.push_back(Child{v, cnt, std::move(child_bv)});
    }
    std::stable_sort(children.begin(), children.end(),
                     [](const Child& a, const Child& b) {
                       return a.count > b.count;
                     });
    for (Child& child : children) {
      // Prune: the child's count bounds every leaf beneath it. Equality is
      // only worth exploring while no complete combination exists yet.
      if (child.count < best_count_ || (found_ && child.count == best_count_))
        break;
      partial_.push_back(child.v);
      Descend(child.bv, level + 1);
      partial_.pop_back();
    }
  }

  const PatternIndices& indices_;
  const Schema& schema_;
  const ValidationOracle* oracle_;
  HittingSetStats* stats_;

  std::size_t best_count_ = 0;
  bool found_ = false;
  std::vector<Value> best_;
  std::vector<Value> partial_;
};

/// Unification of the patterns whose bits are set in `hits`.
Pattern UnifyHits(const std::vector<Pattern>& patterns, const BitVector& hits,
                  int d) {
  std::vector<Pattern> hit_patterns;
  hits.ForEachSetBit(
      [&](std::size_t j) { hit_patterns.push_back(patterns[j]); });
  if (hit_patterns.empty()) return Pattern::Root(d);
  return Unify(hit_patterns);
}

}  // namespace

HittingSetResult GreedyHittingSet(const std::vector<Pattern>& patterns,
                                  const Schema& schema,
                                  const ValidationOracle* oracle,
                                  HittingSetStats* stats) {
  Stopwatch timer;
  if (stats != nullptr) stats->Reset();
  HittingSetResult result;
  if (patterns.empty()) {
    if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
    return result;
  }
  const int d = schema.num_attributes();
  const PatternIndices indices(patterns, schema);
  HitCountSearch search(indices, schema, oracle, stats);

  BitVector filter(patterns.size(), true);
  while (filter.Any()) {
    std::vector<Value> pick;
    const std::size_t gain = search.Run(filter, &pick);
    if (gain == 0) {
      // Validation rules make the remaining patterns unreachable.
      filter.ForEachSetBit(
          [&](std::size_t j) { result.unresolvable.push_back(patterns[j]); });
      break;
    }
    // Patterns newly hit by the pick: AND of the per-cell vectors with the
    // current filter.
    BitVector hits = filter;
    for (int i = 0; i < d; ++i) {
      hits.AndWith(indices.at(i, pick[static_cast<std::size_t>(i)]));
    }
    assert(hits.Count() == gain);
    result.generalized.push_back(UnifyHits(patterns, hits, d));
    result.combinations.push_back(std::move(pick));
    result.gains.push_back(gain);
    filter.AndNotWith(hits);
    if (stats != nullptr) ++stats->iterations;
  }
  if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
  return result;
}

StatusOr<HittingSetResult> NaiveGreedyHittingSet(
    const std::vector<Pattern>& patterns, const Schema& schema,
    const ValidationOracle* oracle, HittingSetStats* stats,
    std::uint64_t enumeration_limit) {
  Stopwatch timer;
  if (stats != nullptr) stats->Reset();
  HittingSetResult result;
  if (patterns.empty()) {
    if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
    return result;
  }
  if (schema.NumValueCombinations() > enumeration_limit) {
    return Status::ResourceExhausted(
        "naive greedy would scan " +
        std::to_string(schema.NumValueCombinations()) +
        " combinations per iteration");
  }
  const int d = schema.num_attributes();
  std::vector<bool> remaining(patterns.size(), true);
  std::size_t num_remaining = patterns.size();

  while (num_remaining > 0) {
    std::size_t best_count = 0;
    std::vector<Value> best;
    const Status st = ForEachMatchingCombination(
        Pattern::Root(d), schema, enumeration_limit,
        [&](const std::vector<Value>& combo) {
          if (stats != nullptr) ++stats->combinations_scanned;
          if (oracle != nullptr && !oracle->IsValid(combo)) return;
          std::size_t cnt = 0;
          for (std::size_t j = 0; j < patterns.size(); ++j) {
            if (remaining[j] && patterns[j].Matches(combo)) ++cnt;
          }
          if (cnt > best_count) {
            best_count = cnt;
            best = combo;
          }
        });
    COVERAGE_RETURN_IF_ERROR(st);
    if (best_count == 0) {
      for (std::size_t j = 0; j < patterns.size(); ++j) {
        if (remaining[j]) result.unresolvable.push_back(patterns[j]);
      }
      break;
    }
    std::vector<Pattern> hit_patterns;
    for (std::size_t j = 0; j < patterns.size(); ++j) {
      if (remaining[j] && patterns[j].Matches(best)) {
        hit_patterns.push_back(patterns[j]);
        remaining[j] = false;
        --num_remaining;
      }
    }
    result.generalized.push_back(Unify(hit_patterns));
    result.combinations.push_back(std::move(best));
    result.gains.push_back(best_count);
    if (stats != nullptr) ++stats->iterations;
  }
  if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
  return result;
}

Status ValidateHittingSet(const std::vector<Pattern>& patterns,
                          const HittingSetResult& result, const Schema& schema,
                          const ValidationOracle* oracle) {
  (void)schema;
  for (const auto& combo : result.combinations) {
    if (oracle != nullptr && !oracle->IsValid(combo)) {
      return Status::Internal("selected combination violates a rule");
    }
  }
  for (const Pattern& p : patterns) {
    bool hit = false;
    for (const auto& combo : result.combinations) {
      if (p.Matches(combo)) {
        hit = true;
        break;
      }
    }
    if (!hit) {
      const bool declared_unresolvable =
          std::find(result.unresolvable.begin(), result.unresolvable.end(),
                    p) != result.unresolvable.end();
      if (!declared_unresolvable) {
        return Status::Internal("pattern " + p.ToString() +
                                " is neither hit nor declared unresolvable");
      }
    }
  }
  return Status::OK();
}

}  // namespace coverage

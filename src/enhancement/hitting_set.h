#ifndef COVERAGE_ENHANCEMENT_HITTING_SET_H_
#define COVERAGE_ENHANCEMENT_HITTING_SET_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "dataset/schema.h"
#include "enhancement/validation.h"
#include "pattern/pattern.h"

namespace coverage {

/// Instrumentation for the hitting-set solvers.
struct HittingSetStats {
  std::uint64_t iterations = 0;        ///< greedy picks
  std::uint64_t tree_nodes_visited = 0;///< value-tree nodes expanded (GREEDY)
  std::uint64_t combinations_scanned = 0;  ///< full scans (naive baseline)
  double seconds = 0.0;

  void Reset() { *this = HittingSetStats{}; }
};

/// Output of a hitting-set solve: value combinations such that every input
/// pattern (that any valid combination can match at all) is matched by at
/// least one selected combination.
struct HittingSetResult {
  /// Selected value combinations, in pick order.
  std::vector<std::vector<Value>> combinations;

  /// Per pick, the unification of the patterns it newly hit: the most
  /// general description of equally useful combinations (§IV implementation
  /// note — freedom for the data collector).
  std::vector<Pattern> generalized;

  /// Per pick, how many patterns it newly hit (the greedy gain sequence).
  std::vector<std::size_t> gains;

  /// Patterns that no valid combination matches (every matching combination
  /// violates a validation rule). Empty when there is no oracle.
  std::vector<Pattern> unresolvable;
};

/// §IV-B, Algorithms 4 + 5: the greedy hitting-set approximation with
/// per-(attribute, value) inverted indices over the patterns and a DFS over
/// the value tree that orders children by remaining-hit upper bound and
/// prunes with the incumbent hit count. The validation oracle (may be null)
/// is consulted before descending into a child, so only semantically valid
/// combinations are produced.
HittingSetResult GreedyHittingSet(const std::vector<Pattern>& patterns,
                                  const Schema& schema,
                                  const ValidationOracle* oracle = nullptr,
                                  HittingSetStats* stats = nullptr);

/// The direct implementation the paper benchmarks against (§V-C4): every
/// greedy iteration scans all Π c_i value combinations and counts hits per
/// combination by matching each remaining pattern. Returns ResourceExhausted
/// when Π c_i exceeds `enumeration_limit`.
StatusOr<HittingSetResult> NaiveGreedyHittingSet(
    const std::vector<Pattern>& patterns, const Schema& schema,
    const ValidationOracle* oracle = nullptr,
    HittingSetStats* stats = nullptr,
    std::uint64_t enumeration_limit = std::uint64_t{1} << 26);

/// Checks that `result` hits every pattern except the unresolvable ones and
/// that every combination is valid under `oracle`. Test/audit helper.
Status ValidateHittingSet(const std::vector<Pattern>& patterns,
                          const HittingSetResult& result, const Schema& schema,
                          const ValidationOracle* oracle = nullptr);

}  // namespace coverage

#endif  // COVERAGE_ENHANCEMENT_HITTING_SET_H_

#include "enhancement/report.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"
#include "mups/mups.h"

namespace coverage {

CoverageReport BuildCoverageReport(const Schema& schema,
                                   const std::vector<Pattern>& mups,
                                   std::uint64_t num_rows, std::uint64_t tau,
                                   std::size_t max_examples) {
  CoverageReport report;
  report.num_rows = num_rows;
  report.num_attributes = schema.num_attributes();
  report.tau = tau;
  report.num_mups = mups.size();
  report.level_histogram = MupLevelHistogram(mups, schema.num_attributes());
  report.maximum_covered_level =
      MaximumCoveredLevel(mups, schema.num_attributes());

  std::vector<Pattern> sorted = mups;
  std::sort(sorted.begin(), sorted.end(),
            [](const Pattern& a, const Pattern& b) {
              if (a.level() != b.level()) return a.level() < b.level();
              return a < b;
            });
  for (std::size_t i = 0; i < sorted.size() && i < max_examples; ++i) {
    report.most_general.push_back(sorted[i].ToLabelledString(schema) +
                                  "  [" + sorted[i].ToString() + "]");
  }
  return report;
}

std::string RenderNutritionalLabel(const CoverageReport& report) {
  std::ostringstream os;
  os << "+----------------- COVERAGE LABEL -----------------+\n";
  os << "| rows: " << FormatCount(report.num_rows)
     << "   attributes of interest: " << report.num_attributes
     << "   tau: " << report.tau << "\n";
  os << "| maximal uncovered patterns (MUPs): "
     << FormatCount(report.num_mups) << "\n";
  os << "| maximum covered level: " << report.maximum_covered_level << " of "
     << report.num_attributes << "\n";
  os << "| MUPs per level:";
  for (std::size_t l = 0; l < report.level_histogram.size(); ++l) {
    if (report.level_histogram[l] == 0) continue;
    os << "  L" << l << ":" << report.level_histogram[l];
  }
  os << "\n";
  if (!report.most_general.empty()) {
    os << "| least covered regions:\n";
    for (const std::string& line : report.most_general) {
      os << "|   - " << line << "\n";
    }
  }
  os << "+---------------------------------------------------+\n";
  return os.str();
}

std::string RenderAcquisitionPlan(const CoveragePlan& plan,
                                  const Schema& schema) {
  std::ostringstream os;
  os << "Acquisition plan: " << plan.items.size()
     << " value combination(s), " << FormatCount(plan.TotalTuples())
     << " tuple(s) total, hitting " << plan.targets.size()
     << " uncovered pattern(s)\n";
  for (std::size_t k = 0; k < plan.items.size(); ++k) {
    const AcquisitionItem& item = plan.items[k];
    os << "  " << (k + 1) << ". collect " << item.copies
       << " tuple(s) matching { "
       << item.generalized.ToLabelledString(schema) << " }  e.g. "
       << Pattern::FromTuple(item.combination).ToLabelledString(schema)
       << "\n";
  }
  if (!plan.unresolvable.empty()) {
    os << "  ! " << plan.unresolvable.size()
       << " pattern(s) cannot be hit by any semantically valid combination:\n";
    for (const Pattern& p : plan.unresolvable) {
      os << "      - " << p.ToLabelledString(schema) << "\n";
    }
  }
  return os.str();
}

}  // namespace coverage

#ifndef COVERAGE_ENHANCEMENT_REPORT_H_
#define COVERAGE_ENHANCEMENT_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/schema.h"
#include "enhancement/enhancement.h"
#include "pattern/pattern.h"

namespace coverage {

/// The coverage "widget" the paper proposes for a dataset's nutritional
/// label (§I): a compact, human-readable summary of where the dataset lacks
/// coverage.
struct CoverageReport {
  std::uint64_t num_rows = 0;
  int num_attributes = 0;
  std::uint64_t tau = 0;
  std::size_t num_mups = 0;
  int maximum_covered_level = 0;
  std::vector<std::size_t> level_histogram;  // index = level
  /// The most general (lowest-level) MUPs, labelled with attribute/value
  /// names — the regions a user should worry about first.
  std::vector<std::string> most_general;
};

/// Builds the report from a discovered MUP set.
CoverageReport BuildCoverageReport(const Schema& schema,
                                   const std::vector<Pattern>& mups,
                                   std::uint64_t num_rows, std::uint64_t tau,
                                   std::size_t max_examples = 10);

/// Renders the report as a fixed-width "nutritional label" block.
std::string RenderNutritionalLabel(const CoverageReport& report);

/// Renders an acquisition plan as a human-readable checklist.
std::string RenderAcquisitionPlan(const CoveragePlan& plan,
                                  const Schema& schema);

}  // namespace coverage

#endif  // COVERAGE_ENHANCEMENT_REPORT_H_

#include "enhancement/validation.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace coverage {

StatusOr<ValidationRule> ValidationRule::Create(std::vector<Term> terms,
                                                const Schema& schema) {
  if (terms.empty()) {
    return Status::InvalidArgument("a validation rule needs at least one term");
  }
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.attr < b.attr; });
  ValidationRule rule;
  for (Term& term : terms) {
    if (term.attr < 0 || term.attr >= schema.num_attributes()) {
      return Status::OutOfRange("rule attribute index " +
                                std::to_string(term.attr) + " out of range");
    }
    if (!rule.terms_.empty() && rule.terms_.back().attr == term.attr) {
      return Status::InvalidArgument("rule lists attribute '" +
                                     schema.attribute(term.attr).name +
                                     "' twice");
    }
    if (term.values.empty()) {
      return Status::InvalidArgument("rule term for '" +
                                     schema.attribute(term.attr).name +
                                     "' has no values");
    }
    std::sort(term.values.begin(), term.values.end());
    term.values.erase(std::unique(term.values.begin(), term.values.end()),
                      term.values.end());
    for (Value v : term.values) {
      if (v < 0 || v >= static_cast<Value>(schema.cardinality(term.attr))) {
        return Status::OutOfRange(
            "rule value " + std::to_string(v) + " out of range for '" +
            schema.attribute(term.attr).name + "'");
      }
    }
    rule.decidable_prefix_ = std::max(rule.decidable_prefix_, term.attr + 1);
    rule.terms_.push_back(std::move(term));
  }
  return rule;
}

StatusOr<ValidationRule> ValidationRule::Parse(const std::string& text,
                                               const Schema& schema) {
  std::vector<Term> terms;
  // Grammar: term ("and" term)*; term := <attr> "in" "{" v ("," v)* "}".
  std::size_t pos = 0;
  const std::string lowered = text;
  while (pos < lowered.size()) {
    const std::size_t in_pos = lowered.find(" in ", pos);
    if (in_pos == std::string::npos) {
      return Status::InvalidArgument("expected '<attr> in {...}' in rule '" +
                                     text + "'");
    }
    const std::string attr_name(
        Trim(std::string_view(lowered).substr(pos, in_pos - pos)));
    auto attr = schema.AttributeIndex(attr_name);
    if (!attr.ok()) return attr.status();
    const std::size_t open = lowered.find('{', in_pos);
    const std::size_t close = lowered.find('}', in_pos);
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      return Status::InvalidArgument("expected '{...}' in rule '" + text +
                                     "'");
    }
    Term term;
    term.attr = *attr;
    for (const std::string& value_text :
         Split(lowered.substr(open + 1, close - open - 1), ',')) {
      auto value = schema.ValueIndex(*attr, std::string(Trim(value_text)));
      if (!value.ok()) return value.status();
      term.values.push_back(*value);
    }
    terms.push_back(std::move(term));
    const std::size_t and_pos = lowered.find(" and ", close);
    if (and_pos == std::string::npos) break;
    pos = and_pos + 5;
  }
  return Create(std::move(terms), schema);
}

bool ValidationRule::SatisfiedBy(std::span<const Value> combination) const {
  for (const Term& term : terms_) {
    const Value v = combination[static_cast<std::size_t>(term.attr)];
    if (!std::binary_search(term.values.begin(), term.values.end(), v)) {
      return false;
    }
  }
  return true;
}

bool ValidationRule::SatisfiedByPrefix(std::span<const Value> prefix) const {
  if (static_cast<int>(prefix.size()) < decidable_prefix_) return false;
  return SatisfiedBy(prefix);
}

std::string ValidationRule::ToString(const Schema& schema) const {
  std::string out;
  for (const Term& term : terms_) {
    if (!out.empty()) out += " and ";
    out += schema.attribute(term.attr).name;
    out += " in {";
    for (std::size_t i = 0; i < term.values.size(); ++i) {
      if (i != 0) out += ", ";
      out += schema.attribute(term.attr)
                 .value_names[static_cast<std::size_t>(term.values[i])];
    }
    out += "}";
  }
  return out;
}

void ValidationOracle::AddRule(ValidationRule rule) {
  rules_.push_back(std::move(rule));
}

bool ValidationOracle::IsValid(std::span<const Value> combination) const {
  for (const ValidationRule& rule : rules_) {
    if (rule.SatisfiedBy(combination)) return false;
  }
  return true;
}

bool ValidationOracle::PrefixInvalid(std::span<const Value> prefix) const {
  for (const ValidationRule& rule : rules_) {
    if (rule.SatisfiedByPrefix(prefix)) return true;
  }
  return false;
}

}  // namespace coverage

#ifndef COVERAGE_ENHANCEMENT_VALIDATION_H_
#define COVERAGE_ENHANCEMENT_VALIDATION_H_

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "dataset/schema.h"
#include "pattern/pattern.h"

namespace coverage {

/// A validation rule (Definition 10): a conjunction of per-attribute value
/// sets {<A_i, V_i>, ...}. A value combination *satisfies* the rule when its
/// value on every listed attribute falls in the listed set — satisfying a
/// rule marks the combination as semantically infeasible (e.g.
/// {gender=Male, isPregnant=True}).
class ValidationRule {
 public:
  struct Term {
    int attr;
    std::vector<Value> values;  // sorted, deduplicated
  };

  /// Builds a rule from terms; values are sorted and deduplicated, and the
  /// terms are ordered by attribute. Attributes must be distinct.
  static StatusOr<ValidationRule> Create(std::vector<Term> terms,
                                         const Schema& schema);

  /// Parses "attr1 in {v1, v2} and attr2 in {v3}" style text against value
  /// labels, e.g. "marital in {unknown}" or "age in {<20} and marital in
  /// {married, divorced}".
  static StatusOr<ValidationRule> Parse(const std::string& text,
                                        const Schema& schema);

  const std::vector<Term>& terms() const { return terms_; }

  /// True iff the fully specified combination satisfies every term.
  bool SatisfiedBy(std::span<const Value> combination) const;

  /// True iff the first `prefix_len` attributes already satisfy every term,
  /// i.e. every term attribute is < prefix_len and matched. Used by the
  /// greedy tree search to prune invalid subtrees early (§IV-B).
  bool SatisfiedByPrefix(std::span<const Value> prefix) const;

  /// Largest term attribute + 1: the prefix length at which the rule becomes
  /// decidable.
  int decidable_prefix() const { return decidable_prefix_; }

  std::string ToString(const Schema& schema) const;

 private:
  std::vector<Term> terms_;
  int decidable_prefix_ = 0;
};

/// The validation oracle (Definition 11): a combination is valid iff it
/// satisfies none of the registered rules. An oracle with no rules accepts
/// everything.
class ValidationOracle {
 public:
  void AddRule(ValidationRule rule);

  std::size_t num_rules() const { return rules_.size(); }
  const std::vector<ValidationRule>& rules() const { return rules_; }

  /// True iff no rule is satisfied by the full combination.
  bool IsValid(std::span<const Value> combination) const;

  /// True iff some rule is already fully satisfied by the assigned prefix —
  /// every extension of the prefix is invalid and the subtree can be pruned.
  bool PrefixInvalid(std::span<const Value> prefix) const;

 private:
  std::vector<ValidationRule> rules_;
};

}  // namespace coverage

#endif  // COVERAGE_ENHANCEMENT_VALIDATION_H_

#include "ml/decision_tree.h"

#include <algorithm>
#include <cassert>

namespace coverage {

namespace {

double GiniOfCounts(std::size_t positives, std::size_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(positives) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

}  // namespace

void DecisionTree::Fit(const Dataset& data, const std::vector<int>& labels,
                       const std::vector<std::size_t>& row_indices,
                       Options options) {
  assert(labels.size() == data.num_rows());
  nodes_.clear();
  std::vector<std::size_t> rows = row_indices;
  if (rows.empty()) {
    rows.resize(data.num_rows());
    for (std::size_t r = 0; r < data.num_rows(); ++r) rows[r] = r;
  }
  if (rows.empty()) return;
  Build(data, labels, rows, 0, rows.size(), 0, options);
}

int DecisionTree::Build(const Dataset& data, const std::vector<int>& labels,
                        std::vector<std::size_t>& rows, std::size_t begin,
                        std::size_t end, int depth, const Options& options) {
  const std::size_t total = end - begin;
  std::size_t positives = 0;
  for (std::size_t k = begin; k < end; ++k) positives += labels[rows[k]] != 0;

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<std::size_t>(node_id)].label =
      positives * 2 >= total ? 1 : 0;

  const bool pure = positives == 0 || positives == total;
  if (pure || depth >= options.max_depth ||
      total < options.min_samples_split) {
    return node_id;
  }

  // Choose the (attribute, value) equality split with the best Gini gain.
  // Zero-gain splits of impure nodes are admissible (as in scikit-learn's
  // default): parity-style concepts such as XOR have no first split with
  // positive gain, yet become separable one level down.
  const double parent_gini = GiniOfCounts(positives, total);
  double best_gain = -1.0;
  int best_attr = -1;
  Value best_value = 0;
  for (int attr = 0; attr < data.num_attributes(); ++attr) {
    const int cardinality = data.schema().cardinality(attr);
    // Per-value (count, positive) tallies in one pass over the segment.
    std::vector<std::size_t> count(static_cast<std::size_t>(cardinality), 0);
    std::vector<std::size_t> pos(static_cast<std::size_t>(cardinality), 0);
    for (std::size_t k = begin; k < end; ++k) {
      const auto v = static_cast<std::size_t>(data.at(rows[k], attr));
      ++count[v];
      pos[v] += labels[rows[k]] != 0;
    }
    for (Value v = 0; v < static_cast<Value>(cardinality); ++v) {
      const std::size_t left_n = count[static_cast<std::size_t>(v)];
      const std::size_t right_n = total - left_n;
      if (left_n < options.min_samples_leaf ||
          right_n < options.min_samples_leaf) {
        continue;
      }
      const std::size_t left_p = pos[static_cast<std::size_t>(v)];
      const std::size_t right_p = positives - left_p;
      const double weighted =
          (static_cast<double>(left_n) * GiniOfCounts(left_p, left_n) +
           static_cast<double>(right_n) * GiniOfCounts(right_p, right_n)) /
          static_cast<double>(total);
      const double gain = parent_gini - weighted;
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_attr = attr;
        best_value = v;
      }
    }
  }
  if (best_attr < 0) return node_id;  // no useful split

  // Partition the segment: rows with attr == value first.
  const auto mid_it = std::stable_partition(
      rows.begin() + static_cast<std::ptrdiff_t>(begin),
      rows.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t r) { return data.at(r, best_attr) == best_value; });
  const std::size_t mid =
      static_cast<std::size_t>(mid_it - rows.begin());
  assert(mid > begin && mid < end);

  const int left =
      Build(data, labels, rows, begin, mid, depth + 1, options);
  const int right = Build(data, labels, rows, mid, end, depth + 1, options);
  Node& node = nodes_[static_cast<std::size_t>(node_id)];
  node.attr = best_attr;
  node.value = best_value;
  node.left = left;
  node.right = right;
  return node_id;
}

int DecisionTree::Predict(std::span<const Value> row) const {
  assert(fitted());
  int node_id = 0;
  while (true) {
    const Node& node = nodes_[static_cast<std::size_t>(node_id)];
    if (node.attr < 0) return node.label;
    node_id = row[static_cast<std::size_t>(node.attr)] == node.value
                  ? node.left
                  : node.right;
  }
}

std::vector<int> DecisionTree::PredictAll(
    const Dataset& data, const std::vector<std::size_t>& row_indices) const {
  std::vector<int> out;
  out.reserve(row_indices.size());
  for (std::size_t r : row_indices) out.push_back(Predict(data.row(r)));
  return out;
}

}  // namespace coverage

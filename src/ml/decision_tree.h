#ifndef COVERAGE_ML_DECISION_TREE_H_
#define COVERAGE_ML_DECISION_TREE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dataset/dataset.h"

namespace coverage {

/// CART-style decision-tree classifier over categorical attributes with
/// binary labels — the stand-in for the scikit-learn DecisionTreeClassifier
/// used in the paper's §V-B2 experiment. Splits are equality tests
/// `attr == value` chosen by Gini impurity reduction.
class DecisionTree {
 public:
  struct Options {
    int max_depth = 8;
    std::size_t min_samples_split = 2;
    std::size_t min_samples_leaf = 1;
  };

  DecisionTree() = default;

  /// Fits on the rows of `data` with 0/1 `labels` (parallel to the rows).
  /// Row subset may be selected via `row_indices`; pass empty to use all.
  void Fit(const Dataset& data, const std::vector<int>& labels,
           const std::vector<std::size_t>& row_indices, Options options);

  void Fit(const Dataset& data, const std::vector<int>& labels,
           Options options) {
    Fit(data, labels, {}, options);
  }

  /// Predicted label for one tuple.
  int Predict(std::span<const Value> row) const;

  /// Predicted labels for several rows of a dataset.
  std::vector<int> PredictAll(const Dataset& data,
                              const std::vector<std::size_t>& row_indices) const;

  /// Number of nodes in the fitted tree (diagnostics).
  std::size_t num_nodes() const { return nodes_.size(); }

  bool fitted() const { return !nodes_.empty(); }

 private:
  struct Node {
    int attr = -1;        // -1 marks a leaf
    Value value = 0;      // split: row[attr] == value goes left
    int left = -1;        // child indices into nodes_
    int right = -1;
    int label = 0;        // majority label (used at leaves)
  };

  int Build(const Dataset& data, const std::vector<int>& labels,
            std::vector<std::size_t>& rows, std::size_t begin, std::size_t end,
            int depth, const Options& options);

  std::vector<Node> nodes_;
};

}  // namespace coverage

#endif  // COVERAGE_ML_DECISION_TREE_H_

#include "ml/model_metrics.h"

#include <cassert>

namespace coverage {

ClassificationMetrics EvaluateBinary(const std::vector<int>& actual,
                                     const std::vector<int>& predicted) {
  assert(actual.size() == predicted.size());
  ClassificationMetrics m;
  m.num_samples = actual.size();
  if (actual.empty()) return m;
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const bool a = actual[i] != 0;
    const bool p = predicted[i] != 0;
    tp += a && p;
    fp += !a && p;
    tn += !a && !p;
    fn += a && !p;
  }
  m.accuracy = static_cast<double>(tp + tn) / static_cast<double>(m.num_samples);
  m.precision = (tp + fp) == 0 ? 0.0
                               : static_cast<double>(tp) /
                                     static_cast<double>(tp + fp);
  m.recall = (tp + fn) == 0
                 ? 0.0
                 : static_cast<double>(tp) / static_cast<double>(tp + fn);
  m.f1 = (m.precision + m.recall) == 0.0
             ? 0.0
             : 2.0 * m.precision * m.recall / (m.precision + m.recall);
  return m;
}

}  // namespace coverage

#ifndef COVERAGE_ML_MODEL_METRICS_H_
#define COVERAGE_ML_MODEL_METRICS_H_

#include <vector>

namespace coverage {

/// Binary-classification quality measures (§V-B2 reports accuracy and F1).
struct ClassificationMetrics {
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t num_samples = 0;
};

/// Computes the metrics of `predicted` against `actual` (0/1 labels,
/// positive class = 1). Precision/recall/F1 are 0 when undefined.
ClassificationMetrics EvaluateBinary(const std::vector<int>& actual,
                                     const std::vector<int>& predicted);

}  // namespace coverage

#endif  // COVERAGE_ML_MODEL_METRICS_H_

#include "ml/split.h"

#include <cassert>
#include <cmath>

namespace coverage {

TrainTestSplit MakeTrainTestSplit(std::size_t n, double test_fraction,
                                  Rng& rng) {
  assert(test_fraction >= 0.0 && test_fraction <= 1.0);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(order);
  const auto num_test = static_cast<std::size_t>(
      std::ceil(static_cast<double>(n) * test_fraction));
  TrainTestSplit split;
  split.test.assign(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(num_test));
  split.train.assign(order.begin() + static_cast<std::ptrdiff_t>(num_test),
                     order.end());
  return split;
}

std::vector<TrainTestSplit> MakeKFolds(std::size_t n, std::size_t k,
                                       Rng& rng) {
  assert(k >= 2 && k <= n);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(order);
  std::vector<TrainTestSplit> folds(k);
  for (std::size_t f = 0; f < k; ++f) {
    const std::size_t begin = n * f / k;
    const std::size_t end = n * (f + 1) / k;
    for (std::size_t i = 0; i < n; ++i) {
      if (i >= begin && i < end) {
        folds[f].test.push_back(order[i]);
      } else {
        folds[f].train.push_back(order[i]);
      }
    }
  }
  return folds;
}

}  // namespace coverage

#ifndef COVERAGE_ML_SPLIT_H_
#define COVERAGE_ML_SPLIT_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace coverage {

/// A train/test partition of row indices.
struct TrainTestSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Shuffles [0, n) and assigns ceil(n * test_fraction) rows to the test set.
TrainTestSplit MakeTrainTestSplit(std::size_t n, double test_fraction,
                                  Rng& rng);

/// K-fold cross-validation index sets (used by the §V-B2 "acceptable
/// accuracy on a random test set" check).
std::vector<TrainTestSplit> MakeKFolds(std::size_t n, std::size_t k, Rng& rng);

}  // namespace coverage

#endif  // COVERAGE_ML_SPLIT_H_

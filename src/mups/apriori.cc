#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/stopwatch.h"
#include "mups/legacy_mups.h"
#include "mups/mups.h"

namespace coverage {

namespace {

/// An item is one (attribute, value) pair; an item-set is a sorted vector of
/// item ids. See legacy_mups.cc for the role of the item lattice; the packed
/// variant below keeps the identical lattice walk but stores each level's
/// frequent sets in one flat buffer (all rows share a width) and emits MUPs
/// directly as packed keys.
struct ItemCatalog {
  std::vector<int> attr_of;    // item id -> attribute
  std::vector<Value> value_of; // item id -> value

  explicit ItemCatalog(const Schema& schema) {
    for (int i = 0; i < schema.num_attributes(); ++i) {
      for (Value v = 0; v < static_cast<Value>(schema.cardinality(i)); ++v) {
        attr_of.push_back(i);
        value_of.push_back(v);
      }
    }
  }

  std::size_t size() const { return attr_of.size(); }
};

/// Fixed-width rows of item ids in one contiguous buffer; a level's frequent
/// sets all have the same size, so the level needs exactly one allocation.
class FlatItemSets {
 public:
  explicit FlatItemSets(std::size_t width) : width_(width) {}

  std::size_t size() const { return rows_; }
  std::size_t width() const { return width_; }
  const int* row(std::size_t i) const { return data_.data() + i * width_; }

  void Push(const int* items) {
    data_.insert(data_.end(), items, items + width_);
    ++rows_;
  }

  /// Rows are appended in lexicographic order (the join preserves it), so
  /// membership is a binary search over row indices.
  bool Contains(const int* items) const {
    std::size_t lo = 0;
    std::size_t hi = rows_;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const int* r = row(mid);
      int cmp = 0;
      for (std::size_t i = 0; i < width_; ++i) {
        if (r[i] != items[i]) {
          cmp = r[i] < items[i] ? -1 : 1;
          break;
        }
      }
      if (cmp == 0) return true;
      if (cmp < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return false;
  }

 private:
  std::size_t width_;
  std::size_t rows_ = 0;
  std::vector<int> data_;
};

std::uint64_t Support(const int* items, std::size_t n,
                      const ItemCatalog& catalog, const BitmapCoverage& oracle) {
  if (n == 0) return oracle.data().total_count();
  BitVector acc = oracle.index(
      catalog.attr_of[static_cast<std::size_t>(items[0])],
      catalog.value_of[static_cast<std::size_t>(items[0])]);
  for (std::size_t k = 1; k < n; ++k) {
    acc.AndWith(oracle.index(
        catalog.attr_of[static_cast<std::size_t>(items[k])],
        catalog.value_of[static_cast<std::size_t>(items[k])]));
    if (acc.None()) return 0;
  }
  return acc.Dot(oracle.data().counts());
}

/// True iff every (k-1)-subset of `candidate` is frequent — the apriori
/// prune step. `scratch` must have room for candidate_size - 1 items.
bool AllSubsetsFrequent(const int* candidate, std::size_t candidate_size,
                        const FlatItemSets& frequent, int* scratch) {
  for (std::size_t skip = 0; skip < candidate_size; ++skip) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < candidate_size; ++i) {
      if (i != skip) scratch[out++] = candidate[i];
    }
    if (!frequent.Contains(scratch)) return false;
  }
  return true;
}

/// Converts a valid item-set (distinct attributes) to a packed pattern;
/// returns false for invalid ones (two values of the same attribute).
bool ToPacked(const int* items, std::size_t n, const ItemCatalog& catalog,
              const PatternCodec& codec, PackedPattern* out) {
  PackedPattern p = codec.Root();
  for (std::size_t i = 0; i < n; ++i) {
    const int attr = catalog.attr_of[static_cast<std::size_t>(items[i])];
    if (codec.is_deterministic(p, attr)) return false;
    p = codec.WithCell(p, attr,
                       catalog.value_of[static_cast<std::size_t>(items[i])]);
  }
  *out = p;
  return true;
}

}  // namespace

StatusOr<std::vector<PackedPattern>> FindMupsAprioriPacked(
    const BitmapCoverage& oracle, const PatternCodec& codec,
    const MupSearchOptions& options, MupSearchStats* stats) {
  Stopwatch timer;
  const std::uint64_t queries_before = oracle.num_queries();
  const Schema& schema = oracle.data().schema();
  const int d = schema.num_attributes();
  const ItemCatalog catalog(schema);

  std::vector<PackedPattern> mups;
  std::uint64_t nodes_generated = 0;
  std::uint64_t support_queries = 0;

  // Level 0: the empty item-set (the root pattern). If even it is
  // infrequent, it is the only MUP.
  if (oracle.data().total_count() < options.tau) {
    mups.push_back(codec.Root());
    if (stats != nullptr) {
      stats->coverage_queries = 0;
      stats->nodes_generated = 1;
      stats->seconds = timer.ElapsedSeconds();
      stats->num_mups = mups.size();
    }
    return mups;
  }

  const int max_level = options.max_level < 0 ? d : options.max_level;

  // Level 1: singleton item-sets.
  FlatItemSets frequent(/*width=*/1);
  for (int item = 0; item < static_cast<int>(catalog.size()); ++item) {
    ++nodes_generated;
    ++support_queries;
    if (Support(&item, 1, catalog, oracle) >= options.tau) {
      frequent.Push(&item);
    } else {
      PackedPattern p;
      if (ToPacked(&item, 1, catalog, codec, &p)) mups.push_back(p);
    }
  }

  // Levels 2..max: apriori-gen join + prune over the item lattice.
  std::vector<int> candidate;
  std::vector<int> scratch;
  for (int k = 2; k <= max_level && frequent.size() != 0; ++k) {
    FlatItemSets next_frequent(static_cast<std::size_t>(k));
    candidate.resize(static_cast<std::size_t>(k));
    scratch.resize(static_cast<std::size_t>(k - 1));
    const std::size_t w = frequent.width();
    for (std::size_t a = 0; a < frequent.size(); ++a) {
      for (std::size_t b = a + 1; b < frequent.size(); ++b) {
        // Join two sets sharing their first k-2 items.
        if (!std::equal(frequent.row(a), frequent.row(a) + w - 1,
                        frequent.row(b))) {
          break;  // sorted order: later b cannot share the prefix either
        }
        std::copy(frequent.row(a), frequent.row(a) + w, candidate.data());
        candidate[w] = frequent.row(b)[w - 1];
        ++nodes_generated;
        if (nodes_generated > options.enumeration_limit) {
          return Status::ResourceExhausted(
              "APRIORI generated more than " +
              std::to_string(options.enumeration_limit) + " item-sets");
        }
        if (!AllSubsetsFrequent(candidate.data(), candidate.size(), frequent,
                                scratch.data())) {
          continue;
        }
        ++support_queries;
        if (Support(candidate.data(), candidate.size(), catalog, oracle) >=
            options.tau) {
          next_frequent.Push(candidate.data());
        } else {
          // Negative border: infrequent, all subsets frequent. Valid members
          // are exactly the MUPs; invalid ones (duplicate attribute) are the
          // wasted work this adaptation cannot avoid.
          PackedPattern p;
          if (ToPacked(candidate.data(), candidate.size(), catalog, codec,
                       &p)) {
            mups.push_back(p);
          }
        }
      }
    }
    frequent = std::move(next_frequent);
  }

  std::sort(mups.begin(), mups.end(), PackedLess{&codec});
  if (stats != nullptr) {
    stats->coverage_queries = oracle.num_queries() - queries_before;
    stats->nodes_generated = nodes_generated;
    stats->seconds = timer.ElapsedSeconds();
    stats->num_mups = mups.size();
    (void)support_queries;
  }
  return mups;
}

StatusOr<std::vector<Pattern>> FindMupsApriori(const BitmapCoverage& oracle,
                                               const MupSearchOptions& options,
                                               MupSearchStats* stats) {
  if (options.use_packed_representation) {
    auto codec = PatternCodec::Build(oracle.data().schema());
    if (codec.ok()) {
      auto packed = FindMupsAprioriPacked(oracle, *codec, options, stats);
      COVERAGE_RETURN_IF_ERROR(packed.status());
      std::vector<Pattern> mups;
      mups.reserve(packed->size());
      for (const PackedPattern& p : *packed) mups.push_back(codec->Decode(p));
      return mups;
    }
  }
  return legacy::FindMupsApriori(oracle, options, stats);
}

}  // namespace coverage

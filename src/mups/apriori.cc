#include <algorithm>

#include "common/stopwatch.h"
#include "mups/mups.h"

namespace coverage {

namespace {

/// An item is one (attribute, value) pair; an item-set is a sorted vector of
/// item ids. The lattice over item-sets is much larger than the pattern graph
/// (the paper's core criticism of this adaptation): item-sets mixing two
/// values of one attribute are representable and must be generated, counted,
/// and finally discarded as invalid.
struct ItemCatalog {
  std::vector<int> attr_of;    // item id -> attribute
  std::vector<Value> value_of; // item id -> value

  explicit ItemCatalog(const Schema& schema) {
    for (int i = 0; i < schema.num_attributes(); ++i) {
      for (Value v = 0; v < static_cast<Value>(schema.cardinality(i)); ++v) {
        attr_of.push_back(i);
        value_of.push_back(v);
      }
    }
  }

  std::size_t size() const { return attr_of.size(); }
};

using ItemSet = std::vector<int>;

std::uint64_t Support(const ItemSet& items, const ItemCatalog& catalog,
                      const BitmapCoverage& oracle) {
  if (items.empty()) return oracle.data().total_count();
  BitVector acc = oracle.index(catalog.attr_of[static_cast<std::size_t>(
                                   items[0])],
                               catalog.value_of[static_cast<std::size_t>(
                                   items[0])]);
  for (std::size_t k = 1; k < items.size(); ++k) {
    acc.AndWith(oracle.index(
        catalog.attr_of[static_cast<std::size_t>(items[k])],
        catalog.value_of[static_cast<std::size_t>(items[k])]));
    if (acc.None()) return 0;
  }
  return acc.Dot(oracle.data().counts());
}

/// True iff every (k-1)-subset of `candidate` is in the sorted `frequent`
/// list — the apriori prune step.
bool AllSubsetsFrequent(const ItemSet& candidate,
                        const std::vector<ItemSet>& frequent) {
  ItemSet subset(candidate.size() - 1);
  for (std::size_t skip = 0; skip < candidate.size(); ++skip) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < candidate.size(); ++i) {
      if (i != skip) subset[out++] = candidate[i];
    }
    if (!std::binary_search(frequent.begin(), frequent.end(), subset)) {
      return false;
    }
  }
  return true;
}

/// Converts a valid item-set (distinct attributes) to a pattern; returns
/// false for invalid ones (two values of the same attribute).
bool ToPattern(const ItemSet& items, const ItemCatalog& catalog, int d,
               Pattern* out) {
  std::vector<Value> cells(static_cast<std::size_t>(d), kWildcard);
  for (int item : items) {
    const int attr = catalog.attr_of[static_cast<std::size_t>(item)];
    if (cells[static_cast<std::size_t>(attr)] != kWildcard) return false;
    cells[static_cast<std::size_t>(attr)] =
        catalog.value_of[static_cast<std::size_t>(item)];
  }
  *out = Pattern(std::move(cells));
  return true;
}

}  // namespace

StatusOr<std::vector<Pattern>> FindMupsApriori(const BitmapCoverage& oracle,
                                               const MupSearchOptions& options,
                                               MupSearchStats* stats) {
  Stopwatch timer;
  const std::uint64_t queries_before = oracle.num_queries();
  const Schema& schema = oracle.data().schema();
  const int d = schema.num_attributes();
  const ItemCatalog catalog(schema);

  std::vector<Pattern> mups;
  std::uint64_t nodes_generated = 0;
  std::uint64_t support_queries = 0;

  // Level 0: the empty item-set (the root pattern). If even it is
  // infrequent, it is the only MUP.
  if (oracle.data().total_count() < options.tau) {
    mups.push_back(Pattern::Root(d));
    std::sort(mups.begin(), mups.end());
    if (stats != nullptr) {
      stats->coverage_queries = 0;
      stats->nodes_generated = 1;
      stats->seconds = timer.ElapsedSeconds();
      stats->num_mups = mups.size();
    }
    return mups;
  }

  const int max_level = options.max_level < 0 ? d : options.max_level;

  // Level 1: singleton item-sets.
  std::vector<ItemSet> frequent;
  for (int item = 0; item < static_cast<int>(catalog.size()); ++item) {
    ItemSet candidate = {item};
    ++nodes_generated;
    ++support_queries;
    if (Support(candidate, catalog, oracle) >= options.tau) {
      frequent.push_back(std::move(candidate));
    } else {
      Pattern p;
      if (ToPattern(candidate, catalog, d, &p)) mups.push_back(p);
    }
  }

  // Levels 2..max: apriori-gen join + prune over the item lattice.
  for (int k = 2; k <= max_level && !frequent.empty(); ++k) {
    std::vector<ItemSet> next_frequent;
    // `frequent` is sorted lexicographically: singletons were generated in
    // order and joins below preserve order.
    for (std::size_t a = 0; a < frequent.size(); ++a) {
      for (std::size_t b = a + 1; b < frequent.size(); ++b) {
        // Join two sets sharing their first k-2 items.
        if (!std::equal(frequent[a].begin(), frequent[a].end() - 1,
                        frequent[b].begin())) {
          break;  // sorted order: later b cannot share the prefix either
        }
        ItemSet candidate = frequent[a];
        candidate.push_back(frequent[b].back());
        ++nodes_generated;
        if (nodes_generated > options.enumeration_limit) {
          return Status::ResourceExhausted(
              "APRIORI generated more than " +
              std::to_string(options.enumeration_limit) + " item-sets");
        }
        if (!AllSubsetsFrequent(candidate, frequent)) continue;
        ++support_queries;
        if (Support(candidate, catalog, oracle) >= options.tau) {
          next_frequent.push_back(std::move(candidate));
        } else {
          // Negative border: infrequent, all subsets frequent. Valid members
          // are exactly the MUPs; invalid ones (duplicate attribute) are the
          // wasted work this adaptation cannot avoid.
          Pattern p;
          if (ToPattern(candidate, catalog, d, &p)) mups.push_back(p);
        }
      }
    }
    frequent = std::move(next_frequent);
  }

  std::sort(mups.begin(), mups.end());
  if (stats != nullptr) {
    stats->coverage_queries = oracle.num_queries() - queries_before;
    stats->nodes_generated = nodes_generated;
    stats->seconds = timer.ElapsedSeconds();
    stats->num_mups = mups.size();
    (void)support_queries;
  }
  return mups;
}

}  // namespace coverage

#include <algorithm>
#include <unordered_map>

#include "common/stopwatch.h"
#include "mups/mup_index.h"
#include "mups/mups.h"
#include "pattern/pattern_ops.h"

namespace coverage {

namespace {

/// Covered/uncovered answers with a memo; the climb phase re-examines
/// parents that later dives may touch again, so a small cache keeps the
/// query count near the number of distinct nodes actually inspected.
class CachingCoverage {
 public:
  CachingCoverage(const CoverageOracle& oracle, std::uint64_t tau)
      : oracle_(oracle), tau_(tau) {}

  bool Covered(const Pattern& p) {
    const auto it = cache_.find(p);
    if (it != cache_.end()) return it->second;
    const bool covered = oracle_.CoverageAtLeast(p, tau_);
    cache_.emplace(p, covered);
    return covered;
  }

 private:
  const CoverageOracle& oracle_;
  const std::uint64_t tau_;
  std::unordered_map<Pattern, bool, PatternHash> cache_;
};

/// Discovered-MUP set behind the three dominance strategies of
/// MupSearchOptions::DominanceMode. All strategies are exact for membership
/// (needed for termination); they differ in how — and whether — they answer
/// the pruning queries.
class DominanceChecker {
 public:
  using Mode = MupSearchOptions::DominanceMode;

  DominanceChecker(const Schema& schema, Mode mode)
      : mode_(mode), index_(schema) {}

  void Add(const Pattern& mup) { index_.Add(mup); }

  bool Contains(const Pattern& p) const { return index_.Contains(p); }

  bool IsDominated(const Pattern& p) const {
    switch (mode_) {
      case Mode::kBitmapIndex:
        return index_.IsDominated(p);
      case Mode::kLinearScan: {
        for (const Pattern& m : index_.mups()) {
          if (m.Dominates(p)) return true;
        }
        return false;
      }
      case Mode::kNoPruning:
        return false;
    }
    return false;
  }

  bool DominatesSome(const Pattern& p) const {
    switch (mode_) {
      case Mode::kBitmapIndex:
        return index_.DominatesSome(p);
      case Mode::kLinearScan: {
        for (const Pattern& m : index_.mups()) {
          if (p.Dominates(m)) return true;
        }
        return false;
      }
      case Mode::kNoPruning:
        return false;
    }
    return false;
  }

  const std::vector<Pattern>& mups() const { return index_.mups(); }

 private:
  Mode mode_;
  MupDominanceIndex index_;
};

}  // namespace

std::vector<Pattern> FindMupsDeepDiver(const CoverageOracle& oracle,
                                       const Schema& schema,
                                       const MupSearchOptions& options,
                                       MupSearchStats* stats) {
  Stopwatch timer;
  const std::uint64_t queries_before = oracle.num_queries();
  const int d = schema.num_attributes();
  const int max_level = options.max_level < 0 ? d : options.max_level;

  CachingCoverage cov(oracle, options.tau);
  DominanceChecker index(schema, options.dominance_mode);
  std::vector<Pattern> stack = {Pattern::Root(d)};
  std::uint64_t nodes_generated = 1;
  std::uint64_t nodes_pruned = 0;

  while (!stack.empty()) {
    Pattern p = std::move(stack.back());
    stack.pop_back();

    // A node dominated by a discovered MUP is uncovered but not maximal;
    // its entire subtree is pruned. A node that *is* a discovered MUP can be
    // popped later if a climb reached it before its turn in the stack.
    if (index.Contains(p) || index.IsDominated(p)) {
      ++nodes_pruned;
      continue;
    }

    bool covered;
    if (index.DominatesSome(p)) {
      // Strict ancestor of a MUP: covered by monotonicity, no query needed.
      covered = true;
    } else {
      covered = cov.Covered(p);
    }

    if (covered) {
      if (p.level() < max_level) {
        for (Pattern& child : Rule1Children(p, schema)) {
          ++nodes_generated;
          stack.push_back(std::move(child));
        }
      }
      continue;
    }

    // Uncovered: climb through uncovered parents until every parent is
    // covered; that node is a MUP. The climb can only move up, so it
    // terminates at the root at the latest.
    Pattern current = std::move(p);
    while (true) {
      bool moved = false;
      for (const Pattern& parent : current.Parents()) {
        if (!cov.Covered(parent)) {
          current = parent;
          moved = true;
          break;
        }
      }
      if (!moved) break;
    }
    // With dominance pruning on, the climb endpoint is always new: it
    // dominates-or-equals the dive point, which was checked against the
    // index above. Without pruning (ablation) a dive can rediscover a MUP.
    if (!index.Contains(current)) index.Add(current);
  }

  std::vector<Pattern> mups = index.mups();
  std::sort(mups.begin(), mups.end());
  if (stats != nullptr) {
    stats->coverage_queries = oracle.num_queries() - queries_before;
    stats->nodes_generated = nodes_generated;
    stats->nodes_pruned = nodes_pruned;
    stats->seconds = timer.ElapsedSeconds();
    stats->num_mups = mups.size();
  }
  return mups;
}

}  // namespace coverage

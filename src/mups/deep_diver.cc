#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "mups/mup_index.h"
#include "mups/mups.h"
#include "pattern/pattern_ops.h"

namespace coverage {

namespace {

/// Covered/uncovered answers with a memo; the climb phase re-examines
/// parents that later dives may touch again, so a small cache keeps the
/// query count near the number of distinct nodes actually inspected. Each
/// worker owns one instance (cache + QueryContext), so the shared oracle is
/// only ever touched through per-thread state.
class CachingCoverage {
 public:
  CachingCoverage(const CoverageOracle& oracle, std::uint64_t tau)
      : oracle_(oracle), tau_(tau) {}

  bool Covered(const Pattern& p) {
    const auto it = cache_.find(p);
    if (it != cache_.end()) return it->second;
    const bool covered = oracle_.CoverageAtLeast(p, tau_, ctx_);
    cache_.emplace(p, covered);
    return covered;
  }

  std::uint64_t num_queries() const { return ctx_.num_queries(); }

 private:
  const CoverageOracle& oracle_;
  const std::uint64_t tau_;
  QueryContext ctx_;
  std::unordered_map<Pattern, bool, PatternHash> cache_;
};

using DominanceMode = MupSearchOptions::DominanceMode;

/// The three dominance strategies of MupSearchOptions::DominanceMode over a
/// discovered-MUP index. They differ in how — and whether — they answer the
/// pruning queries; the single dispatch point keeps the serial and parallel
/// searches semantically identical.
bool ModeIsDominated(const MupDominanceIndex& index, DominanceMode mode,
                     const Pattern& p) {
  switch (mode) {
    case DominanceMode::kBitmapIndex:
      return index.IsDominated(p);
    case DominanceMode::kLinearScan: {
      for (const Pattern& m : index.mups()) {
        if (m.Dominates(p)) return true;
      }
      return false;
    }
    case DominanceMode::kNoPruning:
      return false;
  }
  return false;
}

bool ModeDominatesSome(const MupDominanceIndex& index, DominanceMode mode,
                       const Pattern& p) {
  switch (mode) {
    case DominanceMode::kBitmapIndex:
      return index.DominatesSome(p);
    case DominanceMode::kLinearScan: {
      for (const Pattern& m : index.mups()) {
        if (p.Dominates(m)) return true;
      }
      return false;
    }
    case DominanceMode::kNoPruning:
      return false;
  }
  return false;
}

/// Discovered-MUP set for the serial search. Membership is exact in every
/// mode (needed for termination).
class DominanceChecker {
 public:
  DominanceChecker(const Schema& schema, DominanceMode mode)
      : mode_(mode), index_(schema) {}

  void Add(const Pattern& mup) { index_.Add(mup); }
  bool Contains(const Pattern& p) const { return index_.Contains(p); }
  bool IsDominated(const Pattern& p) const {
    return ModeIsDominated(index_, mode_, p);
  }
  bool DominatesSome(const Pattern& p) const {
    return ModeDominatesSome(index_, mode_, p);
  }
  const std::vector<Pattern>& mups() const { return index_.mups(); }

 private:
  DominanceMode mode_;
  MupDominanceIndex index_;
};

/// The same strategies against the reader/writer-locked shared index.
class SharedDominanceChecker {
 public:
  SharedDominanceChecker(const Schema& schema, DominanceMode mode)
      : mode_(mode), index_(schema) {}

  bool AddIfAbsent(const Pattern& mup) { return index_.AddIfAbsent(mup); }
  bool Contains(const Pattern& p) const { return index_.Contains(p); }
  bool IsDominated(const Pattern& p) const {
    return index_.WithReadLock([&](const MupDominanceIndex& idx) {
      return ModeIsDominated(idx, mode_, p);
    });
  }
  bool DominatesSome(const Pattern& p) const {
    return index_.WithReadLock([&](const MupDominanceIndex& idx) {
      return ModeDominatesSome(idx, mode_, p);
    });
  }
  std::vector<Pattern> Snapshot() const { return index_.Snapshot(); }

 private:
  DominanceMode mode_;
  SharedMupDominanceIndex index_;
};

/// The shared dive frontier: a mutex-guarded LIFO plus the in-flight count
/// that detects quiescence (empty stack alone is not termination — an active
/// worker may still push children).
class DiveQueue {
 public:
  explicit DiveQueue(Pattern root) { stack_.push_back(std::move(root)); }

  /// Blocks until an item is available (returning true) or every worker is
  /// idle with an empty stack (returning false — the search is complete).
  /// A successful pop marks the caller active until it calls FinishItem().
  bool Pop(Pattern& out) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (!stack_.empty()) {
        out = std::move(stack_.back());
        stack_.pop_back();
        ++active_;
        return true;
      }
      if (active_ == 0) {
        cv_.notify_all();
        return false;
      }
      cv_.wait(lock);
    }
  }

  void Push(std::vector<Pattern>&& items) {
    if (items.empty()) return;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (Pattern& p : items) stack_.push_back(std::move(p));
    }
    cv_.notify_all();
  }

  void FinishItem() {
    std::unique_lock<std::mutex> lock(mu_);
    if (--active_ == 0 && stack_.empty()) cv_.notify_all();
  }

  /// Pairs every successful Pop with a FinishItem even if the dive body
  /// throws; otherwise the active count never drains and the remaining
  /// workers wait forever instead of seeing the exception propagate.
  class ItemGuard {
   public:
    explicit ItemGuard(DiveQueue& queue) : queue_(queue) {}
    ~ItemGuard() { queue_.FinishItem(); }
    ItemGuard(const ItemGuard&) = delete;
    ItemGuard& operator=(const ItemGuard&) = delete;

   private:
    DiveQueue& queue_;
  };

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Pattern> stack_;
  int active_ = 0;
};

/// Climbs from an uncovered node through uncovered parents until every
/// parent is covered; that node is a MUP. The climb can only move up, so it
/// terminates at the root at the latest.
Pattern ClimbToMup(Pattern start, CachingCoverage& cov) {
  Pattern current = std::move(start);
  for (;;) {
    bool moved = false;
    for (const Pattern& parent : current.Parents()) {
      if (!cov.Covered(parent)) {
        current = parent;
        moved = true;
        break;
      }
    }
    if (!moved) return current;
  }
}

std::vector<Pattern> FindMupsDeepDiverParallel(const CoverageOracle& oracle,
                                               const Schema& schema,
                                               const MupSearchOptions& options,
                                               MupSearchStats* stats) {
  const int d = schema.num_attributes();
  const int max_level = options.max_level < 0 ? d : options.max_level;

  SharedDominanceChecker index(schema, options.dominance_mode);
  DiveQueue queue(Pattern::Root(d));

  ThreadPool pool(options.num_threads);
  const int workers = pool.num_workers();
  std::vector<std::uint64_t> worker_queries(
      static_cast<std::size_t>(workers), 0);
  std::vector<std::uint64_t> worker_generated(
      static_cast<std::size_t>(workers), 0);
  std::vector<std::uint64_t> worker_pruned(
      static_cast<std::size_t>(workers), 0);

  pool.RunOnAll([&](int worker) {
    CachingCoverage cov(oracle, options.tau);
    std::uint64_t generated = 0;
    std::uint64_t pruned = 0;
    Pattern p;
    while (queue.Pop(p)) {
      const DiveQueue::ItemGuard guard(queue);
      // A node dominated by a discovered MUP is uncovered but not maximal;
      // its entire subtree is pruned. A node that *is* a discovered MUP can
      // be popped later if a climb reached it before its turn in the queue.
      // The index only ever grows (with genuine MUPs), so a stale snapshot
      // here costs at most a redundant dive, never a wrong answer.
      if (index.Contains(p) || index.IsDominated(p)) {
        ++pruned;
        continue;
      }

      bool covered;
      if (index.DominatesSome(p)) {
        // Strict ancestor of a MUP: covered by monotonicity, no query needed.
        covered = true;
      } else {
        covered = cov.Covered(p);
      }

      if (covered) {
        if (p.level() < max_level) {
          std::vector<Pattern> children = Rule1Children(p, schema);
          generated += children.size();
          queue.Push(std::move(children));
        }
        continue;
      }

      // AddIfAbsent absorbs the race where two workers climb to one MUP.
      index.AddIfAbsent(ClimbToMup(std::move(p), cov));
    }
    worker_queries[static_cast<std::size_t>(worker)] = cov.num_queries();
    worker_generated[static_cast<std::size_t>(worker)] = generated;
    worker_pruned[static_cast<std::size_t>(worker)] = pruned;
  });

  std::vector<Pattern> mups = index.Snapshot();
  std::sort(mups.begin(), mups.end());
  if (stats != nullptr) {
    for (int w = 0; w < workers; ++w) {
      stats->coverage_queries += worker_queries[static_cast<std::size_t>(w)];
      stats->nodes_generated += worker_generated[static_cast<std::size_t>(w)];
      stats->nodes_pruned += worker_pruned[static_cast<std::size_t>(w)];
    }
    stats->nodes_generated += 1;  // the root
  }
  return mups;
}

std::vector<Pattern> FindMupsDeepDiverSerial(const CoverageOracle& oracle,
                                             const Schema& schema,
                                             const MupSearchOptions& options,
                                             MupSearchStats* stats) {
  const int d = schema.num_attributes();
  const int max_level = options.max_level < 0 ? d : options.max_level;

  CachingCoverage cov(oracle, options.tau);
  DominanceChecker index(schema, options.dominance_mode);
  std::vector<Pattern> stack = {Pattern::Root(d)};
  std::uint64_t nodes_generated = 1;
  std::uint64_t nodes_pruned = 0;

  while (!stack.empty()) {
    Pattern p = std::move(stack.back());
    stack.pop_back();

    // A node dominated by a discovered MUP is uncovered but not maximal;
    // its entire subtree is pruned. A node that *is* a discovered MUP can be
    // popped later if a climb reached it before its turn in the stack.
    if (index.Contains(p) || index.IsDominated(p)) {
      ++nodes_pruned;
      continue;
    }

    bool covered;
    if (index.DominatesSome(p)) {
      // Strict ancestor of a MUP: covered by monotonicity, no query needed.
      covered = true;
    } else {
      covered = cov.Covered(p);
    }

    if (covered) {
      if (p.level() < max_level) {
        for (Pattern& child : Rule1Children(p, schema)) {
          ++nodes_generated;
          stack.push_back(std::move(child));
        }
      }
      continue;
    }

    // With dominance pruning on, the climb endpoint is always new: it
    // dominates-or-equals the dive point, which was checked against the
    // index above. Without pruning (ablation) a dive can rediscover a MUP.
    const Pattern mup = ClimbToMup(std::move(p), cov);
    if (!index.Contains(mup)) index.Add(mup);
  }

  std::vector<Pattern> mups = index.mups();
  std::sort(mups.begin(), mups.end());
  if (stats != nullptr) {
    stats->coverage_queries = cov.num_queries();
    stats->nodes_generated = nodes_generated;
    stats->nodes_pruned = nodes_pruned;
    stats->num_mups = mups.size();
  }
  return mups;
}

}  // namespace

std::vector<Pattern> FindMupsDeepDiver(const CoverageOracle& oracle,
                                       const Schema& schema,
                                       const MupSearchOptions& options,
                                       MupSearchStats* stats) {
  Stopwatch timer;
  if (stats != nullptr) stats->Reset();
  std::vector<Pattern> mups =
      options.num_threads > 1
          ? FindMupsDeepDiverParallel(oracle, schema, options, stats)
          : FindMupsDeepDiverSerial(oracle, schema, options, stats);
  if (stats != nullptr) {
    stats->seconds = timer.ElapsedSeconds();
    stats->num_mups = mups.size();
  }
  return mups;
}

}  // namespace coverage

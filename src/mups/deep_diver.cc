#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "common/arena.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "mups/legacy_mups.h"
#include "mups/mups.h"
#include "mups/packed_index.h"
#include "pattern/packed_set.h"

namespace coverage {

namespace {

/// Covered/uncovered answers with a memo over packed keys; the memo table's
/// storage comes from the worker's arena, so a dive session costs zero
/// per-node allocations. See legacy_mups.cc for the role of the cache.
class CachingCoverage {
 public:
  CachingCoverage(const CoverageOracle& oracle, const PatternCodec& codec,
                  std::uint64_t tau, Arena* arena)
      : oracle_(oracle), codec_(codec), tau_(tau), cache_(arena) {}

  bool Covered(const PackedPattern& p) {
    if (const bool* hit = cache_.Find(p)) return *hit;
    const bool covered = oracle_.CoverageAtLeast(p, codec_, tau_, ctx_);
    cache_.FindOrInsert(p, covered);
    return covered;
  }

  std::uint64_t num_queries() const { return ctx_.num_queries(); }

 private:
  const CoverageOracle& oracle_;
  const PatternCodec& codec_;
  const std::uint64_t tau_;
  QueryContext ctx_;
  PackedPatternMap<bool> cache_;
};

using DominanceMode = MupSearchOptions::DominanceMode;

/// DominanceMode dispatch over the packed index; mirrors legacy_mups.cc.
bool ModeIsDominated(const PackedMupIndex& index, DominanceMode mode,
                     const PackedPattern& p) {
  switch (mode) {
    case DominanceMode::kBitmapIndex:
      return index.IsDominated(p);
    case DominanceMode::kLinearScan: {
      for (const PackedPattern& m : index.mups()) {
        if (m.Dominates(p)) return true;
      }
      return false;
    }
    case DominanceMode::kNoPruning:
      return false;
  }
  return false;
}

bool ModeDominatesSome(const PackedMupIndex& index, DominanceMode mode,
                       const PackedPattern& p) {
  switch (mode) {
    case DominanceMode::kBitmapIndex:
      return index.DominatesSome(p);
    case DominanceMode::kLinearScan: {
      for (const PackedPattern& m : index.mups()) {
        if (p.Dominates(m)) return true;
      }
      return false;
    }
    case DominanceMode::kNoPruning:
      return false;
  }
  return false;
}

/// Discovered-MUP set for the serial search. Membership is exact in every
/// mode (needed for termination).
class DominanceChecker {
 public:
  DominanceChecker(const Schema& schema, const PatternCodec& codec,
                   DominanceMode mode)
      : mode_(mode), index_(schema, codec) {}

  void Add(const PackedPattern& mup) { index_.Add(mup); }
  bool Contains(const PackedPattern& p) const { return index_.Contains(p); }
  bool IsDominated(const PackedPattern& p) const {
    return ModeIsDominated(index_, mode_, p);
  }
  bool DominatesSome(const PackedPattern& p) const {
    return ModeDominatesSome(index_, mode_, p);
  }
  const std::vector<PackedPattern>& mups() const { return index_.mups(); }

 private:
  DominanceMode mode_;
  PackedMupIndex index_;
};

/// The same strategies against the reader/writer-locked shared index.
class SharedDominanceChecker {
 public:
  SharedDominanceChecker(const Schema& schema, const PatternCodec& codec,
                         DominanceMode mode)
      : mode_(mode), index_(schema, codec) {}

  bool AddIfAbsent(const PackedPattern& mup) {
    return index_.AddIfAbsent(mup);
  }
  bool Contains(const PackedPattern& p) const { return index_.Contains(p); }
  bool IsDominated(const PackedPattern& p) const {
    return index_.WithReadLock([&](const PackedMupIndex& idx) {
      return ModeIsDominated(idx, mode_, p);
    });
  }
  bool DominatesSome(const PackedPattern& p) const {
    return index_.WithReadLock([&](const PackedMupIndex& idx) {
      return ModeDominatesSome(idx, mode_, p);
    });
  }
  std::vector<PackedPattern> Snapshot() const { return index_.Snapshot(); }

 private:
  DominanceMode mode_;
  SharedPackedMupIndex index_;
};

/// The shared dive frontier (see legacy_mups.cc). PackedPattern is a small
/// trivially copyable value, so the stack moves whole keys, not heap cells.
class DiveQueue {
 public:
  explicit DiveQueue(const PackedPattern& root) { stack_.push_back(root); }

  bool Pop(PackedPattern& out) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (!stack_.empty()) {
        out = stack_.back();
        stack_.pop_back();
        ++active_;
        return true;
      }
      if (active_ == 0) {
        cv_.notify_all();
        return false;
      }
      cv_.wait(lock);
    }
  }

  void Push(const PackedPattern* items, std::size_t count) {
    if (count == 0) return;
    {
      std::unique_lock<std::mutex> lock(mu_);
      stack_.insert(stack_.end(), items, items + count);
    }
    cv_.notify_all();
  }

  void FinishItem() {
    std::unique_lock<std::mutex> lock(mu_);
    if (--active_ == 0 && stack_.empty()) cv_.notify_all();
  }

  class ItemGuard {
   public:
    explicit ItemGuard(DiveQueue& queue) : queue_(queue) {}
    ~ItemGuard() { queue_.FinishItem(); }
    ItemGuard(const ItemGuard&) = delete;
    ItemGuard& operator=(const ItemGuard&) = delete;

   private:
    DiveQueue& queue_;
  };

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<PackedPattern> stack_;
  int active_ = 0;
};

/// Climbs from an uncovered node through uncovered parents until every
/// parent is covered; that node is a MUP. Parents are tried in ascending
/// attribute order (same as Pattern::Parents()), so the climb endpoint — and
/// with it the query sequence — matches the legacy implementation exactly.
PackedPattern ClimbToMup(const PackedPattern& start, const PatternCodec& codec,
                         CachingCoverage& cov) {
  PackedPattern current = start;
  const int d = codec.num_attributes();
  for (;;) {
    bool moved = false;
    for (int i = 0; i < d; ++i) {
      if (!codec.is_deterministic(current, i)) continue;
      const PackedPattern parent = codec.WithCell(current, i, kWildcard);
      if (!cov.Covered(parent)) {
        current = parent;
        moved = true;
        break;
      }
    }
    if (!moved) return current;
  }
}

/// Appends p's Rule-1 children to `out`; returns how many were generated.
template <typename Vec>
std::size_t PushRule1Children(const PackedPattern& p, const PatternCodec& codec,
                              const Schema& schema, Vec& out) {
  std::size_t generated = 0;
  const int d = codec.num_attributes();
  const int start = codec.RightmostDeterministic(p) + 1;
  for (int a = start; a < d; ++a) {
    const Value c = static_cast<Value>(schema.cardinality(a));
    for (Value v = 0; v < c; ++v) {
      out.push_back(codec.WithCell(p, a, v));
      ++generated;
    }
  }
  return generated;
}

std::vector<PackedPattern> FindMupsDeepDiverParallelPacked(
    const CoverageOracle& oracle, const Schema& schema,
    const PatternCodec& codec, const MupSearchOptions& options,
    MupSearchStats* stats) {
  const int d = schema.num_attributes();
  const int max_level = options.max_level < 0 ? d : options.max_level;

  SharedDominanceChecker index(schema, codec, options.dominance_mode);
  DiveQueue queue(codec.Root());

  ThreadPool pool(options.num_threads);
  const int workers = pool.num_workers();
  std::vector<std::uint64_t> worker_queries(
      static_cast<std::size_t>(workers), 0);
  std::vector<std::uint64_t> worker_generated(
      static_cast<std::size_t>(workers), 0);
  std::vector<std::uint64_t> worker_pruned(
      static_cast<std::size_t>(workers), 0);

  pool.RunOnAll([&](int worker) {
    Arena arena;
    CachingCoverage cov(oracle, codec, options.tau, &arena);
    std::vector<PackedPattern> children;
    std::uint64_t generated = 0;
    std::uint64_t pruned = 0;
    PackedPattern p;
    while (queue.Pop(p)) {
      const DiveQueue::ItemGuard guard(queue);
      if (index.Contains(p) || index.IsDominated(p)) {
        ++pruned;
        continue;
      }

      bool covered;
      if (index.DominatesSome(p)) {
        covered = true;
      } else {
        covered = cov.Covered(p);
      }

      if (covered) {
        if (p.level() < max_level) {
          children.clear();
          generated += PushRule1Children(p, codec, schema, children);
          queue.Push(children.data(), children.size());
        }
        continue;
      }

      index.AddIfAbsent(ClimbToMup(p, codec, cov));
    }
    worker_queries[static_cast<std::size_t>(worker)] = cov.num_queries();
    worker_generated[static_cast<std::size_t>(worker)] = generated;
    worker_pruned[static_cast<std::size_t>(worker)] = pruned;
  });

  std::vector<PackedPattern> mups = index.Snapshot();
  std::sort(mups.begin(), mups.end(), PackedLess{&codec});
  if (stats != nullptr) {
    for (int w = 0; w < workers; ++w) {
      stats->coverage_queries += worker_queries[static_cast<std::size_t>(w)];
      stats->nodes_generated += worker_generated[static_cast<std::size_t>(w)];
      stats->nodes_pruned += worker_pruned[static_cast<std::size_t>(w)];
    }
    stats->nodes_generated += 1;  // the root
  }
  return mups;
}

std::vector<PackedPattern> FindMupsDeepDiverSerialPacked(
    const CoverageOracle& oracle, const Schema& schema,
    const PatternCodec& codec, const MupSearchOptions& options,
    MupSearchStats* stats) {
  const int d = schema.num_attributes();
  const int max_level = options.max_level < 0 ? d : options.max_level;

  Arena arena;
  CachingCoverage cov(oracle, codec, options.tau, &arena);
  DominanceChecker index(schema, codec, options.dominance_mode);
  ArenaVector<PackedPattern> stack(&arena);
  stack.push_back(codec.Root());
  std::uint64_t nodes_generated = 1;
  std::uint64_t nodes_pruned = 0;

  while (!stack.empty()) {
    const PackedPattern p = stack.back();
    stack.pop_back();

    if (index.Contains(p) || index.IsDominated(p)) {
      ++nodes_pruned;
      continue;
    }

    bool covered;
    if (index.DominatesSome(p)) {
      covered = true;
    } else {
      covered = cov.Covered(p);
    }

    if (covered) {
      if (p.level() < max_level) {
        nodes_generated += PushRule1Children(p, codec, schema, stack);
      }
      continue;
    }

    const PackedPattern mup = ClimbToMup(p, codec, cov);
    if (!index.Contains(mup)) index.Add(mup);
  }

  std::vector<PackedPattern> mups = index.mups();
  std::sort(mups.begin(), mups.end(), PackedLess{&codec});
  if (stats != nullptr) {
    stats->coverage_queries = cov.num_queries();
    stats->nodes_generated = nodes_generated;
    stats->nodes_pruned = nodes_pruned;
    stats->num_mups = mups.size();
  }
  return mups;
}

}  // namespace

std::vector<PackedPattern> FindMupsDeepDiverPacked(
    const CoverageOracle& oracle, const Schema& schema,
    const PatternCodec& codec, const MupSearchOptions& options,
    MupSearchStats* stats) {
  Stopwatch timer;
  if (stats != nullptr) stats->Reset();
  std::vector<PackedPattern> mups =
      options.num_threads > 1
          ? FindMupsDeepDiverParallelPacked(oracle, schema, codec, options,
                                            stats)
          : FindMupsDeepDiverSerialPacked(oracle, schema, codec, options,
                                          stats);
  if (stats != nullptr) {
    stats->seconds = timer.ElapsedSeconds();
    stats->num_mups = mups.size();
  }
  return mups;
}

std::vector<Pattern> FindMupsDeepDiver(const CoverageOracle& oracle,
                                       const Schema& schema,
                                       const MupSearchOptions& options,
                                       MupSearchStats* stats) {
  if (options.use_packed_representation) {
    auto codec = PatternCodec::Build(schema);
    if (codec.ok()) {
      const std::vector<PackedPattern> packed =
          FindMupsDeepDiverPacked(oracle, schema, *codec, options, stats);
      std::vector<Pattern> mups;
      mups.reserve(packed.size());
      for (const PackedPattern& p : packed) mups.push_back(codec->Decode(p));
      return mups;
    }
  }
  return legacy::FindMupsDeepDiver(oracle, schema, options, stats);
}

}  // namespace coverage

#include "mups/legacy_mups.h"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "mups/mup_index.h"
#include "mups/mups.h"
#include "pattern/pattern_ops.h"

namespace coverage {
namespace legacy {

// ---------------------------------------------------------------------------
// PATTERN-BREAKER (§III-C, Algorithm 1)

namespace {

using PatternSet = std::unordered_set<Pattern, PatternHash>;

/// Per-frontier-node outcome of the (parallelisable) evaluation step. The
/// decision for a node depends only on state frozen at the start of its BFS
/// level — the previous level's covered set and the MUPs discovered on
/// earlier levels — plus the (immutable) oracle, so frontier nodes can be
/// evaluated in any order or concurrently and merged back in queue order to
/// reproduce the serial output bit for bit.
enum class NodeOutcome : std::uint8_t { kSkipped, kMup, kCovered };

NodeOutcome EvaluateNode(const Pattern& p, const CoverageOracle& oracle,
                         std::uint64_t tau, const PatternSet& prev_covered,
                         const PatternSet& mup_set, QueryContext& ctx) {
  // Skip candidates with an unverified or uncovered parent; they cannot
  // be MUPs (either pruned region or dominated by one).
  for (const Pattern& parent : p.Parents()) {
    if (!prev_covered.contains(parent) || mup_set.contains(parent)) {
      return NodeOutcome::kSkipped;
    }
  }
  return oracle.CoverageAtLeast(p, tau, ctx) ? NodeOutcome::kCovered
                                             : NodeOutcome::kMup;
}

}  // namespace

std::vector<Pattern> FindMupsPatternBreaker(const CoverageOracle& oracle,
                                            const Schema& schema,
                                            const MupSearchOptions& options,
                                            MupSearchStats* stats) {
  Stopwatch timer;
  const int d = schema.num_attributes();
  const int max_level = options.max_level < 0 ? d : options.max_level;

  const int num_workers = options.num_threads > 1 ? options.num_threads : 1;
  ThreadPool pool(num_workers);
  std::vector<QueryContext> contexts(
      static_cast<std::size_t>(pool.num_workers()));

  std::vector<Pattern> queue = {Pattern::Root(d)};
  std::vector<Pattern> mups;
  PatternSet mup_set;
  // Covered candidates of the previous level (see the header's
  // implementation note: tracking only covered candidates keeps the parent
  // check sound).
  PatternSet prev_covered;
  std::uint64_t nodes_generated = 1;
  std::vector<NodeOutcome> outcomes;

  for (int level = 0; level <= max_level && !queue.empty(); ++level) {
    // The level loop runs on the calling thread (ParallelFor blocks), so
    // recording into the caller's trace is safe.
    obs::ScopedStage level_stage(options.trace,
                                 "search_level_" + std::to_string(level));
    // Evaluate the frontier: reads only level-start state, so the pool can
    // chew through it in dynamically balanced chunks.
    outcomes.assign(queue.size(), NodeOutcome::kSkipped);
    if (num_workers > 1 && queue.size() > 1) {
      pool.ParallelFor(queue.size(), /*chunk=*/16,
                       [&](int worker, std::size_t i) {
                         outcomes[i] = EvaluateNode(
                             queue[i], oracle, options.tau, prev_covered,
                             mup_set, contexts[static_cast<std::size_t>(
                                 worker)]);
                       });
    } else {
      for (std::size_t i = 0; i < queue.size(); ++i) {
        outcomes[i] = EvaluateNode(queue[i], oracle, options.tau, prev_covered,
                                   mup_set, contexts[0]);
      }
    }

    // Deterministic merge in queue order: identical to the serial loop.
    std::vector<Pattern> next_queue;
    PatternSet covered_here;
    for (std::size_t i = 0; i < queue.size(); ++i) {
      Pattern& p = queue[i];
      switch (outcomes[i]) {
        case NodeOutcome::kSkipped:
          break;
        case NodeOutcome::kMup:
          mup_set.insert(p);
          mups.push_back(std::move(p));
          break;
        case NodeOutcome::kCovered:
          if (level < max_level) {
            for (Pattern& child : Rule1Children(p, schema)) {
              ++nodes_generated;
              next_queue.push_back(std::move(child));
            }
          }
          covered_here.insert(std::move(p));
          break;
      }
    }
    prev_covered = std::move(covered_here);
    queue = std::move(next_queue);
  }

  std::sort(mups.begin(), mups.end());
  if (stats != nullptr) {
    std::uint64_t queries = 0;
    for (const QueryContext& ctx : contexts) queries += ctx.num_queries();
    stats->coverage_queries = queries;
    stats->nodes_generated = nodes_generated;
    stats->seconds = timer.ElapsedSeconds();
    stats->num_mups = mups.size();
  }
  return mups;
}

// ---------------------------------------------------------------------------
// DEEPDIVER (§III-E, Algorithm 3)

namespace {

/// Covered/uncovered answers with a memo; the climb phase re-examines
/// parents that later dives may touch again, so a small cache keeps the
/// query count near the number of distinct nodes actually inspected. Each
/// worker owns one instance (cache + QueryContext), so the shared oracle is
/// only ever touched through per-thread state.
class CachingCoverage {
 public:
  CachingCoverage(const CoverageOracle& oracle, std::uint64_t tau)
      : oracle_(oracle), tau_(tau) {}

  bool Covered(const Pattern& p) {
    const auto it = cache_.find(p);
    if (it != cache_.end()) return it->second;
    const bool covered = oracle_.CoverageAtLeast(p, tau_, ctx_);
    cache_.emplace(p, covered);
    return covered;
  }

  std::uint64_t num_queries() const { return ctx_.num_queries(); }

 private:
  const CoverageOracle& oracle_;
  const std::uint64_t tau_;
  QueryContext ctx_;
  std::unordered_map<Pattern, bool, PatternHash> cache_;
};

using DominanceMode = MupSearchOptions::DominanceMode;

/// The three dominance strategies of MupSearchOptions::DominanceMode over a
/// discovered-MUP index. They differ in how — and whether — they answer the
/// pruning queries; the single dispatch point keeps the serial and parallel
/// searches semantically identical.
bool ModeIsDominated(const MupDominanceIndex& index, DominanceMode mode,
                     const Pattern& p) {
  switch (mode) {
    case DominanceMode::kBitmapIndex:
      return index.IsDominated(p);
    case DominanceMode::kLinearScan: {
      for (const Pattern& m : index.mups()) {
        if (m.Dominates(p)) return true;
      }
      return false;
    }
    case DominanceMode::kNoPruning:
      return false;
  }
  return false;
}

bool ModeDominatesSome(const MupDominanceIndex& index, DominanceMode mode,
                       const Pattern& p) {
  switch (mode) {
    case DominanceMode::kBitmapIndex:
      return index.DominatesSome(p);
    case DominanceMode::kLinearScan: {
      for (const Pattern& m : index.mups()) {
        if (p.Dominates(m)) return true;
      }
      return false;
    }
    case DominanceMode::kNoPruning:
      return false;
  }
  return false;
}

/// Discovered-MUP set for the serial search. Membership is exact in every
/// mode (needed for termination).
class DominanceChecker {
 public:
  DominanceChecker(const Schema& schema, DominanceMode mode)
      : mode_(mode), index_(schema) {}

  void Add(const Pattern& mup) { index_.Add(mup); }
  bool Contains(const Pattern& p) const { return index_.Contains(p); }
  bool IsDominated(const Pattern& p) const {
    return ModeIsDominated(index_, mode_, p);
  }
  bool DominatesSome(const Pattern& p) const {
    return ModeDominatesSome(index_, mode_, p);
  }
  const std::vector<Pattern>& mups() const { return index_.mups(); }

 private:
  DominanceMode mode_;
  MupDominanceIndex index_;
};

/// The same strategies against the reader/writer-locked shared index.
class SharedDominanceChecker {
 public:
  SharedDominanceChecker(const Schema& schema, DominanceMode mode)
      : mode_(mode), index_(schema) {}

  bool AddIfAbsent(const Pattern& mup) { return index_.AddIfAbsent(mup); }
  bool Contains(const Pattern& p) const { return index_.Contains(p); }
  bool IsDominated(const Pattern& p) const {
    return index_.WithReadLock([&](const MupDominanceIndex& idx) {
      return ModeIsDominated(idx, mode_, p);
    });
  }
  bool DominatesSome(const Pattern& p) const {
    return index_.WithReadLock([&](const MupDominanceIndex& idx) {
      return ModeDominatesSome(idx, mode_, p);
    });
  }
  std::vector<Pattern> Snapshot() const { return index_.Snapshot(); }

 private:
  DominanceMode mode_;
  SharedMupDominanceIndex index_;
};

/// The shared dive frontier: a mutex-guarded LIFO plus the in-flight count
/// that detects quiescence (empty stack alone is not termination — an active
/// worker may still push children).
class DiveQueue {
 public:
  explicit DiveQueue(Pattern root) { stack_.push_back(std::move(root)); }

  /// Blocks until an item is available (returning true) or every worker is
  /// idle with an empty stack (returning false — the search is complete).
  /// A successful pop marks the caller active until it calls FinishItem().
  bool Pop(Pattern& out) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (!stack_.empty()) {
        out = std::move(stack_.back());
        stack_.pop_back();
        ++active_;
        return true;
      }
      if (active_ == 0) {
        cv_.notify_all();
        return false;
      }
      cv_.wait(lock);
    }
  }

  void Push(std::vector<Pattern>&& items) {
    if (items.empty()) return;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (Pattern& p : items) stack_.push_back(std::move(p));
    }
    cv_.notify_all();
  }

  void FinishItem() {
    std::unique_lock<std::mutex> lock(mu_);
    if (--active_ == 0 && stack_.empty()) cv_.notify_all();
  }

  /// Pairs every successful Pop with a FinishItem even if the dive body
  /// throws; otherwise the active count never drains and the remaining
  /// workers wait forever instead of seeing the exception propagate.
  class ItemGuard {
   public:
    explicit ItemGuard(DiveQueue& queue) : queue_(queue) {}
    ~ItemGuard() { queue_.FinishItem(); }
    ItemGuard(const ItemGuard&) = delete;
    ItemGuard& operator=(const ItemGuard&) = delete;

   private:
    DiveQueue& queue_;
  };

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Pattern> stack_;
  int active_ = 0;
};

/// Climbs from an uncovered node through uncovered parents until every
/// parent is covered; that node is a MUP. The climb can only move up, so it
/// terminates at the root at the latest.
Pattern ClimbToMup(Pattern start, CachingCoverage& cov) {
  Pattern current = std::move(start);
  for (;;) {
    bool moved = false;
    for (const Pattern& parent : current.Parents()) {
      if (!cov.Covered(parent)) {
        current = parent;
        moved = true;
        break;
      }
    }
    if (!moved) return current;
  }
}

std::vector<Pattern> FindMupsDeepDiverParallel(const CoverageOracle& oracle,
                                               const Schema& schema,
                                               const MupSearchOptions& options,
                                               MupSearchStats* stats) {
  const int d = schema.num_attributes();
  const int max_level = options.max_level < 0 ? d : options.max_level;

  SharedDominanceChecker index(schema, options.dominance_mode);
  DiveQueue queue(Pattern::Root(d));

  ThreadPool pool(options.num_threads);
  const int workers = pool.num_workers();
  std::vector<std::uint64_t> worker_queries(
      static_cast<std::size_t>(workers), 0);
  std::vector<std::uint64_t> worker_generated(
      static_cast<std::size_t>(workers), 0);
  std::vector<std::uint64_t> worker_pruned(
      static_cast<std::size_t>(workers), 0);

  pool.RunOnAll([&](int worker) {
    CachingCoverage cov(oracle, options.tau);
    std::uint64_t generated = 0;
    std::uint64_t pruned = 0;
    Pattern p;
    while (queue.Pop(p)) {
      const DiveQueue::ItemGuard guard(queue);
      // A node dominated by a discovered MUP is uncovered but not maximal;
      // its entire subtree is pruned. A node that *is* a discovered MUP can
      // be popped later if a climb reached it before its turn in the queue.
      // The index only ever grows (with genuine MUPs), so a stale snapshot
      // here costs at most a redundant dive, never a wrong answer.
      if (index.Contains(p) || index.IsDominated(p)) {
        ++pruned;
        continue;
      }

      bool covered;
      if (index.DominatesSome(p)) {
        // Strict ancestor of a MUP: covered by monotonicity, no query needed.
        covered = true;
      } else {
        covered = cov.Covered(p);
      }

      if (covered) {
        if (p.level() < max_level) {
          std::vector<Pattern> children = Rule1Children(p, schema);
          generated += children.size();
          queue.Push(std::move(children));
        }
        continue;
      }

      // AddIfAbsent absorbs the race where two workers climb to one MUP.
      index.AddIfAbsent(ClimbToMup(std::move(p), cov));
    }
    worker_queries[static_cast<std::size_t>(worker)] = cov.num_queries();
    worker_generated[static_cast<std::size_t>(worker)] = generated;
    worker_pruned[static_cast<std::size_t>(worker)] = pruned;
  });

  std::vector<Pattern> mups = index.Snapshot();
  std::sort(mups.begin(), mups.end());
  if (stats != nullptr) {
    for (int w = 0; w < workers; ++w) {
      stats->coverage_queries += worker_queries[static_cast<std::size_t>(w)];
      stats->nodes_generated += worker_generated[static_cast<std::size_t>(w)];
      stats->nodes_pruned += worker_pruned[static_cast<std::size_t>(w)];
    }
    stats->nodes_generated += 1;  // the root
  }
  return mups;
}

std::vector<Pattern> FindMupsDeepDiverSerial(const CoverageOracle& oracle,
                                             const Schema& schema,
                                             const MupSearchOptions& options,
                                             MupSearchStats* stats) {
  const int d = schema.num_attributes();
  const int max_level = options.max_level < 0 ? d : options.max_level;

  CachingCoverage cov(oracle, options.tau);
  DominanceChecker index(schema, options.dominance_mode);
  std::vector<Pattern> stack = {Pattern::Root(d)};
  std::uint64_t nodes_generated = 1;
  std::uint64_t nodes_pruned = 0;

  while (!stack.empty()) {
    Pattern p = std::move(stack.back());
    stack.pop_back();

    // A node dominated by a discovered MUP is uncovered but not maximal;
    // its entire subtree is pruned. A node that *is* a discovered MUP can be
    // popped later if a climb reached it before its turn in the stack.
    if (index.Contains(p) || index.IsDominated(p)) {
      ++nodes_pruned;
      continue;
    }

    bool covered;
    if (index.DominatesSome(p)) {
      // Strict ancestor of a MUP: covered by monotonicity, no query needed.
      covered = true;
    } else {
      covered = cov.Covered(p);
    }

    if (covered) {
      if (p.level() < max_level) {
        for (Pattern& child : Rule1Children(p, schema)) {
          ++nodes_generated;
          stack.push_back(std::move(child));
        }
      }
      continue;
    }

    // With dominance pruning on, the climb endpoint is always new: it
    // dominates-or-equals the dive point, which was checked against the
    // index above. Without pruning (ablation) a dive can rediscover a MUP.
    const Pattern mup = ClimbToMup(std::move(p), cov);
    if (!index.Contains(mup)) index.Add(mup);
  }

  std::vector<Pattern> mups = index.mups();
  std::sort(mups.begin(), mups.end());
  if (stats != nullptr) {
    stats->coverage_queries = cov.num_queries();
    stats->nodes_generated = nodes_generated;
    stats->nodes_pruned = nodes_pruned;
    stats->num_mups = mups.size();
  }
  return mups;
}

}  // namespace

std::vector<Pattern> FindMupsDeepDiver(const CoverageOracle& oracle,
                                       const Schema& schema,
                                       const MupSearchOptions& options,
                                       MupSearchStats* stats) {
  Stopwatch timer;
  if (stats != nullptr) stats->Reset();
  std::vector<Pattern> mups =
      options.num_threads > 1
          ? FindMupsDeepDiverParallel(oracle, schema, options, stats)
          : FindMupsDeepDiverSerial(oracle, schema, options, stats);
  if (stats != nullptr) {
    stats->seconds = timer.ElapsedSeconds();
    stats->num_mups = mups.size();
  }
  return mups;
}

// ---------------------------------------------------------------------------
// PATTERN-COMBINER (§III-D, Algorithm 2)

StatusOr<std::vector<Pattern>> FindMupsPatternCombiner(
    const BitmapCoverage& oracle, const MupSearchOptions& options,
    MupSearchStats* stats) {
  Stopwatch timer;
  const Schema& schema = oracle.data().schema();
  const AggregatedData& data = oracle.data();
  const int d = schema.num_attributes();

  if (schema.NumValueCombinations() > options.enumeration_limit) {
    return Status::ResourceExhausted(
        "PATTERN-COMBINER's level-d pass needs " +
        std::to_string(schema.NumValueCombinations()) +
        " combinations, limit is " + std::to_string(options.enumeration_limit));
  }

  using CountMap = std::unordered_map<Pattern, std::uint64_t, PatternHash>;

  // Level-d pass: the coverage of a full combination is its multiplicity in
  // the aggregated relation (0 for absent combinations, which are uncovered
  // and must participate). The pass is embarrassingly parallel — each
  // combination is probed independently — so with num_threads > 1 the
  // combination space is sharded into blocks that fix a prefix of the
  // attributes, one worker enumerating each block's suffix, and the per-block
  // uncovered lists are merged in block order. The resulting map contents
  // (and therefore the final sorted MUP set and every stat) are identical to
  // the serial pass for any worker count.
  std::uint64_t nodes_generated = 0;
  std::uint64_t level_d_queries = 0;
  CountMap count;
  const int num_workers = options.num_threads > 1 ? options.num_threads : 1;
  // Enough blocks to balance dynamically, but no finer than one attribute's
  // worth of prefix values per step.
  std::uint64_t num_blocks = 1;
  int prefix_len = 0;
  while (prefix_len < d &&
         num_blocks < static_cast<std::uint64_t>(4 * num_workers)) {
    num_blocks *= static_cast<std::uint64_t>(schema.cardinality(prefix_len));
    ++prefix_len;
  }
  if (num_workers > 1 && num_blocks > 1) {
    using Uncovered = std::vector<std::pair<Pattern, std::uint64_t>>;
    std::vector<Uncovered> block_uncovered(num_blocks);
    std::vector<std::uint64_t> block_nodes(num_blocks, 0);
    ThreadPool pool(num_workers);
    pool.ParallelFor(
        num_blocks, /*chunk=*/1, [&](int /*worker*/, std::size_t b) {
          // Decode block id -> prefix values (attribute 0 most significant,
          // so blocks enumerate in the same lexicographic order as the
          // serial pass).
          Pattern block = Pattern::Root(d);
          std::uint64_t rest = b;
          for (int a = prefix_len - 1; a >= 0; --a) {
            const auto c = static_cast<std::uint64_t>(schema.cardinality(a));
            block = block.WithCell(a, static_cast<Value>(rest % c));
            rest /= c;
          }
          const Status st = ForEachMatchingCombination(
              block, schema, options.enumeration_limit,
              [&](const std::vector<Value>& combo) {
                ++block_nodes[b];
                const std::uint64_t c = data.CountOf(combo);
                if (c < options.tau) {
                  block_uncovered[b].emplace_back(Pattern::FromTuple(combo),
                                                  c);
                }
              });
          // Cannot fire: the whole space already passed the upfront guard,
          // and each block enumerates a subset of it.
          (void)st;
        });
    for (std::size_t b = 0; b < num_blocks; ++b) {
      nodes_generated += block_nodes[b];
      level_d_queries += block_nodes[b];
      for (auto& [p, c] : block_uncovered[b]) {
        count.emplace(std::move(p), c);
      }
    }
  } else {
    const Status st = ForEachMatchingCombination(
        Pattern::Root(d), schema, options.enumeration_limit,
        [&](const std::vector<Value>& combo) {
          ++nodes_generated;
          ++level_d_queries;
          const std::uint64_t c = data.CountOf(combo);
          if (c < options.tau) {
            count.emplace(Pattern::FromTuple(combo), c);
          }
        });
    COVERAGE_RETURN_IF_ERROR(st);
  }

  std::vector<Pattern> mups;
  if (!count.empty()) {
    for (int level = d; level >= 0; --level) {
      // Combine: generate the uncovered candidates one level up. Each parent
      // is generated exactly once (Rule 2 / Theorem 4); its coverage is the
      // sum over the partition family at its right-most wildcard, where
      // children absent from `count` are covered and contribute at least τ
      // (capped — only the "< τ" outcome matters).
      CountMap next_count;
      for (const auto& [p, cnt] : count) {
        (void)cnt;
        for (const Pattern& parent : Rule2Parents(p)) {
          ++nodes_generated;
          const int pivot = parent.RightmostWildcard();
          std::uint64_t sum = 0;
          bool covered = false;
          for (const Pattern& sibling :
               PartitionChildren(parent, schema, pivot)) {
            const auto it = count.find(sibling);
            if (it == count.end()) {
              covered = true;  // a covered child already implies sum >= tau
              break;
            }
            sum += it->second;
            if (sum >= options.tau) {
              covered = true;
              break;
            }
          }
          if (!covered) next_count.emplace(parent, sum);
        }
      }
      // A node at this level is a MUP iff none of its parents is uncovered.
      for (const auto& [p, cnt] : count) {
        (void)cnt;
        if (options.max_level >= 0 && p.level() > options.max_level) continue;
        bool has_uncovered_parent = false;
        for (const Pattern& parent : p.Parents()) {
          if (next_count.contains(parent)) {
            has_uncovered_parent = true;
            break;
          }
        }
        if (!has_uncovered_parent) mups.push_back(p);
      }
      if (next_count.empty()) break;
      count = std::move(next_count);
    }
  }

  std::sort(mups.begin(), mups.end());
  if (stats != nullptr) {
    stats->coverage_queries = level_d_queries;
    stats->nodes_generated = nodes_generated;
    stats->seconds = timer.ElapsedSeconds();
    stats->num_mups = mups.size();
  }
  return mups;
}

// ---------------------------------------------------------------------------
// APRIORI (§V-C)

namespace {

/// An item is one (attribute, value) pair; an item-set is a sorted vector of
/// item ids. The lattice over item-sets is much larger than the pattern graph
/// (the paper's core criticism of this adaptation): item-sets mixing two
/// values of one attribute are representable and must be generated, counted,
/// and finally discarded as invalid.
struct ItemCatalog {
  std::vector<int> attr_of;    // item id -> attribute
  std::vector<Value> value_of; // item id -> value

  explicit ItemCatalog(const Schema& schema) {
    for (int i = 0; i < schema.num_attributes(); ++i) {
      for (Value v = 0; v < static_cast<Value>(schema.cardinality(i)); ++v) {
        attr_of.push_back(i);
        value_of.push_back(v);
      }
    }
  }

  std::size_t size() const { return attr_of.size(); }
};

using ItemSet = std::vector<int>;

std::uint64_t Support(const ItemSet& items, const ItemCatalog& catalog,
                      const BitmapCoverage& oracle) {
  if (items.empty()) return oracle.data().total_count();
  BitVector acc = oracle.index(catalog.attr_of[static_cast<std::size_t>(
                                   items[0])],
                               catalog.value_of[static_cast<std::size_t>(
                                   items[0])]);
  for (std::size_t k = 1; k < items.size(); ++k) {
    acc.AndWith(oracle.index(
        catalog.attr_of[static_cast<std::size_t>(items[k])],
        catalog.value_of[static_cast<std::size_t>(items[k])]));
    if (acc.None()) return 0;
  }
  return acc.Dot(oracle.data().counts());
}

/// True iff every (k-1)-subset of `candidate` is in the sorted `frequent`
/// list — the apriori prune step.
bool AllSubsetsFrequent(const ItemSet& candidate,
                        const std::vector<ItemSet>& frequent) {
  ItemSet subset(candidate.size() - 1);
  for (std::size_t skip = 0; skip < candidate.size(); ++skip) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < candidate.size(); ++i) {
      if (i != skip) subset[out++] = candidate[i];
    }
    if (!std::binary_search(frequent.begin(), frequent.end(), subset)) {
      return false;
    }
  }
  return true;
}

/// Converts a valid item-set (distinct attributes) to a pattern; returns
/// false for invalid ones (two values of the same attribute).
bool ToPattern(const ItemSet& items, const ItemCatalog& catalog, int d,
               Pattern* out) {
  std::vector<Value> cells(static_cast<std::size_t>(d), kWildcard);
  for (int item : items) {
    const int attr = catalog.attr_of[static_cast<std::size_t>(item)];
    if (cells[static_cast<std::size_t>(attr)] != kWildcard) return false;
    cells[static_cast<std::size_t>(attr)] =
        catalog.value_of[static_cast<std::size_t>(item)];
  }
  *out = Pattern(std::move(cells));
  return true;
}

}  // namespace

StatusOr<std::vector<Pattern>> FindMupsApriori(const BitmapCoverage& oracle,
                                               const MupSearchOptions& options,
                                               MupSearchStats* stats) {
  Stopwatch timer;
  const std::uint64_t queries_before = oracle.num_queries();
  const Schema& schema = oracle.data().schema();
  const int d = schema.num_attributes();
  const ItemCatalog catalog(schema);

  std::vector<Pattern> mups;
  std::uint64_t nodes_generated = 0;
  std::uint64_t support_queries = 0;

  // Level 0: the empty item-set (the root pattern). If even it is
  // infrequent, it is the only MUP.
  if (oracle.data().total_count() < options.tau) {
    mups.push_back(Pattern::Root(d));
    std::sort(mups.begin(), mups.end());
    if (stats != nullptr) {
      stats->coverage_queries = 0;
      stats->nodes_generated = 1;
      stats->seconds = timer.ElapsedSeconds();
      stats->num_mups = mups.size();
    }
    return mups;
  }

  const int max_level = options.max_level < 0 ? d : options.max_level;

  // Level 1: singleton item-sets.
  std::vector<ItemSet> frequent;
  for (int item = 0; item < static_cast<int>(catalog.size()); ++item) {
    ItemSet candidate = {item};
    ++nodes_generated;
    ++support_queries;
    if (Support(candidate, catalog, oracle) >= options.tau) {
      frequent.push_back(std::move(candidate));
    } else {
      Pattern p;
      if (ToPattern(candidate, catalog, d, &p)) mups.push_back(p);
    }
  }

  // Levels 2..max: apriori-gen join + prune over the item lattice.
  for (int k = 2; k <= max_level && !frequent.empty(); ++k) {
    std::vector<ItemSet> next_frequent;
    // `frequent` is sorted lexicographically: singletons were generated in
    // order and joins below preserve order.
    for (std::size_t a = 0; a < frequent.size(); ++a) {
      for (std::size_t b = a + 1; b < frequent.size(); ++b) {
        // Join two sets sharing their first k-2 items.
        if (!std::equal(frequent[a].begin(), frequent[a].end() - 1,
                        frequent[b].begin())) {
          break;  // sorted order: later b cannot share the prefix either
        }
        ItemSet candidate = frequent[a];
        candidate.push_back(frequent[b].back());
        ++nodes_generated;
        if (nodes_generated > options.enumeration_limit) {
          return Status::ResourceExhausted(
              "APRIORI generated more than " +
              std::to_string(options.enumeration_limit) + " item-sets");
        }
        if (!AllSubsetsFrequent(candidate, frequent)) continue;
        ++support_queries;
        if (Support(candidate, catalog, oracle) >= options.tau) {
          next_frequent.push_back(std::move(candidate));
        } else {
          // Negative border: infrequent, all subsets frequent. Valid members
          // are exactly the MUPs; invalid ones (duplicate attribute) are the
          // wasted work this adaptation cannot avoid.
          Pattern p;
          if (ToPattern(candidate, catalog, d, &p)) mups.push_back(p);
        }
      }
    }
    frequent = std::move(next_frequent);
  }

  std::sort(mups.begin(), mups.end());
  if (stats != nullptr) {
    stats->coverage_queries = oracle.num_queries() - queries_before;
    stats->nodes_generated = nodes_generated;
    stats->seconds = timer.ElapsedSeconds();
    stats->num_mups = mups.size();
    (void)support_queries;
  }
  return mups;
}

}  // namespace legacy
}  // namespace coverage

#ifndef COVERAGE_MUPS_LEGACY_MUPS_H_
#define COVERAGE_MUPS_LEGACY_MUPS_H_

#include <vector>

#include "common/status.h"
#include "coverage/bitmap_coverage.h"
#include "coverage/coverage_oracle.h"
#include "dataset/schema.h"
#include "pattern/pattern.h"

namespace coverage {

struct MupSearchOptions;
struct MupSearchStats;

/// The vector<int>-keyed search implementations, kept whole after the packed
/// refactor for two jobs:
///
///  1. Differential shadow: the packed implementations must be bit-identical
///     to these — same MUP sets, same per-algorithm query counts on the
///     deterministic paths — and tests/differential_test.cc proves it by
///     running both sides (MupSearchOptions::use_packed_representation picks
///     the side).
///  2. Fallback: schemas wider than PackedPattern's 256-bit capacity cannot
///     build a PatternCodec; the public FindMups* entry points route them
///     here automatically.
///
/// Nothing else should call these directly.
namespace legacy {

std::vector<Pattern> FindMupsPatternBreaker(const CoverageOracle& oracle,
                                            const Schema& schema,
                                            const MupSearchOptions& options,
                                            MupSearchStats* stats);

std::vector<Pattern> FindMupsDeepDiver(const CoverageOracle& oracle,
                                       const Schema& schema,
                                       const MupSearchOptions& options,
                                       MupSearchStats* stats);

StatusOr<std::vector<Pattern>> FindMupsPatternCombiner(
    const BitmapCoverage& oracle, const MupSearchOptions& options,
    MupSearchStats* stats);

StatusOr<std::vector<Pattern>> FindMupsApriori(const BitmapCoverage& oracle,
                                               const MupSearchOptions& options,
                                               MupSearchStats* stats);

}  // namespace legacy
}  // namespace coverage

#endif  // COVERAGE_MUPS_LEGACY_MUPS_H_

#include "mups/mup_index.h"

#include <algorithm>
#include <cassert>

namespace coverage {

MupDominanceIndex::MupDominanceIndex(const Schema& schema) : schema_(schema) {
  const int d = schema.num_attributes();
  offsets_.resize(static_cast<std::size_t>(d));
  int total = 0;
  for (int i = 0; i < d; ++i) {
    offsets_[static_cast<std::size_t>(i)] = total;
    total += 1 + schema.cardinality(i);  // wildcard slot + one per value
  }
  indices_.assign(static_cast<std::size_t>(total), BitVector());
}

void MupDominanceIndex::Add(const Pattern& mup) {
  assert(mup.num_attributes() == schema_.num_attributes());
  assert(!member_index_.contains(mup));
  const std::size_t bit = mups_.size();
  // Geometric word-block reservation, applied to every slot at once: the
  // per-slot vectors all share one length, so one capacity schedule keeps
  // each of them reallocating O(log n) times over n Adds instead of
  // resizing bit by bit.
  if (bit >= reserved_bits_) {
    reserved_bits_ =
        std::max<std::size_t>(2 * reserved_bits_, 16 * BitVector::kBitsPerWord);
    for (BitVector& index : indices_) index.Reserve(reserved_bits_);
  }
  mups_.push_back(mup);
  member_index_.emplace(mup, bit);
  for (BitVector& index : indices_) index.PushBack(false);
  for (int i = 0; i < schema_.num_attributes(); ++i) {
    if (mup.is_deterministic(i)) {
      mutable_value_index(i, mup.cell(i)).Set(bit, true);
    } else {
      mutable_wildcard_index(i).Set(bit, true);
    }
  }
}

void MupDominanceIndex::AddBatch(std::span<const Pattern> mups) {
  if (mups.empty()) return;
  const std::size_t base = mups_.size();
  const std::size_t k = mups.size();
  const int d = schema_.num_attributes();
  // One packed delta per slot, filled MUP-major so each pattern is decoded
  // once, then appended to every slot in a single word-blocked pass.
  const std::size_t delta_words =
      (k + BitVector::kBitsPerWord - 1) / BitVector::kBitsPerWord;
  std::vector<BitVector::Word> deltas(indices_.size() * delta_words, 0);
  mups_.reserve(base + k);
  for (std::size_t j = 0; j < k; ++j) {
    const Pattern& mup = mups[j];
    assert(mup.num_attributes() == d);
    assert(!member_index_.contains(mup));
    mups_.push_back(mup);
    member_index_.emplace(mup, base + j);
    for (int i = 0; i < d; ++i) {
      const std::size_t slot = static_cast<std::size_t>(
          offsets_[static_cast<std::size_t>(i)] +
          (mup.is_deterministic(i) ? 1 + mup.cell(i) : 0));
      deltas[slot * delta_words + j / BitVector::kBitsPerWord] |=
          BitVector::Word{1} << (j % BitVector::kBitsPerWord);
    }
  }
  for (std::size_t slot = 0; slot < indices_.size(); ++slot) {
    indices_[slot].AppendWords(deltas.data() + slot * delta_words, k);
  }
  if (base + k > reserved_bits_) reserved_bits_ = base + k;
}

bool MupDominanceIndex::Remove(const Pattern& mup) {
  const auto it = member_index_.find(mup);
  if (it == member_index_.end()) return false;
  const std::size_t pos = it->second;
  const std::size_t last = mups_.size() - 1;
  member_index_.erase(it);
  if (pos != last) {
    // Swap-with-last: move the final MUP's bits into the vacated position.
    for (BitVector& index : indices_) index.Set(pos, index.Get(last));
    mups_[pos] = std::move(mups_[last]);
    member_index_[mups_[pos]] = pos;
  }
  mups_.pop_back();
  for (BitVector& index : indices_) index.Resize(last);
  return true;
}

bool MupDominanceIndex::IsDominated(const Pattern& pattern) const {
  if (mups_.empty()) return false;
  // Candidates P' that dominate-or-equal `pattern`: on every cell, P' is
  // either a wildcard, or (if pattern's cell is deterministic) the same
  // value. AND over attributes of (wildcard | value) vectors.
  BitVector acc(mups_.size(), true);
  BitVector scratch;
  for (int i = 0; i < pattern.num_attributes(); ++i) {
    if (pattern.is_deterministic(i)) {
      scratch = wildcard_index(i);
      scratch.OrWith(value_index(i, pattern.cell(i)));
      acc.AndWith(scratch);
    } else {
      acc.AndWith(wildcard_index(i));
    }
    if (acc.None()) return false;
  }
  // Any surviving candidate either strictly dominates `pattern` or equals it.
  // The discovered set is an antichain, so equality can contribute at most
  // one bit; discount it explicitly.
  const std::size_t hits = acc.Count();
  if (hits == 0) return false;
  if (hits > 1) return true;
  return !member_index_.contains(pattern);
}

bool MupDominanceIndex::DominatesSome(const Pattern& pattern) const {
  if (mups_.empty()) return false;
  // Candidates P' dominated-or-equal: every deterministic cell of `pattern`
  // must be fixed to the same value in P'. AND over deterministic cells.
  BitVector acc(mups_.size(), true);
  for (int i = 0; i < pattern.num_attributes(); ++i) {
    if (!pattern.is_deterministic(i)) continue;
    acc.AndWith(value_index(i, pattern.cell(i)));
    if (acc.None()) return false;
  }
  const std::size_t hits = acc.Count();
  if (hits == 0) return false;
  if (hits > 1) return true;
  return !member_index_.contains(pattern);
}

}  // namespace coverage

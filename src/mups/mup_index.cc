#include "mups/mup_index.h"

#include <cassert>

namespace coverage {

MupDominanceIndex::MupDominanceIndex(const Schema& schema) : schema_(schema) {
  const int d = schema.num_attributes();
  offsets_.resize(static_cast<std::size_t>(d));
  int total = 0;
  for (int i = 0; i < d; ++i) {
    offsets_[static_cast<std::size_t>(i)] = total;
    total += 1 + schema.cardinality(i);  // wildcard slot + one per value
  }
  indices_.assign(static_cast<std::size_t>(total), BitVector());
}

void MupDominanceIndex::Add(const Pattern& mup) {
  assert(mup.num_attributes() == schema_.num_attributes());
  assert(!member_set_.contains(mup));
  const std::size_t bit = mups_.size();
  mups_.push_back(mup);
  member_set_.insert(mup);
  for (BitVector& index : indices_) index.PushBack(false);
  for (int i = 0; i < schema_.num_attributes(); ++i) {
    if (mup.is_deterministic(i)) {
      mutable_value_index(i, mup.cell(i)).Set(bit, true);
    } else {
      mutable_wildcard_index(i).Set(bit, true);
    }
  }
}

bool MupDominanceIndex::IsDominated(const Pattern& pattern) const {
  if (mups_.empty()) return false;
  // Candidates P' that dominate-or-equal `pattern`: on every cell, P' is
  // either a wildcard, or (if pattern's cell is deterministic) the same
  // value. AND over attributes of (wildcard | value) vectors.
  BitVector acc(mups_.size(), true);
  BitVector scratch;
  for (int i = 0; i < pattern.num_attributes(); ++i) {
    if (pattern.is_deterministic(i)) {
      scratch = wildcard_index(i);
      scratch.OrWith(value_index(i, pattern.cell(i)));
      acc.AndWith(scratch);
    } else {
      acc.AndWith(wildcard_index(i));
    }
    if (acc.None()) return false;
  }
  // Any surviving candidate either strictly dominates `pattern` or equals it.
  // The discovered set is an antichain, so equality can contribute at most
  // one bit; discount it explicitly.
  const std::size_t hits = acc.Count();
  if (hits == 0) return false;
  if (hits > 1) return true;
  return !member_set_.contains(pattern);
}

bool MupDominanceIndex::DominatesSome(const Pattern& pattern) const {
  if (mups_.empty()) return false;
  // Candidates P' dominated-or-equal: every deterministic cell of `pattern`
  // must be fixed to the same value in P'. AND over deterministic cells.
  BitVector acc(mups_.size(), true);
  for (int i = 0; i < pattern.num_attributes(); ++i) {
    if (!pattern.is_deterministic(i)) continue;
    acc.AndWith(value_index(i, pattern.cell(i)));
    if (acc.None()) return false;
  }
  const std::size_t hits = acc.Count();
  if (hits == 0) return false;
  if (hits > 1) return true;
  return !member_set_.contains(pattern);
}

}  // namespace coverage

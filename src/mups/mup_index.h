#ifndef COVERAGE_MUPS_MUP_INDEX_H_
#define COVERAGE_MUPS_MUP_INDEX_H_

#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bitvector.h"
#include "dataset/schema.h"
#include "pattern/pattern.h"

namespace coverage {

/// The MUP-dominance index of Appendix B: per attribute, one bit vector per
/// value plus one for "wildcard here", with one bit per discovered MUP.
/// DEEPDIVER consults it on every pop, so both checks are word-wise AND /
/// OR-AND chains over the discovered set.
///
/// Thread-safety: none — wrap in SharedMupDominanceIndex (below) for
/// concurrent use. Complexity: Add/Remove are O(Σ(cᵢ+1)) slot updates;
/// IsDominated / DominatesSome are O(d·⌈m/64⌉) word operations over m
/// registered MUPs, with a zero-accumulator early exit.
///
/// Both query directions double as *coverage* oracles relative to a set of
/// verified MUPs, which is what the streaming engine's retraction walk
/// exploits: a pattern strictly dominated by a MUP is more specific than an
/// uncovered pattern, hence itself uncovered; a pattern strictly dominating
/// a MUP generalises one of that MUP's (covered, by maximality) parents,
/// hence is covered.
class MupDominanceIndex {
 public:
  explicit MupDominanceIndex(const Schema& schema);

  /// Registers a newly discovered MUP. Per-slot bit vectors grow in 64-bit
  /// word blocks (with a geometric reservation schedule shared across all
  /// slots), so a long discovery run never rewrites existing words.
  void Add(const Pattern& mup);

  /// Registers `mups` in one shot: every slot vector is extended by
  /// |mups| bits with a single BitVector::AppendWords call, so the per-Add
  /// slot sweep is paid once per batch instead of once per MUP. Used by the
  /// incremental engine, which re-seeds the index from a surviving MUP set
  /// on every epoch. The batch must be duplicate-free and disjoint from the
  /// already-registered set.
  void AddBatch(std::span<const Pattern> mups);

  /// Unregisters a previously Added MUP: the last registered MUP is swapped
  /// into its bit position and every slot vector shrinks by one bit, so a
  /// removal costs O(Σ(cᵢ+1)) regardless of how many MUPs remain. Returns
  /// false (no-op) if `mup` was never registered. The streaming engine uses
  /// this on retraction epochs, where previously maximal MUPs can lose
  /// maximality and must leave the index before it is used for pruning.
  bool Remove(const Pattern& mup);

  std::size_t size() const { return mups_.size(); }
  const std::vector<Pattern>& mups() const { return mups_; }

  /// Exact membership (the discovered set is an antichain, so membership is
  /// not implied by either dominance direction).
  bool Contains(const Pattern& pattern) const {
    return member_index_.contains(pattern);
  }

  /// True iff some discovered MUP strictly dominates `pattern` (Definition 9:
  /// "pattern is dominated by M"). Such a node cannot be a MUP and its whole
  /// subtree is uncovered.
  bool IsDominated(const Pattern& pattern) const;

  /// True iff `pattern` strictly dominates some discovered MUP. Such a node
  /// is a strict ancestor of a MUP and is therefore covered (monotonicity),
  /// so its coverage query can be skipped.
  bool DominatesSome(const Pattern& pattern) const;

 private:
  const BitVector& value_index(int attr, Value v) const {
    return indices_[static_cast<std::size_t>(offsets_[
        static_cast<std::size_t>(attr)]) + 1 + static_cast<std::size_t>(v)];
  }
  const BitVector& wildcard_index(int attr) const {
    return indices_[static_cast<std::size_t>(
        offsets_[static_cast<std::size_t>(attr)])];
  }
  BitVector& mutable_value_index(int attr, Value v) {
    return indices_[static_cast<std::size_t>(offsets_[
        static_cast<std::size_t>(attr)]) + 1 + static_cast<std::size_t>(v)];
  }
  BitVector& mutable_wildcard_index(int attr) {
    return indices_[static_cast<std::size_t>(
        offsets_[static_cast<std::size_t>(attr)])];
  }

  const Schema& schema_;
  std::vector<int> offsets_;  // attr -> slot of its wildcard vector
  /// Layout per attribute: [wildcard vector, value 0, value 1, ...].
  std::vector<BitVector> indices_;
  std::vector<Pattern> mups_;
  /// Pattern -> its bit position in the slot vectors (also the exact-
  /// membership set). Kept positional so Remove can swap-with-last.
  std::unordered_map<Pattern, std::size_t, PatternHash> member_index_;
  std::size_t reserved_bits_ = 0;  // bits all slots have capacity for
};

/// Reader/writer-locked facade over MupDominanceIndex for the parallel
/// DEEPDIVER: dominance probes (the overwhelming majority of accesses) take
/// a shared lock and run concurrently; discovering a MUP takes the exclusive
/// lock for the index update. MupDominanceIndex's query methods keep all
/// per-call state on the stack, so concurrent readers are safe by
/// construction.
class SharedMupDominanceIndex {
 public:
  explicit SharedMupDominanceIndex(const Schema& schema) : index_(schema) {}

  /// Registers `mup` unless an equal pattern is already present (two workers
  /// can climb to the same MUP concurrently). Returns true iff inserted.
  bool AddIfAbsent(const Pattern& mup) {
    std::unique_lock lock(mu_);
    if (index_.Contains(mup)) return false;
    index_.Add(mup);
    return true;
  }

  /// Runs `fn(const MupDominanceIndex&)` under the shared lock and returns
  /// its result; the general form behind the convenience probes below and
  /// the linear-scan ablation mode.
  template <typename Fn>
  auto WithReadLock(Fn&& fn) const {
    std::shared_lock lock(mu_);
    return fn(static_cast<const MupDominanceIndex&>(index_));
  }

  bool Contains(const Pattern& p) const {
    return WithReadLock([&](const MupDominanceIndex& i) {
      return i.Contains(p);
    });
  }
  bool IsDominated(const Pattern& p) const {
    return WithReadLock([&](const MupDominanceIndex& i) {
      return i.IsDominated(p);
    });
  }
  bool DominatesSome(const Pattern& p) const {
    return WithReadLock([&](const MupDominanceIndex& i) {
      return i.DominatesSome(p);
    });
  }

  /// Copy of the discovered set; call after the workers have joined.
  std::vector<Pattern> Snapshot() const {
    std::shared_lock lock(mu_);
    return index_.mups();
  }

 private:
  mutable std::shared_mutex mu_;
  MupDominanceIndex index_;
};

}  // namespace coverage

#endif  // COVERAGE_MUPS_MUP_INDEX_H_

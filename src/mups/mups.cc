#include "mups/mups.h"

#include <algorithm>
#include <string>

#include "common/string_util.h"

namespace coverage {

namespace {

/// Resolves PlannerDecision::num_threads from the caller's cap and the
/// pattern-graph shape, appending the reasoning to the rationale. Serial
/// callers (cap <= 1) leave the decision and the rationale untouched, so
/// the planner's output is byte-identical to the single-threaded planner
/// for every existing caller.
void PlanWorkers(const Schema& schema, const MupSearchOptions& options,
                 PlannerDecision* decision) {
  if (options.num_threads <= 1) return;
  if (schema.NumPatterns() < kPlannerParallelMinPatternGraph) {
    decision->num_threads = 1;
    decision->rationale += "; serial search (pattern graph under " +
                           std::to_string(kPlannerParallelMinPatternGraph) +
                           " nodes, fan-out overhead would dominate)";
    return;
  }
  // The root's children — one per (attribute, value) — are the widest
  // natural partition of independent work; more workers than that idle.
  std::uint64_t fan_out = 0;
  for (int i = 0; i < schema.num_attributes(); ++i) {
    fan_out += static_cast<std::uint64_t>(schema.cardinality(i));
  }
  decision->num_threads = static_cast<int>(std::min<std::uint64_t>(
      static_cast<std::uint64_t>(options.num_threads),
      std::max<std::uint64_t>(fan_out, 1)));
  decision->rationale += "; " + std::to_string(decision->num_threads) +
                         " workers (root fan-out " + std::to_string(fan_out) +
                         ", graph " + std::to_string(schema.NumPatterns()) +
                         " nodes)";
}

}  // namespace

std::string ToString(MupAlgorithm algorithm) {
  switch (algorithm) {
    case MupAlgorithm::kNaive:
      return "NAIVE";
    case MupAlgorithm::kPatternBreaker:
      return "PATTERN-BREAKER";
    case MupAlgorithm::kPatternCombiner:
      return "PATTERN-COMBINER";
    case MupAlgorithm::kDeepDiver:
      return "DEEPDIVER";
    case MupAlgorithm::kApriori:
      return "APRIORI";
    case MupAlgorithm::kAuto:
      return "AUTO";
  }
  return "UNKNOWN";
}

PlannerDecision PlanMupSearch(const AggregatedData& data,
                              const MupSearchOptions& options) {
  const Schema& schema = data.schema();
  PlannerDecision decision;
  decision.max_level = options.max_level;

  // §V-C3 / Fig. 16: a wide schema's pattern graph cannot be explored
  // exhaustively; cap the search at the general levels where the dangerous
  // gaps live. Only applies when the caller did not set a cap themselves.
  if (options.max_level < 0 &&
      schema.NumPatterns() > kPlannerPatternGraphBudget) {
    decision.algorithm = MupAlgorithm::kDeepDiver;
    decision.max_level = kPlannerWideMaxLevel;
    decision.rationale =
        "pattern graph has " + std::to_string(schema.NumPatterns()) +
        " nodes (> " + std::to_string(kPlannerPatternGraphBudget) +
        "): level-limited DEEPDIVER at level <= " +
        std::to_string(kPlannerWideMaxLevel) + " (§V-C3, Fig. 16)";
    PlanWorkers(schema, options, &decision);
    return decision;
  }

  // Fig. 15's cost drivers: PATTERN-BREAKER pays one coverage query per
  // covered node above the MUP frontier, DEEPDIVER one dive per MUP. Sparse
  // data (few live combinations relative to Pi c_i) leaves the frontier near
  // the top of the graph, where the BFS terminates after a few cheap levels;
  // dense data pushes the MUPs deep, where the targeted dives win.
  const std::size_t live =
      data.num_combinations() - data.num_tombstones();
  const double density =
      static_cast<double>(live) /
      static_cast<double>(std::max<std::uint64_t>(
          schema.NumValueCombinations(), 1));
  if (density <= kPlannerSparseDensity) {
    decision.algorithm = MupAlgorithm::kPatternBreaker;
    decision.rationale =
        std::to_string(live) + " live combinations cover " +
        FormatDouble(density * 100.0, 2) + "% of the value space (<= " +
        FormatDouble(kPlannerSparseDensity * 100.0, 2) +
        "%): shallow MUP frontier, top-down PATTERN-BREAKER (§V, Fig. 15)";
  } else {
    decision.algorithm = MupAlgorithm::kDeepDiver;
    decision.rationale =
        std::to_string(live) + " live combinations cover " +
        FormatDouble(density * 100.0, 2) + "% of the value space (> " +
        FormatDouble(kPlannerSparseDensity * 100.0, 2) +
        "%): deep MUPs, dominance-pruned DEEPDIVER dives (§V, Fig. 15)";
  }
  PlanWorkers(schema, options, &decision);
  return decision;
}

StatusOr<std::vector<Pattern>> FindMups(MupAlgorithm algorithm,
                                        const BitmapCoverage& oracle,
                                        const MupSearchOptions& options,
                                        MupSearchStats* stats) {
  switch (algorithm) {
    case MupAlgorithm::kNaive:
      return FindMupsNaive(oracle, oracle.data().schema(), options, stats);
    case MupAlgorithm::kPatternBreaker:
      return FindMupsPatternBreaker(oracle, options, stats);
    case MupAlgorithm::kPatternCombiner:
      return FindMupsPatternCombiner(oracle, options, stats);
    case MupAlgorithm::kDeepDiver:
      return FindMupsDeepDiver(oracle, options, stats);
    case MupAlgorithm::kApriori:
      return FindMupsApriori(oracle, options, stats);
    case MupAlgorithm::kAuto: {
      const PlannerDecision decision = PlanMupSearch(oracle.data(), options);
      MupSearchOptions resolved = options;
      resolved.max_level = decision.max_level;
      resolved.num_threads = decision.num_threads;
      return FindMups(decision.algorithm, oracle, resolved, stats);
    }
  }
  return Status::InvalidArgument("unknown MUP algorithm");
}

StatusOr<PackedMupSet> FindMupsPacked(MupAlgorithm algorithm,
                                      const BitmapCoverage& oracle,
                                      const MupSearchOptions& options,
                                      MupSearchStats* stats) {
  auto codec = PatternCodec::Build(oracle.data().schema());
  COVERAGE_RETURN_IF_ERROR(codec.status());
  PackedMupSet result;
  result.codec = std::move(*codec);
  switch (algorithm) {
    case MupAlgorithm::kNaive: {
      // NAIVE has no packed core; compute legacy-side and encode.
      auto mups =
          FindMupsNaive(oracle, oracle.data().schema(), options, stats);
      COVERAGE_RETURN_IF_ERROR(mups.status());
      result.mups.reserve(mups->size());
      for (const Pattern& p : *mups) {
        result.mups.push_back(result.codec.Encode(p));
      }
      return result;
    }
    case MupAlgorithm::kPatternBreaker:
      result.mups = FindMupsPatternBreakerPacked(
          oracle, oracle.data().schema(), result.codec, options, stats);
      return result;
    case MupAlgorithm::kPatternCombiner: {
      auto mups =
          FindMupsPatternCombinerPacked(oracle, result.codec, options, stats);
      COVERAGE_RETURN_IF_ERROR(mups.status());
      result.mups = std::move(*mups);
      return result;
    }
    case MupAlgorithm::kDeepDiver:
      result.mups = FindMupsDeepDiverPacked(oracle, oracle.data().schema(),
                                            result.codec, options, stats);
      return result;
    case MupAlgorithm::kApriori: {
      auto mups = FindMupsAprioriPacked(oracle, result.codec, options, stats);
      COVERAGE_RETURN_IF_ERROR(mups.status());
      result.mups = std::move(*mups);
      return result;
    }
    case MupAlgorithm::kAuto: {
      const PlannerDecision decision = PlanMupSearch(oracle.data(), options);
      MupSearchOptions resolved = options;
      resolved.max_level = decision.max_level;
      resolved.num_threads = decision.num_threads;
      return FindMupsPacked(decision.algorithm, oracle, resolved, stats);
    }
  }
  return Status::InvalidArgument("unknown MUP algorithm");
}

Status ValidateMupSet(const std::vector<Pattern>& mups,
                      const CoverageOracle& oracle, std::uint64_t tau) {
  QueryContext ctx;
  for (const Pattern& p : mups) {
    if (oracle.Coverage(p, ctx) >= tau) {
      return Status::Internal("pattern " + p.ToString() +
                              " is covered, not a MUP");
    }
    for (const Pattern& parent : p.Parents()) {
      if (oracle.Coverage(parent, ctx) < tau) {
        return Status::Internal("MUP " + p.ToString() +
                                " has uncovered parent " + parent.ToString());
      }
    }
  }
  for (std::size_t i = 0; i < mups.size(); ++i) {
    for (std::size_t j = 0; j < mups.size(); ++j) {
      if (i != j && mups[i].Dominates(mups[j])) {
        return Status::Internal("MUP " + mups[i].ToString() + " dominates " +
                                mups[j].ToString());
      }
    }
  }
  return Status::OK();
}

std::vector<std::size_t> MupLevelHistogram(const std::vector<Pattern>& mups,
                                           int num_attributes) {
  std::vector<std::size_t> histogram(
      static_cast<std::size_t>(num_attributes) + 1, 0);
  for (const Pattern& p : mups) {
    ++histogram[static_cast<std::size_t>(p.level())];
  }
  return histogram;
}

int MaximumCoveredLevel(const std::vector<Pattern>& mups, int num_attributes) {
  int min_mup_level = num_attributes + 1;
  for (const Pattern& p : mups) {
    min_mup_level = std::min(min_mup_level, p.level());
  }
  return min_mup_level - 1;
}

}  // namespace coverage

#include "mups/mups.h"

#include <algorithm>

namespace coverage {

std::string ToString(MupAlgorithm algorithm) {
  switch (algorithm) {
    case MupAlgorithm::kNaive:
      return "NAIVE";
    case MupAlgorithm::kPatternBreaker:
      return "PATTERN-BREAKER";
    case MupAlgorithm::kPatternCombiner:
      return "PATTERN-COMBINER";
    case MupAlgorithm::kDeepDiver:
      return "DEEPDIVER";
    case MupAlgorithm::kApriori:
      return "APRIORI";
  }
  return "UNKNOWN";
}

StatusOr<std::vector<Pattern>> FindMups(MupAlgorithm algorithm,
                                        const BitmapCoverage& oracle,
                                        const MupSearchOptions& options,
                                        MupSearchStats* stats) {
  switch (algorithm) {
    case MupAlgorithm::kNaive:
      return FindMupsNaive(oracle, oracle.data().schema(), options, stats);
    case MupAlgorithm::kPatternBreaker:
      return FindMupsPatternBreaker(oracle, options, stats);
    case MupAlgorithm::kPatternCombiner:
      return FindMupsPatternCombiner(oracle, options, stats);
    case MupAlgorithm::kDeepDiver:
      return FindMupsDeepDiver(oracle, options, stats);
    case MupAlgorithm::kApriori:
      return FindMupsApriori(oracle, options, stats);
  }
  return Status::InvalidArgument("unknown MUP algorithm");
}

Status ValidateMupSet(const std::vector<Pattern>& mups,
                      const CoverageOracle& oracle, std::uint64_t tau) {
  for (const Pattern& p : mups) {
    if (oracle.Coverage(p) >= tau) {
      return Status::Internal("pattern " + p.ToString() +
                              " is covered, not a MUP");
    }
    for (const Pattern& parent : p.Parents()) {
      if (oracle.Coverage(parent) < tau) {
        return Status::Internal("MUP " + p.ToString() +
                                " has uncovered parent " + parent.ToString());
      }
    }
  }
  for (std::size_t i = 0; i < mups.size(); ++i) {
    for (std::size_t j = 0; j < mups.size(); ++j) {
      if (i != j && mups[i].Dominates(mups[j])) {
        return Status::Internal("MUP " + mups[i].ToString() + " dominates " +
                                mups[j].ToString());
      }
    }
  }
  return Status::OK();
}

std::vector<std::size_t> MupLevelHistogram(const std::vector<Pattern>& mups,
                                           int num_attributes) {
  std::vector<std::size_t> histogram(
      static_cast<std::size_t>(num_attributes) + 1, 0);
  for (const Pattern& p : mups) {
    ++histogram[static_cast<std::size_t>(p.level())];
  }
  return histogram;
}

int MaximumCoveredLevel(const std::vector<Pattern>& mups, int num_attributes) {
  int min_mup_level = num_attributes + 1;
  for (const Pattern& p : mups) {
    min_mup_level = std::min(min_mup_level, p.level());
  }
  return min_mup_level - 1;
}

}  // namespace coverage

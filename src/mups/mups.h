#ifndef COVERAGE_MUPS_MUPS_H_
#define COVERAGE_MUPS_MUPS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "coverage/bitmap_coverage.h"
#include "coverage/coverage_oracle.h"
#include "dataset/schema.h"
#include "obs/trace.h"
#include "pattern/packed_pattern.h"
#include "pattern/pattern.h"

namespace coverage {

/// Options shared by all MUP-identification algorithms (Problem 1).
struct MupSearchOptions {
  /// Coverage threshold τ (Definition 3). Patterns with cov < tau are
  /// uncovered.
  std::uint64_t tau = 1;

  /// When >= 0, restrict discovery to MUPs of level <= max_level (the
  /// level-limited exploration of §V-C3 / Fig. 16 that scales the search to
  /// tens of attributes). -1 means unlimited.
  int max_level = -1;

  /// Worker count for PATTERN-BREAKER, DEEPDIVER, and PATTERN-COMBINER.
  /// 1 (the default) runs the serial algorithms; N > 1 evaluates
  /// PATTERN-BREAKER's BFS frontiers and DEEPDIVER's dives on a pool of N
  /// workers sharing one oracle (each worker queries through its own
  /// QueryContext), and shards PATTERN-COMBINER's level-d pass over the
  /// combination space. The returned MUP set is identical to the serial one
  /// for any N. Other algorithms ignore this.
  int num_threads = 1;

  /// Upper bound on guarded exponential enumerations (naive pattern-graph
  /// walk, PATTERN-COMBINER's level-d pass, APRIORI candidate sets). The
  /// affected algorithms return ResourceExhausted instead of blowing up.
  std::uint64_t enumeration_limit = std::uint64_t{1} << 26;

  /// How DEEPDIVER checks candidates against the discovered MUPs. The
  /// Appendix-B bit-vector index is the paper's design; the linear scan and
  /// the no-pruning mode exist for the ablation study (all three produce
  /// identical output).
  enum class DominanceMode { kBitmapIndex, kLinearScan, kNoPruning };
  DominanceMode dominance_mode = DominanceMode::kBitmapIndex;

  /// Optional request trace. When set, PATTERN-BREAKER records one
  /// `search_level_<k>` stage per BFS level (the per-level breakdown that
  /// shows where a deep search spends its time). The trace is not
  /// synchronised — it must belong to the calling thread. Other algorithms
  /// ignore it.
  obs::Trace* trace = nullptr;

  /// When true (the default) the searches run on the PackedPattern
  /// representation — fixed-width keys, O(words) hash/equality/dominance,
  /// arena-allocated BFS frontiers — whenever the schema fits a PatternCodec
  /// (PackedPattern::kMaxWords * 64 bits). Schemas too wide to pack fall
  /// back to the legacy vector<int> implementations automatically. Setting
  /// this to false forces the legacy path; the differential suite uses the
  /// switch to prove the two representations bit-identical, and it doubles
  /// as an escape hatch. Output and per-algorithm query counts are identical
  /// either way.
  bool use_packed_representation = true;
};

/// Instrumentation filled in by each search; the paper's efficiency argument
/// is about how few nodes are visited / coverage queries are issued.
struct MupSearchStats {
  std::uint64_t coverage_queries = 0;  ///< cov() oracle calls
  std::uint64_t nodes_generated = 0;   ///< candidate patterns materialised
  std::uint64_t nodes_pruned = 0;      ///< candidates discarded by dominance
  double seconds = 0.0;                ///< wall-clock time
  std::size_t num_mups = 0;            ///< output size

  void Reset() { *this = MupSearchStats{}; }
};

/// The algorithms of §III (plus the §V-C APRIORI adaptation).
enum class MupAlgorithm {
  kNaive,
  kPatternBreaker,
  kPatternCombiner,
  kDeepDiver,
  kApriori,
  /// Let PlanMupSearch choose: the §V "which algorithm when" guidance as an
  /// executable cost model over schema width, cardinalities, and the
  /// aggregated-combination count. FindMups resolves kAuto before
  /// dispatching; the other FindMups* entry points never see it.
  kAuto,
};

/// Display name, e.g. "PATTERN-BREAKER".
std::string ToString(MupAlgorithm algorithm);

// ---------------------------------------------------------------------------
// The kAuto planner (§V). Thresholds are exposed so the decision table is
// testable against exactly the numbers the planner applies.

/// A pattern graph with more than this many nodes (Π (c_i + 1)) is "wide":
/// exhaustive exploration is off the table and the planner falls back to the
/// level-limited search of §V-C3 / Fig. 16. Raised from 2^24 to 2^26 with
/// the PackedPattern refactor: per-node cost (hash, equality, parent checks,
/// allocation) dropped by the packed-key + arena work, so the exhaustive
/// algorithms stay affordable on a 4x larger graph.
inline constexpr std::uint64_t kPlannerPatternGraphBudget = std::uint64_t{1}
                                                            << 26;

/// The level cap the planner imposes on wide schemas: the dangerous coverage
/// gaps are the *general* ones (combinations of up to three attributes —
/// the Fig. 16 framing), and level-limited DEEPDIVER finds exactly those.
inline constexpr int kPlannerWideMaxLevel = 3;

/// Density = live distinct combinations / Π c_i. At or below this the data
/// covers so little of the combination space that the MUP frontier sits near
/// the top of the graph, where top-down PATTERN-BREAKER terminates after a
/// few cheap BFS levels (Fig. 15's cost driver: BREAKER pays for every
/// *covered* node above the frontier, DEEPDIVER for every dive to a deep
/// MUP).
inline constexpr double kPlannerSparseDensity = 1.0 / 16.0;

/// Below this many pattern-graph nodes a parallel search is not worth its
/// pool startup + work-queue synchronisation: every algorithm's per-node
/// cost is a handful of bitmap intersections, so a graph this small is over
/// before the workers warm up. The planner answers num_threads = 1 here
/// regardless of the caller's cap.
inline constexpr std::uint64_t kPlannerParallelMinPatternGraph =
    std::uint64_t{1} << 12;

/// What the planner decided and why. `algorithm` is always concrete (never
/// kAuto); `max_level` is the effective cap the search should run with (the
/// caller's own cap when one was set, kPlannerWideMaxLevel when the wide-
/// schema fallback clamped an unlimited search, -1 otherwise).
struct PlannerDecision {
  MupAlgorithm algorithm = MupAlgorithm::kDeepDiver;
  int max_level = -1;
  /// Worker count the search should run with. Never exceeds the caller's
  /// MupSearchOptions::num_threads (that is the cap, not a demand); 1 when
  /// the cap is 1 or the pattern graph is too small to amortise fan-out
  /// (kPlannerParallelMinPatternGraph), otherwise the cap clamped to the
  /// root's fan-out (sum of cardinalities — the widest natural partition
  /// of independent top-level work). The MUP set is identical for any
  /// value (see MupSearchOptions::num_threads).
  int num_threads = 1;
  /// One human-readable sentence citing the §V evidence for the choice;
  /// surfaced through AuditResult for observability.
  std::string rationale;
};

/// Resolves kAuto: inspects the schema (width, cardinalities, pattern-graph
/// size) and the aggregated relation (live combination count) and picks
/// PATTERN-BREAKER or DEEPDIVER, falling back to level-limited DEEPDIVER for
/// wide schemas (§V-C3). Deterministic in its inputs.
PlannerDecision PlanMupSearch(const AggregatedData& data,
                              const MupSearchOptions& options);

/// §III-A: enumerate the whole pattern graph, compute every coverage, and
/// filter non-maximal uncovered patterns pairwise. Exponential; guarded by
/// `options.enumeration_limit`.
StatusOr<std::vector<Pattern>> FindMupsNaive(const CoverageOracle& oracle,
                                             const Schema& schema,
                                             const MupSearchOptions& options,
                                             MupSearchStats* stats = nullptr);

/// §III-C, Algorithm 1: top-down BFS with Rule-1 candidate generation.
///
/// Implementation note: we keep the *covered* candidates of the previous
/// level in Qp (rather than all candidates). With Qp as the literal previous
/// queue, a candidate whose every parent was generated-but-skipped passes the
/// parent check and can be emitted even though it is dominated (e.g.
/// D = {1101, 1110}, τ = 1 wrongly emits 1100 next to the real MUP XX00).
/// Tracking covered candidates restores the intended invariant: a node's
/// coverage is computed only if all its parents are verified covered.
std::vector<Pattern> FindMupsPatternBreaker(const CoverageOracle& oracle,
                                            const Schema& schema,
                                            const MupSearchOptions& options,
                                            MupSearchStats* stats = nullptr);

inline std::vector<Pattern> FindMupsPatternBreaker(
    const BitmapCoverage& oracle, const MupSearchOptions& options,
    MupSearchStats* stats = nullptr) {
  return FindMupsPatternBreaker(oracle, oracle.data().schema(), options,
                                stats);
}

/// §III-D, Algorithm 2: bottom-up combination with Rule-2 candidate
/// generation; coverage of a parent is the sum over a partition family of
/// children, so the dataset is only consulted for the level-d pass. That pass
/// enumerates all Π c_i full combinations and is guarded by
/// `options.enumeration_limit`; with `options.num_threads > 1` it is sharded
/// over the shared ThreadPool (bit-identical output for any worker count).
StatusOr<std::vector<Pattern>> FindMupsPatternCombiner(
    const BitmapCoverage& oracle, const MupSearchOptions& options,
    MupSearchStats* stats = nullptr);

/// §III-E, Algorithm 3: DFS dive to an uncovered node, climb to a MUP, prune
/// everything dominating or dominated by discovered MUPs (via the Appendix-B
/// inverted indices; see MupSearchOptions::dominance_mode for the ablation
/// alternatives).
std::vector<Pattern> FindMupsDeepDiver(const CoverageOracle& oracle,
                                       const Schema& schema,
                                       const MupSearchOptions& options,
                                       MupSearchStats* stats = nullptr);

inline std::vector<Pattern> FindMupsDeepDiver(const BitmapCoverage& oracle,
                                              const MupSearchOptions& options,
                                              MupSearchStats* stats = nullptr) {
  return FindMupsDeepDiver(oracle, oracle.data().schema(), options, stats);
}

/// §V-C: the apriori adaptation — frequent item-set mining over
/// (attribute, value) items; MUPs are the valid members of the negative
/// border. Kept as the baseline the paper compares against.
StatusOr<std::vector<Pattern>> FindMupsApriori(const BitmapCoverage& oracle,
                                               const MupSearchOptions& options,
                                               MupSearchStats* stats = nullptr);

/// Dispatch on `algorithm`; results are sorted lexicographically so that all
/// algorithms produce identical output for identical inputs.
StatusOr<std::vector<Pattern>> FindMups(MupAlgorithm algorithm,
                                        const BitmapCoverage& oracle,
                                        const MupSearchOptions& options,
                                        MupSearchStats* stats = nullptr);

// ---------------------------------------------------------------------------
// Packed-representation entry points. The FindMups* functions above already
// run on PackedPattern internally (and decode at the boundary); these let
// callers that can consume packed results — the service/wire layer, the
// benchmarks, the differential suite — skip the decode entirely.

/// A MUP set in packed form plus the codec that gives the keys meaning.
/// `mups` is sorted in the same lexicographic cell order FindMups reports.
struct PackedMupSet {
  PatternCodec codec;
  std::vector<PackedPattern> mups;

  std::vector<Pattern> Materialize() const {
    std::vector<Pattern> out;
    out.reserve(mups.size());
    for (const PackedPattern& p : mups) out.push_back(codec.Decode(p));
    return out;
  }
};

/// Packed cores of the individual algorithms. `codec` must have been built
/// from the oracle's schema. Results are sorted (same order as the public
/// entry points); stats are filled identically.
std::vector<PackedPattern> FindMupsPatternBreakerPacked(
    const CoverageOracle& oracle, const Schema& schema,
    const PatternCodec& codec, const MupSearchOptions& options,
    MupSearchStats* stats = nullptr);

std::vector<PackedPattern> FindMupsDeepDiverPacked(
    const CoverageOracle& oracle, const Schema& schema,
    const PatternCodec& codec, const MupSearchOptions& options,
    MupSearchStats* stats = nullptr);

StatusOr<std::vector<PackedPattern>> FindMupsPatternCombinerPacked(
    const BitmapCoverage& oracle, const PatternCodec& codec,
    const MupSearchOptions& options, MupSearchStats* stats = nullptr);

StatusOr<std::vector<PackedPattern>> FindMupsAprioriPacked(
    const BitmapCoverage& oracle, const PatternCodec& codec,
    const MupSearchOptions& options, MupSearchStats* stats = nullptr);

/// Dispatch on `algorithm` returning packed results (NAIVE, which has no
/// packed core, is computed legacy-side and encoded). Fails with
/// kResourceExhausted if the schema does not fit a PatternCodec — callers
/// fall back to FindMups, which handles wide schemas via the legacy path.
StatusOr<PackedMupSet> FindMupsPacked(MupAlgorithm algorithm,
                                      const BitmapCoverage& oracle,
                                      const MupSearchOptions& options,
                                      MupSearchStats* stats = nullptr);

/// Checks the MUP invariants directly against an oracle: every pattern is
/// uncovered, every parent of every pattern is covered, and no pattern
/// dominates another. Used by tests and exposed for users who want to audit
/// third-party MUP lists.
Status ValidateMupSet(const std::vector<Pattern>& mups,
                      const CoverageOracle& oracle, std::uint64_t tau);

/// Histogram of MUP levels, indices 0..d (Fig. 6).
std::vector<std::size_t> MupLevelHistogram(const std::vector<Pattern>& mups,
                                           int num_attributes);

/// Maximum covered level λ of Definition 6: the largest λ such that every
/// MUP has level > λ. (d if there are no MUPs at all.)
int MaximumCoveredLevel(const std::vector<Pattern>& mups, int num_attributes);

}  // namespace coverage

#endif  // COVERAGE_MUPS_MUPS_H_

#include <algorithm>

#include "common/stopwatch.h"
#include "mups/mups.h"
#include "pattern/pattern_graph.h"

namespace coverage {

StatusOr<std::vector<Pattern>> FindMupsNaive(const CoverageOracle& oracle,
                                             const Schema& schema,
                                             const MupSearchOptions& options,
                                             MupSearchStats* stats) {
  Stopwatch timer;
  QueryContext ctx;

  PatternGraph graph(schema);
  auto all = graph.EnumerateAll(options.enumeration_limit);
  if (!all.ok()) return all.status();

  // One coverage computation per pattern in the graph (§III-A).
  std::vector<Pattern> uncovered;
  for (const Pattern& p : *all) {
    if (options.max_level >= 0 && p.level() > options.max_level) continue;
    if (oracle.Coverage(p, ctx) < options.tau) uncovered.push_back(p);
  }

  // O(u^2) pairwise maximality filter.
  std::vector<Pattern> mups;
  for (std::size_t i = 0; i < uncovered.size(); ++i) {
    bool maximal = true;
    for (std::size_t j = 0; j < uncovered.size(); ++j) {
      if (i != j && uncovered[j].Dominates(uncovered[i])) {
        maximal = false;
        break;
      }
    }
    if (maximal) mups.push_back(uncovered[i]);
  }
  std::sort(mups.begin(), mups.end());

  if (stats != nullptr) {
    stats->coverage_queries = ctx.num_queries();
    stats->nodes_generated = all->size();
    stats->seconds = timer.ElapsedSeconds();
    stats->num_mups = mups.size();
  }
  return mups;
}

}  // namespace coverage

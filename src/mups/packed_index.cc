#include "mups/packed_index.h"

#include <algorithm>
#include <cassert>

namespace coverage {

PackedMupIndex::PackedMupIndex(const Schema& schema, const PatternCodec& codec)
    : codec_(&codec) {
  const int d = schema.num_attributes();
  assert(codec.num_attributes() == d);
  offsets_.resize(static_cast<std::size_t>(d));
  int total = 0;
  for (int i = 0; i < d; ++i) {
    offsets_[static_cast<std::size_t>(i)] = total;
    total += 1 + schema.cardinality(i);  // wildcard slot + one per value
  }
  indices_.assign(static_cast<std::size_t>(total), BitVector());
}

void PackedMupIndex::Add(const PackedPattern& mup) {
  assert(!member_index_.contains(mup));
  const std::size_t bit = mups_.size();
  if (bit >= reserved_bits_) {
    reserved_bits_ =
        std::max<std::size_t>(2 * reserved_bits_, 16 * BitVector::kBitsPerWord);
    for (BitVector& index : indices_) index.Reserve(reserved_bits_);
  }
  mups_.push_back(mup);
  member_index_.emplace(mup, bit);
  for (BitVector& index : indices_) index.PushBack(false);
  const int d = static_cast<int>(offsets_.size());
  for (int i = 0; i < d; ++i) {
    indices_[slot_of(mup, i)].Set(bit, true);
  }
}

void PackedMupIndex::AddBatch(std::span<const PackedPattern> mups) {
  if (mups.empty()) return;
  const std::size_t base = mups_.size();
  const std::size_t k = mups.size();
  const int d = static_cast<int>(offsets_.size());
  const std::size_t delta_words =
      (k + BitVector::kBitsPerWord - 1) / BitVector::kBitsPerWord;
  std::vector<BitVector::Word> deltas(indices_.size() * delta_words, 0);
  mups_.reserve(base + k);
  for (std::size_t j = 0; j < k; ++j) {
    const PackedPattern& mup = mups[j];
    assert(!member_index_.contains(mup));
    mups_.push_back(mup);
    member_index_.emplace(mup, base + j);
    for (int i = 0; i < d; ++i) {
      deltas[slot_of(mup, i) * delta_words + j / BitVector::kBitsPerWord] |=
          BitVector::Word{1} << (j % BitVector::kBitsPerWord);
    }
  }
  for (std::size_t slot = 0; slot < indices_.size(); ++slot) {
    indices_[slot].AppendWords(deltas.data() + slot * delta_words, k);
  }
  if (base + k > reserved_bits_) reserved_bits_ = base + k;
}

bool PackedMupIndex::Remove(const PackedPattern& mup) {
  const auto it = member_index_.find(mup);
  if (it == member_index_.end()) return false;
  const std::size_t pos = it->second;
  const std::size_t last = mups_.size() - 1;
  member_index_.erase(it);
  if (pos != last) {
    for (BitVector& index : indices_) index.Set(pos, index.Get(last));
    mups_[pos] = mups_[last];
    member_index_[mups_[pos]] = pos;
  }
  mups_.pop_back();
  for (BitVector& index : indices_) index.Resize(last);
  return true;
}

bool PackedMupIndex::IsDominated(const PackedPattern& pattern) const {
  if (mups_.empty()) return false;
  // AND over attributes of (wildcard | value) candidate vectors — identical
  // to MupDominanceIndex::IsDominated, cells read through the codec.
  BitVector acc(mups_.size(), true);
  BitVector scratch;
  const int d = static_cast<int>(offsets_.size());
  for (int i = 0; i < d; ++i) {
    const Value v = codec_->cell(pattern, i);
    if (v != kWildcard) {
      scratch = wildcard_index(i);
      scratch.OrWith(value_index(i, v));
      acc.AndWith(scratch);
    } else {
      acc.AndWith(wildcard_index(i));
    }
    if (acc.None()) return false;
  }
  const std::size_t hits = acc.Count();
  if (hits == 0) return false;
  if (hits > 1) return true;
  return !member_index_.contains(pattern);
}

bool PackedMupIndex::DominatesSome(const PackedPattern& pattern) const {
  if (mups_.empty()) return false;
  BitVector acc(mups_.size(), true);
  const int d = static_cast<int>(offsets_.size());
  for (int i = 0; i < d; ++i) {
    const Value v = codec_->cell(pattern, i);
    if (v == kWildcard) continue;
    acc.AndWith(value_index(i, v));
    if (acc.None()) return false;
  }
  const std::size_t hits = acc.Count();
  if (hits == 0) return false;
  if (hits > 1) return true;
  return !member_index_.contains(pattern);
}

}  // namespace coverage

#ifndef COVERAGE_MUPS_PACKED_INDEX_H_
#define COVERAGE_MUPS_PACKED_INDEX_H_

#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bitvector.h"
#include "dataset/schema.h"
#include "pattern/packed_pattern.h"

namespace coverage {

/// The Appendix-B MUP-dominance index keyed by PackedPattern: identical
/// slot-bitvector design to MupDominanceIndex (one wildcard vector plus one
/// vector per value per attribute, one bit per registered MUP), but every
/// pattern touch goes through the codec's O(1) field accessors and the
/// membership set hashes two to four words instead of d cells. The packed
/// search and engine paths use this; the legacy index stays behind for the
/// vector<int> shadow path.
///
/// Thread-safety: none — wrap in SharedPackedMupIndex for concurrent use.
class PackedMupIndex {
 public:
  /// `codec` must outlive the index.
  PackedMupIndex(const Schema& schema, const PatternCodec& codec);

  void Add(const PackedPattern& mup);

  /// Registers `mups` in one shot; one AppendWords pass per slot. The batch
  /// must be duplicate-free and disjoint from the registered set.
  void AddBatch(std::span<const PackedPattern> mups);

  /// Swap-with-last removal; returns false if `mup` was never registered.
  bool Remove(const PackedPattern& mup);

  std::size_t size() const { return mups_.size(); }
  const std::vector<PackedPattern>& mups() const { return mups_; }
  const PatternCodec& codec() const { return *codec_; }

  bool Contains(const PackedPattern& pattern) const {
    return member_index_.contains(pattern);
  }

  /// True iff some registered MUP strictly dominates `pattern`.
  bool IsDominated(const PackedPattern& pattern) const;

  /// True iff `pattern` strictly dominates some registered MUP.
  bool DominatesSome(const PackedPattern& pattern) const;

 private:
  const BitVector& value_index(int attr, Value v) const {
    return indices_[static_cast<std::size_t>(offsets_[
        static_cast<std::size_t>(attr)]) + 1 + static_cast<std::size_t>(v)];
  }
  const BitVector& wildcard_index(int attr) const {
    return indices_[static_cast<std::size_t>(
        offsets_[static_cast<std::size_t>(attr)])];
  }
  std::size_t slot_of(const PackedPattern& p, int attr) const {
    const Value v = codec_->cell(p, attr);
    return static_cast<std::size_t>(offsets_[static_cast<std::size_t>(attr)] +
                                    (v == kWildcard ? 0 : 1 + v));
  }

  const PatternCodec* codec_;
  std::vector<int> offsets_;  // attr -> slot of its wildcard vector
  std::vector<BitVector> indices_;
  std::vector<PackedPattern> mups_;
  std::unordered_map<PackedPattern, std::size_t, PackedPatternHash>
      member_index_;
  std::size_t reserved_bits_ = 0;
};

/// Reader/writer-locked facade, mirroring SharedMupDominanceIndex.
class SharedPackedMupIndex {
 public:
  SharedPackedMupIndex(const Schema& schema, const PatternCodec& codec)
      : index_(schema, codec) {}

  bool AddIfAbsent(const PackedPattern& mup) {
    std::unique_lock lock(mu_);
    if (index_.Contains(mup)) return false;
    index_.Add(mup);
    return true;
  }

  template <typename Fn>
  auto WithReadLock(Fn&& fn) const {
    std::shared_lock lock(mu_);
    return fn(static_cast<const PackedMupIndex&>(index_));
  }

  bool Contains(const PackedPattern& p) const {
    return WithReadLock(
        [&](const PackedMupIndex& i) { return i.Contains(p); });
  }
  bool IsDominated(const PackedPattern& p) const {
    return WithReadLock(
        [&](const PackedMupIndex& i) { return i.IsDominated(p); });
  }
  bool DominatesSome(const PackedPattern& p) const {
    return WithReadLock(
        [&](const PackedMupIndex& i) { return i.DominatesSome(p); });
  }

  std::vector<PackedPattern> Snapshot() const {
    std::shared_lock lock(mu_);
    return index_.mups();
  }

 private:
  mutable std::shared_mutex mu_;
  PackedMupIndex index_;
};

}  // namespace coverage

#endif  // COVERAGE_MUPS_PACKED_INDEX_H_

#include <algorithm>
#include <unordered_set>

#include "common/stopwatch.h"
#include "mups/mups.h"
#include "pattern/pattern_ops.h"

namespace coverage {

std::vector<Pattern> FindMupsPatternBreaker(const CoverageOracle& oracle,
                                            const Schema& schema,
                                            const MupSearchOptions& options,
                                            MupSearchStats* stats) {
  Stopwatch timer;
  const std::uint64_t queries_before = oracle.num_queries();
  const int d = schema.num_attributes();
  const int max_level = options.max_level < 0 ? d : options.max_level;

  using PatternSet = std::unordered_set<Pattern, PatternHash>;

  std::vector<Pattern> queue = {Pattern::Root(d)};
  std::vector<Pattern> mups;
  PatternSet mup_set;
  // Covered candidates of the previous level (see the header's
  // implementation note: tracking only covered candidates keeps the parent
  // check sound).
  PatternSet prev_covered;
  std::uint64_t nodes_generated = 1;

  for (int level = 0; level <= max_level && !queue.empty(); ++level) {
    std::vector<Pattern> next_queue;
    PatternSet covered_here;
    for (const Pattern& p : queue) {
      // Skip candidates with an unverified or uncovered parent; they cannot
      // be MUPs (either pruned region or dominated by one).
      bool skip = false;
      for (const Pattern& parent : p.Parents()) {
        if (!prev_covered.contains(parent) || mup_set.contains(parent)) {
          skip = true;
          break;
        }
      }
      if (skip) continue;

      if (!oracle.CoverageAtLeast(p, options.tau)) {
        mups.push_back(p);
        mup_set.insert(p);
      } else {
        covered_here.insert(p);
        if (level < max_level) {
          for (Pattern& child : Rule1Children(p, schema)) {
            ++nodes_generated;
            next_queue.push_back(std::move(child));
          }
        }
      }
    }
    prev_covered = std::move(covered_here);
    queue = std::move(next_queue);
  }

  std::sort(mups.begin(), mups.end());
  if (stats != nullptr) {
    stats->coverage_queries = oracle.num_queries() - queries_before;
    stats->nodes_generated = nodes_generated;
    stats->seconds = timer.ElapsedSeconds();
    stats->num_mups = mups.size();
  }
  return mups;
}

}  // namespace coverage

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/arena.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "mups/legacy_mups.h"
#include "mups/mups.h"
#include "pattern/packed_set.h"

namespace coverage {

namespace {

/// Per-frontier-node outcome of the (parallelisable) evaluation step; see
/// legacy_mups.cc for the determinism argument — the packed core is a
/// line-for-line mirror, so the queue-order merge reproduces the legacy
/// output (and query counts) bit for bit.
enum class NodeOutcome : std::uint8_t { kSkipped, kMup, kCovered };

NodeOutcome EvaluateNode(const PackedPattern& p, const PatternCodec& codec,
                         const CoverageOracle& oracle, std::uint64_t tau,
                         const PackedPatternSet& prev_covered,
                         const PackedPatternSet& mup_set, QueryContext& ctx) {
  // Skip candidates with an unverified or uncovered parent; they cannot be
  // MUPs (either pruned region or dominated by one). Parents are visited in
  // ascending attribute order, matching Pattern::Parents().
  const int d = codec.num_attributes();
  for (int i = 0; i < d; ++i) {
    if (!codec.is_deterministic(p, i)) continue;
    const PackedPattern parent = codec.WithCell(p, i, kWildcard);
    if (!prev_covered.Contains(parent) || mup_set.Contains(parent)) {
      return NodeOutcome::kSkipped;
    }
  }
  return oracle.CoverageAtLeast(p, codec, tau, ctx) ? NodeOutcome::kCovered
                                                    : NodeOutcome::kMup;
}

}  // namespace

std::vector<PackedPattern> FindMupsPatternBreakerPacked(
    const CoverageOracle& oracle, const Schema& schema,
    const PatternCodec& codec, const MupSearchOptions& options,
    MupSearchStats* stats) {
  Stopwatch timer;
  const int d = schema.num_attributes();
  const int max_level = options.max_level < 0 ? d : options.max_level;

  const int num_workers = options.num_threads > 1 ? options.num_threads : 1;
  ThreadPool pool(num_workers);
  std::vector<QueryContext> contexts(
      static_cast<std::size_t>(pool.num_workers()));

  // Frontier memory: the queue and covered set of one BFS level live in one
  // arena; each new level builds into the other arena and the exhausted one
  // is bulk-reset. Steady state allocates nothing from the OS beyond the
  // high-water level.
  Arena mup_arena;
  Arena level_arenas[2];
  Arena* cur_arena = &level_arenas[0];
  Arena* next_arena = &level_arenas[1];

  ArenaVector<PackedPattern> queue(cur_arena);
  queue.push_back(codec.Root());
  std::vector<PackedPattern> mups;
  PackedPatternSet mup_set(&mup_arena);
  // Covered candidates of the previous level (see mups.h's implementation
  // note: tracking only covered candidates keeps the parent check sound).
  PackedPatternSet prev_covered(cur_arena);
  std::uint64_t nodes_generated = 1;
  std::vector<NodeOutcome> outcomes;

  for (int level = 0; level <= max_level && !queue.empty(); ++level) {
    obs::ScopedStage level_stage(options.trace,
                                 "search_level_" + std::to_string(level));
    outcomes.assign(queue.size(), NodeOutcome::kSkipped);
    if (num_workers > 1 && queue.size() > 1) {
      pool.ParallelFor(queue.size(), /*chunk=*/16,
                       [&](int worker, std::size_t i) {
                         outcomes[i] = EvaluateNode(
                             queue[i], codec, oracle, options.tau,
                             prev_covered, mup_set,
                             contexts[static_cast<std::size_t>(worker)]);
                       });
    } else {
      for (std::size_t i = 0; i < queue.size(); ++i) {
        outcomes[i] = EvaluateNode(queue[i], codec, oracle, options.tau,
                                   prev_covered, mup_set, contexts[0]);
      }
    }

    // Deterministic merge in queue order: identical to the serial loop.
    next_arena->Reset();
    ArenaVector<PackedPattern> next_queue(next_arena);
    PackedPatternSet covered_here(next_arena);
    for (std::size_t i = 0; i < queue.size(); ++i) {
      const PackedPattern& p = queue[i];
      switch (outcomes[i]) {
        case NodeOutcome::kSkipped:
          break;
        case NodeOutcome::kMup:
          mup_set.Insert(p);
          mups.push_back(p);
          break;
        case NodeOutcome::kCovered:
          if (level < max_level) {
            // Rule-1 children: every attribute right of the right-most
            // deterministic cell is a wildcard; assign each of its values.
            const int start = codec.RightmostDeterministic(p) + 1;
            for (int a = start; a < d; ++a) {
              const Value c = static_cast<Value>(schema.cardinality(a));
              for (Value v = 0; v < c; ++v) {
                ++nodes_generated;
                next_queue.push_back(codec.WithCell(p, a, v));
              }
            }
          }
          covered_here.Insert(p);
          break;
      }
    }
    prev_covered = covered_here;
    queue = next_queue;
    std::swap(cur_arena, next_arena);
  }

  std::sort(mups.begin(), mups.end(), PackedLess{&codec});
  if (stats != nullptr) {
    std::uint64_t queries = 0;
    for (const QueryContext& ctx : contexts) queries += ctx.num_queries();
    stats->coverage_queries = queries;
    stats->nodes_generated = nodes_generated;
    stats->seconds = timer.ElapsedSeconds();
    stats->num_mups = mups.size();
  }
  return mups;
}

std::vector<Pattern> FindMupsPatternBreaker(const CoverageOracle& oracle,
                                            const Schema& schema,
                                            const MupSearchOptions& options,
                                            MupSearchStats* stats) {
  if (options.use_packed_representation) {
    auto codec = PatternCodec::Build(schema);
    if (codec.ok()) {
      const std::vector<PackedPattern> packed =
          FindMupsPatternBreakerPacked(oracle, schema, *codec, options, stats);
      std::vector<Pattern> mups;
      mups.reserve(packed.size());
      for (const PackedPattern& p : packed) mups.push_back(codec->Decode(p));
      return mups;
    }
  }
  return legacy::FindMupsPatternBreaker(oracle, schema, options, stats);
}

}  // namespace coverage

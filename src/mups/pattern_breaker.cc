#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "mups/mups.h"
#include "pattern/pattern_ops.h"

namespace coverage {

namespace {

using PatternSet = std::unordered_set<Pattern, PatternHash>;

/// Per-frontier-node outcome of the (parallelisable) evaluation step. The
/// decision for a node depends only on state frozen at the start of its BFS
/// level — the previous level's covered set and the MUPs discovered on
/// earlier levels — plus the (immutable) oracle, so frontier nodes can be
/// evaluated in any order or concurrently and merged back in queue order to
/// reproduce the serial output bit for bit.
enum class NodeOutcome : std::uint8_t { kSkipped, kMup, kCovered };

NodeOutcome EvaluateNode(const Pattern& p, const CoverageOracle& oracle,
                         std::uint64_t tau, const PatternSet& prev_covered,
                         const PatternSet& mup_set, QueryContext& ctx) {
  // Skip candidates with an unverified or uncovered parent; they cannot
  // be MUPs (either pruned region or dominated by one).
  for (const Pattern& parent : p.Parents()) {
    if (!prev_covered.contains(parent) || mup_set.contains(parent)) {
      return NodeOutcome::kSkipped;
    }
  }
  return oracle.CoverageAtLeast(p, tau, ctx) ? NodeOutcome::kCovered
                                             : NodeOutcome::kMup;
}

}  // namespace

std::vector<Pattern> FindMupsPatternBreaker(const CoverageOracle& oracle,
                                            const Schema& schema,
                                            const MupSearchOptions& options,
                                            MupSearchStats* stats) {
  Stopwatch timer;
  const int d = schema.num_attributes();
  const int max_level = options.max_level < 0 ? d : options.max_level;

  const int num_workers = options.num_threads > 1 ? options.num_threads : 1;
  ThreadPool pool(num_workers);
  std::vector<QueryContext> contexts(
      static_cast<std::size_t>(pool.num_workers()));

  std::vector<Pattern> queue = {Pattern::Root(d)};
  std::vector<Pattern> mups;
  PatternSet mup_set;
  // Covered candidates of the previous level (see the header's
  // implementation note: tracking only covered candidates keeps the parent
  // check sound).
  PatternSet prev_covered;
  std::uint64_t nodes_generated = 1;
  std::vector<NodeOutcome> outcomes;

  for (int level = 0; level <= max_level && !queue.empty(); ++level) {
    // The level loop runs on the calling thread (ParallelFor blocks), so
    // recording into the caller's trace is safe.
    obs::ScopedStage level_stage(options.trace,
                                 "search_level_" + std::to_string(level));
    // Evaluate the frontier: reads only level-start state, so the pool can
    // chew through it in dynamically balanced chunks.
    outcomes.assign(queue.size(), NodeOutcome::kSkipped);
    if (num_workers > 1 && queue.size() > 1) {
      pool.ParallelFor(queue.size(), /*chunk=*/16,
                       [&](int worker, std::size_t i) {
                         outcomes[i] = EvaluateNode(
                             queue[i], oracle, options.tau, prev_covered,
                             mup_set, contexts[static_cast<std::size_t>(
                                 worker)]);
                       });
    } else {
      for (std::size_t i = 0; i < queue.size(); ++i) {
        outcomes[i] = EvaluateNode(queue[i], oracle, options.tau, prev_covered,
                                   mup_set, contexts[0]);
      }
    }

    // Deterministic merge in queue order: identical to the serial loop.
    std::vector<Pattern> next_queue;
    PatternSet covered_here;
    for (std::size_t i = 0; i < queue.size(); ++i) {
      Pattern& p = queue[i];
      switch (outcomes[i]) {
        case NodeOutcome::kSkipped:
          break;
        case NodeOutcome::kMup:
          mup_set.insert(p);
          mups.push_back(std::move(p));
          break;
        case NodeOutcome::kCovered:
          if (level < max_level) {
            for (Pattern& child : Rule1Children(p, schema)) {
              ++nodes_generated;
              next_queue.push_back(std::move(child));
            }
          }
          covered_here.insert(std::move(p));
          break;
      }
    }
    prev_covered = std::move(covered_here);
    queue = std::move(next_queue);
  }

  std::sort(mups.begin(), mups.end());
  if (stats != nullptr) {
    std::uint64_t queries = 0;
    for (const QueryContext& ctx : contexts) queries += ctx.num_queries();
    stats->coverage_queries = queries;
    stats->nodes_generated = nodes_generated;
    stats->seconds = timer.ElapsedSeconds();
    stats->num_mups = mups.size();
  }
  return mups;
}

}  // namespace coverage

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "mups/mups.h"
#include "pattern/pattern_ops.h"

namespace coverage {

StatusOr<std::vector<Pattern>> FindMupsPatternCombiner(
    const BitmapCoverage& oracle, const MupSearchOptions& options,
    MupSearchStats* stats) {
  Stopwatch timer;
  const Schema& schema = oracle.data().schema();
  const AggregatedData& data = oracle.data();
  const int d = schema.num_attributes();

  if (schema.NumValueCombinations() > options.enumeration_limit) {
    return Status::ResourceExhausted(
        "PATTERN-COMBINER's level-d pass needs " +
        std::to_string(schema.NumValueCombinations()) +
        " combinations, limit is " + std::to_string(options.enumeration_limit));
  }

  using CountMap = std::unordered_map<Pattern, std::uint64_t, PatternHash>;

  // Level-d pass: the coverage of a full combination is its multiplicity in
  // the aggregated relation (0 for absent combinations, which are uncovered
  // and must participate). The pass is embarrassingly parallel — each
  // combination is probed independently — so with num_threads > 1 the
  // combination space is sharded into blocks that fix a prefix of the
  // attributes, one worker enumerating each block's suffix, and the per-block
  // uncovered lists are merged in block order. The resulting map contents
  // (and therefore the final sorted MUP set and every stat) are identical to
  // the serial pass for any worker count.
  std::uint64_t nodes_generated = 0;
  std::uint64_t level_d_queries = 0;
  CountMap count;
  const int num_workers = options.num_threads > 1 ? options.num_threads : 1;
  // Enough blocks to balance dynamically, but no finer than one attribute's
  // worth of prefix values per step.
  std::uint64_t num_blocks = 1;
  int prefix_len = 0;
  while (prefix_len < d &&
         num_blocks < static_cast<std::uint64_t>(4 * num_workers)) {
    num_blocks *= static_cast<std::uint64_t>(schema.cardinality(prefix_len));
    ++prefix_len;
  }
  if (num_workers > 1 && num_blocks > 1) {
    using Uncovered = std::vector<std::pair<Pattern, std::uint64_t>>;
    std::vector<Uncovered> block_uncovered(num_blocks);
    std::vector<std::uint64_t> block_nodes(num_blocks, 0);
    ThreadPool pool(num_workers);
    pool.ParallelFor(
        num_blocks, /*chunk=*/1, [&](int /*worker*/, std::size_t b) {
          // Decode block id -> prefix values (attribute 0 most significant,
          // so blocks enumerate in the same lexicographic order as the
          // serial pass).
          Pattern block = Pattern::Root(d);
          std::uint64_t rest = b;
          for (int a = prefix_len - 1; a >= 0; --a) {
            const auto c = static_cast<std::uint64_t>(schema.cardinality(a));
            block = block.WithCell(a, static_cast<Value>(rest % c));
            rest /= c;
          }
          const Status st = ForEachMatchingCombination(
              block, schema, options.enumeration_limit,
              [&](const std::vector<Value>& combo) {
                ++block_nodes[b];
                const std::uint64_t c = data.CountOf(combo);
                if (c < options.tau) {
                  block_uncovered[b].emplace_back(Pattern::FromTuple(combo),
                                                  c);
                }
              });
          // Cannot fire: the whole space already passed the upfront guard,
          // and each block enumerates a subset of it.
          (void)st;
        });
    for (std::size_t b = 0; b < num_blocks; ++b) {
      nodes_generated += block_nodes[b];
      level_d_queries += block_nodes[b];
      for (auto& [p, c] : block_uncovered[b]) {
        count.emplace(std::move(p), c);
      }
    }
  } else {
    const Status st = ForEachMatchingCombination(
        Pattern::Root(d), schema, options.enumeration_limit,
        [&](const std::vector<Value>& combo) {
          ++nodes_generated;
          ++level_d_queries;
          const std::uint64_t c = data.CountOf(combo);
          if (c < options.tau) {
            count.emplace(Pattern::FromTuple(combo), c);
          }
        });
    COVERAGE_RETURN_IF_ERROR(st);
  }

  std::vector<Pattern> mups;
  if (!count.empty()) {
    for (int level = d; level >= 0; --level) {
      // Combine: generate the uncovered candidates one level up. Each parent
      // is generated exactly once (Rule 2 / Theorem 4); its coverage is the
      // sum over the partition family at its right-most wildcard, where
      // children absent from `count` are covered and contribute at least τ
      // (capped — only the "< τ" outcome matters).
      CountMap next_count;
      for (const auto& [p, cnt] : count) {
        (void)cnt;
        for (const Pattern& parent : Rule2Parents(p)) {
          ++nodes_generated;
          const int pivot = parent.RightmostWildcard();
          std::uint64_t sum = 0;
          bool covered = false;
          for (const Pattern& sibling :
               PartitionChildren(parent, schema, pivot)) {
            const auto it = count.find(sibling);
            if (it == count.end()) {
              covered = true;  // a covered child already implies sum >= tau
              break;
            }
            sum += it->second;
            if (sum >= options.tau) {
              covered = true;
              break;
            }
          }
          if (!covered) next_count.emplace(parent, sum);
        }
      }
      // A node at this level is a MUP iff none of its parents is uncovered.
      for (const auto& [p, cnt] : count) {
        (void)cnt;
        if (options.max_level >= 0 && p.level() > options.max_level) continue;
        bool has_uncovered_parent = false;
        for (const Pattern& parent : p.Parents()) {
          if (next_count.contains(parent)) {
            has_uncovered_parent = true;
            break;
          }
        }
        if (!has_uncovered_parent) mups.push_back(p);
      }
      if (next_count.empty()) break;
      count = std::move(next_count);
    }
  }

  std::sort(mups.begin(), mups.end());
  if (stats != nullptr) {
    stats->coverage_queries = level_d_queries;
    stats->nodes_generated = nodes_generated;
    stats->seconds = timer.ElapsedSeconds();
    stats->num_mups = mups.size();
  }
  return mups;
}

}  // namespace coverage

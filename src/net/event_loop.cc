#include "net/event_loop.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"

namespace coverage {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Identical mapping to the blocking server's: which HTTP status a
/// MessageReader rejection earns (431 oversized head, 413 oversized body,
/// 400 anything else).
int StatusToHttpParseError(const Status& status,
                           const http::MessageReader& reader) {
  if (status.code() == StatusCode::kResourceExhausted) {
    return reader.limit_violation() ==
                   http::MessageReader::LimitViolation::kHead
               ? 431
               : 413;
  }
  return 400;
}

ssize_t SendSome(int fd, const char* data, std::size_t n) {
#ifdef MSG_NOSIGNAL
  return ::send(fd, data, n, MSG_NOSIGNAL);
#else
  return ::send(fd, data, n, 0);
#endif
}

}  // namespace

EventLoop::EventLoop(EventLoopOptions options) : options_(std::move(options)) {}

EventLoop::~EventLoop() {
  Stop();
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  if (!started_ && options_.listen_fd >= 0) ::close(options_.listen_fd);
}

void EventLoop::AddPeriodicTask(int interval_ms, std::function<void()> fn) {
  periodic_.push_back({interval_ms, std::move(fn)});
}

Status EventLoop::Start() {
  if (started_) return Status::InvalidArgument("event loop already started");
  if (options_.listen_fd < 0) {
    return Status::InvalidArgument("event loop needs a listening socket");
  }
  if (!options_.handler) {
    return Status::InvalidArgument("event loop needs a handler");
  }
  poller_ = Poller::Create();

  int fds[2];
  if (::pipe(fds) < 0) {
    return Status::Internal(std::string("pipe: ") + std::strerror(errno));
  }
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
  SetNonBlocking(wake_read_fd_);
  SetNonBlocking(wake_write_fd_);

  Status added = poller_->Add(wake_read_fd_, /*read=*/true, /*write=*/false);
  if (added.ok()) {
    added = poller_->Add(options_.listen_fd, /*read=*/true, /*write=*/false);
  }
  if (!added.ok()) {
    ::close(wake_read_fd_);
    ::close(wake_write_fd_);
    wake_read_fd_ = wake_write_fd_ = -1;
    return added;
  }
  listener_active_ = true;

  const auto now = Clock::now();
  for (std::size_t i = 0; i < periodic_.size(); ++i) {
    timers_.push({now + std::chrono::milliseconds(periodic_[i].interval_ms),
                  -1, i, Timer::kPeriodic});
  }

  int workers = options_.num_workers;
  if (workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw == 0 ? 1 : static_cast<int>(hw);
  }
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  loop_thread_ = std::thread([this] { Run(); });
  started_ = true;
  obs::LogInfo("event_loop_started")
      .Str("poller", poller_->name())
      .Int("workers", workers);
  return Status::OK();
}

void EventLoop::Stop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  if (stop_state_ == StopState::kJoined) return;
  if (stop_state_ == StopState::kStopping) {
    stop_cv_.wait(lock, [&] { return stop_state_ == StopState::kJoined; });
    return;
  }
  stop_state_ = StopState::kStopping;
  lock.unlock();

  stop_requested_.store(true, std::memory_order_release);
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> l(dispatch_mu_);
    workers_stop_ = true;
  }
  dispatch_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }

  lock.lock();
  stop_state_ = StopState::kJoined;
  stop_cv_.notify_all();
  lock.unlock();
}

void EventLoop::WakeLoop() {
  if (wake_write_fd_ < 0) return;
  const char one = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &one, 1);
}

void EventLoop::DrainWakePipe() {
  char buf[256];
  while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
  }
}

void EventLoop::Run() {
  std::vector<PollerEvent> events;
  while (true) {
    const int timeout = NextTimeoutMs(Clock::now());
    const int n = poller_->Wait(timeout, &events);
    const auto start = Clock::now();
    if (n < 0 && errno != EINTR) {
      // A broken poller would otherwise spin; one tick of sleep turns it
      // into degraded service instead of a hot loop.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.poll_interval_ms));
    }
    if (stop_requested_.load(std::memory_order_acquire) && !stop_begun_) {
      BeginStop();
    }
    for (const PollerEvent& event : events) {
      if (event.fd == wake_read_fd_) {
        DrainWakePipe();
        continue;
      }
      if (event.fd == options_.listen_fd && listener_active_) {
        AcceptBatch();
        continue;
      }
      HandleConnEvent(event);
    }
    ProcessCompletions();
    FireTimers(Clock::now());
    if (stop_begun_ && conns_.empty()) break;
    if (options_.iteration_histogram != nullptr) {
      options_.iteration_histogram->Observe(
          std::chrono::duration<double>(Clock::now() - start).count());
    }
  }
}

void EventLoop::BeginStop() {
  stop_begun_ = true;
  if (options_.listen_fd >= 0) {
    if (listener_active_) poller_->Del(options_.listen_fd);
    ::close(options_.listen_fd);
    options_.listen_fd = -1;
    listener_active_ = false;
  }
  // Idle connections close immediately (the clean keep-alive close point);
  // in-flight requests and unflushed responses drain first — the graceful
  // part of graceful shutdown.
  std::vector<int> idle;
  idle.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) {
    if (!conn->in_flight && PendingOut(*conn) == 0) idle.push_back(fd);
  }
  for (const int fd : idle) {
    const auto it = conns_.find(fd);
    if (it != conns_.end()) CloseConn(*it->second);
  }
}

void EventLoop::AcceptBatch() {
  for (std::size_t accepted = 0; accepted < options_.max_accept_batch;) {
    if (!listener_active_ || options_.listen_fd < 0) return;
    const int listen_fd = options_.listen_fd;
    const int fd =
        options_.accept_fn
            ? options_.accept_fn(listen_fd)
#ifdef __linux__
            : ::accept4(listen_fd, nullptr, nullptr,
                        SOCK_NONBLOCK | SOCK_CLOEXEC);
#else
            : ::accept(listen_fd, nullptr, nullptr);
#endif
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // backlog drained
      // The connection died between readiness and accept: not our problem.
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) continue;
      if (stop_requested_.load(std::memory_order_acquire)) return;
      // fd exhaustion (EMFILE/ENFILE), kernel memory pressure, or an
      // unanticipated errno: same backoff as the blocking accept loop,
      // except "sleep one tick" becomes "deregister the listener and
      // re-arm it one tick later" so the level-triggered poller doesn't
      // spin on a listener nobody can drain.
      const int saved_errno = errno;
      counters_.accept_retries.fetch_add(1, std::memory_order_relaxed);
      obs::LogWarn("accept_retry")
          .Str("error", std::strerror(saved_errno))
          .Int("errno", saved_errno)
          .Int("backoff_ms", options_.poll_interval_ms)
          .Uint("accept_retries",
                counters_.accept_retries.load(std::memory_order_relaxed));
      poller_->Del(listen_fd);
      listener_active_ = false;
      timers_.push({Clock::now() +
                        std::chrono::milliseconds(options_.poll_interval_ms),
                    -1, 0, Timer::kListenerResume});
      return;
    }
    ++accepted;
    SetNonBlocking(fd);  // accept_fn path; accept4 already did
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    if (options_.max_pending != 0 && fresh_pending_ >= options_.max_pending) {
      // Every slot is taken by a connection still waiting for its first
      // dispatch: shed now so the client learns immediately, exactly when
      // the blocking server's handoff queue would overflow.
      Shed(fd, "queue_full", 0.0);
      ::close(fd);
      continue;
    }
    CreateConn(fd);
  }
}

void EventLoop::CreateConn(int fd) {
  auto conn = std::make_unique<Conn>(options_.limits);
  conn->fd = fd;
  conn->gen = ++next_gen_;
  const auto now = Clock::now();
  conn->accepted_at = now;
  conn->idle_deadline =
      now + std::chrono::milliseconds(options_.idle_timeout_ms);
  conn->idle_armed = true;
  const Status added = poller_->Add(fd, /*read=*/true, /*write=*/false);
  if (!added.ok()) {
    ::close(fd);
    return;
  }
  timers_.push({conn->idle_deadline, fd, conn->gen, Timer::kIdle});
  ++fresh_pending_;
  conns_[fd] = std::move(conn);
  counters_.open_connections.store(conns_.size(), std::memory_order_relaxed);
}

void EventLoop::HandleConnEvent(const PollerEvent& event) {
  auto it = conns_.find(event.fd);
  if (it == conns_.end()) return;  // closed earlier in this batch
  const std::uint64_t gen = it->second->gen;
  if (event.writable && PendingOut(*it->second) > 0) {
    FlushAndAdvance(*it->second);
    it = conns_.find(event.fd);
    if (it == conns_.end() || it->second->gen != gen) return;
  }
  Conn& conn = *it->second;
  if (event.readable && conn.read_enabled && !conn.in_flight) {
    ReadConn(conn);
  }
}

void EventLoop::ReadConn(Conn& conn) {
  char buf[16384];
  while (true) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      const Status fed = conn.reader.Feed(buf, static_cast<std::size_t>(n));
      if (!fed.ok()) {
        ProtocolError(conn, StatusToHttpParseError(fed, conn.reader),
                      fed.message());
        return;
      }
      if (conn.reader.HasMessage()) {
        // Read interest turns off inside: bytes of further pipelined
        // requests stay in the kernel buffer until this one is answered.
        DispatchNext(conn);
        return;
      }
      continue;
    }
    if (n == 0) {  // peer closed
      conn.peer_closed = true;
      if (!conn.reader.Empty()) {
        counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      }
      CloseConn(conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConn(conn);  // transport error; silent close, like the blocking path
    return;
  }
}

void EventLoop::DispatchNext(Conn& conn) {
  const auto now = Clock::now();
  if (conn.fresh) {
    conn.fresh = false;
    --fresh_pending_;
    if (options_.max_queue_wait_ms > 0) {
      const double waited_seconds =
          std::chrono::duration<double>(now - conn.accepted_at).count();
      if (waited_seconds * 1e3 >
          static_cast<double>(options_.max_queue_wait_ms)) {
        // Accept -> first dispatch outwaited the deadline: the client has
        // likely given up, so tell it to retry rather than spend a worker
        // on a stale request.
        Shed(conn.fd, "stale", waited_seconds);
        CloseConn(conn);
        return;
      }
    }
  }
  auto request = conn.reader.TakeRequest();
  if (!request.ok()) {
    ProtocolError(conn, 400, request.status().message());
    return;
  }
  const bool keep_alive = conn.keep_alive && request->KeepAlive() &&
                          !stop_requested_.load(std::memory_order_acquire);
  conn.keep_alive = keep_alive;
  conn.in_flight = true;
  conn.idle_armed = false;
  SetInterest(conn, /*read=*/false, conn.want_write);
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    jobs_.push_back({conn.fd, conn.gen, std::move(*request), keep_alive});
  }
  dispatch_cv_.notify_one();
}

void EventLoop::WorkerMain() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(dispatch_mu_);
      dispatch_cv_.wait(lock,
                        [&] { return workers_stop_ || !jobs_.empty(); });
      if (jobs_.empty()) {
        if (workers_stop_) return;
        continue;
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    const http::Response response = options_.handler(job.request);
    counters_.requests_handled.fetch_add(1, std::memory_order_relaxed);
    std::string bytes = http::SerializeResponse(response, job.keep_alive);
    {
      std::lock_guard<std::mutex> lock(completion_mu_);
      completions_.push_back(
          {job.fd, job.gen, std::move(bytes), job.keep_alive});
    }
    WakeLoop();
  }
}

void EventLoop::ProcessCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    const auto it = conns_.find(completion.fd);
    if (it == conns_.end() || it->second->gen != completion.gen) continue;
    Conn& conn = *it->second;
    conn.in_flight = false;
    conn.keep_alive = completion.keep_alive;
    if (!completion.keep_alive) conn.close_after_flush = true;
    conn.out.append(completion.bytes);
    counters_.write_buffer_bytes.fetch_add(completion.bytes.size(),
                                           std::memory_order_relaxed);
    FlushAndAdvance(conn);
  }
}

EventLoop::FlushResult EventLoop::FlushAndAdvance(Conn& conn) {
  while (PendingOut(conn) > 0) {
    const ssize_t n =
        SendSome(conn.fd, conn.out.data() + conn.out_off, PendingOut(conn));
    if (n >= 0) {
      conn.out_off += static_cast<std::size_t>(n);
      counters_.write_buffer_bytes.fetch_sub(static_cast<std::size_t>(n),
                                             std::memory_order_relaxed);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Socket buffer full: park on writability (backpressure) and keep
      // the remaining bytes buffered.
      SetInterest(conn, conn.read_enabled, /*write=*/true);
      return FlushResult::kBlocked;
    }
    CloseConn(conn);  // peer gone mid-response; blocking SendAll fails too
    return FlushResult::kClosed;
  }
  conn.out.clear();
  conn.out_off = 0;
  if (conn.want_write) SetInterest(conn, conn.read_enabled, /*write=*/false);
  if (conn.close_after_flush) {
    CloseConn(conn);
    return FlushResult::kClosed;
  }
  if (conn.in_flight) return FlushResult::kDrained;
  if (stop_begun_ || stop_requested_.load(std::memory_order_acquire)) {
    // Response delivered during shutdown: this is the clean close point of
    // a draining keep-alive connection.
    CloseConn(conn);
    return FlushResult::kClosed;
  }
  // A fully buffered pipelined request may already be waiting.
  const Status pumped = conn.reader.Pump();
  if (!pumped.ok()) {
    ProtocolError(conn, StatusToHttpParseError(pumped, conn.reader),
                  pumped.message());
    return FlushResult::kClosed;
  }
  if (conn.reader.HasMessage()) {
    DispatchNext(conn);
    return FlushResult::kDrained;
  }
  // Back to waiting for the next request: fresh idle budget, read back on.
  SetInterest(conn, /*read=*/true, /*write=*/false);
  conn.idle_deadline =
      Clock::now() + std::chrono::milliseconds(options_.idle_timeout_ms);
  conn.idle_armed = true;
  timers_.push({conn.idle_deadline, conn.fd, conn.gen, Timer::kIdle});
  return FlushResult::kDrained;
}

void EventLoop::ProtocolError(Conn& conn, int status,
                              const std::string& detail) {
  http::Response response = http::Response::Text(status, detail + "\n");
  const std::string bytes =
      http::SerializeResponse(response, /*keep_alive=*/false);
  conn.out.append(bytes);
  counters_.write_buffer_bytes.fetch_add(bytes.size(),
                                         std::memory_order_relaxed);
  counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
  conn.close_after_flush = true;
  conn.idle_armed = false;
  SetInterest(conn, /*read=*/false, conn.want_write);
  FlushAndAdvance(conn);
}

void EventLoop::Shed(int fd, const char* reason, double waited_seconds) {
  counters_.connections_shed.fetch_add(1, std::memory_order_relaxed);
  obs::LogWarn("connection_shed")
      .Str("reason", reason)
      .Uint("queue_depth", fresh_pending_)
      .Uint("max_pending", options_.max_pending)
      .Int("retry_after_seconds", options_.retry_after_seconds)
      .Double("waited_seconds", waited_seconds)
      .Uint("connections_shed",
            counters_.connections_shed.load(std::memory_order_relaxed));
  // Best-effort: the canned 503 is tiny next to a fresh socket buffer, so
  // it virtually always sends whole; a failure means the peer is gone and
  // the close below is answer enough.
  std::size_t sent = 0;
  while (sent < options_.shed_response.size()) {
    const ssize_t n = SendSome(fd, options_.shed_response.data() + sent,
                               options_.shed_response.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    sent += static_cast<std::size_t>(n);
  }
}

void EventLoop::SetInterest(Conn& conn, bool read, bool write) {
  if (conn.read_enabled == read && conn.want_write == write) return;
  conn.read_enabled = read;
  conn.want_write = write;
  poller_->Mod(conn.fd, read, write);
}

void EventLoop::CloseConn(Conn& conn) {
  const int fd = conn.fd;
  poller_->Del(fd);
  counters_.write_buffer_bytes.fetch_sub(PendingOut(conn),
                                         std::memory_order_relaxed);
  if (conn.fresh) --fresh_pending_;
  ::close(fd);
  conns_.erase(fd);
  counters_.open_connections.store(conns_.size(), std::memory_order_relaxed);
}

void EventLoop::FireTimers(Clock::time_point now) {
  while (!timers_.empty() && timers_.top().when <= now) {
    const Timer timer = timers_.top();
    timers_.pop();
    switch (timer.kind) {
      case Timer::kIdle: {
        const auto it = conns_.find(timer.fd);
        if (it == conns_.end() || it->second->gen != timer.gen) break;
        Conn& conn = *it->second;
        if (!conn.idle_armed) break;
        if (conn.idle_deadline > now) {
          // The deadline moved (a response re-armed it); chase it lazily.
          timers_.push({conn.idle_deadline, timer.fd, timer.gen, Timer::kIdle});
          break;
        }
        if (!conn.reader.Empty()) {
          ProtocolError(conn, 408, "request timed out");
        } else {
          CloseConn(conn);  // silent close of an idle keep-alive connection
        }
        break;
      }
      case Timer::kListenerResume: {
        if (!stop_begun_ && options_.listen_fd >= 0 && !listener_active_) {
          poller_->Add(options_.listen_fd, /*read=*/true, /*write=*/false);
          listener_active_ = true;
        }
        break;
      }
      case Timer::kPeriodic: {
        if (stop_begun_) break;  // no new ticks once draining
        const PeriodicTask& task = periodic_[timer.gen];
        task.fn();
        timers_.push({now + std::chrono::milliseconds(task.interval_ms), -1,
                      timer.gen, Timer::kPeriodic});
        break;
      }
    }
  }
}

int EventLoop::NextTimeoutMs(Clock::time_point now) const {
  int timeout = options_.poll_interval_ms;
  if (!timers_.empty()) {
    const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
                           timers_.top().when - now)
                           .count();
    if (until < timeout) timeout = until < 0 ? 0 : static_cast<int>(until);
  }
  return timeout;
}

}  // namespace net
}  // namespace coverage

#ifndef COVERAGE_NET_EVENT_LOOP_H_
#define COVERAGE_NET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/poller.h"
#include "server/http.h"

namespace coverage {

namespace obs {
class Histogram;
}  // namespace obs

namespace net {

/// Everything the readiness loop needs, fixed at Start(). The option names
/// mirror http::ServerOptions — HttpServer maps one onto the other when
/// io_model is epoll — so both io models read from a single knob set.
struct EventLoopOptions {
  /// Listening socket, already bound + listening + nonblocking. The loop
  /// takes ownership and closes it during shutdown.
  int listen_fd = -1;

  std::function<http::Response(const http::Request&)> handler;

  http::MessageReader::Limits limits;

  /// Dispatch worker threads (handlers only — all socket I/O stays on the
  /// loop thread). 0 clamps to hardware_concurrency, the ThreadPool
  /// contract.
  int num_workers = 4;

  int idle_timeout_ms = 30000;
  int poll_interval_ms = 50;

  /// Overload protection, same semantics as the blocking server's handoff
  /// queue: connections whose first request has not yet been dispatched
  /// count as "pending"; at `max_pending` of them, new accepts are shed
  /// with the canned 503. 0 = unbounded.
  std::size_t max_pending = 256;

  /// A connection whose *first* request dispatches later than this after
  /// accept is shed as stale (its client has likely given up). Measured
  /// accept -> first dispatch, exactly like the blocking handoff queue's
  /// enqueue -> worker pickup. 0 disables.
  int max_queue_wait_ms = 0;

  int retry_after_seconds = 1;

  /// Upper bound on accepts drained per listener readiness, so one accept
  /// storm cannot starve established connections of loop time.
  std::size_t max_accept_batch = 64;

  /// Test seam, same contract as ServerOptions::accept_fn. The listener is
  /// nonblocking, so a real accept(2) behind the seam returns EAGAIN when
  /// the backlog is drained — which the loop treats as "batch done".
  std::function<int(int)> accept_fn;

  /// Pre-serialized 503 + Retry-After, built once by HttpServer.
  std::string shed_response;

  /// When set, observes seconds spent per loop iteration (wake to sleep,
  /// wait excluded) — the "is the loop thread the bottleneck" signal.
  obs::Histogram* iteration_histogram = nullptr;
};

/// Counters the loop maintains; HttpServer::stats() snapshots them. The
/// first five match ServerStats field-for-field; the last two are new
/// gauges only an event-driven server can report meaningfully.
struct EventLoopCounters {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> requests_handled{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> connections_shed{0};
  std::atomic<std::uint64_t> accept_retries{0};
  std::atomic<std::uint64_t> open_connections{0};
  std::atomic<std::uint64_t> write_buffer_bytes{0};
};

/// An epoll (poll fallback) readiness loop serving HTTP/1.1 with the exact
/// observable semantics of the blocking HttpServer — same responses byte
/// for byte, same counters, same shed/timeout/graceful-stop behaviour —
/// but with the keep-alive concurrency ceiling lifted from ~num_threads to
/// tens of thousands of connections.
///
/// Threading model: ONE loop thread owns every socket and all connection
/// state (no locks on the hot path); `num_workers` dispatch threads run
/// only the request handler and response serialization, handing finished
/// responses back through a completion queue + wakeup pipe. While a
/// request is in flight its connection's read interest is off, so a slow
/// handler applies backpressure instead of unbounded buffering; writes
/// that overrun the socket buffer park the connection on EPOLLOUT.
///
/// Deadlines (idle/408 timeouts, listener backoff re-arm, periodic tasks)
/// live in a lazy min-heap keyed by {fd, generation}: entries are never
/// removed eagerly, just revalidated when they pop.
class EventLoop {
 public:
  explicit EventLoop(EventLoopOptions options);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawns the loop thread + workers. Call at most once.
  Status Start();

  /// Graceful drain: stop accepting, close idle connections, let in-flight
  /// requests finish and their responses flush, then join every thread.
  /// Idempotent and safe from any thread; blocks until fully joined.
  void Stop();

  /// Registers `fn` to run on the loop thread every `interval_ms` (the
  /// session reaper tick rides here). Must be called before Start().
  void AddPeriodicTask(int interval_ms, std::function<void()> fn);

  const EventLoopCounters& counters() const { return counters_; }

 private:
  /// Per-connection state machine. Owned by the loop thread exclusively;
  /// workers refer to a connection only by {fd, generation}.
  struct Conn {
    int fd = -1;
    std::uint64_t gen = 0;
    http::MessageReader reader;
    std::string out;            // serialized bytes awaiting send
    std::size_t out_off = 0;
    bool want_write = false;    // registered for writability
    bool read_enabled = true;   // registered for readability
    bool in_flight = false;     // a request is with a worker
    bool keep_alive = true;     // monotonic: once false, stays false
    bool close_after_flush = false;
    bool peer_closed = false;
    /// Counted against max_pending until the first request dispatches.
    bool fresh = true;
    std::chrono::steady_clock::time_point accepted_at;
    /// Wall-clock deadline for assembling the *current* request — armed at
    /// accept and re-armed after each flushed response, never extended by
    /// partial bytes (slowloris guard, identical to the blocking server's
    /// per-request idle budget).
    std::chrono::steady_clock::time_point idle_deadline;
    bool idle_armed = true;

    explicit Conn(http::MessageReader::Limits limits) : reader(limits) {}
  };

  struct Job {
    int fd;
    std::uint64_t gen;
    http::Request request;
    bool keep_alive;  // decided at dispatch, like the blocking server
  };

  struct Completion {
    int fd;
    std::uint64_t gen;
    std::string bytes;  // fully serialized response
    bool keep_alive;
  };

  struct Timer {
    std::chrono::steady_clock::time_point when;
    int fd;             // -1 for listener/periodic timers
    std::uint64_t gen;  // periodic task index for kPeriodic
    enum Kind { kIdle, kListenerResume, kPeriodic } kind;
    bool operator>(const Timer& o) const { return when > o.when; }
  };

  enum class FlushResult { kDrained, kBlocked, kClosed };

  void Run();
  void WorkerMain();
  void WakeLoop();
  void DrainWakePipe();
  void ProcessCompletions();
  void AcceptBatch();
  void CreateConn(int fd);
  void HandleConnEvent(const PollerEvent& event);
  void ReadConn(Conn& conn);
  void DispatchNext(Conn& conn);
  /// Appends the canned protocol-error response, bumps the counter, and
  /// closes once flushed — the nonblocking SendProtocolError.
  void ProtocolError(Conn& conn, int status, const std::string& detail);
  /// 503 + Retry-After + close for a connection that never reached a
  /// dispatch; mirrors HttpServer::ShedConnection including the log event.
  void Shed(int fd, const char* reason, double waited_seconds);
  /// Writes as much pending output as the socket accepts, then advances
  /// the state machine (close / wait for writability / next request).
  FlushResult FlushAndAdvance(Conn& conn);
  void SetInterest(Conn& conn, bool read, bool write);
  void CloseConn(Conn& conn);
  void BeginStop();
  void FireTimers(std::chrono::steady_clock::time_point now);
  int NextTimeoutMs(std::chrono::steady_clock::time_point now) const;
  std::size_t PendingOut(const Conn& conn) const {
    return conn.out.size() - conn.out_off;
  }

  EventLoopOptions options_;
  std::unique_ptr<Poller> poller_;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  bool listener_active_ = false;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  std::atomic<bool> stop_requested_{false};
  bool stop_begun_ = false;  // loop thread only

  /// Loop-thread-only state.
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_gen_ = 0;
  std::size_t fresh_pending_ = 0;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;

  struct PeriodicTask {
    int interval_ms;
    std::function<void()> fn;
  };
  std::vector<PeriodicTask> periodic_;  // fixed before Start()

  std::mutex dispatch_mu_;
  std::condition_variable dispatch_cv_;
  std::deque<Job> jobs_;
  bool workers_stop_ = false;

  std::mutex completion_mu_;
  std::vector<Completion> completions_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  enum class StopState { kRunning, kStopping, kJoined } stop_state_ =
      StopState::kRunning;
  bool started_ = false;

  EventLoopCounters counters_;
};

}  // namespace net
}  // namespace coverage

#endif  // COVERAGE_NET_EVENT_LOOP_H_

#include "net/poller.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace coverage {
namespace net {

namespace {

#ifdef __linux__

class EpollPoller : public Poller {
 public:
  explicit EpollPoller(int epfd) : epfd_(epfd) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  Status Add(int fd, bool read, bool write) override {
    return Ctl(EPOLL_CTL_ADD, fd, read, write);
  }
  Status Mod(int fd, bool read, bool write) override {
    return Ctl(EPOLL_CTL_MOD, fd, read, write);
  }
  Status Del(int fd) override {
    epoll_event ev{};
    if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev) < 0) {
      return Status::Internal(std::string("epoll_ctl del: ") +
                              std::strerror(errno));
    }
    return Status::OK();
  }

  int Wait(int timeout_ms, std::vector<PollerEvent>* events) override {
    events->clear();
    epoll_event buf[256];
    const int n = ::epoll_wait(epfd_, buf, 256, timeout_ms);
    if (n <= 0) return n;
    events->reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      PollerEvent e;
      e.fd = buf[i].data.fd;
      const std::uint32_t flags = buf[i].events;
      const bool broken = (flags & (EPOLLERR | EPOLLHUP)) != 0;
      e.readable = (flags & EPOLLIN) != 0 || broken;
      e.writable = (flags & EPOLLOUT) != 0 || broken;
      events->push_back(e);
    }
    return n;
  }

  const char* name() const override { return "epoll"; }

 private:
  Status Ctl(int op, int fd, bool read, bool write) {
    epoll_event ev{};
    ev.events = (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_, op, fd, &ev) < 0) {
      return Status::Internal(std::string("epoll_ctl: ") +
                              std::strerror(errno));
    }
    return Status::OK();
  }

  int epfd_;
};

#endif  // __linux__

/// Portable fallback: interest map rebuilt into a pollfd array per Wait.
/// O(fds) per iteration, which is fine for the connection counts the
/// fallback platforms see; Linux production runs use EpollPoller.
class PollPoller : public Poller {
 public:
  Status Add(int fd, bool read, bool write) override {
    interest_[fd] = Events(read, write);
    return Status::OK();
  }
  Status Mod(int fd, bool read, bool write) override {
    const auto it = interest_.find(fd);
    if (it == interest_.end()) {
      return Status::InvalidArgument("poll mod: fd not registered");
    }
    it->second = Events(read, write);
    return Status::OK();
  }
  Status Del(int fd) override {
    interest_.erase(fd);
    return Status::OK();
  }

  int Wait(int timeout_ms, std::vector<PollerEvent>* events) override {
    events->clear();
    pfds_.clear();
    pfds_.reserve(interest_.size());
    for (const auto& [fd, ev] : interest_) {
      pollfd p{};
      p.fd = fd;
      p.events = ev;
      pfds_.push_back(p);
    }
    const int n = ::poll(pfds_.data(), pfds_.size(), timeout_ms);
    if (n <= 0) return n;
    for (const pollfd& p : pfds_) {
      if (p.revents == 0) continue;
      PollerEvent e;
      e.fd = p.fd;
      const bool broken = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      e.readable = (p.revents & POLLIN) != 0 || broken;
      e.writable = (p.revents & POLLOUT) != 0 || broken;
      events->push_back(e);
    }
    return static_cast<int>(events->size());
  }

  const char* name() const override { return "poll"; }

 private:
  static short Events(bool read, bool write) {
    return static_cast<short>((read ? POLLIN : 0) | (write ? POLLOUT : 0));
  }

  std::unordered_map<int, short> interest_;
  std::vector<pollfd> pfds_;
};

}  // namespace

std::unique_ptr<Poller> Poller::Create() {
#ifdef __linux__
  const int epfd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd >= 0) return std::make_unique<EpollPoller>(epfd);
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace net
}  // namespace coverage

#ifndef COVERAGE_NET_POLLER_H_
#define COVERAGE_NET_POLLER_H_

#include <memory>
#include <vector>

#include "common/status.h"

namespace coverage {
namespace net {

/// One readiness report from Poller::Wait. Error/hang-up conditions are
/// folded into both flags so whichever half of the connection state machine
/// is active (reading or flushing) observes the failure on its next
/// syscall — exactly how the blocking server learns about dead peers.
struct PollerEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
};

/// Minimal readiness-notification abstraction behind the event loop:
/// epoll(7) on Linux, poll(2) everywhere else. Level-triggered on both
/// backends — the loop may leave bytes unread (backpressure while a request
/// is in flight) and be re-notified on the next Wait.
///
/// Not thread-safe; owned and driven by the loop thread only.
class Poller {
 public:
  virtual ~Poller() = default;

  /// Registers `fd` with the given interest set. An interest-less fd stays
  /// registered (epoll still reports errors/hang-ups for it).
  virtual Status Add(int fd, bool read, bool write) = 0;

  /// Replaces the interest set of a registered fd.
  virtual Status Mod(int fd, bool read, bool write) = 0;

  /// Deregisters `fd`. Safe to call right before close(2).
  virtual Status Del(int fd) = 0;

  /// Blocks up to `timeout_ms` (0 = poll-and-return). Clears `events` and
  /// fills it with the ready fds. Returns the event count, or -1 with errno
  /// set (EINTR included — the caller retries).
  virtual int Wait(int timeout_ms, std::vector<PollerEvent>* events) = 0;

  /// "epoll" or "poll"; surfaced in logs so deployments can confirm which
  /// backend they run.
  virtual const char* name() const = 0;

  /// The best backend for this platform.
  static std::unique_ptr<Poller> Create();
};

}  // namespace net
}  // namespace coverage

#endif  // COVERAGE_NET_POLLER_H_

#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <map>
#include <mutex>

namespace coverage {
namespace obs {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<bool> g_json{false};

// Sink + rate-limit state share one mutex; emission is rare enough that a
// single lock is fine, and it keeps lines from interleaving.
std::mutex& SinkMutex() {
  static std::mutex* const mu = new std::mutex();
  return *mu;
}

LogSink& SinkSlot() {
  static LogSink* const sink = new LogSink();
  return *sink;
}

struct RateLimitState {
  double per_second = 50.0;
  double burst = 100.0;
  std::map<std::string, internal::TokenBucket> buckets;
};

RateLimitState& RateLimit() {
  static RateLimitState* const state = new RateLimitState();
  return *state;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string IsoTimestampUtc() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

// Minimal JSON string escaping, self-contained so obs/ does not depend on
// the server's JSON library.
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void EmitLine(const std::string& line) {
  // Called with SinkMutex() held.
  LogSink& sink = SinkSlot();
  if (sink) {
    sink(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  if (text == "debug") { *out = LogLevel::kDebug; return true; }
  if (text == "info") { *out = LogLevel::kInfo; return true; }
  if (text == "warn") { *out = LogLevel::kWarn; return true; }
  if (text == "error") { *out = LogLevel::kError; return true; }
  if (text == "off") { *out = LogLevel::kOff; return true; }
  return false;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void SetLogJson(bool json) { g_json.store(json, std::memory_order_relaxed); }

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkSlot() = std::move(sink);
}

void SetLogRateLimit(double per_second, double burst) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  RateLimitState& state = RateLimit();
  state.per_second = per_second;
  state.burst = burst;
  state.buckets.clear();
}

namespace internal {

bool TokenBucket::Allow(double now_seconds, std::uint64_t* suppressed) {
  if (per_second_ <= 0) {
    *suppressed = dropped_;
    dropped_ = 0;
    return true;
  }
  if (!primed_) {
    primed_ = true;
    last_seconds_ = now_seconds;
  }
  const double elapsed = now_seconds - last_seconds_;
  if (elapsed > 0) {
    tokens_ = tokens_ + elapsed * per_second_;
    if (tokens_ > burst_) tokens_ = burst_;
    last_seconds_ = now_seconds;
  }
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    *suppressed = dropped_;
    dropped_ = 0;
    return true;
  }
  ++dropped_;
  return false;
}

}  // namespace internal

LogEvent::LogEvent(LogLevel level, std::string event)
    : level_(level),
      event_(std::move(event)),
      enabled_(level != LogLevel::kOff &&
               static_cast<int>(level) >=
                   g_level.load(std::memory_order_relaxed)) {}

LogEvent::LogEvent(LogEvent&& other) noexcept
    : level_(other.level_),
      event_(std::move(other.event_)),
      fields_(std::move(other.fields_)),
      enabled_(other.enabled_) {
  other.enabled_ = false;
}

LogEvent& LogEvent::Str(const std::string& key, const std::string& value) {
  if (enabled_) fields_.push_back(Field{key, value, true});
  return *this;
}

LogEvent& LogEvent::Int(const std::string& key, std::int64_t value) {
  if (enabled_) {
    fields_.push_back(Field{key, std::to_string(value), false});
  }
  return *this;
}

LogEvent& LogEvent::Uint(const std::string& key, std::uint64_t value) {
  if (enabled_) {
    fields_.push_back(Field{key, std::to_string(value), false});
  }
  return *this;
}

LogEvent& LogEvent::Double(const std::string& key, double value) {
  if (enabled_) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.push_back(Field{key, buf, false});
  }
  return *this;
}

LogEvent& LogEvent::Bool(const std::string& key, bool value) {
  if (enabled_) {
    fields_.push_back(Field{key, value ? "true" : "false", false});
  }
  return *this;
}

LogEvent::~LogEvent() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(SinkMutex());

  std::uint64_t suppressed = 0;
  RateLimitState& rate = RateLimit();
  if (rate.per_second > 0) {
    auto it = rate.buckets.find(event_);
    if (it == rate.buckets.end()) {
      it = rate.buckets
               .emplace(event_,
                        internal::TokenBucket(rate.per_second, rate.burst))
               .first;
    }
    if (!it->second.Allow(NowSeconds(), &suppressed)) return;
  }
  if (suppressed > 0) {
    fields_.push_back(Field{"suppressed", std::to_string(suppressed), false});
  }

  std::string line;
  if (g_json.load(std::memory_order_relaxed)) {
    line = "{\"ts\":\"" + IsoTimestampUtc() + "\",\"level\":\"" +
           LogLevelName(level_) + "\",\"event\":\"" + JsonEscape(event_) +
           "\"";
    for (const Field& field : fields_) {
      line += ",\"" + JsonEscape(field.key) + "\":";
      if (field.quoted) {
        line += "\"" + JsonEscape(field.value) + "\"";
      } else {
        line += field.value;
      }
    }
    line += "}";
  } else {
    line = IsoTimestampUtc();
    line += " ";
    line += LogLevelName(level_);
    line += " ";
    line += event_;
    for (const Field& field : fields_) {
      line += " " + field.key + "=";
      if (field.quoted) {
        line += "\"" + JsonEscape(field.value) + "\"";
      } else {
        line += field.value;
      }
    }
  }
  EmitLine(line);
}

LogEvent LogDebug(std::string event) {
  return LogEvent(LogLevel::kDebug, std::move(event));
}
LogEvent LogInfo(std::string event) {
  return LogEvent(LogLevel::kInfo, std::move(event));
}
LogEvent LogWarn(std::string event) {
  return LogEvent(LogLevel::kWarn, std::move(event));
}
LogEvent LogError(std::string event) {
  return LogEvent(LogLevel::kError, std::move(event));
}

}  // namespace obs
}  // namespace coverage

#ifndef COVERAGE_OBS_LOG_H_
#define COVERAGE_OBS_LOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace coverage {
namespace obs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-sensitive).
/// Returns false and leaves *out untouched on anything else.
bool ParseLogLevel(const std::string& text, LogLevel* out);

const char* LogLevelName(LogLevel level);

/// Minimum level that gets emitted; defaults to kInfo. Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// JSON-lines output instead of `ts LEVEL event key=value`; default off.
void SetLogJson(bool json);

/// Where finished lines go (without trailing newline). Null restores the
/// default stderr sink. Tests inject a sink to capture events.
using LogSink = std::function<void(const std::string& line)>;
void SetLogSink(LogSink sink);

/// Per-event-name token bucket: at most `per_second` sustained events with
/// bursts up to `burst`; excess events are dropped and counted, and the
/// count is folded into the next emitted event of that name as a
/// `suppressed=N` field. `per_second <= 0` disables limiting. Default:
/// 50/s, burst 100.
void SetLogRateLimit(double per_second, double burst);

/// One structured event, built with chained field setters and emitted when
/// the object is destroyed (so `LogWarn("shed").Int("queue", n);` is one
/// statement). Fields keep insertion order. Not thread-safe per instance —
/// build and drop on one thread; emission itself is thread-safe.
class LogEvent {
 public:
  LogEvent(LogLevel level, std::string event);
  ~LogEvent();
  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;
  LogEvent(LogEvent&& other) noexcept;
  LogEvent& operator=(LogEvent&&) = delete;

  LogEvent& Str(const std::string& key, const std::string& value);
  LogEvent& Int(const std::string& key, std::int64_t value);
  LogEvent& Uint(const std::string& key, std::uint64_t value);
  LogEvent& Double(const std::string& key, double value);
  LogEvent& Bool(const std::string& key, bool value);

 private:
  struct Field {
    std::string key;
    std::string value;  ///< pre-rendered scalar
    bool quoted = false;  ///< string (needs quoting/escaping) vs literal
  };

  LogLevel level_;
  std::string event_;
  std::vector<Field> fields_;
  bool enabled_;
};

/// Convenience constructors; use as `LogInfo("startup").Int("port", p);`.
LogEvent LogDebug(std::string event);
LogEvent LogInfo(std::string event);
LogEvent LogWarn(std::string event);
LogEvent LogError(std::string event);

namespace internal {

/// Standard token bucket, exposed with an explicit clock so the rate-limit
/// unit tests are deterministic. Not thread-safe (the log layer locks).
class TokenBucket {
 public:
  TokenBucket(double per_second, double burst)
      : per_second_(per_second), burst_(burst), tokens_(burst) {}

  /// True if an event may pass at `now_seconds`. When it passes,
  /// *suppressed receives how many were dropped since the last pass (and
  /// the internal drop count resets); when it is dropped, *suppressed is
  /// untouched.
  bool Allow(double now_seconds, std::uint64_t* suppressed);

 private:
  double per_second_;
  double burst_;
  double tokens_;
  double last_seconds_ = 0.0;
  bool primed_ = false;
  std::uint64_t dropped_ = 0;
};

}  // namespace internal

}  // namespace obs
}  // namespace coverage

#endif  // COVERAGE_OBS_LOG_H_

#include "obs/metrics.h"

namespace coverage {
namespace obs {

// ---------------------------------------------------------------- Histogram

void Histogram::Observe(double seconds) {
  count_.fetch_add(1, std::memory_order_relaxed);
  const double us = seconds * 1e6;
  const std::uint64_t whole_us = us <= 0 ? 0 : static_cast<std::uint64_t>(us);
  total_us_.fetch_add(whole_us, std::memory_order_relaxed);
  int bucket = 0;
  while (bucket < kNumBuckets - 1 && (1ull << bucket) <= whole_us) ++bucket;
  buckets_[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
}

double Histogram::QuantileSeconds(double q) const {
  const Snapshot snap = TakeSnapshot();
  std::uint64_t total = 0;
  for (const std::uint64_t c : snap.buckets) total += c;
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += snap.buckets[static_cast<std::size_t>(i)];
    if (static_cast<double>(seen) >= rank) return BucketUpperEdgeSeconds(i);
  }
  return BucketUpperEdgeSeconds(kNumBuckets - 1);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  snap.count = count();
  snap.sum_seconds = sum_seconds();
  return snap;
}

// ---------------------------------------------------------- MetricsRegistry

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* const instance = new MetricsRegistry();
  return instance;
}

MetricsRegistry::Series* MetricsRegistry::FindOrAddSeries(
    const std::string& name, const std::string& help, MetricType type,
    const Labels& labels, bool* detached) {
  *detached = false;
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.help = help;
    family.type = type;
  } else if (family.type != type) {
    // A name cannot be two types; hand out a working-but-unregistered
    // instrument instead of corrupting the existing family.
    *detached = true;
    return nullptr;
  }
  for (Series& series : family.series) {
    if (series.labels == labels) return &series;
  }
  family.series.push_back(Series{labels, nullptr, nullptr, nullptr, nullptr});
  return &family.series.back();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  bool detached = false;
  Series* series = FindOrAddSeries(name, help, MetricType::kCounter, labels,
                                   &detached);
  if (detached) return &counters_.emplace_back();
  if (series->counter == nullptr) series->counter = &counters_.emplace_back();
  return series->counter;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  bool detached = false;
  Series* series =
      FindOrAddSeries(name, help, MetricType::kGauge, labels, &detached);
  if (detached) return &gauges_.emplace_back();
  if (series->gauge == nullptr) series->gauge = &gauges_.emplace_back();
  return series->gauge;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  bool detached = false;
  Series* series = FindOrAddSeries(name, help, MetricType::kHistogram, labels,
                                   &detached);
  if (detached) return &histograms_.emplace_back();
  if (series->histogram == nullptr) {
    series->histogram = &histograms_.emplace_back();
  }
  return series->histogram;
}

void MetricsRegistry::RegisterCallback(const std::string& name,
                                       const std::string& help,
                                       MetricType type, const Labels& labels,
                                       ValueFn fn) {
  if (type == MetricType::kHistogram) return;  // unsupported by design
  std::lock_guard<std::mutex> lock(mu_);
  bool detached = false;
  Series* series = FindOrAddSeries(name, help, type, labels, &detached);
  if (detached || series == nullptr) return;
  series->fn = std::move(fn);
}

std::vector<MetricsRegistry::CollectedFamily> MetricsRegistry::Collect()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CollectedFamily> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    CollectedFamily cf;
    cf.name = name;
    cf.help = family.help;
    cf.type = family.type;
    for (const Series& series : family.series) {
      CollectedSeries cs;
      cs.labels = series.labels;
      if (series.histogram != nullptr) {
        cs.histogram = series.histogram->TakeSnapshot();
      } else if (series.fn) {
        cs.value = series.fn();
      } else if (series.counter != nullptr) {
        cs.value = static_cast<double>(series.counter->value());
      } else if (series.gauge != nullptr) {
        cs.value = static_cast<double>(series.gauge->value());
      }
      cf.series.push_back(std::move(cs));
    }
    out.push_back(std::move(cf));
  }
  return out;
}

}  // namespace obs
}  // namespace coverage

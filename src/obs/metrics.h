#ifndef COVERAGE_OBS_METRICS_H_
#define COVERAGE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace coverage {
namespace obs {

/// A label set ({"route", "POST /v1/audit"}, ...). Order is significant for
/// identity (register with a consistent order) and preserved in exposition.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter; lock-free on the update path.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time signed value; lock-free.
class Gauge {
 public:
  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log-scale latency histogram: 54 power-of-two microsecond buckets
/// (bucket i counts observations < 2^i µs), good enough for p50/p99
/// without storing samples and cheap enough for every request path.
/// Thread-safe, lock-free on the record path. This generalises the
/// RouteMetrics histogram the coverage_server grew in PR 5 — one
/// implementation now serves routes, trace stages, and persistence.
class Histogram {
 public:
  static constexpr int kNumBuckets = 54;

  void Observe(double seconds);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum_seconds() const {
    return static_cast<double>(total_us_.load(std::memory_order_relaxed)) /
           1e6;
  }

  /// Latency quantile estimate in seconds (upper edge of the bucket holding
  /// the q-quantile); 0 when nothing was recorded.
  double QuantileSeconds(double q) const;

  /// Upper edge of bucket `i` in seconds (2^i µs).
  static double BucketUpperEdgeSeconds(int i) {
    return static_cast<double>(1ull << i) / 1e6;
  }

  /// A consistent-enough copy for exposition (buckets are read relaxed;
  /// concurrent updates may straddle the reads, which is fine for
  /// monitoring).
  struct Snapshot {
    std::array<std::uint64_t, kNumBuckets> buckets{};  ///< per-bucket counts
    std::uint64_t count = 0;
    double sum_seconds = 0.0;
  };
  Snapshot TakeSnapshot() const;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_us_{0};
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// A registry of named metric families, each holding one series per label
/// set. Registration (Get*) takes a mutex and returns a stable pointer —
/// hold it and update lock-free forever after; instruments live as long as
/// the registry. Families are collected in name order, series in
/// registration order, so exposition is deterministic.
///
/// Callback series (RegisterCallback) are evaluated at collection time —
/// the seam for gauges derived from live state (open sessions, engine rows,
/// thread-budget occupancy) that nobody wants to maintain incrementally.
///
/// Instantiable (each CoverageServer owns one, so tests never see another
/// test's counts); Default() offers a process-wide instance for tools.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry for code without a better home.
  static MetricsRegistry* Default();

  /// Get-or-create: the same (name, labels) always returns the same
  /// instrument; `help` is taken from the first registration. A name
  /// re-registered as a different type gets a detached instrument (updates
  /// work, collection skips it) rather than corrupting the family.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const Labels& labels = {});

  /// Registers a series whose value is computed at collection time. `type`
  /// must be kCounter or kGauge. Re-registering the same (name, labels)
  /// replaces the function. The callback runs under the registry mutex —
  /// it must not call back into this registry.
  using ValueFn = std::function<double()>;
  void RegisterCallback(const std::string& name, const std::string& help,
                        MetricType type, const Labels& labels, ValueFn fn);

  struct CollectedSeries {
    Labels labels;
    double value = 0.0;             ///< counter / gauge / callback value
    Histogram::Snapshot histogram;  ///< kHistogram families only
  };
  struct CollectedFamily {
    std::string name;
    std::string help;
    MetricType type = MetricType::kCounter;
    std::vector<CollectedSeries> series;
  };

  /// Snapshot of every family, sorted by name.
  std::vector<CollectedFamily> Collect() const;

 private:
  struct Series {
    Labels labels;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
    ValueFn fn;
  };
  struct Family {
    std::string help;
    MetricType type = MetricType::kCounter;
    std::vector<Series> series;
  };

  Series* FindOrAddSeries(const std::string& name, const std::string& help,
                          MetricType type, const Labels& labels,
                          bool* detached);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  // deques: stable addresses across growth.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace obs
}  // namespace coverage

#endif  // COVERAGE_OBS_METRICS_H_

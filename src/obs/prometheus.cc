#include "obs/prometheus.h"

#include <cmath>
#include <cstdio>

namespace coverage {
namespace obs {

namespace {

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

/// Numbers print as integers when they are one (the common counter case)
/// and otherwise with enough digits to round-trip a monitoring float.
std::string FormatValue(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

/// `{a="x",b="y"}`, empty string for no labels. `extra` appends one more
/// pair (the histogram `le`).
std::string RenderLabels(const Labels& labels, const std::string& extra_key,
                         const std::string& extra_value) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + EscapeLabelValue(value) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string EscapeHelp(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string RenderPrometheus(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& family : registry.Collect()) {
    out += "# HELP " + family.name + " " + EscapeHelp(family.help) + "\n";
    out += "# TYPE " + family.name + " " + TypeName(family.type) + "\n";
    for (const auto& series : family.series) {
      if (family.type != MetricType::kHistogram) {
        out += family.name + RenderLabels(series.labels, "", "") + " " +
               FormatValue(series.value) + "\n";
        continue;
      }
      // Cumulative buckets; our bucket i counts observations < 2^i µs, so
      // the le upper edges are exactly the bucket edges in seconds.
      std::uint64_t cumulative = 0;
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        cumulative += series.histogram.buckets[static_cast<std::size_t>(i)];
        // 54 buckets × every series would dwarf the payload; skip the empty
        // tail above the last observation, keeping at least one bucket so
        // the series parses.
        if (cumulative == series.histogram.count && i > 0 &&
            series.histogram.buckets[static_cast<std::size_t>(i)] == 0) {
          continue;
        }
        out += family.name + "_bucket" +
               RenderLabels(series.labels, "le",
                            FormatValue(
                                Histogram::BucketUpperEdgeSeconds(i))) +
               " " + FormatValue(static_cast<double>(cumulative)) + "\n";
      }
      out += family.name + "_bucket" +
             RenderLabels(series.labels, "le", "+Inf") + " " +
             FormatValue(static_cast<double>(series.histogram.count)) + "\n";
      out += family.name + "_sum" + RenderLabels(series.labels, "", "") +
             " " + FormatValue(series.histogram.sum_seconds) + "\n";
      out += family.name + "_count" + RenderLabels(series.labels, "", "") +
             " " + FormatValue(static_cast<double>(series.histogram.count)) +
             "\n";
    }
  }
  return out;
}

}  // namespace obs
}  // namespace coverage

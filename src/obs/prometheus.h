#ifndef COVERAGE_OBS_PROMETHEUS_H_
#define COVERAGE_OBS_PROMETHEUS_H_

#include <string>

#include "obs/metrics.h"

namespace coverage {
namespace obs {

/// Renders the registry in the Prometheus text exposition format (version
/// 0.0.4): one `# HELP` + `# TYPE` pair per family, families in name order,
/// series in registration order, histogram series as cumulative
/// `_bucket{le="..."}` lines plus `_sum` and `_count`. Dependency-free and
/// deterministic, so tests can assert on exact output.
std::string RenderPrometheus(const MetricsRegistry& registry);

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline become \\ , \" and \n. Exposed for the format tests.
std::string EscapeLabelValue(const std::string& value);

/// Escapes a HELP text: backslash and newline (quotes are legal there).
std::string EscapeHelp(const std::string& text);

/// The Content-Type a /metrics response should carry.
inline constexpr char kPrometheusContentType[] =
    "text/plain; version=0.0.4; charset=utf-8";

}  // namespace obs
}  // namespace coverage

#endif  // COVERAGE_OBS_PROMETHEUS_H_

#include "obs/trace.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <random>

namespace coverage {
namespace obs {

void Trace::AddStage(const std::string& name, double seconds) {
  for (auto& [existing, total] : stages_) {
    if (existing == name) {
      total += seconds;
      return;
    }
  }
  stages_.emplace_back(name, seconds);
}

double Trace::StageSum() const {
  double sum = 0.0;
  for (const auto& [name, seconds] : stages_) sum += seconds;
  return sum;
}

std::string GenerateTraceId() {
  // One random prefix per process distinguishes restarts; the atomic
  // sequence distinguishes requests within one.
  static const std::uint32_t prefix = [] {
    std::random_device rd;
    return static_cast<std::uint32_t>(rd());
  }();
  static std::atomic<std::uint64_t> sequence{0};
  char buf[32];
  std::snprintf(buf, sizeof(buf), "r-%08x-%llu", prefix,
                static_cast<unsigned long long>(
                    sequence.fetch_add(1, std::memory_order_relaxed)));
  return buf;
}

}  // namespace obs
}  // namespace coverage

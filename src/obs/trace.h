#ifndef COVERAGE_OBS_TRACE_H_
#define COVERAGE_OBS_TRACE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"

namespace coverage {
namespace obs {

/// Per-request trace: a request id (generated at the HTTP edge or accepted
/// from an X-Request-Id header) plus an ordered per-stage wall-clock
/// breakdown ("parse", "plan", "search_level_2", "wal_fsync", ...). The
/// trace is threaded *by pointer* through the layers — service → engine
/// search → persist — and every hook is null-safe, so untraced call sites
/// pay one pointer test.
///
/// A Trace belongs to exactly one request and is touched only from the
/// thread serving it (the request handler runs single-threaded even though
/// many requests run concurrently); it is NOT internally synchronised.
class Trace {
 public:
  explicit Trace(std::string id) : id_(std::move(id)) {}

  const std::string& id() const { return id_; }

  /// Records `seconds` against `name`, accumulating when the stage was
  /// already recorded (a retried stage folds into one entry; first-seen
  /// order is preserved).
  void AddStage(const std::string& name, double seconds);

  /// Stages in first-seen order.
  const std::vector<std::pair<std::string, double>>& stages() const {
    return stages_;
  }

  /// Sum of every recorded stage; the edge compares this against the
  /// request's total to expose unattributed time.
  double StageSum() const;

 private:
  std::string id_;
  std::vector<std::pair<std::string, double>> stages_;
};

/// RAII stage scope: times its own lifetime and records it on the trace at
/// destruction. A null trace makes the whole scope a no-op, so lower layers
/// hook stages unconditionally:
///
///   void DurableEngine::Mutate(..., obs::Trace* trace) {
///     { obs::ScopedStage stage(trace, "wal_append"); wal_->Append(...); }
///     ...
///   }
class ScopedStage {
 public:
  ScopedStage(Trace* trace, std::string name)
      : trace_(trace), name_(std::move(name)) {}
  ~ScopedStage() {
    if (trace_ != nullptr) trace_->AddStage(name_, timer_.ElapsedSeconds());
  }

  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  Trace* trace_;
  std::string name_;
  Stopwatch timer_;
};

/// A process-unique request id: a per-process random prefix plus a
/// monotonic sequence number (e.g. "r-3f82a1c9-42"). Cheap — no syscall per
/// call — and unique enough to grep one request across server logs.
std::string GenerateTraceId();

}  // namespace obs
}  // namespace coverage

#endif  // COVERAGE_OBS_TRACE_H_

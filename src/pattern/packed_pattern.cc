#include "pattern/packed_pattern.h"

#include <cassert>

namespace coverage {

namespace {
constexpr char kDigits[] = "0123456789abcdefghijklmnopqrstuvwxyz";
}  // namespace

StatusOr<PatternCodec> PatternCodec::Build(const Schema& schema) {
  PatternCodec codec;
  const int d = schema.num_attributes();
  codec.fields_.reserve(static_cast<std::size_t>(d));
  codec.cardinalities_ = schema.cardinalities();

  int word = 0;
  int shift = 0;
  std::size_t total_bits = 0;
  for (int attr = 0; attr < d; ++attr) {
    const int c = schema.cardinality(attr);
    assert(c >= 1);
    // c + 1 codes: values 0..c-1 plus the all-ones wildcard.
    const int bits = std::bit_width(static_cast<unsigned>(c));
    total_bits += static_cast<std::size_t>(bits);
    if (shift + bits > 64) {  // fields never straddle a word boundary
      ++word;
      shift = 0;
    }
    if (word >= PackedPattern::kMaxWords) {
      return Status::ResourceExhausted(
          "schema needs " + std::to_string(total_bits) +
          "+ packed bits across " + std::to_string(d) +
          " attributes; PackedPattern holds " +
          std::to_string(PackedPattern::kMaxWords * 64));
    }
    Field f;
    f.word = static_cast<std::uint8_t>(word);
    f.shift = static_cast<std::uint8_t>(shift);
    f.bits = static_cast<std::uint8_t>(bits);
    f.low_mask = (bits == 64) ? ~std::uint64_t{0}
                              : ((std::uint64_t{1} << bits) - 1);
    codec.fields_.push_back(f);
    shift += bits;
  }
  codec.num_words_ = d == 0 ? 1 : word + 1;

  codec.attr_of_bit_.assign(
      static_cast<std::size_t>(codec.num_words_) * 64, std::int16_t{-1});
  for (int attr = 0; attr < d; ++attr) {
    const Field& f = codec.fields_[static_cast<std::size_t>(attr)];
    codec.layout_[f.word] |= f.low_mask << f.shift;
    codec.first_bits_[f.word] |= std::uint64_t{1} << f.shift;
    codec.attr_of_bit_[static_cast<std::size_t>(f.word) * 64 + f.shift] =
        static_cast<std::int16_t>(attr);
  }
  return codec;
}

PackedPattern PatternCodec::Root() const {
  PackedPattern root;
  for (int w = 0; w < num_words_; ++w) root.words_[w] = layout_[w];
  return root;
}

PackedPattern PatternCodec::Encode(const Pattern& pattern) const {
  assert(pattern.num_attributes() == num_attributes());
  PackedPattern out;
  int level = 0;
  for (int attr = 0; attr < num_attributes(); ++attr) {
    const Field& f = fields_[static_cast<std::size_t>(attr)];
    const Value v = pattern.cell(attr);
    if (v == kWildcard) {
      out.words_[f.word] |= f.low_mask << f.shift;
    } else {
      out.words_[f.word] |= static_cast<std::uint64_t>(v) << f.shift;
      out.det_[f.word] |= f.low_mask << f.shift;
      ++level;
    }
  }
  out.level_ = static_cast<std::int16_t>(level);
  return out;
}

PackedPattern PatternCodec::EncodeTuple(std::span<const Value> tuple) const {
  assert(static_cast<int>(tuple.size()) == num_attributes());
  PackedPattern out;
  for (int attr = 0; attr < num_attributes(); ++attr) {
    const Field& f = fields_[static_cast<std::size_t>(attr)];
    out.words_[f.word] |= static_cast<std::uint64_t>(tuple[attr]) << f.shift;
    out.det_[f.word] |= f.low_mask << f.shift;
  }
  out.level_ = static_cast<std::int16_t>(num_attributes());
  return out;
}

Pattern PatternCodec::Decode(const PackedPattern& packed) const {
  std::vector<Value> cells(static_cast<std::size_t>(num_attributes()));
  for (int attr = 0; attr < num_attributes(); ++attr) {
    cells[static_cast<std::size_t>(attr)] = cell(packed, attr);
  }
  return Pattern(std::move(cells));
}

int PatternCodec::RightmostDeterministic(const PackedPattern& p) const {
  for (int w = num_words_ - 1; w >= 0; --w) {
    const std::uint64_t bits = p.det_[w] & first_bits_[w];
    if (bits != 0) {
      const int bit = 63 - std::countl_zero(bits);
      return attr_of_bit_[static_cast<std::size_t>(w * 64 + bit)];
    }
  }
  return -1;
}

int PatternCodec::RightmostWildcard(const PackedPattern& p) const {
  for (int w = num_words_ - 1; w >= 0; --w) {
    const std::uint64_t bits = (layout_[w] & ~p.det_[w]) & first_bits_[w];
    if (bits != 0) {
      const int bit = 63 - std::countl_zero(bits);
      return attr_of_bit_[static_cast<std::size_t>(w * 64 + bit)];
    }
  }
  return -1;
}

std::string PatternCodec::ToString(const PackedPattern& p) const {
  std::string out;
  out.reserve(static_cast<std::size_t>(num_attributes()));
  for (int attr = 0; attr < num_attributes(); ++attr) {
    const Value v = cell(p, attr);
    if (v == kWildcard) {
      out.push_back('X');
    } else if (v < 36) {
      out.push_back(kDigits[v]);
    } else {
      out.push_back('(');
      out += std::to_string(v);
      out.push_back(')');
    }
  }
  return out;
}

std::string PatternCodec::ToLabelledString(const PackedPattern& p,
                                           const Schema& schema) const {
  assert(schema.num_attributes() == num_attributes());
  std::string out;
  for (int attr = 0; attr < num_attributes(); ++attr) {
    const Value v = cell(p, attr);
    if (v == kWildcard) continue;
    if (!out.empty()) out += ", ";
    out += schema.attribute(attr).name;
    out += '=';
    out += schema.attribute(attr).value_names[static_cast<std::size_t>(v)];
  }
  return out.empty() ? "<any>" : out;
}

bool PatternCodec::Less(const PackedPattern& a, const PackedPattern& b) const {
  for (int attr = 0; attr < num_attributes(); ++attr) {
    const Value va = cell(a, attr);
    const Value vb = cell(b, attr);
    if (va != vb) return va < vb;  // kWildcard == -1 sorts first
  }
  return false;
}

}  // namespace coverage

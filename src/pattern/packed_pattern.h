#ifndef COVERAGE_PATTERN_PACKED_PATTERN_H_
#define COVERAGE_PATTERN_PACKED_PATTERN_H_

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "dataset/schema.h"
#include "pattern/pattern.h"

namespace coverage {

class PatternCodec;

/// Fixed-width pattern key. Each attribute occupies a variable-width bit
/// field (ceil(log2(c+1)) bits, laid out by PatternCodec); a deterministic
/// cell stores its value, a wildcard stores the field's all-ones code. The
/// all-ones wildcard encoding makes the value words alone a unique key, so
/// equality and hashing are O(words) with no schema in sight.
///
/// Alongside the value words we keep a field-expanded deterministic mask
/// (every bit of a deterministic field set) and the level, both maintained
/// incrementally by PatternCodec's mutators. They are derived from the value
/// words + codec and deliberately excluded from equality/hash.
///
/// Dominance (paper Definition 9) collapses to word ops:
///   P ⪰ Q  ⇔  (P.words ^ Q.words) & P.det == 0   for every word.
/// If Q leaves one of P's deterministic fields wild, that field reads
/// all-ones in Q and the XOR trips; no per-cell loop needed.
class PackedPattern {
 public:
  /// 256 bits of value payload: covers e.g. 36 attributes of cardinality 30
  /// (the paper's 3^36 regime packs into 72 bits). Schemas that need more
  /// fall back to the legacy vector<int> representation.
  static constexpr int kMaxWords = 4;

  PackedPattern() = default;

  bool operator==(const PackedPattern& other) const {
    return words_ == other.words_;
  }
  bool operator!=(const PackedPattern& other) const {
    return !(*this == other);
  }

  /// Number of deterministic cells, O(1).
  int level() const { return level_; }

  /// True iff this pattern dominates-or-equals `other` (every deterministic
  /// cell of ours fixed identically in `other`). O(words).
  bool DominatesOrEquals(const PackedPattern& other) const {
    std::uint64_t diff = 0;
    for (int w = 0; w < kMaxWords; ++w) {
      diff |= (words_[w] ^ other.words_[w]) & det_[w];
    }
    return diff == 0;
  }

  /// Strict dominance: DominatesOrEquals and not equal. O(words).
  bool Dominates(const PackedPattern& other) const {
    return DominatesOrEquals(other) && words_ != other.words_;
  }

  /// Mixed multiply-xor over the value words; for unordered containers and
  /// the open-addressing tables in packed_set.h.
  std::size_t Hash() const {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (int w = 0; w < kMaxWords; ++w) {
      std::uint64_t x = words_[w];
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 31;
      h = (h ^ x) * 0x94d049bb133111ebull;
    }
    return static_cast<std::size_t>(h ^ (h >> 29));
  }

  std::uint64_t word(int w) const {
    return words_[static_cast<std::size_t>(w)];
  }
  std::uint64_t det_word(int w) const {
    return det_[static_cast<std::size_t>(w)];
  }

 private:
  friend class PatternCodec;

  std::array<std::uint64_t, kMaxWords> words_{};
  std::array<std::uint64_t, kMaxWords> det_{};
  std::int16_t level_ = 0;
};

struct PackedPatternHash {
  std::size_t operator()(const PackedPattern& p) const { return p.Hash(); }
};

/// Bit layout for one schema: where each attribute's field lives and how to
/// move patterns between the packed and vector<int> representations. Built
/// once per schema (Build fails with kResourceExhausted when the schema
/// exceeds PackedPattern::kMaxWords * 64 bits; callers fall back to the
/// legacy representation). Fields never straddle a word boundary, so a field
/// that does not fit in the current word's remaining bits starts the next
/// word — this is what puts the 33rd binary attribute (2-bit fields) into
/// word 1 and keeps every field extractable with one shift+mask.
class PatternCodec {
 public:
  PatternCodec() = default;

  static StatusOr<PatternCodec> Build(const Schema& schema);

  int num_attributes() const { return static_cast<int>(fields_.size()); }
  int num_words() const { return num_words_; }

  /// The all-wildcard root pattern.
  PackedPattern Root() const;

  /// Packs an existing vector<int>-shaped pattern.
  PackedPattern Encode(const Pattern& pattern) const;

  /// Packs a fully deterministic value combination.
  PackedPattern EncodeTuple(std::span<const Value> tuple) const;

  /// Unpacks to the legacy representation.
  Pattern Decode(const PackedPattern& packed) const;

  /// Cell accessors, O(1).
  Value cell(const PackedPattern& p, int attr) const {
    const Field& f = fields_[static_cast<std::size_t>(attr)];
    const std::uint64_t code = (p.words_[f.word] >> f.shift) & f.low_mask;
    return code == f.low_mask ? kWildcard : static_cast<Value>(code);
  }
  bool is_deterministic(const PackedPattern& p, int attr) const {
    const Field& f = fields_[static_cast<std::size_t>(attr)];
    return (p.det_[f.word] >> f.shift) & 1u;
  }

  /// Returns a copy with attribute `attr` set to `v` (kWildcard allowed).
  /// O(1); level and the deterministic mask are maintained incrementally.
  PackedPattern WithCell(const PackedPattern& p, int attr, Value v) const {
    const Field& f = fields_[static_cast<std::size_t>(attr)];
    PackedPattern out = p;
    const bool was_det = (p.det_[f.word] >> f.shift) & 1u;
    const std::uint64_t field_mask = f.low_mask << f.shift;
    out.words_[f.word] &= ~field_mask;
    if (v == kWildcard) {
      out.words_[f.word] |= field_mask;  // all-ones wildcard code
      out.det_[f.word] &= ~field_mask;
      out.level_ = static_cast<std::int16_t>(p.level_ - (was_det ? 1 : 0));
    } else {
      out.words_[f.word] |= static_cast<std::uint64_t>(v) << f.shift;
      out.det_[f.word] |= field_mask;
      out.level_ = static_cast<std::int16_t>(p.level_ + (was_det ? 0 : 1));
    }
    return out;
  }

  /// Index of the right-most deterministic cell, or -1 if none. O(words).
  int RightmostDeterministic(const PackedPattern& p) const;

  /// Index of the right-most wildcard cell, or -1 if none. O(words).
  int RightmostWildcard(const PackedPattern& p) const;

  /// Calls `fn(attr)` for each deterministic attribute, ascending. O(level)
  /// plus a word scan; no allocation — this replaces Pattern::Parents() in
  /// the packed search loops (parent = WithCell(attr, kWildcard)).
  template <typename Fn>
  void ForEachDeterministic(const PackedPattern& p, Fn&& fn) const {
    for (int w = 0; w < num_words_; ++w) {
      std::uint64_t bits = p.det_[w] & first_bits_[w];
      while (bits != 0) {
        const int bit = std::countr_zero(bits);
        bits &= bits - 1;
        fn(attr_of_bit_[static_cast<std::size_t>(w * 64 + bit)]);
      }
    }
  }

  /// Calls `fn(attr)` for each wildcard attribute, ascending.
  template <typename Fn>
  void ForEachWildcard(const PackedPattern& p, Fn&& fn) const {
    for (int w = 0; w < num_words_; ++w) {
      std::uint64_t bits = (layout_[w] & ~p.det_[w]) & first_bits_[w];
      while (bits != 0) {
        const int bit = std::countr_zero(bits);
        bits &= bits - 1;
        fn(attr_of_bit_[static_cast<std::size_t>(w * 64 + bit)]);
      }
    }
  }

  int cardinality(int attr) const {
    return cardinalities_[static_cast<std::size_t>(attr)];
  }

  /// Same rendering as Pattern::ToString / ToLabelledString, straight from
  /// the packed form (the wire encoder uses these so audit responses never
  /// materialize a vector<int> per MUP).
  std::string ToString(const PackedPattern& p) const;
  std::string ToLabelledString(const PackedPattern& p,
                               const Schema& schema) const;

  /// Cell-wise lexicographic comparison matching Pattern::operator<
  /// (wildcard sorts first), so packed result sets sort into the same order
  /// the legacy representation reports.
  bool Less(const PackedPattern& a, const PackedPattern& b) const;

 private:
  struct Field {
    std::uint8_t word = 0;
    std::uint8_t shift = 0;
    std::uint8_t bits = 0;
    std::uint64_t low_mask = 0;  // (1 << bits) - 1, unshifted
  };

  std::vector<Field> fields_;
  std::vector<int> cardinalities_;
  std::array<std::uint64_t, PackedPattern::kMaxWords> layout_{};
  std::array<std::uint64_t, PackedPattern::kMaxWords> first_bits_{};
  std::vector<std::int16_t> attr_of_bit_;  // num_words * 64, -1 when unused
  int num_words_ = 1;
};

/// Sort helper: strict weak order matching Pattern::operator<.
struct PackedLess {
  const PatternCodec* codec;
  bool operator()(const PackedPattern& a, const PackedPattern& b) const {
    return codec->Less(a, b);
  }
};

}  // namespace coverage

#endif  // COVERAGE_PATTERN_PACKED_PATTERN_H_

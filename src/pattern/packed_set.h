#ifndef COVERAGE_PATTERN_PACKED_SET_H_
#define COVERAGE_PATTERN_PACKED_SET_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <utility>

#include "common/arena.h"
#include "pattern/packed_pattern.h"

namespace coverage {

/// Open-addressing hash set of PackedPattern keys, storage carved from an
/// Arena. Linear probing over a power-of-two table with a parallel byte of
/// occupancy state — the all-zero pattern is a legal key, so there is no
/// in-band empty sentinel. Rehashing allocates fresh arrays and strands the
/// old ones in the arena; the intended lifetime is one BFS level or one
/// search, after which the owner resets the arena wholesale.
///
/// No erase: the search frontiers only ever insert, and dropping tombstone
/// logic keeps the probe loop two compares long.
class PackedPatternSet {
 public:
  explicit PackedPatternSet(Arena* arena, std::size_t expected = 0)
      : arena_(arena) {
    std::size_t capacity = kMinCapacity;
    while (capacity * kMaxLoadNum < expected * kMaxLoadDen) capacity *= 2;
    AllocateTable(capacity);
  }

  /// Inserts `key`; returns false if it was already present.
  bool Insert(const PackedPattern& key) {
    if ((size_ + 1) * kMaxLoadDen > capacity_ * kMaxLoadNum) Rehash();
    std::size_t i = key.Hash() & (capacity_ - 1);
    while (states_[i] != 0) {
      if (keys_[i] == key) return false;
      i = (i + 1) & (capacity_ - 1);
    }
    states_[i] = 1;
    keys_[i] = key;
    ++size_;
    return true;
  }

  bool Contains(const PackedPattern& key) const {
    std::size_t i = key.Hash() & (capacity_ - 1);
    while (states_[i] != 0) {
      if (keys_[i] == key) return true;
      i = (i + 1) & (capacity_ - 1);
    }
    return false;
  }

  std::size_t size() const { return size_; }

 private:
  void AllocateTable(std::size_t capacity) {
    capacity_ = capacity;
    keys_ = arena_->AllocateArray<PackedPattern>(capacity);
    states_ = arena_->AllocateArray<std::uint8_t>(capacity);
    std::memset(states_, 0, capacity);
  }

  void Rehash() {
    const PackedPattern* old_keys = keys_;
    const std::uint8_t* old_states = states_;
    const std::size_t old_capacity = capacity_;
    AllocateTable(capacity_ * 2);
    for (std::size_t i = 0; i < old_capacity; ++i) {
      if (old_states[i] == 0) continue;
      std::size_t j = old_keys[i].Hash() & (capacity_ - 1);
      while (states_[j] != 0) j = (j + 1) & (capacity_ - 1);
      states_[j] = 1;
      keys_[j] = old_keys[i];
    }
  }

  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kMaxLoadNum = 7;  // grow past 7/10 load
  static constexpr std::size_t kMaxLoadDen = 10;

  Arena* arena_;
  PackedPattern* keys_ = nullptr;
  std::uint8_t* states_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
};

/// Open-addressing map from PackedPattern to a trivially copyable value;
/// same layout and lifetime story as PackedPatternSet.
template <typename V>
class PackedPatternMap {
  static_assert(std::is_trivially_copyable_v<V>);

 public:
  explicit PackedPatternMap(Arena* arena, std::size_t expected = 0)
      : arena_(arena) {
    std::size_t capacity = kMinCapacity;
    while (capacity * kMaxLoadNum < expected * kMaxLoadDen) capacity *= 2;
    AllocateTable(capacity);
  }

  /// Returns the value slot for `key`, inserting `initial` first if absent.
  V& FindOrInsert(const PackedPattern& key, const V& initial) {
    if ((size_ + 1) * kMaxLoadDen > capacity_ * kMaxLoadNum) Rehash();
    std::size_t i = key.Hash() & (capacity_ - 1);
    while (states_[i] != 0) {
      if (keys_[i] == key) return values_[i];
      i = (i + 1) & (capacity_ - 1);
    }
    states_[i] = 1;
    keys_[i] = key;
    values_[i] = initial;
    ++size_;
    return values_[i];
  }

  /// Returns the value for `key`, or nullptr.
  const V* Find(const PackedPattern& key) const {
    std::size_t i = key.Hash() & (capacity_ - 1);
    while (states_[i] != 0) {
      if (keys_[i] == key) return &values_[i];
      i = (i + 1) & (capacity_ - 1);
    }
    return nullptr;
  }

  /// Visits every (key, value) pair. Iteration order is the table's probe
  /// order — callers that need determinism must sort what they build from it.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (states_[i] != 0) fn(keys_[i], values_[i]);
    }
  }

  std::size_t size() const { return size_; }

 private:
  void AllocateTable(std::size_t capacity) {
    capacity_ = capacity;
    keys_ = arena_->AllocateArray<PackedPattern>(capacity);
    values_ = arena_->AllocateArray<V>(capacity);
    states_ = arena_->AllocateArray<std::uint8_t>(capacity);
    std::memset(states_, 0, capacity);
  }

  void Rehash() {
    const PackedPattern* old_keys = keys_;
    const V* old_values = values_;
    const std::uint8_t* old_states = states_;
    const std::size_t old_capacity = capacity_;
    AllocateTable(capacity_ * 2);
    for (std::size_t i = 0; i < old_capacity; ++i) {
      if (old_states[i] == 0) continue;
      std::size_t j = old_keys[i].Hash() & (capacity_ - 1);
      while (states_[j] != 0) j = (j + 1) & (capacity_ - 1);
      states_[j] = 1;
      keys_[j] = old_keys[i];
      values_[j] = old_values[i];
    }
  }

  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 10;

  Arena* arena_;
  PackedPattern* keys_ = nullptr;
  V* values_ = nullptr;
  std::uint8_t* states_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
};

}  // namespace coverage

#endif  // COVERAGE_PATTERN_PACKED_SET_H_

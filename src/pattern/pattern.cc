#include "pattern/pattern.h"

#include <cassert>

namespace coverage {

namespace {
constexpr char kDigits[] = "0123456789abcdefghijklmnopqrstuvwxyz";

int DigitValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'z') return c - 'a' + 10;
  if (c >= 'A' && c <= 'Z') return c - 'A' + 10;
  return -1;
}
}  // namespace

Pattern Pattern::Root(int d) {
  assert(d >= 0);
  return Pattern(std::vector<Value>(static_cast<std::size_t>(d), kWildcard));
}

Pattern Pattern::FromTuple(std::span<const Value> tuple) {
  return Pattern(std::vector<Value>(tuple.begin(), tuple.end()));
}

Pattern::Pattern(std::vector<Value> cells) : cells_(std::move(cells)) {
#ifndef NDEBUG
  for (Value v : cells_) assert(v == kWildcard || v >= 0);
#endif
}

StatusOr<Pattern> Pattern::Parse(const std::string& text,
                                 const Schema& schema) {
  if (static_cast<int>(text.size()) != schema.num_attributes()) {
    return Status::InvalidArgument(
        "pattern '" + text + "' has " + std::to_string(text.size()) +
        " cells, schema has " + std::to_string(schema.num_attributes()));
  }
  std::vector<Value> cells(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == 'X' || c == 'x') {
      cells[i] = kWildcard;
      continue;
    }
    const int v = DigitValue(c);
    if (v < 0) {
      return Status::InvalidArgument("pattern '" + text +
                                     "' has invalid cell '" +
                                     std::string(1, c) + "'");
    }
    if (v >= schema.cardinality(static_cast<int>(i))) {
      return Status::OutOfRange(
          "pattern '" + text + "' cell " + std::to_string(i) + " value " +
          std::to_string(v) + " exceeds cardinality " +
          std::to_string(schema.cardinality(static_cast<int>(i))));
    }
    cells[i] = static_cast<Value>(v);
  }
  return Pattern(std::move(cells));
}

int Pattern::level() const {
  int level = 0;
  for (Value v : cells_) level += (v != kWildcard);
  return level;
}

bool Pattern::Matches(std::span<const Value> tuple) const {
  assert(tuple.size() == cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i] != kWildcard && cells_[i] != tuple[i]) return false;
  }
  return true;
}

bool Pattern::Dominates(const Pattern& other) const {
  assert(cells_.size() == other.cells_.size());
  bool strictly_more_general = false;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i] == kWildcard) {
      if (other.cells_[i] != kWildcard) strictly_more_general = true;
      continue;
    }
    if (cells_[i] != other.cells_[i]) return false;
  }
  return strictly_more_general;
}

bool Pattern::DominatesOrEquals(const Pattern& other) const {
  assert(cells_.size() == other.cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i] != kWildcard && cells_[i] != other.cells_[i]) return false;
  }
  return true;
}

Pattern Pattern::WithCell(int i, Value v) const {
  assert(i >= 0 && i < num_attributes());
  Pattern copy = *this;
  copy.cells_[static_cast<std::size_t>(i)] = v;
  return copy;
}

std::vector<Pattern> Pattern::Parents() const {
  std::vector<Pattern> parents;
  parents.reserve(static_cast<std::size_t>(level()));
  for (int i = 0; i < num_attributes(); ++i) {
    if (is_deterministic(i)) parents.push_back(WithCell(i, kWildcard));
  }
  return parents;
}

int Pattern::RightmostDeterministic() const {
  for (int i = num_attributes() - 1; i >= 0; --i) {
    if (is_deterministic(i)) return i;
  }
  return -1;
}

int Pattern::RightmostWildcard() const {
  for (int i = num_attributes() - 1; i >= 0; --i) {
    if (!is_deterministic(i)) return i;
  }
  return -1;
}

std::uint64_t Pattern::ValueCount(const Schema& schema) const {
  assert(schema.num_attributes() == num_attributes());
  std::uint64_t total = 1;
  for (int i = 0; i < num_attributes(); ++i) {
    if (is_deterministic(i)) continue;
    const auto c = static_cast<std::uint64_t>(schema.cardinality(i));
    if (total > Schema::kCombinationLimit / c) {
      return Schema::kCombinationLimit;
    }
    total *= c;
  }
  return total;
}

std::string Pattern::ToString() const {
  std::string out;
  out.reserve(cells_.size());
  for (Value v : cells_) {
    if (v == kWildcard) {
      out.push_back('X');
    } else if (v < 36) {
      out.push_back(kDigits[v]);
    } else {
      out.push_back('(');
      out += std::to_string(v);
      out.push_back(')');
    }
  }
  return out;
}

std::string Pattern::ToLabelledString(const Schema& schema) const {
  assert(schema.num_attributes() == num_attributes());
  std::string out;
  for (int i = 0; i < num_attributes(); ++i) {
    if (!is_deterministic(i)) continue;
    if (!out.empty()) out += ", ";
    out += schema.attribute(i).name;
    out += '=';
    out += schema.attribute(i)
               .value_names[static_cast<std::size_t>(cell(i))];
  }
  return out.empty() ? "<any>" : out;
}

std::size_t Pattern::Hash() const {
  std::size_t h = 1469598103934665603ull;  // FNV offset basis
  for (Value v : cells_) {
    h ^= static_cast<std::size_t>(static_cast<std::uint16_t>(v));
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

}  // namespace coverage

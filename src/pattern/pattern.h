#ifndef COVERAGE_PATTERN_PATTERN_H_
#define COVERAGE_PATTERN_PATTERN_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "dataset/schema.h"

namespace coverage {

/// The wildcard cell value, written `X` in the paper (Definition 1).
inline constexpr Value kWildcard = -1;

/// A pattern over `d` categorical attributes (paper, Definition 1): each cell
/// is either a concrete attribute value ("deterministic") or the wildcard `X`
/// ("non-deterministic").
class Pattern {
 public:
  Pattern() = default;

  /// The all-wildcard root pattern `XX...X` over `d` attributes.
  static Pattern Root(int d);

  /// A fully deterministic pattern equal to a value combination.
  static Pattern FromTuple(std::span<const Value> tuple);

  /// Builds from explicit cells; each must be `kWildcard` or >= 0.
  explicit Pattern(std::vector<Value> cells);

  /// Parses the paper notation, e.g. "X1X0". Cells are single characters:
  /// 'X'/'x' for the wildcard, otherwise a base-36 digit (0-9, a-z) so that
  /// cardinalities up to 36 round-trip. Validated against `schema`.
  static StatusOr<Pattern> Parse(const std::string& text,
                                 const Schema& schema);

  int num_attributes() const { return static_cast<int>(cells_.size()); }

  Value cell(int i) const { return cells_[static_cast<std::size_t>(i)]; }
  bool is_deterministic(int i) const {
    return cells_[static_cast<std::size_t>(i)] != kWildcard;
  }
  const std::vector<Value>& cells() const { return cells_; }

  /// Number of deterministic cells — the pattern's level ℓ(P) (§II).
  int level() const;

  /// M(t, P): every deterministic cell of P equals the tuple's value (Eq. 1).
  bool Matches(std::span<const Value> tuple) const;

  /// True iff this pattern dominates `other`: `other`'s matches are a subset
  /// of ours because every deterministic cell of ours is fixed identically in
  /// `other`, and `other` has at least one more deterministic cell.
  /// A pattern does not dominate itself.
  bool Dominates(const Pattern& other) const;

  /// Dominates(other) || *this == other.
  bool DominatesOrEquals(const Pattern& other) const;

  /// Returns a copy with cell `i` replaced by `v`.
  Pattern WithCell(int i, Value v) const;

  /// All parents: each deterministic cell relaxed to X (Definition 4).
  std::vector<Pattern> Parents() const;

  /// Index of the right-most deterministic cell, or -1 if none.
  int RightmostDeterministic() const;

  /// Index of the right-most wildcard cell, or -1 if none.
  int RightmostWildcard() const;

  /// Value count (Definition 7): number of full value combinations matching
  /// this pattern, i.e. Π c_i over wildcard cells. Saturates at
  /// Schema::kCombinationLimit.
  std::uint64_t ValueCount(const Schema& schema) const;

  /// Paper notation, e.g. "X1X0" (base-36 digits for values >= 10).
  std::string ToString() const;

  /// Human-readable rendering with attribute and value names, e.g.
  /// "race=Hispanic, marital=widowed"; the all-wildcard pattern renders as
  /// "<any>".
  std::string ToLabelledString(const Schema& schema) const;

  bool operator==(const Pattern& other) const { return cells_ == other.cells_; }
  bool operator!=(const Pattern& other) const { return !(*this == other); }

  /// Lexicographic order on cells (wildcard sorts first); gives deterministic
  /// output ordering for tests and reports.
  bool operator<(const Pattern& other) const { return cells_ < other.cells_; }

  /// FNV-1a over the cells; for unordered containers.
  std::size_t Hash() const;

 private:
  std::vector<Value> cells_;
};

struct PatternHash {
  std::size_t operator()(const Pattern& p) const { return p.Hash(); }
};

}  // namespace coverage

#endif  // COVERAGE_PATTERN_PATTERN_H_

#include "pattern/pattern_graph.h"

#include <cassert>

namespace coverage {

namespace {

// Walks all subsets of attributes of size `remaining` starting at `attr`,
// multiplying cardinalities; accumulates into `total` with saturation.
void SumSubsetProducts(const Schema& schema, int attr, int remaining,
                       std::uint64_t product, std::uint64_t& total) {
  if (remaining == 0) {
    if (total > Schema::kCombinationLimit - product) {
      total = Schema::kCombinationLimit;
    } else {
      total += product;
    }
    return;
  }
  for (int i = attr; i <= schema.num_attributes() - remaining; ++i) {
    const auto c = static_cast<std::uint64_t>(schema.cardinality(i));
    if (product > Schema::kCombinationLimit / c) {
      total = Schema::kCombinationLimit;
      return;
    }
    SumSubsetProducts(schema, i + 1, remaining - 1, product * c, total);
    if (total == Schema::kCombinationLimit) return;
  }
}

void EnumerateLevelRec(const Schema& schema, const Pattern& current, int attr,
                       int remaining, std::uint64_t limit,
                       std::vector<Pattern>& out, bool& overflowed) {
  if (overflowed) return;
  if (remaining == 0) {
    if (out.size() >= limit) {
      overflowed = true;
      return;
    }
    out.push_back(current);
    return;
  }
  for (int i = attr; i <= schema.num_attributes() - remaining; ++i) {
    for (Value v = 0; v < static_cast<Value>(schema.cardinality(i)); ++v) {
      EnumerateLevelRec(schema, current.WithCell(i, v), i + 1, remaining - 1,
                        limit, out, overflowed);
      if (overflowed) return;
    }
  }
}

}  // namespace

std::uint64_t PatternGraph::NumNodesAtLevel(int level) const {
  assert(level >= 0 && level <= schema_.num_attributes());
  std::uint64_t total = 0;
  SumSubsetProducts(schema_, 0, level, 1, total);
  return total;
}

std::uint64_t PatternGraph::NumEdges() const {
  // Each pattern P has one downward edge per (wildcard cell i, value of A_i).
  // Summing over all patterns: for each attribute i, the number of patterns
  // in which cell i is a wildcard is Π_{j≠i}(c_j + 1), each contributing c_i
  // edges.
  std::uint64_t total = 0;
  for (int i = 0; i < schema_.num_attributes(); ++i) {
    std::uint64_t others = 1;
    for (int j = 0; j < schema_.num_attributes(); ++j) {
      if (j == i) continue;
      const auto f = static_cast<std::uint64_t>(schema_.cardinality(j) + 1);
      if (others > Schema::kCombinationLimit / f) {
        return Schema::kCombinationLimit;
      }
      others *= f;
    }
    const auto ci = static_cast<std::uint64_t>(schema_.cardinality(i));
    if (others > Schema::kCombinationLimit / ci) {
      return Schema::kCombinationLimit;
    }
    const std::uint64_t edges = others * ci;
    if (total > Schema::kCombinationLimit - edges) {
      return Schema::kCombinationLimit;
    }
    total += edges;
  }
  return total;
}

StatusOr<std::vector<Pattern>> PatternGraph::EnumerateAll(
    std::uint64_t limit) const {
  if (NumNodes() > limit) {
    return Status::ResourceExhausted(
        "pattern graph has " + std::to_string(NumNodes()) +
        " nodes, limit is " + std::to_string(limit));
  }
  std::vector<Pattern> out;
  out.reserve(NumNodes());
  for (int level = 0; level <= schema_.num_attributes(); ++level) {
    auto at_level = EnumerateLevel(level, limit - out.size());
    if (!at_level.ok()) return at_level.status();
    for (auto& p : *at_level) out.push_back(std::move(p));
  }
  return out;
}

StatusOr<std::vector<Pattern>> PatternGraph::EnumerateLevel(
    int level, std::uint64_t limit) const {
  if (level < 0 || level > schema_.num_attributes()) {
    return Status::InvalidArgument("level " + std::to_string(level) +
                                   " outside [0, d]");
  }
  std::vector<Pattern> out;
  bool overflowed = false;
  EnumerateLevelRec(schema_, Pattern::Root(schema_.num_attributes()), 0, level,
                    limit, out, overflowed);
  if (overflowed) {
    return Status::ResourceExhausted("more than " + std::to_string(limit) +
                                     " patterns at level " +
                                     std::to_string(level));
  }
  return out;
}

}  // namespace coverage

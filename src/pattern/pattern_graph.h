#ifndef COVERAGE_PATTERN_PATTERN_GRAPH_H_
#define COVERAGE_PATTERN_PATTERN_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "dataset/schema.h"
#include "pattern/pattern.h"

namespace coverage {

/// Combinatorics of the pattern graph (paper §III-B). The graph itself is
/// never materialised by the search algorithms — these helpers exist for
/// analyses, tests, and the naive baseline.
class PatternGraph {
 public:
  explicit PatternGraph(Schema schema) : schema_(std::move(schema)) {}

  /// Π (c_i + 1) — total nodes.
  std::uint64_t NumNodes() const { return schema_.NumPatterns(); }

  /// Number of nodes at level ℓ: Σ over ℓ-subsets S of attributes of
  /// Π_{i∈S} c_i. (For uniform cardinality c this is C(d, ℓ)·c^ℓ.)
  std::uint64_t NumNodesAtLevel(int level) const;

  /// Number of parent-child edges: each node at level ℓ has
  /// Σ_{wildcard i} c_i children. (For uniform cardinality c this totals
  /// c·d·(c+1)^{d-1}, the closed form verified in §III-B.)
  std::uint64_t NumEdges() const;

  /// Enumerates every pattern in the graph, level by level (lexicographic
  /// within a level). ResourceExhausted if there are more than `limit` nodes.
  /// This is the naive algorithm's iteration space.
  StatusOr<std::vector<Pattern>> EnumerateAll(std::uint64_t limit) const;

  /// Enumerates every pattern at exactly `level`. ResourceExhausted if more
  /// than `limit`.
  StatusOr<std::vector<Pattern>> EnumerateLevel(int level,
                                                std::uint64_t limit) const;

 private:
  Schema schema_;
};

}  // namespace coverage

#endif  // COVERAGE_PATTERN_PATTERN_GRAPH_H_

#include "pattern/pattern_ops.h"

#include <cassert>

namespace coverage {

std::vector<Pattern> Rule1Children(const Pattern& pattern,
                                   const Schema& schema) {
  std::vector<Pattern> children;
  const int start = pattern.RightmostDeterministic() + 1;
  for (int i = start; i < pattern.num_attributes(); ++i) {
    if (pattern.is_deterministic(i)) continue;
    for (Value v = 0; v < static_cast<Value>(schema.cardinality(i)); ++v) {
      children.push_back(pattern.WithCell(i, v));
    }
  }
  return children;
}

Pattern Rule1Generator(const Pattern& pattern) {
  const int i = pattern.RightmostDeterministic();
  assert(i >= 0 && "the root has no Rule-1 generator");
  return pattern.WithCell(i, kWildcard);
}

std::vector<Pattern> Rule2Parents(const Pattern& pattern) {
  std::vector<Pattern> parents;
  const int start = pattern.RightmostWildcard() + 1;
  for (int i = start; i < pattern.num_attributes(); ++i) {
    if (pattern.cell(i) == 0) {
      parents.push_back(pattern.WithCell(i, kWildcard));
    }
  }
  return parents;
}

Pattern Rule2Generator(const Pattern& pattern) {
  const int i = pattern.RightmostWildcard();
  assert(i >= 0 && "fully deterministic patterns have no Rule-2 generator");
  return pattern.WithCell(i, 0);
}

std::vector<Pattern> PartitionChildren(const Pattern& pattern,
                                       const Schema& schema, int attr) {
  assert(!pattern.is_deterministic(attr));
  std::vector<Pattern> children;
  children.reserve(static_cast<std::size_t>(schema.cardinality(attr)));
  for (Value v = 0; v < static_cast<Value>(schema.cardinality(attr)); ++v) {
    children.push_back(pattern.WithCell(attr, v));
  }
  return children;
}

namespace {

void ExpandDescendants(const Pattern& current, const Schema& schema,
                       int next_attr, int remaining, std::uint64_t limit,
                       std::vector<Pattern>& out, bool& overflowed) {
  if (overflowed) return;
  if (remaining == 0) {
    if (out.size() >= limit) {
      overflowed = true;
      return;
    }
    out.push_back(current);
    return;
  }
  // Fix wildcards left-to-right starting at next_attr; enumerating positions
  // in increasing order generates every descendant exactly once.
  for (int i = next_attr; i < current.num_attributes(); ++i) {
    if (current.is_deterministic(i)) continue;
    for (Value v = 0; v < static_cast<Value>(schema.cardinality(i)); ++v) {
      ExpandDescendants(current.WithCell(i, v), schema, i + 1, remaining - 1,
                        limit, out, overflowed);
      if (overflowed) return;
    }
  }
}

}  // namespace

StatusOr<std::vector<Pattern>> DescendantsAtLevel(const Pattern& pattern,
                                                  const Schema& schema,
                                                  int target_level,
                                                  std::uint64_t limit) {
  const int level = pattern.level();
  if (target_level < level || target_level > pattern.num_attributes()) {
    return Status::InvalidArgument(
        "target level " + std::to_string(target_level) +
        " outside [" + std::to_string(level) + ", " +
        std::to_string(pattern.num_attributes()) + "]");
  }
  std::vector<Pattern> out;
  bool overflowed = false;
  ExpandDescendants(pattern, schema, 0, target_level - level, limit, out,
                    overflowed);
  if (overflowed) {
    return Status::ResourceExhausted(
        "descendant expansion of " + pattern.ToString() + " at level " +
        std::to_string(target_level) + " exceeds limit " +
        std::to_string(limit));
  }
  return out;
}

Status ForEachMatchingCombination(
    const Pattern& pattern, const Schema& schema, std::uint64_t limit,
    const std::function<void(const std::vector<Value>&)>& fn) {
  if (pattern.ValueCount(schema) > limit) {
    return Status::ResourceExhausted(
        "pattern " + pattern.ToString() + " matches more than " +
        std::to_string(limit) + " combinations");
  }
  const int d = pattern.num_attributes();
  std::vector<Value> combo(static_cast<std::size_t>(d));
  std::vector<int> free_attrs;
  for (int i = 0; i < d; ++i) {
    if (pattern.is_deterministic(i)) {
      combo[static_cast<std::size_t>(i)] = pattern.cell(i);
    } else {
      combo[static_cast<std::size_t>(i)] = 0;
      free_attrs.push_back(i);
    }
  }
  while (true) {
    fn(combo);
    // Odometer increment over the wildcard positions, right-most fastest.
    int k = static_cast<int>(free_attrs.size()) - 1;
    for (; k >= 0; --k) {
      const int attr = free_attrs[static_cast<std::size_t>(k)];
      auto& cell = combo[static_cast<std::size_t>(attr)];
      if (cell + 1 < static_cast<Value>(schema.cardinality(attr))) {
        ++cell;
        break;
      }
      cell = 0;
    }
    if (k < 0) break;
  }
  return Status::OK();
}

Pattern Unify(const std::vector<Pattern>& patterns) {
  assert(!patterns.empty());
  std::vector<Value> cells(patterns[0].cells());
  for (std::size_t p = 1; p < patterns.size(); ++p) {
    assert(patterns[p].num_attributes() == patterns[0].num_attributes());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Value v = patterns[p].cells()[i];
      if (v == kWildcard) continue;
      assert(cells[i] == kWildcard || cells[i] == v);
      cells[i] = v;
    }
  }
  return Pattern(std::move(cells));
}

}  // namespace coverage

#ifndef COVERAGE_PATTERN_PATTERN_OPS_H_
#define COVERAGE_PATTERN_PATTERN_OPS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "dataset/schema.h"
#include "pattern/pattern.h"

namespace coverage {

/// Rule 1 (paper §III-C): a covered node generates its level ℓ+1 candidates
/// by assigning a value to each wildcard strictly to the right of its
/// right-most deterministic cell. Every non-root pattern is generated exactly
/// once (Theorem 3); the unique Rule-1 generator of a pattern is obtained by
/// relaxing its right-most deterministic cell.
std::vector<Pattern> Rule1Children(const Pattern& pattern,
                                   const Schema& schema);

/// The unique parent that generates `pattern` under Rule 1 (its right-most
/// deterministic cell relaxed to X). Precondition: level >= 1.
Pattern Rule1Generator(const Pattern& pattern);

/// Rule 2 (paper §III-D): an uncovered node generates its level ℓ-1 candidate
/// parents by relaxing each deterministic cell with value 0 strictly to the
/// right of its right-most wildcard. Every non-leaf pattern is generated
/// exactly once (Theorem 4); the unique Rule-2 generator of a pattern is
/// obtained by fixing its right-most wildcard to value 0.
std::vector<Pattern> Rule2Parents(const Pattern& pattern);

/// The unique child that generates `pattern` under Rule 2 (its right-most
/// wildcard fixed to 0). Precondition: the pattern has at least one wildcard.
Pattern Rule2Generator(const Pattern& pattern);

/// The children of `pattern` that partition its matches along attribute
/// `attr` (which must be a wildcard cell): one child per value of `attr`.
/// cov(pattern) = Σ cov(child) over this family — the identity behind
/// PATTERN-COMBINER's bottom-up coverage computation.
std::vector<Pattern> PartitionChildren(const Pattern& pattern,
                                       const Schema& schema, int attr);

/// All descendants of `pattern` at exactly `target_level`, produced by fixing
/// `target_level - level` wildcard cells to concrete values (Appendix C's
/// expansion of a MUP to the λ-level patterns beneath it). Returns
/// ResourceExhausted if the result would exceed `limit` patterns.
StatusOr<std::vector<Pattern>> DescendantsAtLevel(const Pattern& pattern,
                                                  const Schema& schema,
                                                  int target_level,
                                                  std::uint64_t limit);

/// Invokes `fn` for every full value combination matching `pattern`, in
/// lexicographic order. Returns ResourceExhausted without invoking `fn` when
/// the match count exceeds `limit`.
Status ForEachMatchingCombination(
    const Pattern& pattern, const Schema& schema, std::uint64_t limit,
    const std::function<void(const std::vector<Value>&)>& fn);

/// The most general pattern whose matches all match every input pattern: a
/// cell is deterministic iff some input fixes it (inputs must not conflict).
/// This is the §IV implementation note: after the greedy algorithm picks a
/// value combination, the unification of the patterns it hits describes the
/// full set of equally useful combinations, giving the user freedom during
/// acquisition. Precondition: `patterns` is non-empty, homogeneous in width,
/// and pairwise conflict-free on deterministic cells.
Pattern Unify(const std::vector<Pattern>& patterns);

}  // namespace coverage

#endif  // COVERAGE_PATTERN_PATTERN_OPS_H_

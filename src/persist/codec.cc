#include "persist/codec.h"

#include <array>
#include <utility>

namespace coverage {
namespace persist {
namespace {

// CRC32C lookup table (reflected polynomial 0x82f63b78), built once.
const std::array<std::uint32_t, 256>& Crc32cTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ 0x82f63b78u : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

constexpr int kMaxDecodedAttributes = 1 << 16;

}  // namespace

std::uint32_t Crc32c(std::string_view data) {
  const auto& table = Crc32cTable();
  std::uint32_t crc = 0xffffffffu;
  for (const char c : data) {
    crc = table[(crc ^ static_cast<std::uint8_t>(c)) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

void ByteWriter::PutU16(std::uint16_t v) {
  PutU8(static_cast<std::uint8_t>(v & 0xff));
  PutU8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::PutU32(std::uint32_t v) {
  PutU16(static_cast<std::uint16_t>(v & 0xffff));
  PutU16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::PutU64(std::uint64_t v) {
  PutU32(static_cast<std::uint32_t>(v & 0xffffffffu));
  PutU32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::PutString(std::string_view s) {
  PutU64(s.size());
  out_.append(s.data(), s.size());
}

void ByteWriter::PutValues(const std::vector<Value>& values) {
  PutU64(values.size());
  for (const Value v : values) PutU16(static_cast<std::uint16_t>(v));
}

Status ByteReader::Need(std::size_t n) const {
  if (data_.size() - pos_ < n) {
    return Status::InvalidArgument(
        "decode: truncated payload (need " + std::to_string(n) +
        " bytes at offset " + std::to_string(pos_) + " of " +
        std::to_string(data_.size()) + ")");
  }
  return Status::OK();
}

Status ByteReader::GetU8(std::uint8_t* v) {
  COVERAGE_RETURN_IF_ERROR(Need(1));
  *v = static_cast<std::uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status ByteReader::GetU16(std::uint16_t* v) {
  COVERAGE_RETURN_IF_ERROR(Need(2));
  const auto lo = static_cast<std::uint8_t>(data_[pos_]);
  const auto hi = static_cast<std::uint8_t>(data_[pos_ + 1]);
  pos_ += 2;
  *v = static_cast<std::uint16_t>(lo | (hi << 8));
  return Status::OK();
}

Status ByteReader::GetU32(std::uint32_t* v) {
  std::uint16_t lo = 0, hi = 0;
  COVERAGE_RETURN_IF_ERROR(GetU16(&lo));
  COVERAGE_RETURN_IF_ERROR(GetU16(&hi));
  *v = static_cast<std::uint32_t>(lo) |
       (static_cast<std::uint32_t>(hi) << 16);
  return Status::OK();
}

Status ByteReader::GetU64(std::uint64_t* v) {
  std::uint32_t lo = 0, hi = 0;
  COVERAGE_RETURN_IF_ERROR(GetU32(&lo));
  COVERAGE_RETURN_IF_ERROR(GetU32(&hi));
  *v = static_cast<std::uint64_t>(lo) | (static_cast<std::uint64_t>(hi) << 32);
  return Status::OK();
}

Status ByteReader::GetI64(std::int64_t* v) {
  std::uint64_t raw = 0;
  COVERAGE_RETURN_IF_ERROR(GetU64(&raw));
  *v = static_cast<std::int64_t>(raw);
  return Status::OK();
}

Status ByteReader::GetString(std::string* s) {
  std::uint64_t size = 0;
  COVERAGE_RETURN_IF_ERROR(GetU64(&size));
  COVERAGE_RETURN_IF_ERROR(Need(size));
  s->assign(data_.data() + pos_, size);
  pos_ += size;
  return Status::OK();
}

Status ByteReader::GetValues(std::vector<Value>* values) {
  std::uint64_t count = 0;
  COVERAGE_RETURN_IF_ERROR(GetU64(&count));
  if (count > remaining()) {
    return Status::InvalidArgument("decode: implausible value count " +
                                   std::to_string(count));
  }
  COVERAGE_RETURN_IF_ERROR(Need(static_cast<std::size_t>(count) * 2));
  values->clear();
  values->reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint16_t raw = 0;
    COVERAGE_RETURN_IF_ERROR(GetU16(&raw));
    values->push_back(static_cast<Value>(raw));
  }
  return Status::OK();
}

Status ByteReader::ExpectDone() const {
  if (!Done()) {
    return Status::InvalidArgument("decode: " + std::to_string(remaining()) +
                                   " trailing bytes after payload");
  }
  return Status::OK();
}

void EncodeSchema(const Schema& schema, ByteWriter* out) {
  out->PutU64(static_cast<std::uint64_t>(schema.num_attributes()));
  for (const Attribute& attr : schema.attributes()) {
    out->PutString(attr.name);
    out->PutU64(attr.value_names.size());
    for (const std::string& value : attr.value_names) out->PutString(value);
  }
}

StatusOr<Schema> DecodeSchema(ByteReader* in) {
  std::uint64_t num_attributes = 0;
  COVERAGE_RETURN_IF_ERROR(in->GetU64(&num_attributes));
  if (num_attributes == 0 || num_attributes > kMaxDecodedAttributes) {
    return Status::InvalidArgument("decode: implausible attribute count " +
                                   std::to_string(num_attributes));
  }
  std::vector<Attribute> attributes;
  attributes.reserve(num_attributes);
  for (std::uint64_t a = 0; a < num_attributes; ++a) {
    Attribute attr;
    COVERAGE_RETURN_IF_ERROR(in->GetString(&attr.name));
    std::uint64_t num_values = 0;
    COVERAGE_RETURN_IF_ERROR(in->GetU64(&num_values));
    if (num_values == 0 || num_values > kMaxDecodedAttributes) {
      return Status::InvalidArgument("decode: implausible cardinality " +
                                     std::to_string(num_values) +
                                     " for attribute '" + attr.name + "'");
    }
    attr.value_names.resize(num_values);
    for (std::uint64_t v = 0; v < num_values; ++v) {
      COVERAGE_RETURN_IF_ERROR(in->GetString(&attr.value_names[v]));
    }
    attributes.push_back(std::move(attr));
  }
  return Schema(std::move(attributes));
}

void EncodeRows(const Dataset& dataset, ByteWriter* out) {
  out->PutU64(dataset.num_rows());
  for (std::size_t r = 0; r < dataset.num_rows(); ++r) {
    const auto row = dataset.row(r);
    for (const Value v : row) out->PutU16(static_cast<std::uint16_t>(v));
  }
}

StatusOr<Dataset> DecodeRows(const Schema& schema, ByteReader* in) {
  std::uint64_t num_rows = 0;
  COVERAGE_RETURN_IF_ERROR(in->GetU64(&num_rows));
  const int d = schema.num_attributes();
  // Cheap plausibility bound before Need: an adversarial count must not
  // overflow the size computation or drive a giant reserve.
  if (num_rows > in->remaining()) {
    return Status::InvalidArgument("decode: implausible row count " +
                                   std::to_string(num_rows));
  }
  COVERAGE_RETURN_IF_ERROR(
      in->Need(static_cast<std::size_t>(num_rows) *
               static_cast<std::size_t>(d) * 2));
  Dataset dataset(schema);
  std::vector<Value> row(static_cast<std::size_t>(d));
  for (std::uint64_t r = 0; r < num_rows; ++r) {
    for (int i = 0; i < d; ++i) {
      std::uint16_t raw = 0;
      COVERAGE_RETURN_IF_ERROR(in->GetU16(&raw));
      const Value v = static_cast<Value>(raw);
      if (v < 0 || v >= schema.cardinality(i)) {
        return Status::InvalidArgument(
            "decode: row " + std::to_string(r) + " attribute " +
            std::to_string(i) + " value " + std::to_string(v) +
            " out of range");
      }
      row[static_cast<std::size_t>(i)] = v;
    }
    dataset.AppendRow(row);
  }
  return dataset;
}

void EncodePatterns(const std::vector<Pattern>& patterns, ByteWriter* out) {
  out->PutU64(patterns.size());
  for (const Pattern& p : patterns) out->PutValues(p.cells());
}

Status DecodePatterns(const Schema& schema, ByteReader* in,
                      std::vector<Pattern>* patterns) {
  std::uint64_t count = 0;
  COVERAGE_RETURN_IF_ERROR(in->GetU64(&count));
  if (count > in->remaining()) {
    return Status::InvalidArgument("decode: implausible pattern count " +
                                   std::to_string(count));
  }
  patterns->clear();
  patterns->reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::vector<Value> cells;
    COVERAGE_RETURN_IF_ERROR(in->GetValues(&cells));
    if (static_cast<int>(cells.size()) != schema.num_attributes()) {
      return Status::InvalidArgument("decode: pattern width " +
                                     std::to_string(cells.size()) +
                                     " does not match schema");
    }
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (cells[c] != kWildcard &&
          (cells[c] < 0 ||
           cells[c] >= schema.cardinality(static_cast<int>(c)))) {
        return Status::InvalidArgument("decode: pattern cell " +
                                       std::to_string(cells[c]) +
                                       " out of range");
      }
    }
    patterns->push_back(Pattern(std::move(cells)));
  }
  return Status::OK();
}

}  // namespace persist
}  // namespace coverage

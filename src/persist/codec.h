#ifndef COVERAGE_PERSIST_CODEC_H_
#define COVERAGE_PERSIST_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "dataset/dataset.h"
#include "dataset/schema.h"
#include "pattern/pattern.h"

namespace coverage {
namespace persist {

/// CRC32C (Castagnoli) over `data`, the checksum guarding every WAL record
/// and snapshot body. Software table implementation — plenty for the record
/// sizes involved; the polynomial matches iSCSI/ext4 so external tooling
/// can verify files.
std::uint32_t Crc32c(std::string_view data);

/// Little-endian binary encoder for WAL record payloads and snapshot
/// bodies. Fixed-width integers only: the durability formats favour
/// trivially seekable layouts over minimal size (snapshots are compacted
/// aggregates, not raw rows).
class ByteWriter {
 public:
  void PutU8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU16(std::uint16_t v);
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  /// int64 as two's-complement u64 (max_level is -1 when unbounded).
  void PutI64(std::int64_t v) { PutU64(static_cast<std::uint64_t>(v)); }
  /// u64 length prefix + raw bytes.
  void PutString(std::string_view s);
  /// u64 count + each Value as u16 (two's complement; kWildcard = -1
  /// round-trips).
  void PutValues(const std::vector<Value>& values);

  const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Matching decoder. Every getter bounds-checks and returns InvalidArgument
/// on truncation — decode errors are recovery-path input, never assertions.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status GetU8(std::uint8_t* v);
  Status GetU16(std::uint16_t* v);
  Status GetU32(std::uint32_t* v);
  Status GetU64(std::uint64_t* v);
  Status GetI64(std::int64_t* v);
  Status GetString(std::string* s);
  Status GetValues(std::vector<Value>* values);

  bool Done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  /// InvalidArgument unless every byte was consumed — trailing garbage in a
  /// checksummed payload means a format bug, not corruption; reject it.
  Status ExpectDone() const;

  /// InvalidArgument unless `n` more bytes remain. Exposed so decoders can
  /// reject an implausible element count before reserving for it.
  Status Need(std::size_t n) const;

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Schema <-> bytes: attribute names and value-name dictionaries, so a
/// restored session re-serves the exact labels it was created with.
void EncodeSchema(const Schema& schema, ByteWriter* out);
StatusOr<Schema> DecodeSchema(ByteReader* in);

/// Rows of `dataset` (count + flat cells); the schema travels separately.
void EncodeRows(const Dataset& dataset, ByteWriter* out);
StatusOr<Dataset> DecodeRows(const Schema& schema, ByteReader* in);

/// Sorted pattern list (the MUP set of a snapshot image). Decoded cells are
/// validated against `schema` (wildcard or in-range value).
void EncodePatterns(const std::vector<Pattern>& patterns, ByteWriter* out);
Status DecodePatterns(const Schema& schema, ByteReader* in,
                      std::vector<Pattern>* patterns);

}  // namespace persist
}  // namespace coverage

#endif  // COVERAGE_PERSIST_CODEC_H_

#include "persist/durable_engine.h"

#include <algorithm>
#include <utility>

#include "common/stopwatch.h"
#include "persist/codec.h"
#include "persist/snapshot.h"

namespace coverage {
namespace persist {
namespace {

std::string HeaderBody(const Schema& schema, const EngineOptions& options) {
  ByteWriter out;
  EncodeSchema(schema, &out);
  EncodeEngineOptions(options, &out);
  return out.Take();
}

Status DecodeHeaderBody(const std::string& body, Schema* schema,
                        EngineOptions* options) {
  ByteReader in(body);
  auto decoded = DecodeSchema(&in);
  if (!decoded.ok()) return decoded.status();
  *schema = std::move(*decoded);
  COVERAGE_RETURN_IF_ERROR(DecodeEngineOptions(&in, options));
  return in.ExpectDone();
}

std::string RowsBody(const Dataset& rows) {
  ByteWriter out;
  EncodeRows(rows, &out);
  return out.Take();
}

}  // namespace

Status DurableEngineOptions::Validate() const {
  if (keep_snapshots < 1) {
    return Status::InvalidArgument(
        "DurableEngineOptions::keep_snapshots must be >= 1");
  }
  return Status::OK();
}

DurableEngine::DurableEngine(std::string dir, DurableEngineOptions opts,
                             std::unique_ptr<CoverageEngine> engine)
    : dir_(std::move(dir)),
      opts_(opts),
      fs_(opts.fs != nullptr ? opts.fs : FileSystem::Default()),
      engine_(std::move(engine)) {}

DurableEngine::~DurableEngine() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ != nullptr) (void)wal_->Close();
}

StatusOr<std::unique_ptr<DurableEngine>> DurableEngine::Create(
    const std::string& dir, const Schema& schema, EngineOptions engine_opts,
    DurableEngineOptions opts) {
  COVERAGE_RETURN_IF_ERROR(opts.Validate());
  FileSystem* fs = opts.fs != nullptr ? opts.fs : FileSystem::Default();
  COVERAGE_RETURN_IF_ERROR(fs->CreateDirs(dir));
  auto listing = ListSessionDir(fs, dir);
  if (!listing.ok()) return listing.status();
  if (!listing->empty()) {
    return Status::InvalidArgument("'" + dir +
                                   "' already holds a durable session; use "
                                   "Recover to reopen it");
  }
  if (engine_opts.num_threads < 1) engine_opts.num_threads = 1;

  auto durable = std::unique_ptr<DurableEngine>(new DurableEngine(
      dir, opts, std::make_unique<CoverageEngine>(schema, engine_opts)));
  std::lock_guard<std::mutex> lock(durable->mu_);
  COVERAGE_RETURN_IF_ERROR(durable->RotateWalLocked());
  return durable;
}

StatusOr<std::unique_ptr<DurableEngine>> DurableEngine::Recover(
    const std::string& dir, const EngineOptions& runtime,
    DurableEngineOptions opts) {
  COVERAGE_RETURN_IF_ERROR(opts.Validate());
  FileSystem* fs = opts.fs != nullptr ? opts.fs : FileSystem::Default();
  auto listing = ListSessionDir(fs, dir);
  if (!listing.ok()) return listing.status();
  if (listing->empty()) {
    return Status::NotFound("no durable session at '" + dir + "'");
  }

  RecoveryStats recovery;
  recovery.recovered = true;

  // 1. Newest valid snapshot, falling back a generation per corrupt file.
  std::unique_ptr<CoverageEngine> engine;
  for (auto it = listing->snapshot_epochs.rbegin();
       it != listing->snapshot_epochs.rend() && engine == nullptr; ++it) {
    const std::string path = dir + "/" + SnapshotFileName(*it);
    auto image = ReadSnapshotFile(fs, path);
    if (image.ok()) {
      image->options.num_threads =
          runtime.num_threads >= 1 ? runtime.num_threads : 1;
      image->options.durability = runtime.durability;
      auto restored = CoverageEngine::Restore(std::move(*image));
      if (restored.ok()) {
        engine = std::move(*restored);
        recovery.snapshot_epoch = *it;
        continue;
      }
      ++recovery.snapshots_discarded;
      recovery.warnings.push_back("discarded snapshot '" + path +
                                  "': " + restored.status().ToString());
      continue;
    }
    ++recovery.snapshots_discarded;
    recovery.warnings.push_back("discarded snapshot '" + path +
                                "': " + image.status().ToString());
  }

  // 2. Without any usable snapshot the full history must still be on disk:
  //    the oldest WAL segment has to start at epoch 0, and its header
  //    carries the schema + problem knobs to rebuild the empty engine.
  if (engine == nullptr) {
    if (listing->wal_bases.empty() || listing->wal_bases.front() != 0) {
      return Status::Internal(
          "unrecoverable session at '" + dir +
          "': no valid snapshot and the WAL does not start at epoch 0");
    }
  }

  // 3. Replay every WAL record past the recovered epoch, in segment order.
  std::uint64_t last_replayed_epoch = 0;
  std::size_t last_evicted_rows = 0;
  bool replay_stopped = false;
  for (const std::uint64_t base : listing->wal_bases) {
    if (replay_stopped) break;
    const std::string path = dir + "/" + WalFileName(base);
    auto scan = ReadWalSegment(fs, path);
    if (!scan.ok()) {
      // An unreadable whole segment (bad magic / IO error) is not a torn
      // tail; refuse to guess at the state.
      return scan.status();
    }
    for (const WalRecord& record : scan->records) {
      if (record.type == WalRecordType::kHeader) {
        Schema stored_schema;
        EngineOptions stored_options;
        COVERAGE_RETURN_IF_ERROR(
            DecodeHeaderBody(record.body, &stored_schema, &stored_options));
        if (engine == nullptr) {
          stored_options.num_threads =
              runtime.num_threads >= 1 ? runtime.num_threads : 1;
          stored_options.durability = runtime.durability;
          engine = std::make_unique<CoverageEngine>(stored_schema,
                                                    stored_options);
        } else if (!(stored_schema == engine->schema())) {
          return Status::Internal("WAL header in '" + path +
                                  "' disagrees with the recovered schema");
        }
        continue;
      }
      if (engine == nullptr) {
        return Status::Internal("WAL segment '" + path +
                                "' starts with data before any header");
      }
      if (record.type == WalRecordType::kEvict) {
        // Evictions replay as part of their append; the record is a
        // consistency check on the epoch we just rebuilt.
        if (record.epoch == last_replayed_epoch &&
            record.epoch > recovery.snapshot_epoch) {
          ByteReader in(record.body);
          std::uint64_t logged_evicted = 0;
          COVERAGE_RETURN_IF_ERROR(in.GetU64(&logged_evicted));
          COVERAGE_RETURN_IF_ERROR(in.ExpectDone());
          if (logged_evicted != last_evicted_rows) {
            return Status::Internal(
                "replay divergence in '" + path + "': epoch " +
                std::to_string(record.epoch) + " evicted " +
                std::to_string(last_evicted_rows) + " rows, WAL says " +
                std::to_string(logged_evicted));
          }
        }
        continue;
      }
      if (record.epoch <= engine->epoch()) continue;  // snapshot covers it
      if (record.epoch != engine->epoch() + 1) {
        return Status::Internal(
            "WAL gap in '" + path + "': have epoch " +
            std::to_string(engine->epoch()) + ", next record is epoch " +
            std::to_string(record.epoch));
      }
      ByteReader in(record.body);
      auto rows = DecodeRows(engine->schema(), &in);
      if (!rows.ok()) return rows.status();
      COVERAGE_RETURN_IF_ERROR(in.ExpectDone());
      EngineUpdateStats stats;
      const Status applied =
          record.type == WalRecordType::kAppend
              ? engine->AppendRows(*rows, &stats)
              : engine->RetractRows(*rows, &stats);
      if (!applied.ok()) {
        return Status::Internal("replaying '" + path + "' epoch " +
                                std::to_string(record.epoch) +
                                " failed: " + applied.ToString());
      }
      ++recovery.records_replayed;
      recovery.rows_replayed += rows->num_rows();
      last_replayed_epoch = record.epoch;
      last_evicted_rows = record.type == WalRecordType::kAppend
                              ? stats.rows_retracted
                              : 0;
    }
    if (scan->torn_tail) {
      // Expected crash damage: keep the prefix, warn, and replay nothing
      // after the tear (later segments would skip epochs).
      recovery.torn_tail = true;
      recovery.warnings.push_back("WAL '" + path + "': " +
                                  scan->tail_warning +
                                  "; kept the valid prefix");
      replay_stopped = true;
    }
  }
  if (engine == nullptr) {
    return Status::Internal("unrecoverable session at '" + dir +
                            "': WAL holds no header record");
  }

  auto durable = std::unique_ptr<DurableEngine>(
      new DurableEngine(dir, opts, std::move(engine)));
  durable->recovery_ = std::move(recovery);

  // 4. Leave the directory clean: fold the replayed tail into a fresh
  //    snapshot, rotate to a new segment (never append to crash-damaged
  //    files), prune superseded generations.
  std::lock_guard<std::mutex> lock(durable->mu_);
  COVERAGE_RETURN_IF_ERROR(durable->CheckpointLocked());
  return durable;
}

Status DurableEngine::Append(const Dataset& rows, EngineUpdateStats* stats,
                             obs::Trace* trace) {
  return Mutate(WalRecordType::kAppend, rows, stats, trace);
}

Status DurableEngine::Retract(const Dataset& rows, EngineUpdateStats* stats,
                              obs::Trace* trace) {
  return Mutate(WalRecordType::kRetract, rows, stats, trace);
}

Status DurableEngine::Mutate(WalRecordType type, const Dataset& rows,
                             EngineUpdateStats* stats, obs::Trace* trace) {
  std::shared_ptr<WalWriter> wal;
  std::uint64_t lsn = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    COVERAGE_RETURN_IF_ERROR(poisoned_);

    EngineUpdateStats local;
    EngineUpdateStats* s = stats != nullptr ? stats : &local;
    Status applied;
    {
      obs::ScopedStage stage(trace, "engine_update");
      applied = type == WalRecordType::kAppend ? engine_->AppendRows(rows, s)
                                               : engine_->RetractRows(rows, s);
    }
    // Validation failures leave the engine unchanged; nothing to log.
    COVERAGE_RETURN_IF_ERROR(applied);

    if (durability() != DurabilityMode::kNone) {
      obs::ScopedStage stage(trace, "wal_append");
      const std::uint64_t epoch = engine_->epoch();
      Status logged = wal_->Append(type, epoch, RowsBody(rows), &lsn);
      if (logged.ok()) ++records_logged_;
      if (logged.ok() && type == WalRecordType::kAppend &&
          s->rows_retracted > 0) {
        ByteWriter evicted;
        evicted.PutU64(s->rows_retracted);
        logged = wal_->Append(WalRecordType::kEvict, epoch, evicted.Take(),
                              &lsn);
        if (logged.ok()) ++records_logged_;
      }
      if (!logged.ok()) {
        // Memory is now ahead of the log; durability can no longer be
        // promised for anything after this point.
        poisoned_ = Status::Internal("durable session poisoned by WAL "
                                     "failure: " +
                                     logged.ToString());
        return logged;
      }
      wal = wal_;
    }

    if (opts_.checkpoint_after_wal_bytes > 0 && wal_ != nullptr &&
        wal_->end_offset() >= opts_.checkpoint_after_wal_bytes) {
      // Best effort: a failed checkpoint leaves the WAL as the source of
      // truth, which is exactly what it is for. (A rotation failure inside
      // poisons separately.)
      obs::ScopedStage stage(trace, "checkpoint");
      (void)CheckpointLocked();
    }
  }

  if (wal != nullptr && durability() == DurabilityMode::kFsync) {
    // Group commit outside the mutation lock: concurrent writers coalesce
    // onto one fdatasync.
    obs::ScopedStage stage(trace, "wal_fsync");
    const Status synced = wal->Sync(lsn);
    if (!synced.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      poisoned_ = Status::Internal("durable session poisoned by fsync "
                                   "failure: " +
                                   synced.ToString());
      return synced;
    }
  }
  return Status::OK();
}

Status DurableEngine::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  COVERAGE_RETURN_IF_ERROR(poisoned_);
  return CheckpointLocked();
}

Status DurableEngine::CheckpointLocked() {
  const Stopwatch timer;
  // Observe the snapshot+rotate cycle whether it succeeds or fails — a
  // failing checkpoint still costs the latency it is charged with.
  struct Observer {
    const Stopwatch& timer;
    obs::Histogram* histogram;
    ~Observer() {
      if (histogram != nullptr) histogram->Observe(timer.ElapsedSeconds());
    }
  } observer{timer, opts_.checkpoint_histogram};
  const EngineImage image = engine_->CaptureImage();
  const std::uint64_t epoch = image.epoch;
  COVERAGE_RETURN_IF_ERROR(WriteSnapshotFile(fs_, dir_, image));
  ++checkpoints_written_;
  COVERAGE_RETURN_IF_ERROR(RotateWalLocked());

  // Prune: keep the newest keep_snapshots generations and every WAL
  // segment from the oldest kept snapshot on (its fallback chain).
  auto listing = ListSessionDir(fs_, dir_);
  if (!listing.ok()) return Status::OK();  // pruning is best effort
  const auto& snaps = listing->snapshot_epochs;
  const std::size_t keep = static_cast<std::size_t>(opts_.keep_snapshots);
  if (snaps.size() <= keep) return Status::OK();
  const std::uint64_t oldest_kept = snaps[snaps.size() - keep];
  for (const std::uint64_t old_epoch : snaps) {
    if (old_epoch < oldest_kept) {
      (void)fs_->Remove(dir_ + "/" + SnapshotFileName(old_epoch));
    }
  }
  for (const std::uint64_t base : listing->wal_bases) {
    if (base < oldest_kept && base != epoch) {
      (void)fs_->Remove(dir_ + "/" + WalFileName(base));
    }
  }
  return Status::OK();
}

Status DurableEngine::RotateWalLocked() {
  if (wal_ != nullptr) {
    retired_sync_calls_ += wal_->sync_calls();
    retired_sync_seconds_ += wal_->sync_seconds();
    (void)wal_->Close();
    wal_ = nullptr;
  }
  const std::string path =
      dir_ + "/" + WalFileName(engine_->epoch());
  auto writer = WalWriter::Open(fs_, path, /*truncate=*/true);
  Status rotated = writer.ok() ? Status::OK() : writer.status();
  if (rotated.ok()) {
    wal_ = std::shared_ptr<WalWriter>(std::move(*writer));
    wal_->set_sync_histogram(opts_.fsync_histogram);
    std::uint64_t lsn = 0;
    rotated = wal_->Append(WalRecordType::kHeader, engine_->epoch(),
                           HeaderBody(engine_->schema(), engine_->options()),
                           &lsn);
    // The header (and the directory entry of the new segment) must be
    // durable regardless of the durability mode: recovery needs to *find*
    // the session. One fdatasync per checkpoint is in the noise.
    if (rotated.ok()) rotated = wal_->Sync(lsn);
    if (rotated.ok()) rotated = fs_->SyncDir(dir_);
  }
  if (!rotated.ok()) {
    // The old segment is closed and no new one opened: logging is broken.
    poisoned_ = Status::Internal("durable session poisoned by WAL rotation "
                                 "failure: " +
                                 rotated.ToString());
    return rotated;
  }
  return Status::OK();
}

PersistStats DurableEngine::persist_stats() const {
  PersistStats stats;
  std::lock_guard<std::mutex> lock(mu_);
  stats.records_logged = records_logged_;
  stats.checkpoints_written = checkpoints_written_;
  stats.sync_calls = retired_sync_calls_;
  stats.sync_seconds = retired_sync_seconds_;
  if (wal_ != nullptr) {
    stats.wal_bytes = wal_->end_offset();
    stats.sync_calls += wal_->sync_calls();
    stats.sync_seconds += wal_->sync_seconds();
  }
  return stats;
}

Status DurableEngine::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  return poisoned_;
}

}  // namespace persist
}  // namespace coverage

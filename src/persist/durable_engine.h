#ifndef COVERAGE_PERSIST_DURABLE_ENGINE_H_
#define COVERAGE_PERSIST_DURABLE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "dataset/dataset.h"
#include "dataset/schema.h"
#include "engine/coverage_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/fault_fs.h"
#include "persist/wal.h"

namespace coverage {
namespace persist {

/// Knobs of the persistence layer itself (the engine's problem knobs live
/// in EngineOptions and are persisted with the data).
struct DurableEngineOptions {
  /// Checkpoint automatically once the live WAL segment exceeds this many
  /// bytes (0 disables; Checkpoint() stays available). Bounds replay work
  /// after a crash.
  std::uint64_t checkpoint_after_wal_bytes = 8ull << 20;

  /// Snapshot generations retained after a checkpoint (>= 1). Generation
  /// N corrupt on disk -> recovery falls back to N-1, so 2 tolerates one
  /// bad snapshot.
  int keep_snapshots = 2;

  /// Filesystem seam; nullptr = the posix default. Tests pass a FaultFs.
  FileSystem* fs = nullptr;

  /// Optional latency histograms (must outlive the engine; null disables).
  /// fsync_histogram sees one observation per fdatasync on the live WAL
  /// segment; checkpoint_histogram one per snapshot+rotate cycle.
  obs::Histogram* fsync_histogram = nullptr;
  obs::Histogram* checkpoint_histogram = nullptr;

  Status Validate() const;
};

/// What recovery found and did; exposed for logs and /v1/stats.
struct RecoveryStats {
  bool recovered = false;  ///< true when Open found prior state on disk
  std::uint64_t snapshot_epoch = 0;   ///< epoch of the loaded snapshot (0 =
                                      ///< replayed from empty)
  std::size_t snapshots_discarded = 0;  ///< corrupt generations skipped
  std::size_t records_replayed = 0;     ///< WAL records applied
  std::uint64_t rows_replayed = 0;      ///< rows inside those records
  bool torn_tail = false;  ///< WAL ended mid-record (normal after a crash)
  std::vector<std::string> warnings;    ///< torn tails, discarded snapshots
};

/// Cumulative persistence counters (monotonic since Open).
struct PersistStats {
  std::uint64_t records_logged = 0;
  std::uint64_t wal_bytes = 0;        ///< live segment size
  std::uint64_t sync_calls = 0;       ///< fdatasync count (live segment)
  double sync_seconds = 0.0;          ///< total fdatasync latency
  std::uint64_t checkpoints_written = 0;
};

/// A CoverageEngine bound to a session directory: every mutation is
/// logged to a CRC32C-checksummed WAL (per EngineOptions::durability) and
/// periodically folded into an atomic snapshot, so the session survives
/// kill -9.
///
/// Layout of a session directory:
///   wal-<epoch>.log    mutation log, rotated at every checkpoint; the
///                      name's epoch is the engine epoch at rotation
///   snap-<epoch>.ckpt  full-state snapshot (EngineImage) at that epoch
///
/// Contract: under durability=fsync every acknowledged mutation survives a
/// crash; under async the tail since the last fdatasync may be lost; under
/// none only checkpoints persist. Recovery (Open on a non-empty dir) loads
/// the newest valid snapshot — falling back a generation if corrupt — and
/// replays the WAL through the engine's own AppendRows/RetractRows, so the
/// recovered epoch is bit-identical (same MUP set, same query answers) to
/// the surviving prefix. A torn trailing record is expected crash damage:
/// recovery keeps the valid prefix and warns. After recovery the state is
/// re-checkpointed and the WAL rotated, leaving the directory clean.
///
/// Failure semantics: a WAL append/sync failure *after* the in-memory
/// engine applied the mutation leaves memory ahead of disk, so the
/// DurableEngine poisons itself — every later mutation fails with the
/// original error; reads stay available. Snapshot failures are non-fatal
/// (the WAL still covers everything).
///
/// Thread-safe: mutations serialise internally; reads hit the engine's
/// lock-free published snapshot. fsync is group-committed — concurrent
/// writers coalesce onto one fdatasync.
class DurableEngine {
 public:
  /// Creates a fresh durable session at `dir` (created if missing; must
  /// hold no prior state — reopening an existing session with a brand-new
  /// schema is almost certainly a caller bug).
  static StatusOr<std::unique_ptr<DurableEngine>> Create(
      const std::string& dir, const Schema& schema, EngineOptions engine_opts,
      DurableEngineOptions opts = {});

  /// Reopens the session persisted at `dir` (NotFound when none). The
  /// stored schema and problem knobs (tau, max_level, window, dominance)
  /// win — they define the session's Problem-1 instance; only runtime
  /// knobs are taken from `runtime`: num_threads, and durability (so an
  /// operator can e.g. upgrade async -> fsync across a restart).
  static StatusOr<std::unique_ptr<DurableEngine>> Recover(
      const std::string& dir, const EngineOptions& runtime,
      DurableEngineOptions opts = {});

  ~DurableEngine();

  /// Appends `rows` as one epoch: engine first, then WAL (+ eviction
  /// marker in window mode), then fdatasync under durability=fsync. On
  /// return under fsync the mutation is crash-durable. A non-null `trace`
  /// (owned by the calling thread) receives `engine_update`, `wal_append`,
  /// `wal_fsync`, and — when one triggers — `checkpoint` stages.
  Status Append(const Dataset& rows, EngineUpdateStats* stats = nullptr,
                obs::Trace* trace = nullptr);

  /// Retracts one occurrence per row, same logging pipeline.
  Status Retract(const Dataset& rows, EngineUpdateStats* stats = nullptr,
                 obs::Trace* trace = nullptr);

  /// Writes a snapshot at the current epoch, rotates to a fresh WAL
  /// segment, and prunes generations past keep_snapshots (plus the WAL
  /// segments older than the oldest kept snapshot).
  Status Checkpoint();

  /// The wrapped engine. Reads (snapshot(), Query, Mups) are safe from any
  /// thread; do NOT mutate through it — bypassing the WAL forfeits every
  /// durability guarantee.
  CoverageEngine& engine() { return *engine_; }
  const CoverageEngine& engine() const { return *engine_; }

  const std::string& dir() const { return dir_; }
  DurabilityMode durability() const { return engine_->options().durability; }

  const RecoveryStats& recovery_stats() const { return recovery_; }
  PersistStats persist_stats() const;

  /// Non-OK once a WAL failure poisoned the session (see class comment).
  Status health() const;

 private:
  DurableEngine(std::string dir, DurableEngineOptions opts,
                std::unique_ptr<CoverageEngine> engine);

  /// Shared mutation pipeline for Append/Retract.
  Status Mutate(WalRecordType type, const Dataset& rows,
                EngineUpdateStats* stats, obs::Trace* trace);

  /// Checkpoint body; requires mu_.
  Status CheckpointLocked();

  /// Opens a fresh WAL segment at the current epoch and writes its header
  /// record; requires mu_.
  Status RotateWalLocked();

  std::string dir_;
  DurableEngineOptions opts_;
  FileSystem* fs_;  // opts_.fs resolved

  /// Serialises mutations + checkpoints (not reads, and not the group-
  /// commit fsync, which runs outside so writers coalesce); mutable for
  /// the const stats accessors.
  mutable std::mutex mu_;
  std::unique_ptr<CoverageEngine> engine_;
  /// shared_ptr: a mutation syncs its segment outside mu_, so rotation
  /// must not destroy the writer out from under it.
  std::shared_ptr<WalWriter> wal_;
  Status poisoned_ = Status::OK();
  RecoveryStats recovery_;
  std::uint64_t records_logged_ = 0;
  std::uint64_t checkpoints_written_ = 0;
  /// sync stats of rotated-away segments, folded into persist_stats().
  std::uint64_t retired_sync_calls_ = 0;
  double retired_sync_seconds_ = 0.0;
};

}  // namespace persist
}  // namespace coverage

#endif  // COVERAGE_PERSIST_DURABLE_ENGINE_H_

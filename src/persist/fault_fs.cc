#include "persist/fault_fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace coverage {
namespace persist {
namespace {

Status ErrnoStatus(const char* op, const std::string& path, int err) {
  return Status::Internal(std::string(op) + " '" + path +
                          "': " + std::strerror(err));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_, errno);
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
#if defined(__APPLE__)
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_, errno);
#else
    if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync", path_, errno);
#endif
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_, errno);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixFileSystem : public FileSystem {
 public:
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
    if (truncate) flags |= O_TRUNC;
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  StatusOr<std::string> ReadFileToString(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT)
        return Status::NotFound("no such file: '" + path + "'");
      return ErrnoStatus("open", path, errno);
    }
    std::string out;
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        return ErrnoStatus("read", path, err);
      }
      if (n == 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return out;
  }

  StatusOr<std::vector<std::string>> ListDir(const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return ErrnoStatus("opendir", path, errno);
    std::vector<std::string> names;
    for (;;) {
      errno = 0;
      dirent* entry = ::readdir(dir);
      if (entry == nullptr) {
        const int err = errno;
        ::closedir(dir);
        if (err != 0) return ErrnoStatus("readdir", path, err);
        break;
      }
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  Status CreateDirs(const std::string& path) override {
    if (path.empty()) return Status::InvalidArgument("empty directory path");
    std::string partial;
    std::size_t i = 0;
    while (i < path.size()) {
      std::size_t next = path.find('/', i);
      if (next == std::string::npos) next = path.size();
      partial = path.substr(0, next);
      i = next + 1;
      if (partial.empty()) continue;  // leading '/'
      if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
        return ErrnoStatus("mkdir", partial, errno);
      }
    }
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + "' -> '" + to, errno);
    }
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return ErrnoStatus("unlink", path, errno);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    Status status = Status::OK();
    if (::fsync(fd) != 0) status = ErrnoStatus("fsync", path, errno);
    ::close(fd);
    return status;
  }

  bool Exists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }
};

}  // namespace

FileSystem* FileSystem::Default() {
  static PosixFileSystem* fs = new PosixFileSystem();
  return fs;
}

// A file opened through FaultFs: charges every append against the owning
// wrapper's crash budget before letting bytes through to the base file.
class FaultFile : public WritableFile {
 public:
  FaultFile(FaultFs* fs, std::unique_ptr<WritableFile> base, std::string path)
      : fs_(fs), base_(std::move(base)), path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    fs_->Observe("append", path_);
    COVERAGE_RETURN_IF_ERROR(fs_->CheckAlive("append"));
    COVERAGE_RETURN_IF_ERROR(fs_->TakeAppendError());
    bool crossed = false;
    const std::uint64_t admitted = fs_->AdmitAppend(data.size(), &crossed);
    if (admitted > 0) {
      COVERAGE_RETURN_IF_ERROR(base_->Append(data.substr(0, admitted)));
    }
    if (crossed) {
      return Status::Internal("injected crash: torn write in '" + path_ +
                              "' after " + std::to_string(admitted) +
                              " of " + std::to_string(data.size()) + " bytes");
    }
    return Status::OK();
  }

  Status Sync() override {
    fs_->Observe("sync", path_);
    COVERAGE_RETURN_IF_ERROR(fs_->CheckAlive("sync"));
    COVERAGE_RETURN_IF_ERROR(fs_->TakeSyncError());
    return base_->Sync();
  }

  Status Close() override {
    fs_->Observe("close", path_);
    // Closing is allowed after a crash (destructors run); the underlying
    // descriptor must be released either way.
    return base_->Close();
  }

 private:
  FaultFs* fs_;
  std::unique_ptr<WritableFile> base_;
  std::string path_;
};

StatusOr<std::unique_ptr<WritableFile>> FaultFs::NewWritableFile(
    const std::string& path, bool truncate) {
  Observe("open", path);
  COVERAGE_RETURN_IF_ERROR(CheckAlive("open"));
  auto base = base_->NewWritableFile(path, truncate);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultFile>(this, std::move(*base), path));
}

StatusOr<std::string> FaultFs::ReadFileToString(const std::string& path) {
  // Reads survive the crash: recovery reads the same "disk".
  return base_->ReadFileToString(path);
}

StatusOr<std::vector<std::string>> FaultFs::ListDir(const std::string& path) {
  return base_->ListDir(path);
}

Status FaultFs::CreateDirs(const std::string& path) {
  COVERAGE_RETURN_IF_ERROR(CheckAlive("mkdir"));
  return base_->CreateDirs(path);
}

Status FaultFs::Rename(const std::string& from, const std::string& to) {
  Observe("rename", to);
  COVERAGE_RETURN_IF_ERROR(CheckAlive("rename"));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (next_rename_error_.has_value()) {
      Status error = *next_rename_error_;
      next_rename_error_.reset();
      return error;
    }
  }
  return base_->Rename(from, to);
}

Status FaultFs::Remove(const std::string& path) {
  Observe("remove", path);
  COVERAGE_RETURN_IF_ERROR(CheckAlive("remove"));
  return base_->Remove(path);
}

Status FaultFs::SyncDir(const std::string& path) {
  Observe("syncdir", path);
  COVERAGE_RETURN_IF_ERROR(CheckAlive("syncdir"));
  COVERAGE_RETURN_IF_ERROR(TakeSyncError());
  return base_->SyncDir(path);
}

bool FaultFs::Exists(const std::string& path) { return base_->Exists(path); }

void FaultFs::CrashAfterBytes(std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_armed_ = true;
  crash_budget_ = n;
  if (n == 0) crashed_ = true;
}

bool FaultFs::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

void FaultFs::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = false;
  crash_armed_ = false;
  crash_budget_ = 0;
  next_append_error_.reset();
  next_sync_error_.reset();
  next_rename_error_.reset();
}

void FaultFs::FailNextAppend(Status error) {
  std::lock_guard<std::mutex> lock(mu_);
  next_append_error_ = std::move(error);
}

void FaultFs::FailNextSync(Status error) {
  std::lock_guard<std::mutex> lock(mu_);
  next_sync_error_ = std::move(error);
}

void FaultFs::FailNextRename(Status error) {
  std::lock_guard<std::mutex> lock(mu_);
  next_rename_error_ = std::move(error);
}

void FaultFs::set_op_observer(
    std::function<void(std::string_view, const std::string&)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = std::move(fn);
}

std::uint64_t FaultFs::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

std::uint64_t FaultFs::AdmitAppend(std::uint64_t want, bool* crossed) {
  std::lock_guard<std::mutex> lock(mu_);
  *crossed = false;
  std::uint64_t admitted = want;
  if (crash_armed_ && want >= crash_budget_) {
    admitted = crash_budget_;
    crash_budget_ = 0;
    crashed_ = true;
    *crossed = true;
  } else if (crash_armed_) {
    crash_budget_ -= want;
  }
  bytes_written_ += admitted;
  return admitted;
}

Status FaultFs::TakeAppendError() {
  std::lock_guard<std::mutex> lock(mu_);
  if (next_append_error_.has_value()) {
    Status error = *next_append_error_;
    next_append_error_.reset();
    return error;
  }
  return Status::OK();
}

Status FaultFs::TakeSyncError() {
  std::lock_guard<std::mutex> lock(mu_);
  if (next_sync_error_.has_value()) {
    Status error = *next_sync_error_;
    next_sync_error_.reset();
    return error;
  }
  return Status::OK();
}

void FaultFs::Observe(std::string_view op, const std::string& path) {
  std::function<void(std::string_view, const std::string&)> fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn = observer_;
  }
  if (fn) fn(op, path);
}

Status FaultFs::CheckAlive(const char* op) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    return Status::Internal(std::string("injected crash: ") + op +
                            " after simulated kill");
  }
  return Status::OK();
}

}  // namespace persist
}  // namespace coverage

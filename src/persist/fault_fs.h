#ifndef COVERAGE_PERSIST_FAULT_FS_H_
#define COVERAGE_PERSIST_FAULT_FS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace coverage {
namespace persist {

/// Append-only file handle. Implementations either write the whole buffer
/// or return an error (callers never see short writes — FaultFs converts an
/// injected short write into "partial bytes landed, then the call failed",
/// which is exactly what a crash mid-write looks like on disk).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;

  /// Durability barrier (fdatasync). On return every previously appended
  /// byte survives a crash of the process and the machine's page cache.
  virtual Status Sync() = 0;

  virtual Status Close() = 0;
};

/// The filesystem seam every persistence component writes through. One
/// production implementation (posix, Default()) and one fault-injecting
/// wrapper (FaultFs) used by the crash-recovery property tests. The
/// interface is deliberately minimal: append-only files, whole-file reads,
/// atomic rename, directory listing/creation/sync.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Opens `path` for appending; `truncate` starts it empty.
  virtual StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  virtual StatusOr<std::string> ReadFileToString(const std::string& path) = 0;

  /// Entry names (not paths) of `path`, excluding "." and "..", sorted.
  virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& path) = 0;

  /// mkdir -p.
  virtual Status CreateDirs(const std::string& path) = 0;

  /// Atomic replace (rename(2)); the commit point of every snapshot.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual Status Remove(const std::string& path) = 0;

  /// Durability barrier for directory metadata (the rename itself).
  virtual Status SyncDir(const std::string& path) = 0;

  virtual bool Exists(const std::string& path) = 0;

  /// The process-wide posix filesystem.
  static FileSystem* Default();
};

/// Fault-injection wrapper: passes everything through to `base` until a
/// configured fault triggers.
///
///   - CrashAfterBytes(k): the k-th appended byte (counted across every
///     file opened through this wrapper) is the last one to reach `base`;
///     the append that crosses the threshold lands only its prefix (a torn
///     write) and fails, and every subsequent mutation fails too. Together
///     with a fresh recovery pass over the same directory this simulates
///     kill -9 at an arbitrary write point.
///   - FailNextAppend/FailNextSync/FailNextRename: one-shot errors (ENOSPC,
///     EIO, a failed fsync) without entering the crashed state. A failed
///     Sync makes no durability promise for buffered bytes — callers are
///     expected to poison themselves, which the tests assert.
///   - set_op_observer: called before every operation with (op, path) —
///     the crash-point callback hook for tests that script exact sequences.
///
/// Thread-safe. Reads are served from `base` even after a crash (the
/// "disk" survives; the process does not).
class FaultFs : public FileSystem {
 public:
  explicit FaultFs(FileSystem* base) : base_(base) {}

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  StatusOr<std::string> ReadFileToString(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  bool Exists(const std::string& path) override;

  /// Arms the crash: after `n` more appended bytes reach `base`, every
  /// mutation fails (see class comment). n == 0 crashes immediately.
  void CrashAfterBytes(std::uint64_t n);

  bool crashed() const;

  /// Disarms every fault and leaves pass-through mode (the "reboot").
  void Reset();

  void FailNextAppend(Status error);
  void FailNextSync(Status error);
  void FailNextRename(Status error);

  /// Observer for every operation: ("append" | "sync" | "close" | "open" |
  /// "rename" | "remove" | "syncdir", path). Runs outside the internal
  /// lock; keep it cheap and thread-safe.
  void set_op_observer(
      std::function<void(std::string_view op, const std::string& path)> fn);

  /// Total bytes appended through this wrapper since construction (torn
  /// prefixes included) — the domain CrashAfterBytes samples from.
  std::uint64_t bytes_written() const;

 private:
  friend class FaultFile;

  /// Charges `want` appended bytes against the crash budget. Returns how
  /// many may still reach `base` (== want when no crash triggers) and
  /// whether this append crosses the crash threshold.
  std::uint64_t AdmitAppend(std::uint64_t want, bool* crossed);

  /// One-shot error takeout; OK when none armed.
  Status TakeAppendError();
  Status TakeSyncError();

  void Observe(std::string_view op, const std::string& path);

  /// InternalError("injected crash: ...") when crashed, else OK.
  Status CheckAlive(const char* op) const;

  FileSystem* base_;
  mutable std::mutex mu_;
  bool crashed_ = false;
  bool crash_armed_ = false;
  std::uint64_t crash_budget_ = 0;   // appended bytes until the crash
  std::uint64_t bytes_written_ = 0;
  std::optional<Status> next_append_error_;
  std::optional<Status> next_sync_error_;
  std::optional<Status> next_rename_error_;
  std::function<void(std::string_view, const std::string&)> observer_;
};

}  // namespace persist
}  // namespace coverage

#endif  // COVERAGE_PERSIST_FAULT_FS_H_

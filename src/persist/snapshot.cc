#include "persist/snapshot.h"

#include <algorithm>
#include <utility>

namespace coverage {
namespace persist {
namespace {

constexpr char kSnapshotPrefix[] = "snap-";
constexpr char kSnapshotSuffix[] = ".ckpt";
constexpr char kWalPrefix[] = "wal-";
constexpr char kWalSuffix[] = ".log";
constexpr int kEpochDigits = 20;  // fits every u64

std::string PaddedEpoch(std::uint64_t epoch) {
  std::string digits = std::to_string(epoch);
  return std::string(kEpochDigits - digits.size(), '0') + digits;
}

std::optional<std::uint64_t> ParseEpochName(const std::string& name,
                                            std::string_view prefix,
                                            std::string_view suffix) {
  if (name.size() != prefix.size() + kEpochDigits + suffix.size()) {
    return std::nullopt;
  }
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t epoch = 0;
  for (int i = 0; i < kEpochDigits; ++i) {
    const char c = name[prefix.size() + static_cast<std::size_t>(i)];
    if (c < '0' || c > '9') return std::nullopt;
    // u64 overflow is impossible: 20 decimal digits from a name we padded
    // ourselves; a hand-crafted overflow just wraps into a wrong (ignored)
    // epoch, never UB.
    epoch = epoch * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return epoch;
}

}  // namespace

std::string SnapshotFileName(std::uint64_t epoch) {
  return kSnapshotPrefix + PaddedEpoch(epoch) + kSnapshotSuffix;
}

std::string WalFileName(std::uint64_t base_epoch) {
  return kWalPrefix + PaddedEpoch(base_epoch) + kWalSuffix;
}

std::optional<std::uint64_t> ParseSnapshotFileName(const std::string& name) {
  return ParseEpochName(name, kSnapshotPrefix, kSnapshotSuffix);
}

std::optional<std::uint64_t> ParseWalFileName(const std::string& name) {
  return ParseEpochName(name, kWalPrefix, kWalSuffix);
}

void EncodeEngineOptions(const EngineOptions& options, ByteWriter* out) {
  out->PutU64(options.tau);
  out->PutI64(options.max_level);
  out->PutU8(static_cast<std::uint8_t>(options.dominance_mode));
  out->PutU64(options.window_max_rows);
  out->PutU64(options.window_max_epochs);
  out->PutU8(static_cast<std::uint8_t>(options.durability));
}

Status DecodeEngineOptions(ByteReader* in, EngineOptions* options) {
  *options = EngineOptions{};
  std::int64_t max_level = 0;
  std::uint8_t dominance = 0, durability = 0;
  std::uint64_t window_rows = 0, window_epochs = 0;
  COVERAGE_RETURN_IF_ERROR(in->GetU64(&options->tau));
  COVERAGE_RETURN_IF_ERROR(in->GetI64(&max_level));
  COVERAGE_RETURN_IF_ERROR(in->GetU8(&dominance));
  COVERAGE_RETURN_IF_ERROR(in->GetU64(&window_rows));
  COVERAGE_RETURN_IF_ERROR(in->GetU64(&window_epochs));
  COVERAGE_RETURN_IF_ERROR(in->GetU8(&durability));
  if (dominance > static_cast<std::uint8_t>(
                      MupSearchOptions::DominanceMode::kNoPruning)) {
    return Status::InvalidArgument("decode: unknown dominance mode " +
                                   std::to_string(dominance));
  }
  if (durability > static_cast<std::uint8_t>(DurabilityMode::kFsync)) {
    return Status::InvalidArgument("decode: unknown durability mode " +
                                   std::to_string(durability));
  }
  options->max_level = static_cast<int>(max_level);
  options->dominance_mode =
      static_cast<MupSearchOptions::DominanceMode>(dominance);
  options->window_max_rows = static_cast<std::size_t>(window_rows);
  options->window_max_epochs = static_cast<std::size_t>(window_epochs);
  options->durability = static_cast<DurabilityMode>(durability);
  return Status::OK();
}

std::string EncodeEngineImage(const EngineImage& image) {
  ByteWriter out;
  EncodeSchema(image.schema, &out);
  EncodeEngineOptions(image.options, &out);
  out.PutU64(image.epoch);
  out.PutU64(image.agg_counts.size());
  for (const Value v : image.agg_cells) {
    out.PutU16(static_cast<std::uint16_t>(v));
  }
  for (const std::uint64_t c : image.agg_counts) out.PutU64(c);
  EncodePatterns(image.mups, &out);
  out.PutU64(image.window_batches.size());
  for (const Dataset& batch : image.window_batches) EncodeRows(batch, &out);
  return out.Take();
}

StatusOr<EngineImage> DecodeEngineImage(std::string_view body) {
  ByteReader in(body);
  EngineImage image;

  auto schema = DecodeSchema(&in);
  if (!schema.ok()) return schema.status();
  image.schema = std::move(*schema);
  const std::size_t d =
      static_cast<std::size_t>(image.schema.num_attributes());

  COVERAGE_RETURN_IF_ERROR(DecodeEngineOptions(&in, &image.options));
  COVERAGE_RETURN_IF_ERROR(in.GetU64(&image.epoch));

  std::uint64_t num_combinations = 0;
  COVERAGE_RETURN_IF_ERROR(in.GetU64(&num_combinations));
  if (num_combinations > in.remaining() ||
      num_combinations * d * 2 > in.remaining()) {
    return Status::InvalidArgument("decode: implausible combination count " +
                                   std::to_string(num_combinations));
  }
  image.agg_cells.reserve(num_combinations * d);
  for (std::uint64_t i = 0; i < num_combinations * d; ++i) {
    std::uint16_t raw = 0;
    COVERAGE_RETURN_IF_ERROR(in.GetU16(&raw));
    image.agg_cells.push_back(static_cast<Value>(raw));
  }
  image.agg_counts.reserve(num_combinations);
  for (std::uint64_t i = 0; i < num_combinations; ++i) {
    std::uint64_t count = 0;
    COVERAGE_RETURN_IF_ERROR(in.GetU64(&count));
    image.agg_counts.push_back(count);
  }

  COVERAGE_RETURN_IF_ERROR(DecodePatterns(image.schema, &in, &image.mups));

  std::uint64_t num_batches = 0;
  COVERAGE_RETURN_IF_ERROR(in.GetU64(&num_batches));
  if (num_batches > in.remaining()) {
    return Status::InvalidArgument("decode: implausible batch count " +
                                   std::to_string(num_batches));
  }
  image.window_batches.reserve(num_batches);
  for (std::uint64_t b = 0; b < num_batches; ++b) {
    auto batch = DecodeRows(image.schema, &in);
    if (!batch.ok()) return batch.status();
    image.window_batches.push_back(std::move(*batch));
  }
  COVERAGE_RETURN_IF_ERROR(in.ExpectDone());
  return image;
}

Status WriteSnapshotFile(FileSystem* fs, const std::string& dir,
                         const EngineImage& image) {
  const std::string body = EncodeEngineImage(image);
  ByteWriter header;
  header.PutU32(Crc32c(body));

  const std::string final_path = dir + "/" + SnapshotFileName(image.epoch);
  const std::string tmp_path = final_path + ".tmp";

  const Status written = [&] {
    auto file = fs->NewWritableFile(tmp_path, /*truncate=*/true);
    if (!file.ok()) return file.status();
    COVERAGE_RETURN_IF_ERROR(
        (*file)->Append({kSnapshotMagic, sizeof(kSnapshotMagic)}));
    COVERAGE_RETURN_IF_ERROR((*file)->Append(header.data()));
    COVERAGE_RETURN_IF_ERROR((*file)->Append(body));
    COVERAGE_RETURN_IF_ERROR((*file)->Sync());
    return (*file)->Close();
  }();
  if (!written.ok()) {
    (void)fs->Remove(tmp_path);  // best effort; tmp files are also ignored
    return written;
  }
  COVERAGE_RETURN_IF_ERROR(fs->Rename(tmp_path, final_path));
  return fs->SyncDir(dir);
}

StatusOr<EngineImage> ReadSnapshotFile(FileSystem* fs,
                                       const std::string& path) {
  auto bytes = fs->ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  const std::string& data = *bytes;
  if (data.size() < sizeof(kSnapshotMagic) + 4 ||
      data.compare(0, sizeof(kSnapshotMagic), kSnapshotMagic,
                   sizeof(kSnapshotMagic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a snapshot file");
  }
  ByteReader header(
      std::string_view(data).substr(sizeof(kSnapshotMagic), 4));
  std::uint32_t crc = 0;
  (void)header.GetU32(&crc);  // cannot fail: 4 bytes are present
  const std::string_view body =
      std::string_view(data).substr(sizeof(kSnapshotMagic) + 4);
  if (Crc32c(body) != crc) {
    return Status::InvalidArgument("snapshot '" + path +
                                   "' fails its checksum");
  }
  return DecodeEngineImage(body);
}

StatusOr<SessionDirListing> ListSessionDir(FileSystem* fs,
                                           const std::string& dir) {
  SessionDirListing listing;
  if (!fs->Exists(dir)) return listing;
  auto names = fs->ListDir(dir);
  if (!names.ok()) return names.status();
  for (const std::string& name : *names) {
    if (const auto epoch = ParseSnapshotFileName(name)) {
      listing.snapshot_epochs.push_back(*epoch);
    } else if (const auto base = ParseWalFileName(name)) {
      listing.wal_bases.push_back(*base);
    }
  }
  std::sort(listing.snapshot_epochs.begin(), listing.snapshot_epochs.end());
  std::sort(listing.wal_bases.begin(), listing.wal_bases.end());
  return listing;
}

}  // namespace persist
}  // namespace coverage

#ifndef COVERAGE_PERSIST_SNAPSHOT_H_
#define COVERAGE_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/coverage_engine.h"
#include "persist/codec.h"
#include "persist/fault_fs.h"

namespace coverage {
namespace persist {

/// Snapshot file format:
///
///   [8-byte magic "covsnp01"][u32 crc32c(body)][body]
///
/// where body is the codec.h encoding of an EngineImage (schema, options,
/// epoch, aggregated cells + counts, MUP set, window batches). One
/// checksum over the whole body: a snapshot is either entirely valid or
/// discarded — recovery falls back to the previous generation, never to a
/// partially decoded image.
inline constexpr char kSnapshotMagic[8] = {'c', 'o', 'v', 's', 'n',
                                           'p', '0', '1'};

/// File names inside a session directory. Epochs are zero-padded to 20
/// digits so lexicographic directory order equals numeric order.
std::string SnapshotFileName(std::uint64_t epoch);
std::string WalFileName(std::uint64_t base_epoch);

/// Inverse of the two above; nullopt when `name` is not of that shape.
std::optional<std::uint64_t> ParseSnapshotFileName(const std::string& name);
std::optional<std::uint64_t> ParseWalFileName(const std::string& name);

/// The codec.h body encoding of an image (exposed for WAL header reuse and
/// the corruption tests).
std::string EncodeEngineImage(const EngineImage& image);
StatusOr<EngineImage> DecodeEngineImage(std::string_view body);

/// Serializes `options`' durable problem knobs (tau, max_level, dominance,
/// window limits, durability) — runtime knobs are not persisted and decode
/// to their defaults.
void EncodeEngineOptions(const EngineOptions& options, ByteWriter* out);
Status DecodeEngineOptions(ByteReader* in, EngineOptions* options);

/// Atomically writes `image` as `dir/snap-<epoch>.ckpt`: tmp file + data
/// fsync + rename-into-place + directory fsync. On any failure the tmp
/// file is removed (best effort) and no generation is replaced.
Status WriteSnapshotFile(FileSystem* fs, const std::string& dir,
                         const EngineImage& image);

/// Reads and validates one snapshot file (magic, checksum, full decode).
StatusOr<EngineImage> ReadSnapshotFile(FileSystem* fs,
                                       const std::string& path);

/// The persistence-relevant contents of a session directory, sorted
/// ascending.
struct SessionDirListing {
  std::vector<std::uint64_t> snapshot_epochs;
  std::vector<std::uint64_t> wal_bases;
  bool empty() const { return snapshot_epochs.empty() && wal_bases.empty(); }
};

/// Lists snapshots and WAL segments under `dir`; unknown files (and the
/// tmp files of interrupted snapshot writes) are ignored. A missing
/// directory lists as empty.
StatusOr<SessionDirListing> ListSessionDir(FileSystem* fs,
                                           const std::string& dir);

}  // namespace persist
}  // namespace coverage

#endif  // COVERAGE_PERSIST_SNAPSHOT_H_

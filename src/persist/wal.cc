#include "persist/wal.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "persist/codec.h"

namespace coverage {
namespace persist {
namespace {

std::string MagicString() { return std::string(kWalMagic, sizeof(kWalMagic)); }

}  // namespace

std::string EncodeWalRecord(WalRecordType type, std::uint64_t epoch,
                            const std::string& body) {
  ByteWriter payload;
  payload.PutU8(static_cast<std::uint8_t>(type));
  payload.PutU64(epoch);
  std::string payload_bytes = payload.Take() + body;

  ByteWriter frame;
  frame.PutU32(static_cast<std::uint32_t>(payload_bytes.size()));
  frame.PutU32(Crc32c(payload_bytes));
  return frame.Take() + payload_bytes;
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(FileSystem* fs,
                                                     const std::string& path,
                                                     bool truncate) {
  std::uint64_t offset = 0;
  if (!truncate && fs->Exists(path)) {
    // Appending to an existing segment: trust only its valid prefix. The
    // recovery flow never does this (it always rotates to a fresh segment),
    // so an existing file here is a caller bug more than a crash artifact;
    // still, refuse to extend past damage.
    auto scan = ReadWalSegment(fs, path);
    if (!scan.ok()) return scan.status();
    if (scan->torn_tail) {
      return Status::Internal("refusing to append to torn WAL segment '" +
                              path + "': " + scan->tail_warning);
    }
    offset = sizeof(kWalMagic) + scan->valid_bytes;
  }
  auto file = fs->NewWritableFile(path, truncate);
  if (!file.ok()) return file.status();
  auto writer =
      std::unique_ptr<WalWriter>(new WalWriter(std::move(*file), offset));
  if (offset == 0) {
    COVERAGE_RETURN_IF_ERROR(writer->file_->Append(MagicString()));
  }
  return writer;
}

Status WalWriter::Append(WalRecordType type, std::uint64_t epoch,
                         const std::string& body, std::uint64_t* lsn) {
  const std::string frame = EncodeWalRecord(type, epoch, body);
  std::unique_lock<std::mutex> lock(mu_);
  COVERAGE_RETURN_IF_ERROR(poisoned_);
  if (file_ == nullptr) {
    return Status::Internal("append to a closed WAL segment");
  }
  const Status appended = file_->Append(frame);
  if (!appended.ok()) {
    poisoned_ = appended;
    return appended;
  }
  end_offset_ += frame.size();
  if (lsn != nullptr) *lsn = end_offset_;
  return Status::OK();
}

Status WalWriter::Sync(std::uint64_t lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  if (lsn > end_offset_) {
    return Status::InvalidArgument("Sync past the end of the WAL (lsn " +
                                   std::to_string(lsn) + " > " +
                                   std::to_string(end_offset_) + ")");
  }
  for (;;) {
    COVERAGE_RETURN_IF_ERROR(poisoned_);
    if (synced_offset_ >= lsn) return Status::OK();
    // Retired by rotation: the checkpoint that closed this segment made a
    // snapshot covering our record durable first, so the promise holds.
    if (file_ == nullptr) return Status::OK();
    if (!sync_in_flight_) break;
    // Another thread's fdatasync is in flight; it covers every byte
    // appended before it started, which may or may not include ours —
    // re-check when it finishes.
    sync_cv_.wait(lock);
  }

  // Become the syncer for everything appended so far. Close waits for
  // sync_in_flight_, so `file` stays alive while unlocked.
  sync_in_flight_ = true;
  WritableFile* file = file_.get();
  const std::uint64_t target = end_offset_;
  lock.unlock();
  const auto start = std::chrono::steady_clock::now();
  const Status synced = file->Sync();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  lock.lock();
  sync_in_flight_ = false;
  ++sync_calls_;
  sync_seconds_ += seconds;
  if (sync_histogram_ != nullptr) sync_histogram_->Observe(seconds);
  if (!synced.ok()) {
    poisoned_ = synced;
    sync_cv_.notify_all();
    return synced;
  }
  if (target > synced_offset_) synced_offset_ = target;
  sync_cv_.notify_all();
  // lsn <= end_offset_ <= target at the time we became the syncer, so our
  // own offset is covered.
  return Status::OK();
}

std::uint64_t WalWriter::end_offset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return end_offset_;
}

std::uint64_t WalWriter::sync_calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sync_calls_;
}

double WalWriter::sync_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sync_seconds_;
}

void WalWriter::set_sync_histogram(obs::Histogram* histogram) {
  std::lock_guard<std::mutex> lock(mu_);
  sync_histogram_ = histogram;
}

Status WalWriter::Close() {
  std::unique_lock<std::mutex> lock(mu_);
  while (sync_in_flight_) sync_cv_.wait(lock);
  if (file_ == nullptr) return Status::OK();
  const Status closed = file_->Close();
  file_ = nullptr;
  sync_cv_.notify_all();
  return closed;
}

StatusOr<WalReadResult> ReadWalSegment(FileSystem* fs,
                                       const std::string& path) {
  auto bytes = fs->ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  const std::string& data = *bytes;

  if (data.size() < sizeof(kWalMagic) ||
      data.compare(0, sizeof(kWalMagic), kWalMagic, sizeof(kWalMagic)) != 0) {
    // A file too short to hold the magic can itself be a torn first write;
    // treat it as an empty readable prefix rather than corruption only if
    // it is a strict prefix of the magic.
    if (data.size() < sizeof(kWalMagic) &&
        std::string(kWalMagic, sizeof(kWalMagic)).compare(0, data.size(),
                                                          data) == 0) {
      WalReadResult torn;
      torn.torn_tail = true;
      torn.tail_warning = "segment torn inside the file magic";
      return torn;
    }
    return Status::InvalidArgument("'" + path + "' is not a WAL segment");
  }

  WalReadResult result;
  std::size_t pos = sizeof(kWalMagic);
  while (pos < data.size()) {
    const std::size_t record_start = pos;
    if (data.size() - pos < kWalRecordOverhead) {
      result.torn_tail = true;
      result.tail_warning = "incomplete record frame at offset " +
                            std::to_string(record_start);
      break;
    }
    ByteReader frame(std::string_view(data).substr(pos, kWalRecordOverhead));
    std::uint32_t len = 0, crc = 0;
    // Cannot fail: kWalRecordOverhead bytes are present.
    (void)frame.GetU32(&len);
    (void)frame.GetU32(&crc);
    pos += kWalRecordOverhead;
    if (len > kWalMaxRecordBytes) {
      result.torn_tail = true;
      result.tail_warning = "implausible record length " +
                            std::to_string(len) + " at offset " +
                            std::to_string(record_start);
      break;
    }
    if (data.size() - pos < len) {
      result.torn_tail = true;
      result.tail_warning = "incomplete record payload at offset " +
                            std::to_string(record_start);
      break;
    }
    const std::string_view payload = std::string_view(data).substr(pos, len);
    if (Crc32c(payload) != crc) {
      result.torn_tail = true;
      result.tail_warning = "checksum mismatch at offset " +
                            std::to_string(record_start);
      break;
    }
    pos += len;

    ByteReader reader(payload);
    std::uint8_t type = 0;
    std::uint64_t epoch = 0;
    const Status header = [&] {
      COVERAGE_RETURN_IF_ERROR(reader.GetU8(&type));
      COVERAGE_RETURN_IF_ERROR(reader.GetU64(&epoch));
      return Status::OK();
    }();
    if (!header.ok() || type < static_cast<std::uint8_t>(WalRecordType::kHeader) ||
        type > static_cast<std::uint8_t>(WalRecordType::kEvict)) {
      // Checksummed but undecodable: a format version we don't know. Stop
      // the prefix here — replaying past it would misinterpret state.
      result.torn_tail = true;
      result.tail_warning = "unknown record type at offset " +
                            std::to_string(record_start);
      pos = record_start;
      break;
    }
    WalRecord record;
    record.type = static_cast<WalRecordType>(type);
    record.epoch = epoch;
    record.body = std::string(payload.substr(payload.size() -
                                             reader.remaining()));
    result.records.push_back(std::move(record));
    result.valid_bytes = pos - sizeof(kWalMagic);
  }
  if (result.torn_tail && result.tail_warning.empty()) {
    result.tail_warning = "torn tail";
  }
  return result;
}

}  // namespace persist
}  // namespace coverage

#ifndef COVERAGE_PERSIST_WAL_H_
#define COVERAGE_PERSIST_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "persist/fault_fs.h"

namespace coverage {
namespace obs {
class Histogram;
}  // namespace obs
namespace persist {

/// Write-ahead-log record types, one per CoverageEngine mutation kind.
enum class WalRecordType : std::uint8_t {
  kHeader = 1,   ///< segment prologue: schema + engine options
  kAppend = 2,   ///< one AppendRows batch (rows inline)
  kRetract = 3,  ///< one RetractRows batch (rows inline)
  kEvict = 4,    ///< sliding-window eviction fold-in (row count only —
                 ///< eviction is deterministic within the append's replay,
                 ///< so the count is a consistency check, not data)
};

/// One decoded WAL record.
struct WalRecord {
  WalRecordType type = WalRecordType::kHeader;
  /// The epoch the mutation produced. Replay skips records at or below the
  /// snapshot's epoch and asserts the rest arrive in +1 steps.
  std::uint64_t epoch = 0;
  /// Type-specific payload (codec.h encodings).
  std::string body;
};

/// On-disk format of a WAL segment:
///
///   [8-byte magic "covwal01"]
///   repeated records: [u32 len][u32 crc32c(payload)][payload]
///   payload:          [u8 type][u64 epoch][body...]
///
/// `len` counts payload bytes. All integers little-endian. A record is
/// valid iff it is complete and its checksum matches; the first invalid
/// record ends the readable prefix (torn tail).
inline constexpr char kWalMagic[8] = {'c', 'o', 'v', 'w', 'a', 'l', '0', '1'};
inline constexpr std::size_t kWalRecordOverhead = 8;  // len + crc
/// Records bigger than this are rejected as corruption rather than decoded
/// (a flipped length byte must not drive a 4 GiB allocation).
inline constexpr std::uint32_t kWalMaxRecordBytes = 1u << 30;

/// Appends checksummed records to one segment file with a group-commit
/// sync: Append returns the record's end offset (its LSN); Sync(lsn)
/// returns once a single fdatasync — possibly issued by another thread —
/// covers that offset. Thread-safe.
class WalWriter {
 public:
  /// Opens `path` (created/truncated when `truncate`) and writes the magic
  /// if the file starts empty.
  static StatusOr<std::unique_ptr<WalWriter>> Open(FileSystem* fs,
                                                   const std::string& path,
                                                   bool truncate);

  /// Appends one record (buffered write(2); durable only after Sync). On
  /// success `*lsn` is the end offset of the record. A failed append
  /// poisons the writer: the segment may hold a torn record, so every
  /// later Append/Sync fails with the original error.
  Status Append(WalRecordType type, std::uint64_t epoch,
                const std::string& body, std::uint64_t* lsn);

  /// Group commit: blocks until some fdatasync covers `lsn`. Concurrent
  /// callers coalesce — one syncer flushes for everyone who queued behind
  /// it. Failure poisons the writer (durability can no longer be promised).
  /// A writer retired by Close returns OK: rotation only closes a segment
  /// after a durable snapshot has superseded its records.
  Status Sync(std::uint64_t lsn);

  /// Bytes appended so far (== the next record's start offset).
  std::uint64_t end_offset() const;

  /// Cumulative fdatasync calls and their total latency, for /v1/stats.
  std::uint64_t sync_calls() const;
  double sync_seconds() const;

  /// Optional latency histogram observed once per fdatasync (not per Sync
  /// call — group commit coalesces). Must outlive the writer; null disables.
  void set_sync_histogram(obs::Histogram* histogram);

  Status Close();

 private:
  WalWriter(std::unique_ptr<WritableFile> file, std::uint64_t offset)
      : file_(std::move(file)), end_offset_(offset), synced_offset_(offset) {}

  mutable std::mutex mu_;
  std::condition_variable sync_cv_;
  std::unique_ptr<WritableFile> file_;
  std::uint64_t end_offset_;     // bytes appended
  std::uint64_t synced_offset_;  // bytes known durable
  bool sync_in_flight_ = false;
  Status poisoned_ = Status::OK();
  std::uint64_t sync_calls_ = 0;
  double sync_seconds_ = 0.0;
  obs::Histogram* sync_histogram_ = nullptr;
};

/// Result of scanning one segment file.
struct WalReadResult {
  std::vector<WalRecord> records;  ///< the valid prefix, in order
  /// True when the file ends in an incomplete or checksum-failing record
  /// (the expected state after a crash mid-append). Recovery keeps the
  /// prefix and warns; it is not an error.
  bool torn_tail = false;
  /// Byte offset of the end of the valid prefix.
  std::uint64_t valid_bytes = 0;
  /// Human-readable description of the tail damage, empty when clean.
  std::string tail_warning;
};

/// Reads every valid record of the segment at `path`. Only a missing file
/// or a bad magic is an error; tail damage is reported in the result.
StatusOr<WalReadResult> ReadWalSegment(FileSystem* fs,
                                       const std::string& path);

/// Serializes one record exactly as WalWriter appends it (exposed for the
/// torn-tail tests, which need record boundaries to truncate at).
std::string EncodeWalRecord(WalRecordType type, std::uint64_t epoch,
                            const std::string& body);

}  // namespace persist
}  // namespace coverage

#endif  // COVERAGE_PERSIST_WAL_H_

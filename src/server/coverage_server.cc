#include "server/coverage_server.h"

#include <cmath>
#include <filesystem>
#include <system_error>
#include <utility>
#include <vector>

#include "cluster/cluster_wire.h"
#include "common/stopwatch.h"
#include "obs/log.h"
#include "obs/prometheus.h"
#include "persist/durable_engine.h"
#include "persist/fault_fs.h"
#include "server/json.h"
#include "server/wire.h"
#include "server/wire_binary.h"
#include "service/pool_arena.h"

namespace coverage {

using http::Request;
using http::Response;
using json::JsonValue;

// ------------------------------------------------------------------ helpers

namespace {

int StatusToHttp(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kOutOfRange: return 400;
    case StatusCode::kResourceExhausted: return 429;
    case StatusCode::kInternal: return 500;
  }
  return 500;
}

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kInternal: return "internal";
  }
  return "internal";
}

Response ErrorResponse(const Status& status) {
  JsonValue::Object error;
  error["code"] = StatusCodeName(status.code());
  error["message"] = status.message();
  JsonValue::Object body;
  body["error"] = std::move(error);
  return Response::Json(StatusToHttp(status),
                        json::Serialize(JsonValue(std::move(body))));
}

Response OkJson(JsonValue value) {
  return Response::Json(200, json::Serialize(value));
}

Response OkBinary(std::string bytes) {
  Response r;
  r.status = 200;
  r.headers.push_back({"Content-Type", wire::kBinaryContentType});
  r.body = std::move(bytes);
  return r;
}

/// Wire v2 negotiation: the client opts into the binary encoding per
/// request by listing the media type in Accept. Plain substring match —
/// q-values and wildcards are out of scope for a two-format protocol
/// (`*/*`, what curl sends by default, deliberately stays JSON).
bool AcceptsBinary(const Request& request) {
  const std::string* accept = request.FindHeader("Accept");
  return accept != nullptr &&
         accept->find(wire::kBinaryContentType) != std::string::npos;
}

/// Parses a request body that must be a JSON object; an empty body stands
/// for {} so bodyless POSTs (session audit) stay ergonomic.
StatusOr<JsonValue> ParseBody(const std::string& body) {
  if (body.empty()) return JsonValue(JsonValue::Object{});
  auto parsed = json::Parse(body);
  if (!parsed.ok()) return parsed.status();
  if (!parsed->is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  return parsed;
}

const char* DurabilityName(DurabilityMode mode) {
  switch (mode) {
    case DurabilityMode::kNone: return "none";
    case DurabilityMode::kAsync: return "async";
    case DurabilityMode::kFsync: return "fsync";
  }
  return "fsync";
}

StatusOr<DurabilityMode> DurabilityFromString(const std::string& name) {
  if (name == "none") return DurabilityMode::kNone;
  if (name == "async") return DurabilityMode::kAsync;
  if (name == "fsync") return DurabilityMode::kFsync;
  return Status::InvalidArgument(
      "durability must be one of \"none\", \"async\", \"fsync\" (got \"" +
      name + "\")");
}

/// Session ids are "s<n>"; recovery parses them back so fresh ids never
/// collide with recovered ones.
bool ParseSessionId(const std::string& id, std::uint64_t* n) {
  if (id.size() < 2 || id[0] != 's') return false;
  std::uint64_t value = 0;
  for (std::size_t i = 1; i < id.size(); ++i) {
    if (id[i] < '0' || id[i] > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(id[i] - '0');
  }
  *n = value;
  return true;
}

/// True when the target's query string carries `timing=1`.
bool WantsTiming(const std::string& target) {
  const std::size_t question = target.find('?');
  if (question == std::string::npos) return false;
  std::size_t pos = question + 1;
  while (pos < target.size()) {
    std::size_t amp = target.find('&', pos);
    if (amp == std::string::npos) amp = target.size();
    if (target.compare(pos, amp - pos, "timing=1") == 0) return true;
    pos = amp + 1;
  }
  return false;
}

}  // namespace

Status CoverageServerOptions::Validate() const {
  COVERAGE_RETURN_IF_ERROR(http.Validate());
  COVERAGE_RETURN_IF_ERROR(session_defaults.Validate());
  if (max_sessions < 1) {
    return Status::InvalidArgument("max_sessions must be positive");
  }
  if (reaper_interval_ms < 1) {
    return Status::InvalidArgument("reaper_interval_ms must be positive");
  }
  return Status::OK();
}

// ----------------------------------------------------------- CoverageServer

CoverageServer::CoverageServer(CoverageService service,
                               CoverageServerOptions options)
    : service_(std::move(service)),
      options_(std::move(options)),
      http_(options_.http,
            [this](const Request& request) { return Handle(request); }) {
  if (options_.session_defaults.thread_budget == nullptr) {
    // One budget across every session the server opens: the registry-wide
    // (in practice process-wide) cap of ServiceOptions::max_total_threads.
    options_.session_defaults.thread_budget = std::make_shared<ThreadBudget>(
        options_.session_defaults.max_total_threads);
  }
  if (options_.metrics_registry != nullptr) {
    metrics_ = options_.metrics_registry;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  // Persistence histograms flow session_defaults → DurableEngineOptions →
  // WalWriter, so every durable session (created or recovered) reports into
  // this server's registry.
  if (options_.session_defaults.fsync_histogram == nullptr) {
    options_.session_defaults.fsync_histogram = metrics_->GetHistogram(
        "coverage_persist_fsync_seconds",
        "WAL fdatasync latency, one observation per group-committed sync");
  }
  if (options_.session_defaults.checkpoint_histogram == nullptr) {
    options_.session_defaults.checkpoint_histogram = metrics_->GetHistogram(
        "coverage_persist_checkpoint_seconds",
        "Snapshot + WAL-rotation latency per checkpoint");
  }
  http_.set_loop_latency_histogram(metrics_->GetHistogram(
      "coverage_net_loop_iteration_seconds",
      "Event-loop iteration latency, wake to sleep (epoll io model only)"));
  if (http_.io_model() == http::IoModel::kEpoll) {
    // Under the event loop the reaper tick rides the loop's deadline wheel
    // instead of a dedicated thread (Start() skips spawning one). The sweep
    // holds sessions_mu_ briefly and checkpoints expiring durable sessions,
    // so a pathological interval + fsync storm would stall serving — the
    // default 1s tick with idle-TTL churn is nowhere near that.
    http_.AddPeriodicTask(options_.reaper_interval_ms,
                          [this] { ReapIdleSessions(); });
  }
  // Fixed route-key set: Dispatch only ever looks up, so the record path
  // never mutates the map and stays lock-free.
  static const char* const kRouteKeys[] = {
      "GET /healthz",
      "GET /metrics",
      "GET /v1/stats",
      "GET /v1/schema",
      "POST /v1/audit",
      "POST /v1/enhance",
      "POST /v1/query",
      "GET /v1/sessions",
      "POST /v1/sessions",
      "DELETE /v1/sessions/{id}",
      "POST /v1/sessions/{id}/append",
      "POST /v1/sessions/{id}/retract",
      "POST /v1/sessions/{id}/audit",
      "POST /v1/sessions/{id}/query",
      "POST /internal/v1/counts",
      "POST /internal/v1/candidates",
      "POST /internal/v1/sessions",
  };
  const char* const latency_help =
      "HTTP request latency by route (transport excluded: measured around "
      "the route handler)";
  const char* const errors_help = "HTTP responses with status >= 400";
  for (const char* key : kRouteKeys) {
    routes_[key] = RouteSeries{
        metrics_->GetHistogram("coverage_http_request_seconds", latency_help,
                               {{"route", key}}),
        metrics_->GetCounter("coverage_http_request_errors_total",
                             errors_help, {{"route", key}})};
  }
  unrouted_ = RouteSeries{
      metrics_->GetHistogram("coverage_http_request_seconds", latency_help,
                             {{"route", "unrouted"}}),
      metrics_->GetCounter("coverage_http_request_errors_total", errors_help,
                           {{"route", "unrouted"}})};
  RegisterMetrics();
}

CoverageServer::EngineGauges CoverageServer::CollectEngineGauges() const {
  EngineGauges g;
  std::shared_lock<std::shared_mutex> lock(sessions_mu_);
  for (const auto& [id, entry] : sessions_) {
    ++g.sessions;
    const auto snap = entry->session.engine().snapshot();
    g.rows += snap->num_rows();
    g.epochs += snap->epoch();
    g.mups += snap->mups().size();
    const AggregatedData& data = snap->data();
    for (std::size_t k = 0; k < data.num_combinations(); ++k) {
      if (data.count(k) == 0) ++g.tombstones;
    }
    g.window_rows += entry->session.engine().window_rows();
  }
  return g;
}

void CoverageServer::RegisterMetrics() {
  using obs::MetricType;
  // Callbacks run under the registry mutex at collection time and take
  // sessions_mu_ inside; nothing takes the registry mutex while holding
  // sessions_mu_, so the lock order stays registry → sessions.
  metrics_->RegisterCallback(
      "coverage_http_connections_accepted_total",
      "TCP connections accepted by the embedded server", MetricType::kCounter,
      {}, [this] {
        return static_cast<double>(http_.stats().connections_accepted);
      });
  metrics_->RegisterCallback(
      "coverage_http_requests_handled_total", "HTTP requests handled",
      MetricType::kCounter, {},
      [this] { return static_cast<double>(http_.stats().requests_handled); });
  metrics_->RegisterCallback(
      "coverage_http_protocol_errors_total",
      "Requests rejected at the HTTP layer (framing, size caps)",
      MetricType::kCounter, {},
      [this] { return static_cast<double>(http_.stats().protocol_errors); });
  metrics_->RegisterCallback(
      "coverage_http_connections_shed_total",
      "Connections answered 503 by overload shedding", MetricType::kCounter,
      {},
      [this] { return static_cast<double>(http_.stats().connections_shed); });
  metrics_->RegisterCallback(
      "coverage_http_accept_retries_total",
      "accept() failures survived by backoff (EMFILE and friends)",
      MetricType::kCounter, {},
      [this] { return static_cast<double>(http_.stats().accept_retries); });
  metrics_->RegisterCallback(
      "coverage_net_open_connections",
      "Established sockets owned by the event loop (0 under the blocking "
      "io model)",
      MetricType::kGauge, {},
      [this] { return static_cast<double>(http_.stats().open_connections); });
  metrics_->RegisterCallback(
      "coverage_net_write_buffer_bytes",
      "Response bytes buffered awaiting socket writability (0 under the "
      "blocking io model)",
      MetricType::kGauge, {}, [this] {
        return static_cast<double>(http_.stats().write_buffer_bytes);
      });

  metrics_->RegisterCallback(
      "coverage_sessions_open", "Live sessions in the registry",
      MetricType::kGauge, {},
      [this] { return static_cast<double>(num_sessions()); });
  metrics_->RegisterCallback(
      "coverage_sessions_recovered_total",
      "Durable sessions recovered from disk at boot", MetricType::kCounter,
      {}, [this] {
        return static_cast<double>(
            sessions_recovered_.load(std::memory_order_relaxed));
      });
  metrics_->RegisterCallback(
      "coverage_sessions_reaped_total", "Sessions closed by the idle reaper",
      MetricType::kCounter, {}, [this] {
        return static_cast<double>(
            sessions_reaped_.load(std::memory_order_relaxed));
      });

  metrics_->RegisterCallback(
      "coverage_engine_rows", "Rows indexed across live sessions",
      MetricType::kGauge, {},
      [this] { return static_cast<double>(CollectEngineGauges().rows); });
  metrics_->RegisterCallback(
      "coverage_engine_epochs", "Sum of session epochs (mutations applied)",
      MetricType::kGauge, {},
      [this] { return static_cast<double>(CollectEngineGauges().epochs); });
  metrics_->RegisterCallback(
      "coverage_engine_mups",
      "Maximal uncovered patterns maintained across live sessions",
      MetricType::kGauge, {},
      [this] { return static_cast<double>(CollectEngineGauges().mups); });
  metrics_->RegisterCallback(
      "coverage_engine_tombstones",
      "Zero-count value combinations retained by retraction",
      MetricType::kGauge, {}, [this] {
        return static_cast<double>(CollectEngineGauges().tombstones);
      });
  metrics_->RegisterCallback(
      "coverage_engine_window_rows",
      "Rows currently inside sliding windows across live sessions",
      MetricType::kGauge, {}, [this] {
        return static_cast<double>(CollectEngineGauges().window_rows);
      });

  const std::shared_ptr<ThreadBudget> budget =
      options_.session_defaults.thread_budget;
  metrics_->RegisterCallback(
      "coverage_threads_reserved",
      "Worker threads currently leased from the shared budget",
      MetricType::kGauge, {},
      [budget] { return static_cast<double>(budget->reserved()); });
  metrics_->RegisterCallback(
      "coverage_threads_budget",
      "Budget cap on spawned worker threads (0 = unlimited)",
      MetricType::kGauge, {}, [budget] {
        return static_cast<double>(budget->max_spawned_threads());
      });

  metrics_->RegisterCallback(
      "coverage_persist_records_logged_total",
      "WAL records appended across live durable sessions",
      MetricType::kCounter, {}, [this] {
        std::uint64_t total = 0;
        std::shared_lock<std::shared_mutex> lock(sessions_mu_);
        for (const auto& [id, entry] : sessions_) {
          const persist::DurableEngine* durable = entry->session.durable();
          if (durable != nullptr) {
            total += durable->persist_stats().records_logged;
          }
        }
        return static_cast<double>(total);
      });
  metrics_->RegisterCallback(
      "coverage_persist_wal_bytes",
      "Live WAL segment bytes across durable sessions", MetricType::kGauge,
      {}, [this] {
        std::uint64_t total = 0;
        std::shared_lock<std::shared_mutex> lock(sessions_mu_);
        for (const auto& [id, entry] : sessions_) {
          const persist::DurableEngine* durable = entry->session.durable();
          if (durable != nullptr) total += durable->persist_stats().wal_bytes;
        }
        return static_cast<double>(total);
      });
  metrics_->RegisterCallback(
      "coverage_persist_checkpoints_total",
      "Checkpoints written across live durable sessions",
      MetricType::kCounter, {}, [this] {
        std::uint64_t total = 0;
        std::shared_lock<std::shared_mutex> lock(sessions_mu_);
        for (const auto& [id, entry] : sessions_) {
          const persist::DurableEngine* durable = entry->session.durable();
          if (durable != nullptr) {
            total += durable->persist_stats().checkpoints_written;
          }
        }
        return static_cast<double>(total);
      });
}

CoverageServer::~CoverageServer() { Stop(); }

Status CoverageServer::Start() {
  COVERAGE_RETURN_IF_ERROR(options_.Validate());
  // Recover before accepting traffic: clients that knew a session id from
  // before the crash must find it live on their first retry.
  COVERAGE_RETURN_IF_ERROR(RecoverSessions());
  COVERAGE_RETURN_IF_ERROR(http_.Start());
  // Epoll mode reaps on the loop's deadline wheel (registered at
  // construction); blocking mode keeps its dedicated timer thread.
  if (http_.io_model() != http::IoModel::kEpoll) {
    {
      std::lock_guard<std::mutex> lock(reaper_mu_);
      reaper_stop_ = false;
    }
    reaper_thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(reaper_mu_);
      while (!reaper_stop_) {
        reaper_cv_.wait_for(
            lock, std::chrono::milliseconds(options_.reaper_interval_ms));
        if (reaper_stop_) break;
        lock.unlock();
        ReapIdleSessions();
        lock.lock();
      }
    });
  }
  return Status::OK();
}

void CoverageServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(reaper_mu_);
    reaper_stop_ = true;
  }
  reaper_cv_.notify_all();
  if (reaper_thread_.joinable()) reaper_thread_.join();
  http_.Stop();
}

void CoverageServer::Wait() { http_.Wait(); }
void CoverageServer::StopOnSignal() { http_.StopOnSignal(); }

std::size_t CoverageServer::num_sessions() const {
  std::shared_lock<std::shared_mutex> lock(sessions_mu_);
  return sessions_.size();
}

std::shared_ptr<CoverageServer::SessionEntry> CoverageServer::FindSession(
    const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

std::chrono::steady_clock::time_point CoverageServer::Now() const {
  return options_.clock ? options_.clock() : std::chrono::steady_clock::now();
}

void CoverageServer::TouchSession(SessionEntry& entry) const {
  entry.last_used_ns.store(Now().time_since_epoch().count(),
                           std::memory_order_relaxed);
}

Status CoverageServer::RecoverSessions() {
  if (options_.data_dir.empty()) return Status::OK();
  persist::FileSystem* fs = persist::FileSystem::Default();
  COVERAGE_RETURN_IF_ERROR(fs->CreateDirs(options_.data_dir));
  auto names = fs->ListDir(options_.data_dir);
  if (!names.ok()) return names.status();
  for (const std::string& name : *names) {
    {
      std::shared_lock<std::shared_mutex> lock(sessions_mu_);
      if (sessions_.count(name) != 0) continue;
    }
    const std::string dir = options_.data_dir + "/" + name;
    auto session =
        CoverageService::ReopenDurableSession(dir, options_.session_defaults);
    if (!session.ok()) {
      // An empty subdirectory (or stray file) is not a session; anything
      // else is real damage worth surfacing — but one bad session must not
      // keep the rest of the fleet down.
      if (session.status().code() != StatusCode::kNotFound) {
        recovery_warnings_.push_back(name + ": " +
                                     session.status().message());
      }
      continue;
    }
    const persist::DurableEngine* durable = session->durable();
    boot_records_replayed_.fetch_add(
        durable->recovery_stats().records_replayed,
        std::memory_order_relaxed);
    boot_rows_replayed_.fetch_add(durable->recovery_stats().rows_replayed,
                                  std::memory_order_relaxed);
    for (const std::string& warning : durable->recovery_stats().warnings) {
      recovery_warnings_.push_back(name + ": " + warning);
    }
    auto entry = std::make_shared<SessionEntry>(std::move(*session));
    TouchSession(*entry);
    std::uint64_t numeric = 0;
    {
      std::unique_lock<std::shared_mutex> lock(sessions_mu_);
      sessions_.emplace(name, std::move(entry));
    }
    sessions_recovered_.fetch_add(1, std::memory_order_relaxed);
    // Fresh ids must never collide with recovered ones.
    if (ParseSessionId(name, &numeric)) {
      std::uint64_t next = next_session_id_.load(std::memory_order_relaxed);
      while (next <= numeric && !next_session_id_.compare_exchange_weak(
                                    next, numeric + 1,
                                    std::memory_order_relaxed)) {
      }
    }
  }
  return Status::OK();
}

std::size_t CoverageServer::ReapIdleSessions() {
  const auto now = Now();
  std::vector<std::shared_ptr<SessionEntry>> expired;
  {
    std::unique_lock<std::shared_mutex> lock(sessions_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      const std::uint64_t ttl =
          it->second->session.options().idle_ttl_seconds;
      const auto last = std::chrono::steady_clock::time_point(
          std::chrono::steady_clock::duration(
              it->second->last_used_ns.load(std::memory_order_relaxed)));
      if (ttl > 0 && now - last >= std::chrono::seconds(ttl)) {
        expired.push_back(std::move(it->second));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& entry : expired) {
    // Snapshot-then-close: a durable session's next reopen (or the next
    // boot) recovers instantly from the fresh snapshot. The directory
    // stays — reaping reclaims memory, DELETE destroys state.
    if (entry->session.durable() != nullptr) {
      (void)entry->session.Checkpoint();
    }
    sessions_reaped_.fetch_add(1, std::memory_order_relaxed);
  }
  return expired.size();
}

Response CoverageServer::Handle(const Request& request) {
  Stopwatch timer;

  // Request id: honor the client's X-Request-Id (so one id follows a call
  // across services), otherwise mint one.
  const std::string* incoming = request.FindHeader("X-Request-Id");
  obs::Trace trace(incoming != nullptr && !incoming->empty()
                       ? *incoming
                       : obs::GenerateTraceId());

  std::string route_key;
  Response response = Dispatch(request, &route_key, &trace);
  const double seconds = timer.ElapsedSeconds();
  const bool error = response.status >= 400;

  auto it = routes_.find(route_key);
  const RouteSeries& series = it != routes_.end() ? it->second : unrouted_;
  series.latency->Observe(seconds);
  if (error) series.errors->Increment();
  for (const auto& [stage, stage_seconds] : trace.stages()) {
    metrics_
        ->GetHistogram("coverage_stage_seconds",
                       "Per-stage request latency from the trace spans",
                       {{"stage", stage}})
        ->Observe(stage_seconds);
  }

  // Opt-in timing section: ?timing=1 folds the trace into the JSON body.
  if (WantsTiming(request.target) && response.status < 400 &&
      !response.body.empty()) {
    auto parsed = json::Parse(response.body);
    if (parsed.ok() && parsed->is_object()) {
      JsonValue::Object stages;
      for (const auto& [stage, stage_seconds] : trace.stages()) {
        stages[stage] = stage_seconds;
      }
      JsonValue::Object timing;
      timing["request_id"] = trace.id();
      timing["stages"] = std::move(stages);
      timing["total_seconds"] = seconds;
      parsed->AsObject()["timing"] = std::move(timing);
      response.body = json::Serialize(*parsed);
    }
  }
  response.headers.push_back({"X-Request-Id", trace.id()});

  if (options_.slow_request_seconds > 0 &&
      seconds >= options_.slow_request_seconds) {
    obs::LogEvent event = obs::LogWarn("slow_request");
    event.Str("route", route_key.empty() ? "unrouted" : route_key)
        .Str("request_id", trace.id())
        .Double("seconds", seconds)
        .Int("status", response.status);
    for (const auto& [stage, stage_seconds] : trace.stages()) {
      event.Double(stage, stage_seconds);
    }
  }
  return response;
}

Response CoverageServer::Dispatch(const Request& request,
                                  std::string* route_key, obs::Trace* trace) {
  // Strip any query string; the wire protocol carries everything in JSON
  // bodies.
  std::string path = request.target;
  const std::size_t question = path.find('?');
  if (question != std::string::npos) path.resize(question);

  const auto route = [&](const char* key) {
    *route_key = key;
    return true;
  };

  if (request.method == "GET") {
    if (path == "/healthz" && route("GET /healthz")) return HandleHealth();
    if (path == "/metrics" && route("GET /metrics")) return HandleMetrics();
    if (path == "/v1/stats" && route("GET /v1/stats")) return HandleStats();
    if (path == "/v1/schema" && route("GET /v1/schema")) {
      return HandleSchema();
    }
    if (path == "/v1/sessions" && route("GET /v1/sessions")) {
      return HandleSessionsList();
    }
  }
  if (request.method == "POST") {
    if (path == "/v1/audit" && route("POST /v1/audit")) {
      return HandleAudit(request.body, AcceptsBinary(request), trace);
    }
    if (path == "/v1/enhance" && route("POST /v1/enhance")) {
      return HandleEnhance(request.body);
    }
    if (path == "/v1/query" && route("POST /v1/query")) {
      return HandleQuery(request.body, AcceptsBinary(request), trace);
    }
    if (path == "/v1/sessions" && route("POST /v1/sessions")) {
      return HandleSessionCreate(request.body, /*allow_explicit_id=*/false);
    }
    if (options_.enable_internal_routes) {
      if (path == "/internal/v1/counts" && route("POST /internal/v1/counts")) {
        return HandleInternalCounts(request.body, trace);
      }
      if (path == "/internal/v1/candidates" &&
          route("POST /internal/v1/candidates")) {
        return HandleInternalCandidates(request.body, trace);
      }
      if (path == "/internal/v1/sessions" &&
          route("POST /internal/v1/sessions")) {
        return HandleSessionCreate(request.body, /*allow_explicit_id=*/true);
      }
    }
  }

  // /v1/sessions/{id} and /v1/sessions/{id}/{verb}
  const std::string prefix = "/v1/sessions/";
  if (path.compare(0, prefix.size(), prefix) == 0) {
    const std::string rest = path.substr(prefix.size());
    const std::size_t slash = rest.find('/');
    const std::string id = rest.substr(0, slash);
    if (!id.empty()) {
      if (slash == std::string::npos) {
        if (request.method == "DELETE" && route("DELETE /v1/sessions/{id}")) {
          return HandleSessionDelete(id);
        }
      } else {
        const std::string verb = rest.substr(slash + 1);
        if (request.method == "POST" &&
            (verb == "append" || verb == "retract" || verb == "audit" ||
             verb == "query")) {
          *route_key = "POST /v1/sessions/{id}/" + verb;
          return HandleSessionVerb(id, verb, request.body,
                                   AcceptsBinary(request), trace);
        }
      }
    }
  }

  // Distinguish a known path with the wrong method from an unknown path.
  static const char* const kPaths[] = {"/healthz", "/metrics", "/v1/stats",
                                       "/v1/schema", "/v1/audit",
                                       "/v1/enhance", "/v1/query",
                                       "/v1/sessions"};
  for (const char* known : kPaths) {
    if (path == known) {
      Response r = ErrorResponse(Status::InvalidArgument(
          "method " + request.method + " is not supported on " + path));
      r.status = 405;
      return r;
    }
  }
  return ErrorResponse(Status::NotFound("no route for " + request.method +
                                        " " + path));
}

Response CoverageServer::HandleHealth() const {
  JsonValue::Object o;
  o["status"] = "serving";
  o["num_rows"] = service_.num_rows();
  return OkJson(JsonValue(std::move(o)));
}

Response CoverageServer::HandleSchema() const {
  return OkJson(wire::ToJson(service_.schema()));
}

Response CoverageServer::HandleMetrics() const {
  Response response =
      Response::Text(200, obs::RenderPrometheus(*metrics_));
  for (auto& [name, value] : response.headers) {
    if (name == "Content-Type") value = obs::kPrometheusContentType;
  }
  return response;
}

Response CoverageServer::HandleStats() const {
  JsonValue::Object routes;
  for (const auto& [key, series] : routes_) {
    if (series.latency->count() == 0) continue;
    JsonValue::Object r;
    r["count"] = series.latency->count();
    r["errors"] = series.errors->value();
    r["p50_seconds"] = series.latency->QuantileSeconds(0.50);
    r["p99_seconds"] = series.latency->QuantileSeconds(0.99);
    r["total_seconds"] = series.latency->sum_seconds();
    routes[key] = std::move(r);
  }
  const http::ServerStats hs = http_.stats();
  JsonValue::Object server;
  server["connections_accepted"] = hs.connections_accepted;
  server["requests_handled"] = hs.requests_handled;
  server["protocol_errors"] = hs.protocol_errors;
  server["connections_shed"] = hs.connections_shed;
  server["accept_retries"] = hs.accept_retries;
  server["io_model"] =
      http_.io_model() == http::IoModel::kEpoll ? "epoll" : "blocking";
  server["open_connections"] = hs.open_connections;
  server["write_buffer_bytes"] = hs.write_buffer_bytes;

  // Persistence counters, aggregated over the live durable sessions plus
  // what boot recovery replayed (reaped/deleted sessions keep their boot
  // contribution).
  JsonValue::Object persist;
  {
    std::uint64_t durable_sessions = 0;
    std::uint64_t records_logged = 0;
    std::uint64_t wal_bytes = 0;
    std::uint64_t checkpoints_written = 0;
    std::uint64_t fsync_calls = 0;
    double fsync_seconds = 0.0;
    {
      std::shared_lock<std::shared_mutex> lock(sessions_mu_);
      for (const auto& [id, entry] : sessions_) {
        const persist::DurableEngine* durable = entry->session.durable();
        if (durable == nullptr) continue;
        ++durable_sessions;
        const persist::PersistStats ps = durable->persist_stats();
        records_logged += ps.records_logged;
        wal_bytes += ps.wal_bytes;
        checkpoints_written += ps.checkpoints_written;
        fsync_calls += ps.sync_calls;
        fsync_seconds += ps.sync_seconds;
      }
    }
    persist["durable_sessions"] = durable_sessions;
    persist["sessions_recovered"] =
        sessions_recovered_.load(std::memory_order_relaxed);
    persist["sessions_reaped"] =
        sessions_reaped_.load(std::memory_order_relaxed);
    persist["records_logged"] = records_logged;
    persist["records_replayed"] =
        boot_records_replayed_.load(std::memory_order_relaxed);
    persist["rows_replayed"] =
        boot_rows_replayed_.load(std::memory_order_relaxed);
    persist["wal_bytes"] = wal_bytes;
    persist["checkpoints_written"] = checkpoints_written;
    persist["fsync_calls"] = fsync_calls;
    persist["fsync_seconds"] = fsync_seconds;
    persist["fsync_avg_ms"] =
        fsync_calls == 0 ? 0.0
                         : fsync_seconds * 1e3 /
                               static_cast<double>(fsync_calls);
    JsonValue::Array warnings;
    for (const std::string& w : recovery_warnings_) warnings.push_back(w);
    persist["recovery_warnings"] = std::move(warnings);
  }

  // Engine/session gauges: one sweep shared with the /metrics callbacks.
  const EngineGauges gauges = CollectEngineGauges();
  JsonValue::Object engine;
  engine["sessions"] = gauges.sessions;
  engine["rows"] = gauges.rows;
  engine["epochs"] = gauges.epochs;
  engine["mups"] = gauges.mups;
  engine["tombstones"] = gauges.tombstones;
  engine["window_rows"] = gauges.window_rows;
  const std::shared_ptr<ThreadBudget>& budget =
      options_.session_defaults.thread_budget;
  engine["threads_reserved"] = static_cast<std::uint64_t>(budget->reserved());
  engine["threads_budget"] =
      static_cast<std::int64_t>(budget->max_spawned_threads());

  JsonValue::Object o;
  o["engine"] = std::move(engine);
  o["routes"] = std::move(routes);
  o["server"] = std::move(server);
  o["persist"] = std::move(persist);
  o["open_sessions"] = num_sessions();
  o["unrouted_requests"] = unrouted_.latency->count();
  return OkJson(JsonValue(std::move(o)));
}

Response CoverageServer::HandleAudit(const std::string& body, bool binary,
                                     obs::Trace* trace) {
  StatusOr<AuditRequest> request = [&]() -> StatusOr<AuditRequest> {
    obs::ScopedStage stage(trace, "parse");
    auto parsed = ParseBody(body);
    if (!parsed.ok()) return parsed.status();
    return wire::AuditRequestFromJson(*parsed);
  }();
  if (!request.ok()) return ErrorResponse(request.status());
  // The response is re-encoded from packed form; never materialize.
  request->materialize_patterns = false;
  auto result = service_.Audit(*request, trace);
  if (!result.ok()) return ErrorResponse(result.status());
  obs::ScopedStage stage(trace, "encode");
  if (binary) return OkBinary(wire::EncodeAuditResultBinary(*result));
  return OkJson(wire::ToJson(*result, service_.schema()));
}

Response CoverageServer::HandleEnhance(const std::string& body) {
  auto parsed = ParseBody(body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  auto request = wire::EnhanceRequestFromJson(*parsed, service_.schema());
  if (!request.ok()) return ErrorResponse(request.status());
  auto plan = service_.Enhance(*request);
  if (!plan.ok()) return ErrorResponse(plan.status());
  return OkJson(wire::ToJson(*plan, service_.schema()));
}

Response CoverageServer::HandleQuery(const std::string& body, bool binary,
                                     obs::Trace* trace) {
  StatusOr<QueryBatchRequest> request = [&]() -> StatusOr<QueryBatchRequest> {
    obs::ScopedStage stage(trace, "parse");
    auto parsed = ParseBody(body);
    if (!parsed.ok()) return parsed.status();
    return wire::QueryBatchRequestFromJson(*parsed, service_.schema());
  }();
  if (!request.ok()) return ErrorResponse(request.status());
  auto result = service_.QueryBatch(*request, trace);
  if (!result.ok()) return ErrorResponse(result.status());
  obs::ScopedStage stage(trace, "encode");
  if (binary) return OkBinary(wire::EncodeQueryBatchResultBinary(*result));
  return OkJson(wire::ToJson(*result));
}

Response CoverageServer::HandleInternalCounts(const std::string& body,
                                              obs::Trace* trace) {
  StatusOr<QueryBatchRequest> request = [&]() -> StatusOr<QueryBatchRequest> {
    obs::ScopedStage stage(trace, "parse");
    auto parsed = ParseBody(body);
    if (!parsed.ok()) return parsed.status();
    return wire::QueryBatchRequestFromJson(*parsed, service_.schema());
  }();
  if (!request.ok()) return ErrorResponse(request.status());
  // The merge protocol is exact counts only — thresholds are not additive
  // across shards, so any client-sent tau is overridden.
  for (QueryRequest& query : request->queries) query.tau = 0;
  auto result = service_.QueryBatch(*request, trace);
  if (!result.ok()) return ErrorResponse(result.status());
  obs::ScopedStage stage(trace, "encode");
  return OkBinary(
      cluster::EncodeShardCountsBinary(service_.num_rows(), *result));
}

Response CoverageServer::HandleInternalCandidates(const std::string& body,
                                                  obs::Trace* trace) {
  StatusOr<AuditRequest> request = [&]() -> StatusOr<AuditRequest> {
    obs::ScopedStage stage(trace, "parse");
    auto parsed = ParseBody(body);
    if (!parsed.ok()) return parsed.status();
    return wire::AuditRequestFromJson(*parsed);
  }();
  if (!request.ok()) return ErrorResponse(request.status());
  // The nested audit frame re-encodes from packed form; never materialize.
  request->materialize_patterns = false;
  auto result = service_.Audit(*request, trace);
  if (!result.ok()) return ErrorResponse(result.status());
  obs::ScopedStage stage(trace, "encode");
  return OkBinary(
      cluster::EncodeShardCandidatesBinary(service_.num_rows(), *result));
}

Response CoverageServer::HandleSessionsList() const {
  JsonValue::Array list;
  {
    std::shared_lock<std::shared_mutex> lock(sessions_mu_);
    for (const auto& [id, entry] : sessions_) {
      JsonValue::Object s;
      s["session_id"] = id;
      s["epoch"] = entry->session.epoch();
      s["num_rows"] = entry->session.num_rows();
      s["num_mups"] = entry->session.Audit().mups.size();
      s["durable"] = entry->session.durable() != nullptr;
      s["idle_ttl_seconds"] = entry->session.options().idle_ttl_seconds;
      list.push_back(std::move(s));
    }
  }
  JsonValue::Object o;
  o["sessions"] = std::move(list);
  return OkJson(JsonValue(std::move(o)));
}

Response CoverageServer::HandleSessionCreate(const std::string& body,
                                             bool allow_explicit_id) {
  auto parsed = ParseBody(body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());

  const JsonValue* schema_json = parsed->Find("schema");
  Schema schema;
  if (schema_json != nullptr) {
    auto decoded = wire::SchemaFromJson(*schema_json);
    if (!decoded.ok()) return ErrorResponse(decoded.status());
    schema = std::move(*decoded);
  } else {
    // Default: a session over the served dataset's schema (the common
    // "stream more of the same data" case).
    schema = service_.schema();
  }

  const bool durable = !options_.data_dir.empty();
  CoverageService::SessionOptions options = options_.session_defaults;
  std::string explicit_id;
  const JsonValue& v = *parsed;
  for (const auto& [key, value] : v.AsObject()) {
    if (key == "schema") continue;
    if (key == "session_id" && allow_explicit_id) {
      auto name = v.GetString("session_id");
      if (!name.ok()) return ErrorResponse(name.status());
      if (name->empty() || name->find('/') != std::string::npos) {
        return ErrorResponse(Status::InvalidArgument(
            "session_id must be a non-empty name without '/'"));
      }
      explicit_id = *name;
    } else if (key == "tau") {
      auto tau = v.GetUint("tau");
      if (!tau.ok()) return ErrorResponse(tau.status());
      options.tau = *tau;
    } else if (key == "max_level") {
      auto level = v.GetInt("max_level");
      if (!level.ok()) return ErrorResponse(level.status());
      options.max_level = static_cast<int>(*level);
    } else if (key == "window_max_rows") {
      auto rows = v.GetUint("window_max_rows");
      if (!rows.ok()) return ErrorResponse(rows.status());
      options.window_max_rows = static_cast<std::size_t>(*rows);
    } else if (key == "window_max_epochs") {
      auto epochs = v.GetUint("window_max_epochs");
      if (!epochs.ok()) return ErrorResponse(epochs.status());
      options.window_max_epochs = static_cast<std::size_t>(*epochs);
    } else if (key == "durability") {
      if (!durable) {
        return ErrorResponse(Status::InvalidArgument(
            "this server runs without --data-dir; durable sessions are "
            "unavailable"));
      }
      auto name = v.GetString("durability");
      if (!name.ok()) return ErrorResponse(name.status());
      auto mode = DurabilityFromString(*name);
      if (!mode.ok()) return ErrorResponse(mode.status());
      options.durability = *mode;
    } else if (key == "idle_ttl_seconds") {
      auto ttl = v.GetUint("idle_ttl_seconds");
      if (!ttl.ok()) return ErrorResponse(ttl.status());
      options.idle_ttl_seconds = *ttl;
    } else {
      return ErrorResponse(Status::InvalidArgument(
          "unknown request member '" + key + "'"));
    }
  }

  // Durable sessions need their id up front — it names the directory.
  const std::string id =
      !explicit_id.empty()
          ? explicit_id
          : "s" + std::to_string(next_session_id_.fetch_add(
                      1, std::memory_order_relaxed));
  if (!explicit_id.empty()) {
    // Coordinator-assigned id: reject duplicates before any state is
    // created (the coordinator burns the id and retries the next one).
    std::shared_lock<std::shared_mutex> lock(sessions_mu_);
    if (sessions_.contains(id)) {
      return ErrorResponse(Status::InvalidArgument(
          "session '" + id + "' already exists"));
    }
  }
  const std::string dir = options_.data_dir + "/" + id;
  auto session = durable
                     ? CoverageService::OpenDurableSession(dir, schema,
                                                           options)
                     : CoverageService::OpenSession(schema, options);
  if (!session.ok()) return ErrorResponse(session.status());

  auto entry = std::make_shared<SessionEntry>(std::move(*session));
  TouchSession(*entry);
  {
    std::unique_lock<std::shared_mutex> lock(sessions_mu_);
    if (sessions_.size() >= static_cast<std::size_t>(options_.max_sessions)) {
      lock.unlock();
      if (durable) {
        // Undo the partially created on-disk state of the rejected session.
        entry.reset();
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
      }
      return ErrorResponse(Status::ResourceExhausted(
          "session registry is full (" +
          std::to_string(options_.max_sessions) + " open sessions)"));
    }
    if (!sessions_.emplace(id, std::move(entry)).second) {
      // Lost a race on an explicit id between the pre-check and here.
      lock.unlock();
      if (durable) {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
      }
      return ErrorResponse(Status::InvalidArgument(
          "session '" + id + "' already exists"));
    }
  }
  // Keep the counter ahead of any numeric explicit id so later
  // counter-allocated ids never collide with coordinator-assigned ones.
  std::uint64_t numeric = 0;
  if (!explicit_id.empty() && ParseSessionId(id, &numeric)) {
    std::uint64_t next = next_session_id_.load(std::memory_order_relaxed);
    while (next <= numeric && !next_session_id_.compare_exchange_weak(
                                  next, numeric + 1,
                                  std::memory_order_relaxed)) {
    }
  }
  JsonValue::Object o;
  o["session_id"] = id;
  o["tau"] = options.tau;
  o["num_attributes"] = schema.num_attributes();
  o["durable"] = durable;
  if (durable) o["durability"] = DurabilityName(options.durability);
  o["idle_ttl_seconds"] = options.idle_ttl_seconds;
  Response r = OkJson(JsonValue(std::move(o)));
  r.status = 201;
  return r;
}

Response CoverageServer::HandleSessionDelete(const std::string& id) {
  std::shared_ptr<SessionEntry> entry;
  {
    std::unique_lock<std::shared_mutex> lock(sessions_mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return ErrorResponse(Status::NotFound("no session '" + id + "'"));
    }
    entry = std::move(it->second);
    sessions_.erase(it);
  }
  // In-flight handlers on this session finish on their shared_ptr; the
  // engine is destroyed when the last one drops.
  const bool durable = entry->session.durable() != nullptr;
  if (durable) {
    // DELETE is the explicit destroy: unlike the idle reaper, it removes
    // the on-disk state too — the session must not resurrect at next boot.
    const std::string dir = entry->session.durable()->dir();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    if (ec) {
      return ErrorResponse(Status::Internal(
          "session closed but removing '" + dir + "' failed: " +
          ec.message()));
    }
  }
  JsonValue::Object o;
  o["closed"] = id;
  o["data_removed"] = durable;
  return OkJson(JsonValue(std::move(o)));
}

Response CoverageServer::HandleSessionVerb(const std::string& id,
                                           const std::string& verb,
                                           const std::string& body,
                                           bool binary, obs::Trace* trace) {
  std::shared_ptr<SessionEntry> entry = FindSession(id);
  if (entry == nullptr) {
    return ErrorResponse(Status::NotFound("no session '" + id + "'"));
  }
  TouchSession(*entry);
  auto parsed = [&] {
    obs::ScopedStage stage(trace, "parse");
    return ParseBody(body);
  }();
  if (!parsed.ok()) return ErrorResponse(parsed.status());

  if (verb == "append" || verb == "retract") {
    auto rows = [&] {
      obs::ScopedStage stage(trace, "parse");
      return wire::RowsFromJson(*parsed, entry->session.schema());
    }();
    if (!rows.ok()) return ErrorResponse(rows.status());
    std::lock_guard<std::mutex> write_lock(entry->write_mu);
    auto stats = verb == "append" ? entry->session.Append(*rows, trace)
                                  : entry->session.Retract(*rows, trace);
    if (!stats.ok()) return ErrorResponse(stats.status());
    obs::ScopedStage stage(trace, "encode");
    JsonValue update = wire::ToJson(*stats);
    update.AsObject()["epoch"] = entry->session.epoch();
    update.AsObject()["num_mups"] = entry->session.Audit().mups.size();
    return OkJson(update);
  }
  if (verb == "audit") {
    if (!parsed->AsObject().empty()) {
      return ErrorResponse(Status::InvalidArgument(
          "session audit takes no request members (the MUP set is "
          "maintained incrementally; send an empty body)"));
    }
    const AuditResult result = entry->session.Audit(trace);
    obs::ScopedStage stage(trace, "encode");
    if (binary) return OkBinary(wire::EncodeAuditResultBinary(result));
    return OkJson(wire::ToJson(result, entry->session.schema()));
  }
  // verb == "query"
  auto request = [&] {
    obs::ScopedStage stage(trace, "parse");
    return wire::QueryBatchRequestFromJson(*parsed, entry->session.schema());
  }();
  if (!request.ok()) return ErrorResponse(request.status());
  auto result = entry->session.QueryBatch(*request, trace);
  if (!result.ok()) return ErrorResponse(result.status());
  obs::ScopedStage stage(trace, "encode");
  if (binary) return OkBinary(wire::EncodeQueryBatchResultBinary(*result));
  return OkJson(wire::ToJson(*result));
}

}  // namespace coverage

#include "server/coverage_server.h"

#include <cmath>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "server/json.h"
#include "server/wire.h"
#include "service/pool_arena.h"

namespace coverage {

using http::Request;
using http::Response;
using json::JsonValue;

// ------------------------------------------------------------- RouteMetrics

void RouteMetrics::Record(double seconds, bool error) {
  count_.fetch_add(1, std::memory_order_relaxed);
  if (error) errors_.fetch_add(1, std::memory_order_relaxed);
  const double us = seconds * 1e6;
  const std::uint64_t whole_us =
      us <= 0 ? 0 : static_cast<std::uint64_t>(us);
  total_us_.fetch_add(whole_us, std::memory_order_relaxed);
  int bucket = 0;
  while (bucket < kBuckets - 1 && (1ull << bucket) <= whole_us) ++bucket;
  buckets_[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
}

double RouteMetrics::QuantileSeconds(double q) const {
  std::array<std::uint64_t, kBuckets> snapshot;
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    snapshot[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    total += snapshot[static_cast<std::size_t>(i)];
  }
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += snapshot[static_cast<std::size_t>(i)];
    if (static_cast<double>(seen) >= rank) {
      return static_cast<double>(1ull << i) / 1e6;  // bucket upper edge
    }
  }
  return static_cast<double>(1ull << (kBuckets - 1)) / 1e6;
}

// ------------------------------------------------------------------ helpers

namespace {

int StatusToHttp(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kOutOfRange: return 400;
    case StatusCode::kResourceExhausted: return 429;
    case StatusCode::kInternal: return 500;
  }
  return 500;
}

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kInternal: return "internal";
  }
  return "internal";
}

Response ErrorResponse(const Status& status) {
  JsonValue::Object error;
  error["code"] = StatusCodeName(status.code());
  error["message"] = status.message();
  JsonValue::Object body;
  body["error"] = std::move(error);
  return Response::Json(StatusToHttp(status),
                        json::Serialize(JsonValue(std::move(body))));
}

Response OkJson(JsonValue value) {
  return Response::Json(200, json::Serialize(value));
}

/// Parses a request body that must be a JSON object; an empty body stands
/// for {} so bodyless POSTs (session audit) stay ergonomic.
StatusOr<JsonValue> ParseBody(const std::string& body) {
  if (body.empty()) return JsonValue(JsonValue::Object{});
  auto parsed = json::Parse(body);
  if (!parsed.ok()) return parsed.status();
  if (!parsed->is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  return parsed;
}

}  // namespace

Status CoverageServerOptions::Validate() const {
  COVERAGE_RETURN_IF_ERROR(http.Validate());
  COVERAGE_RETURN_IF_ERROR(session_defaults.Validate());
  if (max_sessions < 1) {
    return Status::InvalidArgument("max_sessions must be positive");
  }
  return Status::OK();
}

// ----------------------------------------------------------- CoverageServer

CoverageServer::CoverageServer(CoverageService service,
                               CoverageServerOptions options)
    : service_(std::move(service)),
      options_(std::move(options)),
      http_(options_.http,
            [this](const Request& request) { return Handle(request); }) {
  if (options_.session_defaults.thread_budget == nullptr) {
    // One budget across every session the server opens: the registry-wide
    // (in practice process-wide) cap of ServiceOptions::max_total_threads.
    options_.session_defaults.thread_budget = std::make_shared<ThreadBudget>(
        options_.session_defaults.max_total_threads);
  }
  // Fixed key set: Dispatch only ever looks up, so Record is data-race-free
  // without a map lock.
  metrics_["GET /healthz"];
  metrics_["GET /v1/stats"];
  metrics_["GET /v1/schema"];
  metrics_["POST /v1/audit"];
  metrics_["POST /v1/enhance"];
  metrics_["POST /v1/query"];
  metrics_["GET /v1/sessions"];
  metrics_["POST /v1/sessions"];
  metrics_["DELETE /v1/sessions/{id}"];
  metrics_["POST /v1/sessions/{id}/append"];
  metrics_["POST /v1/sessions/{id}/retract"];
  metrics_["POST /v1/sessions/{id}/audit"];
  metrics_["POST /v1/sessions/{id}/query"];
}

CoverageServer::~CoverageServer() { Stop(); }

Status CoverageServer::Start() {
  COVERAGE_RETURN_IF_ERROR(options_.Validate());
  return http_.Start();
}

void CoverageServer::Stop() { http_.Stop(); }
void CoverageServer::Wait() { http_.Wait(); }
void CoverageServer::StopOnSignal() { http_.StopOnSignal(); }

std::size_t CoverageServer::num_sessions() const {
  std::shared_lock<std::shared_mutex> lock(sessions_mu_);
  return sessions_.size();
}

std::shared_ptr<CoverageServer::SessionEntry> CoverageServer::FindSession(
    const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

Response CoverageServer::Handle(const Request& request) {
  Stopwatch timer;
  std::string route_key;
  Response response = Dispatch(request, &route_key);
  const bool error = response.status >= 400;
  auto it = metrics_.find(route_key);
  (it != metrics_.end() ? it->second : unrouted_)
      .Record(timer.ElapsedSeconds(), error);
  return response;
}

Response CoverageServer::Dispatch(const Request& request,
                                  std::string* route_key) {
  // Strip any query string; the wire protocol carries everything in JSON
  // bodies.
  std::string path = request.target;
  const std::size_t question = path.find('?');
  if (question != std::string::npos) path.resize(question);

  const auto route = [&](const char* key) {
    *route_key = key;
    return true;
  };

  if (request.method == "GET") {
    if (path == "/healthz" && route("GET /healthz")) return HandleHealth();
    if (path == "/v1/stats" && route("GET /v1/stats")) return HandleStats();
    if (path == "/v1/schema" && route("GET /v1/schema")) {
      return HandleSchema();
    }
    if (path == "/v1/sessions" && route("GET /v1/sessions")) {
      return HandleSessionsList();
    }
  }
  if (request.method == "POST") {
    if (path == "/v1/audit" && route("POST /v1/audit")) {
      return HandleAudit(request.body);
    }
    if (path == "/v1/enhance" && route("POST /v1/enhance")) {
      return HandleEnhance(request.body);
    }
    if (path == "/v1/query" && route("POST /v1/query")) {
      return HandleQuery(request.body);
    }
    if (path == "/v1/sessions" && route("POST /v1/sessions")) {
      return HandleSessionCreate(request.body);
    }
  }

  // /v1/sessions/{id} and /v1/sessions/{id}/{verb}
  const std::string prefix = "/v1/sessions/";
  if (path.compare(0, prefix.size(), prefix) == 0) {
    const std::string rest = path.substr(prefix.size());
    const std::size_t slash = rest.find('/');
    const std::string id = rest.substr(0, slash);
    if (!id.empty()) {
      if (slash == std::string::npos) {
        if (request.method == "DELETE" && route("DELETE /v1/sessions/{id}")) {
          return HandleSessionDelete(id);
        }
      } else {
        const std::string verb = rest.substr(slash + 1);
        if (request.method == "POST" &&
            (verb == "append" || verb == "retract" || verb == "audit" ||
             verb == "query")) {
          *route_key = "POST /v1/sessions/{id}/" + verb;
          return HandleSessionVerb(id, verb, request.body);
        }
      }
    }
  }

  // Distinguish a known path with the wrong method from an unknown path.
  static const char* const kPaths[] = {"/healthz", "/v1/stats", "/v1/schema",
                                       "/v1/audit", "/v1/enhance",
                                       "/v1/query", "/v1/sessions"};
  for (const char* known : kPaths) {
    if (path == known) {
      Response r = ErrorResponse(Status::InvalidArgument(
          "method " + request.method + " is not supported on " + path));
      r.status = 405;
      return r;
    }
  }
  return ErrorResponse(Status::NotFound("no route for " + request.method +
                                        " " + path));
}

Response CoverageServer::HandleHealth() const {
  JsonValue::Object o;
  o["status"] = "serving";
  o["num_rows"] = service_.num_rows();
  return OkJson(JsonValue(std::move(o)));
}

Response CoverageServer::HandleSchema() const {
  return OkJson(wire::ToJson(service_.schema()));
}

Response CoverageServer::HandleStats() const {
  JsonValue::Object routes;
  for (const auto& [key, m] : metrics_) {
    if (m.count() == 0) continue;
    JsonValue::Object r;
    r["count"] = m.count();
    r["errors"] = m.errors();
    r["p50_seconds"] = m.QuantileSeconds(0.50);
    r["p99_seconds"] = m.QuantileSeconds(0.99);
    r["total_seconds"] = m.total_seconds();
    routes[key] = std::move(r);
  }
  const http::ServerStats hs = http_.stats();
  JsonValue::Object server;
  server["connections_accepted"] = hs.connections_accepted;
  server["requests_handled"] = hs.requests_handled;
  server["protocol_errors"] = hs.protocol_errors;
  JsonValue::Object o;
  o["routes"] = std::move(routes);
  o["server"] = std::move(server);
  o["open_sessions"] = num_sessions();
  o["unrouted_requests"] = unrouted_.count();
  return OkJson(JsonValue(std::move(o)));
}

Response CoverageServer::HandleAudit(const std::string& body) {
  auto parsed = ParseBody(body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  auto request = wire::AuditRequestFromJson(*parsed);
  if (!request.ok()) return ErrorResponse(request.status());
  auto result = service_.Audit(*request);
  if (!result.ok()) return ErrorResponse(result.status());
  return OkJson(wire::ToJson(*result, service_.schema()));
}

Response CoverageServer::HandleEnhance(const std::string& body) {
  auto parsed = ParseBody(body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  auto request = wire::EnhanceRequestFromJson(*parsed, service_.schema());
  if (!request.ok()) return ErrorResponse(request.status());
  auto plan = service_.Enhance(*request);
  if (!plan.ok()) return ErrorResponse(plan.status());
  return OkJson(wire::ToJson(*plan, service_.schema()));
}

Response CoverageServer::HandleQuery(const std::string& body) {
  auto parsed = ParseBody(body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  auto request = wire::QueryBatchRequestFromJson(*parsed, service_.schema());
  if (!request.ok()) return ErrorResponse(request.status());
  auto result = service_.QueryBatch(*request);
  if (!result.ok()) return ErrorResponse(result.status());
  return OkJson(wire::ToJson(*result));
}

Response CoverageServer::HandleSessionsList() const {
  JsonValue::Array list;
  {
    std::shared_lock<std::shared_mutex> lock(sessions_mu_);
    for (const auto& [id, entry] : sessions_) {
      JsonValue::Object s;
      s["session_id"] = id;
      s["epoch"] = entry->session.epoch();
      s["num_rows"] = entry->session.num_rows();
      s["num_mups"] = entry->session.Audit().mups.size();
      list.push_back(std::move(s));
    }
  }
  JsonValue::Object o;
  o["sessions"] = std::move(list);
  return OkJson(JsonValue(std::move(o)));
}

Response CoverageServer::HandleSessionCreate(const std::string& body) {
  auto parsed = ParseBody(body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());

  const JsonValue* schema_json = parsed->Find("schema");
  Schema schema;
  if (schema_json != nullptr) {
    auto decoded = wire::SchemaFromJson(*schema_json);
    if (!decoded.ok()) return ErrorResponse(decoded.status());
    schema = std::move(*decoded);
  } else {
    // Default: a session over the served dataset's schema (the common
    // "stream more of the same data" case).
    schema = service_.schema();
  }

  CoverageService::SessionOptions options = options_.session_defaults;
  const JsonValue& v = *parsed;
  for (const auto& [key, value] : v.AsObject()) {
    if (key == "schema") continue;
    if (key == "tau") {
      auto tau = v.GetUint("tau");
      if (!tau.ok()) return ErrorResponse(tau.status());
      options.tau = *tau;
    } else if (key == "max_level") {
      auto level = v.GetInt("max_level");
      if (!level.ok()) return ErrorResponse(level.status());
      options.max_level = static_cast<int>(*level);
    } else if (key == "window_max_rows") {
      auto rows = v.GetUint("window_max_rows");
      if (!rows.ok()) return ErrorResponse(rows.status());
      options.window_max_rows = static_cast<std::size_t>(*rows);
    } else if (key == "window_max_epochs") {
      auto epochs = v.GetUint("window_max_epochs");
      if (!epochs.ok()) return ErrorResponse(epochs.status());
      options.window_max_epochs = static_cast<std::size_t>(*epochs);
    } else {
      return ErrorResponse(Status::InvalidArgument(
          "unknown request member '" + key + "'"));
    }
  }

  auto session = CoverageService::OpenSession(schema, options);
  if (!session.ok()) return ErrorResponse(session.status());

  std::string id;
  {
    std::unique_lock<std::shared_mutex> lock(sessions_mu_);
    if (sessions_.size() >= static_cast<std::size_t>(options_.max_sessions)) {
      return ErrorResponse(Status::ResourceExhausted(
          "session registry is full (" +
          std::to_string(options_.max_sessions) + " open sessions)"));
    }
    id = "s" + std::to_string(
                   next_session_id_.fetch_add(1, std::memory_order_relaxed));
    sessions_.emplace(
        id, std::make_shared<SessionEntry>(std::move(*session)));
  }
  JsonValue::Object o;
  o["session_id"] = id;
  o["tau"] = options.tau;
  o["num_attributes"] = schema.num_attributes();
  Response r = OkJson(JsonValue(std::move(o)));
  r.status = 201;
  return r;
}

Response CoverageServer::HandleSessionDelete(const std::string& id) {
  std::shared_ptr<SessionEntry> entry;
  {
    std::unique_lock<std::shared_mutex> lock(sessions_mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return ErrorResponse(Status::NotFound("no session '" + id + "'"));
    }
    entry = std::move(it->second);
    sessions_.erase(it);
  }
  // In-flight handlers on this session finish on their shared_ptr; the
  // engine is destroyed when the last one drops.
  JsonValue::Object o;
  o["closed"] = id;
  return OkJson(JsonValue(std::move(o)));
}

Response CoverageServer::HandleSessionVerb(const std::string& id,
                                           const std::string& verb,
                                           const std::string& body) {
  std::shared_ptr<SessionEntry> entry = FindSession(id);
  if (entry == nullptr) {
    return ErrorResponse(Status::NotFound("no session '" + id + "'"));
  }
  auto parsed = ParseBody(body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());

  if (verb == "append" || verb == "retract") {
    auto rows = wire::RowsFromJson(*parsed, entry->session.schema());
    if (!rows.ok()) return ErrorResponse(rows.status());
    std::lock_guard<std::mutex> write_lock(entry->write_mu);
    auto stats = verb == "append" ? entry->session.Append(*rows)
                                  : entry->session.Retract(*rows);
    if (!stats.ok()) return ErrorResponse(stats.status());
    JsonValue update = wire::ToJson(*stats);
    update.AsObject()["epoch"] = entry->session.epoch();
    update.AsObject()["num_mups"] = entry->session.Audit().mups.size();
    return OkJson(update);
  }
  if (verb == "audit") {
    if (!parsed->AsObject().empty()) {
      return ErrorResponse(Status::InvalidArgument(
          "session audit takes no request members (the MUP set is "
          "maintained incrementally; send an empty body)"));
    }
    return OkJson(
        wire::ToJson(entry->session.Audit(), entry->session.schema()));
  }
  // verb == "query"
  auto request =
      wire::QueryBatchRequestFromJson(*parsed, entry->session.schema());
  if (!request.ok()) return ErrorResponse(request.status());
  auto result = entry->session.QueryBatch(*request);
  if (!result.ok()) return ErrorResponse(result.status());
  return OkJson(wire::ToJson(*result));
}

}  // namespace coverage

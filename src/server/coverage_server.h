#ifndef COVERAGE_SERVER_COVERAGE_SERVER_H_
#define COVERAGE_SERVER_COVERAGE_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/http.h"
#include "server/http_server.h"
#include "service/coverage_service.h"

namespace coverage {

/// Per-route request metrics: count, errors, and a log-scale latency
/// histogram (54 power-of-two microsecond buckets) good enough for the
/// p50/p99 surfaced by /v1/stats without storing samples. Thread-safe,
/// lock-free on the record path.
class RouteMetrics {
 public:
  void Record(double seconds, bool error);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t errors() const {
    return errors_.load(std::memory_order_relaxed);
  }
  double total_seconds() const {
    return total_us_.load(std::memory_order_relaxed) / 1e6;
  }

  /// Latency quantile estimate in seconds (upper edge of the histogram
  /// bucket holding the q-quantile); 0 when nothing was recorded.
  double QuantileSeconds(double q) const;

 private:
  static constexpr int kBuckets = 54;  // bucket i: latency < 2^i µs

  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> total_us_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Configuration of the coverage server process.
struct CoverageServerOptions {
  http::ServerOptions http;

  /// Defaults for sessions created via POST /v1/sessions; the request may
  /// override tau / max_level / window limits. thread_budget should be the
  /// same budget the service options carry, making max_total_threads a
  /// process-wide cap (see ServiceOptions); when unset, one budget is
  /// created from session_defaults.max_total_threads and shared by every
  /// session the server opens.
  CoverageService::SessionOptions session_defaults;

  /// Registry cap: POST /v1/sessions answers 429 beyond this.
  int max_sessions = 1024;

  /// Root of durable session state. When set, POST /v1/sessions creates
  /// crash-safe sessions persisted under <data_dir>/<session_id>/ (WAL +
  /// snapshots, see persist/durable_engine.h) and Start() recovers every
  /// session found there. Empty = in-memory sessions only.
  std::string data_dir;

  /// Idle-session reaper tick (= TTL resolution). The reaper closes
  /// sessions idle past their SessionOptions::idle_ttl_seconds; durable
  /// ones are checkpointed first and stay recoverable on disk — DELETE
  /// remains the only way to destroy durable state.
  int reaper_interval_ms = 1000;

  /// Monotonic-clock seam so tests drive the TTL reaper deterministically;
  /// nullptr = std::chrono::steady_clock::now.
  std::function<std::chrono::steady_clock::time_point()> clock;

  Status Validate() const;
};

/// The network front-end: binds the JSON wire protocol (server/wire.h) and
/// a route table onto one immutable CoverageService plus a registry of
/// mutable Sessions, served over the embedded HttpServer.
///
///   method  route                             maps to
///   ------  --------------------------------  --------------------------
///   GET     /healthz                          liveness probe
///   GET     /v1/stats                         per-route counters + p50/p99
///   GET     /v1/schema                        the indexed dataset's schema
///   POST    /v1/audit                         CoverageService::Audit
///   POST    /v1/enhance                       CoverageService::Enhance
///   POST    /v1/query                         CoverageService::QueryBatch
///   GET     /v1/sessions                      list open sessions
///   POST    /v1/sessions                      OpenSession (body: schema +
///                                             options) → {"session_id"}
///   POST    /v1/sessions/{id}/append          Session::Append
///   POST    /v1/sessions/{id}/retract         Session::Retract
///   POST    /v1/sessions/{id}/audit           Session::Audit
///   POST    /v1/sessions/{id}/query           Session::QueryBatch
///   DELETE  /v1/sessions/{id}                 close the session
///
/// Status codes map 1:1 onto the library's Status: InvalidArgument → 400,
/// NotFound → 404, ResourceExhausted → 429, OutOfRange → 400, Internal →
/// 500; protocol-level violations (oversized body, bad framing) are
/// answered by the HttpServer itself (413/431/400). Error bodies are
/// {"error": {"code": ..., "message": ...}}.
///
/// Handle() is public so tests (and the byte-equivalence suite) can drive
/// the exact route logic in-process, with the HTTP transport exercised
/// separately over loopback.
class CoverageServer {
 public:
  CoverageServer(CoverageService service, CoverageServerOptions options);
  ~CoverageServer();

  CoverageServer(const CoverageServer&) = delete;
  CoverageServer& operator=(const CoverageServer&) = delete;

  Status Start();
  void Stop();
  void Wait();
  /// Stop on SIGINT/SIGTERM (see HttpServer::StopOnSignal).
  void StopOnSignal();

  int port() const { return http_.port(); }
  bool running() const { return http_.running(); }

  /// The full request → response mapping (transport-free).
  http::Response Handle(const http::Request& request);

  const CoverageService& service() const { return service_; }
  std::size_t num_sessions() const;

  /// Recovers every session directory under data_dir into the registry
  /// (no-op when data_dir is unset or the id is already live). Start()
  /// calls this; public so transport-free tests can exercise boot
  /// recovery directly. Per-session damage becomes a warning (surfaced by
  /// /v1/stats), not a boot failure.
  Status RecoverSessions();

  /// One reaper sweep at the configured clock's now(); returns the number
  /// of sessions closed. Runs periodically once Start()ed; public for
  /// deterministic fake-clock tests.
  std::size_t ReapIdleSessions();

 private:
  struct SessionEntry {
    explicit SessionEntry(CoverageService::Session session)
        : session(std::move(session)) {}
    CoverageService::Session session;
    /// Append/retract mutate the engine: one writer at a time per session
    /// (audits and queries read epoch snapshots and stay lock-free).
    std::mutex write_mu;
    /// Last request touching this session, as the configured clock's
    /// time_since_epoch count; drives the idle TTL.
    std::atomic<std::int64_t> last_used_ns{0};
  };

  http::Response Dispatch(const http::Request& request,
                          std::string* route_key);
  http::Response HandleAudit(const std::string& body);
  http::Response HandleEnhance(const std::string& body);
  http::Response HandleQuery(const std::string& body);
  http::Response HandleSchema() const;
  http::Response HandleHealth() const;
  http::Response HandleStats() const;
  http::Response HandleSessionsList() const;
  http::Response HandleSessionCreate(const std::string& body);
  http::Response HandleSessionDelete(const std::string& id);
  http::Response HandleSessionVerb(const std::string& id,
                                   const std::string& verb,
                                   const std::string& body);

  std::shared_ptr<SessionEntry> FindSession(const std::string& id) const;

  std::chrono::steady_clock::time_point Now() const;
  void TouchSession(SessionEntry& entry) const;

  CoverageService service_;
  CoverageServerOptions options_;
  http::HttpServer http_;

  mutable std::shared_mutex sessions_mu_;
  std::map<std::string, std::shared_ptr<SessionEntry>> sessions_;
  std::atomic<std::uint64_t> next_session_id_{1};

  std::thread reaper_thread_;
  std::mutex reaper_mu_;
  std::condition_variable reaper_cv_;
  bool reaper_stop_ = false;

  std::atomic<std::uint64_t> sessions_recovered_{0};
  std::atomic<std::uint64_t> sessions_reaped_{0};
  std::atomic<std::uint64_t> boot_records_replayed_{0};
  std::atomic<std::uint64_t> boot_rows_replayed_{0};
  /// Per-session recovery damage (torn tails, discarded snapshots,
  /// unrecoverable dirs); written at boot, surfaced by /v1/stats.
  std::vector<std::string> recovery_warnings_;

  /// Route-key → metrics; the key set is fixed at construction so the
  /// record path never mutates the map.
  std::map<std::string, RouteMetrics> metrics_;
  RouteMetrics unrouted_;  ///< 404s and other unmatched targets
};

}  // namespace coverage

#endif  // COVERAGE_SERVER_COVERAGE_SERVER_H_

#ifndef COVERAGE_SERVER_COVERAGE_SERVER_H_
#define COVERAGE_SERVER_COVERAGE_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/http.h"
#include "server/http_server.h"
#include "service/coverage_service.h"

namespace coverage {

/// Configuration of the coverage server process.
struct CoverageServerOptions {
  http::ServerOptions http;

  /// Defaults for sessions created via POST /v1/sessions; the request may
  /// override tau / max_level / window limits. thread_budget should be the
  /// same budget the service options carry, making max_total_threads a
  /// process-wide cap (see ServiceOptions); when unset, one budget is
  /// created from session_defaults.max_total_threads and shared by every
  /// session the server opens.
  CoverageService::SessionOptions session_defaults;

  /// Registry cap: POST /v1/sessions answers 429 beyond this.
  int max_sessions = 1024;

  /// Root of durable session state. When set, POST /v1/sessions creates
  /// crash-safe sessions persisted under <data_dir>/<session_id>/ (WAL +
  /// snapshots, see persist/durable_engine.h) and Start() recovers every
  /// session found there. Empty = in-memory sessions only.
  std::string data_dir;

  /// Idle-session reaper tick (= TTL resolution). The reaper closes
  /// sessions idle past their SessionOptions::idle_ttl_seconds; durable
  /// ones are checkpointed first and stay recoverable on disk — DELETE
  /// remains the only way to destroy durable state.
  int reaper_interval_ms = 1000;

  /// Monotonic-clock seam so tests drive the TTL reaper deterministically;
  /// nullptr = std::chrono::steady_clock::now.
  std::function<std::chrono::steady_clock::time_point()> clock;

  /// Metrics registry for route latencies, trace-stage histograms, engine
  /// gauges, and persistence counters — exported by GET /metrics and (in
  /// summary form) /v1/stats. Must outlive the server. Null = the server
  /// owns a private registry (the normal case; inject one to share a
  /// registry across servers or to inspect it from tests).
  obs::MetricsRegistry* metrics_registry = nullptr;

  /// Requests slower than this log a WARN `slow_request` event with the
  /// route, request id, and latency; <= 0 disables.
  double slow_request_seconds = 1.0;

  /// Shard mode: expose the cluster-internal routes the coordinator fans
  /// out to (POST /internal/v1/counts, /internal/v1/candidates,
  /// /internal/v1/sessions). Off by default — a standalone server must not
  /// accept coordinator-assigned session ids or answer τ=0 count scatters.
  bool enable_internal_routes = false;

  Status Validate() const;
};

/// The network front-end: binds the JSON wire protocol (server/wire.h) and
/// a route table onto one immutable CoverageService plus a registry of
/// mutable Sessions, served over the embedded HttpServer.
///
///   method  route                             maps to
///   ------  --------------------------------  --------------------------
///   GET     /healthz                          liveness probe
///   GET     /metrics                          Prometheus text exposition
///   GET     /v1/stats                         per-route counters + p50/p99
///   GET     /v1/schema                        the indexed dataset's schema
///   POST    /v1/audit                         CoverageService::Audit
///   POST    /v1/enhance                       CoverageService::Enhance
///   POST    /v1/query                         CoverageService::QueryBatch
///   GET     /v1/sessions                      list open sessions
///   POST    /v1/sessions                      OpenSession (body: schema +
///                                             options) → {"session_id"}
///   POST    /v1/sessions/{id}/append          Session::Append
///   POST    /v1/sessions/{id}/retract         Session::Retract
///   POST    /v1/sessions/{id}/audit           Session::Audit
///   POST    /v1/sessions/{id}/query           Session::QueryBatch
///   DELETE  /v1/sessions/{id}                 close the session
///
/// With options.enable_internal_routes (shard mode) three cluster-internal
/// routes join the table — see src/cluster/:
///
///   POST    /internal/v1/counts               τ=0 exact counts (wire v2)
///   POST    /internal/v1/candidates           local MUP search (wire v2)
///   POST    /internal/v1/sessions             create with explicit id
///
/// Status codes map 1:1 onto the library's Status: InvalidArgument → 400,
/// NotFound → 404, ResourceExhausted → 429, OutOfRange → 400, Internal →
/// 500; protocol-level violations (oversized body, bad framing) are
/// answered by the HttpServer itself (413/431/400). Error bodies are
/// {"error": {"code": ..., "message": ...}}.
///
/// Handle() is public so tests (and the byte-equivalence suite) can drive
/// the exact route logic in-process, with the HTTP transport exercised
/// separately over loopback.
///
/// Observability: every request gets a trace id — taken from an incoming
/// `X-Request-Id` header or generated — and echoes it back in the response's
/// `X-Request-Id`. Handlers thread an obs::Trace through service → engine →
/// persist, so each request accumulates a per-stage latency breakdown
/// (parse / plan / per-level search / engine update / WAL append / fsync /
/// checkpoint / encode). Stage latencies feed `coverage_stage_seconds`
/// histograms; appending `?timing=1` to any JSON endpoint adds a `timing`
/// member {request_id, stages, total_seconds} to the response body. Requests
/// slower than options.slow_request_seconds log a WARN `slow_request`.
class CoverageServer {
 public:
  CoverageServer(CoverageService service, CoverageServerOptions options);
  ~CoverageServer();

  CoverageServer(const CoverageServer&) = delete;
  CoverageServer& operator=(const CoverageServer&) = delete;

  Status Start();
  void Stop();
  void Wait();
  /// Stop on SIGINT/SIGTERM (see HttpServer::StopOnSignal).
  void StopOnSignal();

  int port() const { return http_.port(); }
  bool running() const { return http_.running(); }
  /// The serving engine actually in use (env-resolved at construction).
  http::IoModel io_model() const { return http_.io_model(); }
  /// Transport counters of the underlying HTTP server (benchmarks poll the
  /// open_connections gauge while building up load).
  http::ServerStats http_stats() const { return http_.stats(); }

  /// The full request → response mapping (transport-free).
  http::Response Handle(const http::Request& request);

  const CoverageService& service() const { return service_; }
  std::size_t num_sessions() const;

  /// The registry this server reports into (the injected one, or the
  /// server-owned default). Tests scrape it directly.
  obs::MetricsRegistry& metrics_registry() { return *metrics_; }

  /// Recovers every session directory under data_dir into the registry
  /// (no-op when data_dir is unset or the id is already live). Start()
  /// calls this; public so transport-free tests can exercise boot
  /// recovery directly. Per-session damage becomes a warning (surfaced by
  /// /v1/stats), not a boot failure.
  Status RecoverSessions();

  /// One reaper sweep at the configured clock's now(); returns the number
  /// of sessions closed. Runs periodically once Start()ed; public for
  /// deterministic fake-clock tests.
  std::size_t ReapIdleSessions();

 private:
  struct SessionEntry {
    explicit SessionEntry(CoverageService::Session session)
        : session(std::move(session)) {}
    CoverageService::Session session;
    /// Append/retract mutate the engine: one writer at a time per session
    /// (audits and queries read epoch snapshots and stay lock-free).
    std::mutex write_mu;
    /// Last request touching this session, as the configured clock's
    /// time_since_epoch count; drives the idle TTL.
    std::atomic<std::int64_t> last_used_ns{0};
  };

  http::Response Dispatch(const http::Request& request,
                          std::string* route_key, obs::Trace* trace);
  /// `binary` = the client sent `Accept: application/x-coverage-bin` and
  /// the handler should answer in wire v2 (errors stay JSON regardless).
  http::Response HandleAudit(const std::string& body, bool binary,
                             obs::Trace* trace);
  http::Response HandleEnhance(const std::string& body);
  http::Response HandleQuery(const std::string& body, bool binary,
                             obs::Trace* trace);
  http::Response HandleSchema() const;
  http::Response HandleHealth() const;
  http::Response HandleStats() const;
  http::Response HandleMetrics() const;
  http::Response HandleSessionsList() const;
  /// `allow_explicit_id` = the request may carry "session_id" (the
  /// cluster-internal create route: the coordinator names sessions so the
  /// hash ring, not the shard counter, decides placement).
  http::Response HandleSessionCreate(const std::string& body,
                                     bool allow_explicit_id);
  /// Cluster-internal: τ=0 exact counts for a pattern batch, answered in
  /// wire v2 (msg type 3) unconditionally.
  http::Response HandleInternalCounts(const std::string& body,
                                      obs::Trace* trace);
  /// Cluster-internal: the local candidate MUP search, answered in wire v2
  /// (msg type 4) unconditionally.
  http::Response HandleInternalCandidates(const std::string& body,
                                          obs::Trace* trace);
  http::Response HandleSessionDelete(const std::string& id);
  http::Response HandleSessionVerb(const std::string& id,
                                   const std::string& verb,
                                   const std::string& body, bool binary,
                                   obs::Trace* trace);

  std::shared_ptr<SessionEntry> FindSession(const std::string& id) const;

  std::chrono::steady_clock::time_point Now() const;
  void TouchSession(SessionEntry& entry) const;

  /// Point-in-time totals over the session registry, shared by the
  /// /v1/stats "engine" section and the registry's gauge callbacks.
  struct EngineGauges {
    std::uint64_t sessions = 0;
    std::uint64_t rows = 0;
    std::uint64_t epochs = 0;       ///< summed over sessions
    std::uint64_t mups = 0;
    std::uint64_t tombstones = 0;   ///< zero-count combinations
    std::uint64_t window_rows = 0;  ///< rows retained by sliding windows
  };
  EngineGauges CollectEngineGauges() const;

  /// Registers the route series, gauge callbacks, and persist counters
  /// into metrics_; called once from the constructor.
  void RegisterMetrics();

  CoverageService service_;
  CoverageServerOptions options_;
  http::HttpServer http_;

  mutable std::shared_mutex sessions_mu_;
  std::map<std::string, std::shared_ptr<SessionEntry>> sessions_;
  std::atomic<std::uint64_t> next_session_id_{1};

  std::thread reaper_thread_;
  std::mutex reaper_mu_;
  std::condition_variable reaper_cv_;
  bool reaper_stop_ = false;

  std::atomic<std::uint64_t> sessions_recovered_{0};
  std::atomic<std::uint64_t> sessions_reaped_{0};
  std::atomic<std::uint64_t> boot_records_replayed_{0};
  std::atomic<std::uint64_t> boot_rows_replayed_{0};
  /// Per-session recovery damage (torn tails, discarded snapshots,
  /// unrecoverable dirs); written at boot, surfaced by /v1/stats.
  std::vector<std::string> recovery_warnings_;

  /// Per-route instruments, resolved once at construction from the metrics
  /// registry (latency histogram + error counter per route). The key set
  /// is fixed, so the record path never mutates the map.
  struct RouteSeries {
    obs::Histogram* latency = nullptr;
    obs::Counter* errors = nullptr;
  };
  std::map<std::string, RouteSeries> routes_;
  RouteSeries unrouted_;  ///< 404s and other unmatched targets

  /// The reporting registry: options_.metrics_registry, or owned_metrics_
  /// when none was injected.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace coverage

#endif  // COVERAGE_SERVER_COVERAGE_SERVER_H_

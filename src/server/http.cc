#include "server/http.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/string_util.h"

namespace coverage {
namespace http {

bool HeaderNameEquals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

namespace {

const std::string* FindIn(const std::vector<Header>& headers,
                          const std::string& name) {
  for (const Header& h : headers) {
    if (HeaderNameEquals(h.name, name)) return &h.value;
  }
  return nullptr;
}

}  // namespace

const std::string* Request::FindHeader(const std::string& name) const {
  return FindIn(headers, name);
}

const std::string* Response::FindHeader(const std::string& name) const {
  return FindIn(headers, name);
}

bool Request::KeepAlive() const {
  const std::string* connection = FindHeader("Connection");
  if (connection != nullptr) {
    if (HeaderNameEquals(*connection, "close")) return false;
    if (HeaderNameEquals(*connection, "keep-alive")) return true;
  }
  return version == "HTTP/1.1";
}

Response Response::Json(int status, std::string body) {
  Response r;
  r.status = status;
  r.headers.push_back({"Content-Type", "application/json"});
  r.body = std::move(body);
  return r;
}

Response Response::Text(int status, std::string body) {
  Response r;
  r.status = status;
  r.headers.push_back({"Content-Type", "text/plain"});
  r.body = std::move(body);
  return r;
}

std::string ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const Response& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    ReasonPhrase(response.status) + "\r\n";
  for (const Header& h : response.headers) {
    out += h.name + ": " + h.value + "\r\n";
  }
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  if (!keep_alive) out += "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

std::string SerializeRequest(const Request& request) {
  std::string out = request.method + " " + request.target + " " +
                    (request.version.empty() ? "HTTP/1.1" : request.version) +
                    "\r\n";
  for (const Header& h : request.headers) {
    out += h.name + ": " + h.value + "\r\n";
  }
  out += "Content-Length: " + std::to_string(request.body.size()) + "\r\n";
  out += "\r\n";
  out += request.body;
  return out;
}

// ------------------------------------------------------------ MessageReader

Status MessageReader::Feed(const char* data, std::size_t n) {
  buffer_.append(data, n);
  return Pump();
}

Status MessageReader::Pump() {
  if (state_ == State::kHead) {
    // Find the head terminator; tolerate bare-LF line endings.
    std::size_t head_end = std::string::npos;
    std::size_t body_start = 0;
    const std::size_t crlf = buffer_.find("\r\n\r\n");
    const std::size_t lf = buffer_.find("\n\n");
    if (crlf != std::string::npos && (lf == std::string::npos || crlf <= lf)) {
      head_end = crlf;
      body_start = crlf + 4;
    } else if (lf != std::string::npos) {
      head_end = lf;
      body_start = lf + 2;
    }
    if (head_end == std::string::npos) {
      if (buffer_.size() > limits_.max_head_bytes) {
        limit_violation_ = LimitViolation::kHead;
        return Status::ResourceExhausted(
            "message head exceeds " + std::to_string(limits_.max_head_bytes) +
            " bytes");
      }
      return Status::OK();  // need more bytes
    }
    if (head_end > limits_.max_head_bytes) {
      limit_violation_ = LimitViolation::kHead;
      return Status::ResourceExhausted(
          "message head exceeds " + std::to_string(limits_.max_head_bytes) +
          " bytes");
    }
    head_ = buffer_.substr(0, head_end);
    buffer_.erase(0, body_start);
    COVERAGE_RETURN_IF_ERROR(ParseHead());
    state_ = State::kBody;
  }
  if (state_ == State::kBody && buffer_.size() >= body_expected_) {
    body_ = buffer_.substr(0, body_expected_);
    buffer_.erase(0, body_expected_);
    state_ = State::kDone;
  }
  return Status::OK();
}

Status MessageReader::ParseHead() {
  // Split into lines; the start line is examined by TakeRequest/TakeResponse,
  // but Content-Length must be known now to frame the body.
  headers_.clear();
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos <= head_.size()) {
    std::size_t eol = head_.find('\n', pos);
    std::string line = eol == std::string::npos ? head_.substr(pos)
                                                : head_.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(std::move(line));
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  if (lines.empty() || lines[0].empty()) {
    return Status::InvalidArgument("empty start line");
  }
  start_line_ = lines[0];
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("malformed header line '" + line + "'");
    }
    Header h;
    h.name = line.substr(0, colon);
    if (h.name.find(' ') != std::string::npos ||
        h.name.find('\t') != std::string::npos) {
      // RFC 9112 §5.1: no whitespace between field name and colon.
      return Status::InvalidArgument("whitespace in header name '" + h.name +
                                     "'");
    }
    h.value = std::string(Trim(line.substr(colon + 1)));
    headers_.push_back(std::move(h));
  }

  if (FindIn(headers_, "Transfer-Encoding") != nullptr) {
    return Status::InvalidArgument(
        "Transfer-Encoding is not supported (bodies are framed by "
        "Content-Length)");
  }
  body_expected_ = 0;
  if (const std::string* cl = FindIn(headers_, "Content-Length")) {
    if (cl->empty() ||
        cl->find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument("malformed Content-Length '" + *cl + "'");
    }
    errno = 0;
    const unsigned long long v = std::strtoull(cl->c_str(), nullptr, 10);
    if (errno != 0) {
      return Status::InvalidArgument("malformed Content-Length '" + *cl + "'");
    }
    if (v > limits_.max_body_bytes) {
      limit_violation_ = LimitViolation::kBody;
      return Status::ResourceExhausted(
          "body of " + std::to_string(v) + " bytes exceeds the " +
          std::to_string(limits_.max_body_bytes) + "-byte limit");
    }
    body_expected_ = static_cast<std::size_t>(v);
  }
  return Status::OK();
}

void MessageReader::Reset() {
  state_ = State::kHead;
  head_.clear();
  start_line_.clear();
  headers_.clear();
  body_.clear();
  body_expected_ = 0;
  // buffer_ keeps any pipelined bytes of the next message.
}

StatusOr<Request> MessageReader::TakeRequest() {
  if (state_ != State::kDone) {
    return Status::Internal("TakeRequest called before a full message arrived");
  }
  // request-line = method SP request-target SP HTTP-version
  const std::size_t sp1 = start_line_.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : start_line_.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      start_line_.find(' ', sp2 + 1) != std::string::npos) {
    return Status::InvalidArgument("malformed request line '" + start_line_ +
                                   "'");
  }
  Request r;
  r.method = start_line_.substr(0, sp1);
  r.target = start_line_.substr(sp1 + 1, sp2 - sp1 - 1);
  r.version = start_line_.substr(sp2 + 1);
  if (r.method.empty() || r.target.empty() || r.target[0] != '/') {
    return Status::InvalidArgument("malformed request line '" + start_line_ +
                                   "'");
  }
  if (r.version != "HTTP/1.1" && r.version != "HTTP/1.0") {
    return Status::InvalidArgument("unsupported version '" + r.version + "'");
  }
  r.headers = std::move(headers_);
  r.body = std::move(body_);
  Reset();
  return r;
}

StatusOr<Response> MessageReader::TakeResponse() {
  if (state_ != State::kDone) {
    return Status::Internal(
        "TakeResponse called before a full message arrived");
  }
  // status-line = HTTP-version SP status-code SP reason-phrase
  const std::size_t sp1 = start_line_.find(' ');
  if (sp1 == std::string::npos || start_line_.compare(0, 5, "HTTP/") != 0) {
    return Status::InvalidArgument("malformed status line '" + start_line_ +
                                   "'");
  }
  const std::size_t sp2 = start_line_.find(' ', sp1 + 1);
  const std::string code = start_line_.substr(
      sp1 + 1, sp2 == std::string::npos ? std::string::npos : sp2 - sp1 - 1);
  if (code.size() != 3 ||
      code.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("malformed status code '" + code + "'");
  }
  Response r;
  r.status = std::stoi(code);
  r.headers = std::move(headers_);
  r.body = std::move(body_);
  Reset();
  return r;
}

}  // namespace http
}  // namespace coverage

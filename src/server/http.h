#ifndef COVERAGE_SERVER_HTTP_H_
#define COVERAGE_SERVER_HTTP_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace coverage {
namespace http {

/// One header line. Names compare case-insensitively (RFC 9110 §5.1);
/// values are kept verbatim.
struct Header {
  std::string name;
  std::string value;
};

/// Case-insensitive ASCII comparison for header names.
bool HeaderNameEquals(const std::string& a, const std::string& b);

/// A parsed request. `target` is the raw request-target (path + optional
/// query); the server's router splits it.
struct Request {
  std::string method;            // "GET", "POST", ...
  std::string target;            // "/v1/audit"
  std::string version;           // "HTTP/1.1"
  std::vector<Header> headers;
  std::string body;

  const std::string* FindHeader(const std::string& name) const;

  /// Connection semantics: HTTP/1.1 defaults to keep-alive unless the
  /// client sent `Connection: close`; HTTP/1.0 defaults to close.
  bool KeepAlive() const;
};

struct Response {
  int status = 200;
  std::vector<Header> headers;   // Content-Length is added by the writer
  std::string body;

  const std::string* FindHeader(const std::string& name) const;

  static Response Json(int status, std::string body);
  static Response Text(int status, std::string body);
};

/// The reason phrase for the status codes the server emits ("Unknown" for
/// anything unmapped — the code still goes on the wire).
std::string ReasonPhrase(int status);

/// Serialises a response with Content-Length and the standard framing. When
/// `keep_alive` is false a `Connection: close` header is added.
std::string SerializeResponse(const Response& response, bool keep_alive);

/// Serialises a request (always with Content-Length, even when empty, so
/// POST bodies are unambiguous).
std::string SerializeRequest(const Request& request);

/// Incremental HTTP/1.1 message reader shared by the server (requests) and
/// the client (responses). Feed it raw bytes as they arrive; it buffers
/// until one full message (head + Content-Length body) is available.
///
/// The grammar is the strict subset the wire protocol needs: a request line
/// or status line, CRLF-separated header lines (LF alone is tolerated),
/// no obs-fold continuation lines, and bodies framed by Content-Length only
/// (a message with `Transfer-Encoding` is rejected — the wire protocol
/// never chunks). Bounds are enforced *while buffering*, so an oversized
/// or runaway message fails fast instead of exhausting memory.
class MessageReader {
 public:
  struct Limits {
    std::size_t max_head_bytes = 16 * 1024;
    std::size_t max_body_bytes = 8 * 1024 * 1024;
  };

  /// Which bound a ResourceExhausted rejection violated — structured so
  /// the server can answer 431 vs 413 without parsing the error message.
  enum class LimitViolation { kNone, kHead, kBody };

  explicit MessageReader(Limits limits) : limits_(limits) {}

  /// Appends newly received bytes. Returns InvalidArgument /
  /// ResourceExhausted as soon as the data cannot become a valid message.
  Status Feed(const char* data, std::size_t n);

  /// Set iff the last Feed/Pump returned ResourceExhausted.
  LimitViolation limit_violation() const { return limit_violation_; }

  /// Re-runs the parse over already-buffered bytes without feeding new
  /// ones. Call after TakeRequest/TakeResponse so a pipelined next message
  /// that is already fully buffered becomes visible via HasMessage().
  Status Pump();

  /// True once one complete message is buffered.
  bool HasMessage() const { return state_ == State::kDone; }

  /// True when no bytes of a next message have arrived (clean point for a
  /// keep-alive connection to close).
  bool Empty() const { return state_ == State::kHead && buffer_.empty(); }

  /// Extracts the buffered message as a request (server side). Resets the
  /// reader so leftover pipelined bytes start the next message.
  StatusOr<Request> TakeRequest();

  /// Extracts the buffered message as a response (client side).
  StatusOr<Response> TakeResponse();

 private:
  enum class State { kHead, kBody, kDone };

  Status ParseHead();
  void Reset();

  Limits limits_;
  State state_ = State::kHead;
  std::string buffer_;           // unparsed bytes
  std::string head_;             // start line + headers once split
  std::string start_line_;
  std::vector<Header> headers_;
  std::size_t body_expected_ = 0;
  std::string body_;
  LimitViolation limit_violation_ = LimitViolation::kNone;
};

}  // namespace http
}  // namespace coverage

#endif  // COVERAGE_SERVER_HTTP_H_

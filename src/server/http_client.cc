#include "server/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace coverage {
namespace http {

HttpClient::~HttpClient() { Close(); }

HttpClient::HttpClient(HttpClient&& other) noexcept
    : host_(std::move(other.host_)),
      port_(other.port_),
      options_(other.options_),
      fd_(other.fd_),
      reader_(std::move(other.reader_)) {
  other.fd_ = -1;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    Close();
    host_ = std::move(other.host_);
    port_ = other.port_;
    options_ = other.options_;
    fd_ = other.fd_;
    reader_ = std::move(other.reader_);
    other.fd_ = -1;
  }
  return *this;
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_.reset();
}

StatusOr<HttpClient> HttpClient::Connect(const std::string& host, int port,
                                         Options options) {
  if (port < 1 || port > 65535) {
    return Status::InvalidArgument("port must be within [1, 65535]");
  }
  HttpClient client(host, port, options);
  COVERAGE_RETURN_IF_ERROR(client.EnsureConnected());
  return client;
}

StatusOr<HttpClient> HttpClient::Connect(const std::string& host, int port,
                                         int timeout_ms) {
  Options options;
  options.connect_timeout_ms = timeout_ms;
  options.read_timeout_ms = timeout_ms;
  return Connect(host, port, options);
}

Status HttpClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("'" + host_ +
                                   "' is not a numeric IPv4 address");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  // Nonblocking connect + poll, so a dead host or a full SYN backlog costs
  // connect_timeout_ms instead of the kernel's minutes-long retry schedule.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const auto fail = [&](const std::string& detail) {
    const Status st = Status::Internal("connect to " + host_ + ":" +
                                       std::to_string(port_) + ": " + detail);
    ::close(fd);
    return st;
  };
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS) return fail(std::strerror(errno));
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    int ready;
    do {
      ready = ::poll(&pfd, 1, options_.connect_timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) return fail(std::string("poll: ") + std::strerror(errno));
    if (ready == 0) return fail("timed out");
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) < 0) {
      return fail(std::string("getsockopt: ") + std::strerror(errno));
    }
    if (soerr != 0) return fail(std::strerror(soerr));
  }
  // The rest of the client is deliberately blocking.
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  MessageReader::Limits limits;
  limits.max_body_bytes = 1ull << 30;  // trust the server we asked
  reader_ = std::make_unique<MessageReader>(limits);
  return Status::OK();
}

Status HttpClient::SendAll(const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st =
          Status::Internal(std::string("send: ") + std::strerror(errno));
      Close();
      return st;
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

StatusOr<Response> HttpClient::ReadResponse() {
  MessageReader& reader = *reader_;
  response_bytes_seen_ = !reader.Empty();
  // A previously recv'd pipelined response may already be buffered.
  COVERAGE_RETURN_IF_ERROR(reader.Pump());
  char buf[16384];
  while (!reader.HasMessage()) {
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, options_.read_timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      Close();
      return Status::Internal(std::string("poll: ") + std::strerror(errno));
    }
    if (ready == 0) {
      Close();
      return Status::Internal("timed out waiting for the response");
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      Close();
      return Status::Internal("connection closed before a full response");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      Close();
      return Status::Internal(std::string("recv: ") + std::strerror(errno));
    }
    response_bytes_seen_ = true;
    const Status fed = reader.Feed(buf, static_cast<std::size_t>(n));
    if (!fed.ok()) {
      Close();
      return fed;
    }
  }
  auto response = reader.TakeResponse();
  if (!response.ok()) {
    Close();
    return response.status();
  }
  // Honour the server's connection semantics for the next call.
  const std::string* connection = response->FindHeader("Connection");
  if (connection != nullptr && HeaderNameEquals(*connection, "close")) {
    Close();
  }
  return response;
}

StatusOr<Response> HttpClient::Roundtrip(Request request) {
  const bool reused_connection = fd_ >= 0;
  COVERAGE_RETURN_IF_ERROR(EnsureConnected());
  if (request.version.empty()) request.version = "HTTP/1.1";
  if (options_.accept_binary && request.FindHeader("Accept") == nullptr) {
    request.headers.push_back({"Accept", "application/x-coverage-bin"});
  }
  const std::string bytes = SerializeRequest(request);
  const Status sent = SendAll(bytes);
  if (sent.ok()) {
    auto response = ReadResponse();
    if (response.ok() || !reused_connection || response_bytes_seen_) {
      return response;
    }
    // Fall through: the reused keep-alive socket died before a single
    // response byte — the server closed it between calls (idle timeout,
    // restart). The send can "succeed" into the socket buffer in that
    // state, so the read side must trigger the retry too.
  } else if (!reused_connection) {
    return sent;
  }
  // One transparent retry on a fresh connection.
  COVERAGE_RETURN_IF_ERROR(EnsureConnected());
  COVERAGE_RETURN_IF_ERROR(SendAll(bytes));
  return ReadResponse();
}

StatusOr<Response> HttpClient::RoundtripRaw(const std::string& bytes) {
  COVERAGE_RETURN_IF_ERROR(EnsureConnected());
  COVERAGE_RETURN_IF_ERROR(SendAll(bytes));
  return ReadResponse();
}

StatusOr<Response> HttpClient::Get(const std::string& target) {
  Request r;
  r.method = "GET";
  r.target = target;
  return Roundtrip(std::move(r));
}

StatusOr<Response> HttpClient::Post(const std::string& target,
                                    std::string body,
                                    const std::string& content_type) {
  Request r;
  r.method = "POST";
  r.target = target;
  r.headers.push_back({"Content-Type", content_type});
  r.body = std::move(body);
  return Roundtrip(std::move(r));
}

}  // namespace http
}  // namespace coverage

#ifndef COVERAGE_SERVER_HTTP_CLIENT_H_
#define COVERAGE_SERVER_HTTP_CLIENT_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "server/http.h"

namespace coverage {
namespace http {

/// A tiny blocking HTTP/1.1 client for one keep-alive connection — just
/// enough wire protocol for the loopback tests, the load generator, and
/// scripting against coverage_server. Not thread-safe: one connection, one
/// in-flight request, owned by one thread (the load generator opens one
/// HttpClient per client thread).
///
///   auto client = HttpClient::Connect("127.0.0.1", port);
///   auto resp = client->Post("/v1/audit", R"({"tau": 30})");
///
/// Requests go out with Content-Length and default keep-alive; if the
/// server answers `Connection: close` (or the transport drops), the next
/// call reconnects transparently.
class HttpClient {
 public:
  struct Options {
    /// Ceiling on establishing the TCP connection (nonblocking connect +
    /// poll). A server with a full accept backlog makes a blocking
    /// connect(2) hang for the kernel's SYN-retry schedule — minutes —
    /// which is exactly what a load generator must never do.
    int connect_timeout_ms = 5000;

    /// Ceiling on waiting for response bytes once the request is sent.
    int read_timeout_ms = 5000;

    /// Send `Accept: application/x-coverage-bin` on every request (unless
    /// it carries an explicit Accept already), opting into the wire-v2
    /// binary encoding on routes that support it (see server/wire_binary.h;
    /// decode the response body with its Decode functions).
    bool accept_binary = false;
  };

  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;

  /// Opens a TCP connection. `host` is a numeric IPv4 address (the client
  /// deliberately skips DNS — it talks to loopback and explicit addresses).
  static StatusOr<HttpClient> Connect(const std::string& host, int port,
                                      Options options);

  /// Back-compat shorthand: one timeout for both connect and read.
  static StatusOr<HttpClient> Connect(const std::string& host, int port,
                                      int timeout_ms = 5000);

  StatusOr<Response> Get(const std::string& target);
  StatusOr<Response> Post(const std::string& target, std::string body,
                          const std::string& content_type =
                              "application/json");

  /// Full control over the request line and headers.
  StatusOr<Response> Roundtrip(Request request);

  /// Sends raw bytes and reads one response — the malformed-request tests
  /// use this to speak broken HTTP on purpose.
  StatusOr<Response> RoundtripRaw(const std::string& bytes);

  bool connected() const { return fd_ >= 0; }

 private:
  HttpClient(std::string host, int port, Options options)
      : host_(std::move(host)), port_(port), options_(options) {}

  Status EnsureConnected();
  void Close();
  Status SendAll(const std::string& data);
  StatusOr<Response> ReadResponse();

  std::string host_;
  int port_ = 0;
  Options options_;
  int fd_ = -1;
  /// Persists across responses on one connection so bytes recv'd past the
  /// current response (pipelined replies) stay buffered for the next read.
  std::unique_ptr<MessageReader> reader_;
  /// Whether the last ReadResponse saw any bytes before failing — a reused
  /// connection that died byte-less was a stale keep-alive socket, which
  /// Roundtrip retries once on a fresh connection.
  bool response_bytes_seen_ = false;
};

}  // namespace http
}  // namespace coverage

#endif  // COVERAGE_SERVER_HTTP_CLIENT_H_

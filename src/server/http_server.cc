#include "server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <fcntl.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/thread_pool.h"
#include "net/event_loop.h"
#include "obs/log.h"

namespace coverage {
namespace http {

namespace {

/// The one server wired to SIGINT/SIGTERM, and the flag its handler sets.
/// Signal handlers may only touch lock-free atomics, so the handler records
/// the request and the accept loop (which polls anyway) acts on it.
std::atomic<HttpServer*> g_signal_server{nullptr};
volatile std::sig_atomic_t g_signal_stop = 0;

void OnStopSignal(int) { g_signal_stop = 1; }

/// send(2) the whole buffer, riding out partial writes and EINTR.
bool SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Best-effort error reply for protocol violations; the connection closes
/// right after, so failures to send are ignored.
void SendProtocolError(int fd, int status, const std::string& detail) {
  Response r = Response::Text(status, detail + "\n");
  SendAll(fd, SerializeResponse(r, /*keep_alive=*/false));
}

int StatusToHttpParseError(const Status& status,
                           const MessageReader& reader) {
  if (status.code() == StatusCode::kResourceExhausted) {
    return reader.limit_violation() == MessageReader::LimitViolation::kHead
               ? 431
               : 413;
  }
  return 400;
}

}  // namespace

IoModel ResolveIoModel(IoModel io_model) {
  if (io_model != IoModel::kDefault) return io_model;
  const char* env = std::getenv("COVERAGE_IO_MODEL");
  if (env != nullptr && std::strcmp(env, "epoll") == 0) {
    return IoModel::kEpoll;
  }
  return IoModel::kBlocking;
}

Status ServerOptions::Validate() const {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port must be within [0, 65535]");
  }
  if (num_threads < 0 || num_threads > 1024) {
    return Status::InvalidArgument(
        "num_threads must be within [0, 1024] (0 = hardware concurrency)");
  }
  if (max_body_bytes == 0 || max_head_bytes == 0) {
    return Status::InvalidArgument("size limits must be positive");
  }
  if (backlog < 1) {
    return Status::InvalidArgument("backlog must be positive");
  }
  if (idle_timeout_ms < 1 || poll_interval_ms < 1) {
    return Status::InvalidArgument("timeouts must be positive");
  }
  if (max_queue_wait_ms < 0 || retry_after_seconds < 1) {
    return Status::InvalidArgument(
        "max_queue_wait_ms must be >= 0 and retry_after_seconds positive");
  }
  return Status::OK();
}

HttpServer::HttpServer(ServerOptions options, Handler handler)
    : options_(options),
      handler_(std::move(handler)),
      io_model_(ResolveIoModel(options.io_model)) {}

void HttpServer::AddPeriodicTask(int interval_ms, std::function<void()> fn) {
  periodic_tasks_.emplace_back(interval_ms, std::move(fn));
}

HttpServer::~HttpServer() {
  Stop();
  if (g_signal_server.load(std::memory_order_acquire) == this) {
    g_signal_server.store(nullptr, std::memory_order_release);
  }
}

Status HttpServer::Start() {
  COVERAGE_RETURN_IF_ERROR(options_.Validate());
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already started");
  }

  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd);
    return st;
  }
  if (::listen(listen_fd, options_.backlog) < 0) {
    const Status st =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(addr.sin_port));
  }
  listen_fd_.store(listen_fd, std::memory_order_release);

  {
    Response shed = Response::Text(
        503, "server overloaded, retry shortly\n");
    shed.headers.push_back(
        {"Retry-After", std::to_string(options_.retry_after_seconds)});
    shed_response_ = SerializeResponse(shed, /*keep_alive=*/false);
  }

  if (io_model_ == IoModel::kEpoll) {
    const int flags = ::fcntl(listen_fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(listen_fd, F_SETFL, flags | O_NONBLOCK);
    net::EventLoopOptions loop_options;
    loop_options.listen_fd = listen_fd;
    loop_options.handler = handler_;
    loop_options.limits.max_head_bytes = options_.max_head_bytes;
    loop_options.limits.max_body_bytes = options_.max_body_bytes;
    loop_options.num_workers = options_.num_threads;
    loop_options.idle_timeout_ms = options_.idle_timeout_ms;
    loop_options.poll_interval_ms = options_.poll_interval_ms;
    loop_options.max_pending = options_.max_pending;
    loop_options.max_queue_wait_ms = options_.max_queue_wait_ms;
    loop_options.retry_after_seconds = options_.retry_after_seconds;
    loop_options.accept_fn = options_.accept_fn;
    loop_options.shed_response = shed_response_;
    loop_options.iteration_histogram = options_.loop_latency_histogram;
    loop_ = std::make_unique<net::EventLoop>(std::move(loop_options));
    for (auto& [interval_ms, fn] : periodic_tasks_) {
      loop_->AddPeriodicTask(interval_ms, fn);
    }
    const Status started = loop_->Start();
    if (!started.ok()) {
      // The loop owns (and on failure, its destructor closes) listen_fd.
      loop_.reset();
      listen_fd_.store(-1, std::memory_order_release);
      return started;
    }
    stopping_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(mu_);
      threads_joined_ = false;
    }
    return Status::OK();
  }

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads_joined_ = false;
  }

  pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  // RunOnAll blocks its caller as worker 0, so a driver thread donates
  // itself: all options_.num_threads workers run WorkerLoop concurrently.
  pool_driver_ = std::thread([this] {
    pool_->RunOnAll([this](int) { WorkerLoop(); });
  });
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::AcceptLoop() {
  pollfd pfd{};
  pfd.events = POLLIN;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (g_signal_stop != 0 &&
        g_signal_server.load(std::memory_order_acquire) == this) {
      // ^C: stop accepting. Wait() (which polls the same flag) runs the
      // graceful Stop() — it cannot run here, as Stop() joins this thread.
      break;
    }
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;  // Stop() retired the listener
    pfd.fd = listen_fd;
    const int ready = ::poll(&pfd, 1, options_.poll_interval_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = options_.accept_fn ? options_.accept_fn(listen_fd)
                                      : ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      // The connection died between poll and accept: nothing wrong with us.
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO ||
          errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      // Stop() retired the listener out from under the accept call.
      if (listen_fd_.load(std::memory_order_acquire) < 0) break;
      // Anything else — fd exhaustion (EMFILE/ENFILE), transient kernel
      // memory pressure (ENOBUFS/ENOMEM), or an errno this code never
      // anticipated — must NOT kill the accept thread: existing
      // connections will finish and free resources, so back off one tick
      // and keep serving. A dead accept loop turns a burst into an outage.
      const int saved_errno = errno;
      accept_retries_.fetch_add(1, std::memory_order_relaxed);
      obs::LogWarn("accept_retry")
          .Str("error", std::strerror(saved_errno))
          .Int("errno", saved_errno)
          .Int("backoff_ms", options_.poll_interval_ms)
          .Uint("accept_retries",
                accept_retries_.load(std::memory_order_relaxed));
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.poll_interval_ms));
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    bool queued = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (options_.max_pending == 0 ||
          pending_.size() < options_.max_pending) {
        pending_.push_back({fd, std::chrono::steady_clock::now()});
        queued = true;
      }
    }
    if (!queued) {
      // Handoff queue full: every worker is busy and a backlog is already
      // waiting. Shed now, from the accept thread, so the client learns
      // immediately instead of timing out in a queue we can't drain.
      ShedConnection(fd, "queue_full", 0.0);
      continue;
    }
    queue_cv_.notify_one();
  }
}

void HttpServer::ShedConnection(int fd, const char* reason,
                                double waited_seconds) {
  connections_shed_.fetch_add(1, std::memory_order_relaxed);
  std::size_t queue_depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_depth = pending_.size();
  }
  obs::LogWarn("connection_shed")
      .Str("reason", reason)
      .Uint("queue_depth", queue_depth)
      .Uint("max_pending", options_.max_pending)
      .Int("retry_after_seconds", options_.retry_after_seconds)
      .Double("waited_seconds", waited_seconds)
      .Uint("connections_shed",
            connections_shed_.load(std::memory_order_relaxed));
  SendAll(fd, shed_response_);
  ::close(fd);
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    std::chrono::steady_clock::time_point enqueued;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] {
        return stopping_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (!pending_.empty()) {
        fd = pending_.front().fd;
        enqueued = pending_.front().enqueued;
        pending_.pop_front();
      } else if (stopping_.load(std::memory_order_acquire)) {
        return;
      }
    }
    if (fd < 0) continue;
    if (stopping_.load(std::memory_order_acquire)) {
      // Accepted but never served: close without a response (the client
      // sees a clean connection close, the normal "server going away").
      ::close(fd);
      continue;
    }
    const double waited_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      enqueued)
            .count();
    if (options_.max_queue_wait_ms > 0 &&
        waited_seconds * 1e3 >
            static_cast<double>(options_.max_queue_wait_ms)) {
      // The connection outwaited its deadline in the handoff queue; its
      // client has likely given up, so tell it to retry rather than spend
      // a worker on a stale request.
      ShedConnection(fd, "stale", waited_seconds);
      continue;
    }
    HandleConnection(fd);
  }
}

int HttpServer::WaitReadable(int fd, int* idle_budget_ms) const {
  while (*idle_budget_ms > 0) {
    if (stopping_.load(std::memory_order_acquire)) return 0;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int wait_ms = options_.poll_interval_ms < *idle_budget_ms
                            ? options_.poll_interval_ms
                            : *idle_budget_ms;
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (ready > 0) return 1;
    *idle_budget_ms -= wait_ms;
  }
  return -1;  // idle timeout
}

void HttpServer::HandleConnection(int fd) {
  MessageReader::Limits limits;
  limits.max_head_bytes = options_.max_head_bytes;
  limits.max_body_bytes = options_.max_body_bytes;
  MessageReader reader(limits);

  char buf[16384];
  bool keep_alive = true;
  while (keep_alive) {
    int idle_budget_ms = options_.idle_timeout_ms;
    // Read until one full request is buffered (or the connection dies).
    while (!reader.HasMessage()) {
      const int readable = WaitReadable(fd, &idle_budget_ms);
      if (readable == 0) {
        // Server stopping. Mid-request bytes are abandoned (the client
        // never got a response promise); between requests this is the
        // clean close point of a keep-alive connection.
        keep_alive = false;
        break;
      }
      if (readable < 0) {
        if (!reader.Empty()) {
          SendProtocolError(fd, 408, "request timed out");
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        }
        keep_alive = false;
        break;
      }
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n == 0) {  // peer closed
        if (!reader.Empty()) {
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        }
        keep_alive = false;
        break;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        keep_alive = false;
        break;
      }
      const Status fed = reader.Feed(buf, static_cast<std::size_t>(n));
      if (!fed.ok()) {
        SendProtocolError(fd, StatusToHttpParseError(fed, reader),
                          fed.message());
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        keep_alive = false;
        break;
      }
    }
    if (!keep_alive && !reader.HasMessage()) break;

    // Serve every fully buffered request (pipelining) before reading more.
    while (reader.HasMessage()) {
      auto request = reader.TakeRequest();
      if (!request.ok()) {
        SendProtocolError(fd, 400, request.status().message());
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        keep_alive = false;
        break;
      }
      keep_alive = keep_alive && request->KeepAlive() &&
                   !stopping_.load(std::memory_order_acquire);
      const Response response = handler_(*request);
      requests_handled_.fetch_add(1, std::memory_order_relaxed);
      if (!SendAll(fd, SerializeResponse(response, keep_alive))) {
        keep_alive = false;
        break;
      }
      // Once a response promised Connection: close, no further pipelined
      // request may be processed (RFC 9112 §9.6).
      if (!keep_alive) break;
      // Surface the next pipelined request if it is already buffered.
      const Status pumped = reader.Pump();
      if (!pumped.ok()) {
        SendProtocolError(fd, StatusToHttpParseError(pumped, reader),
                          pumped.message());
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        keep_alive = false;
        break;
      }
    }
  }
  ::close(fd);
}

void HttpServer::Stop() {
  bool expected = false;
  const bool i_stop = stopping_.compare_exchange_strong(
      expected, true, std::memory_order_acq_rel);
  if (i_stop && loop_ != nullptr) {
    // Epoll mode: the loop owns listener + connections and drains them
    // gracefully (in-flight requests finish, responses flush) before its
    // threads join inside Stop().
    loop_->Stop();
    listen_fd_.store(-1, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(mu_);
      threads_joined_ = true;
    }
    running_.store(false, std::memory_order_release);
    stopped_cv_.notify_all();
    return;
  }
  if (i_stop) {
    // Closing the listener wakes the accept loop's poll immediately.
    const int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
    if (listen_fd >= 0) {
      ::shutdown(listen_fd, SHUT_RDWR);
      ::close(listen_fd);
    }
    {
      // Serialise with WorkerLoop's predicate check: a worker that read
      // stopping_ == false under mu_ must reach its wait before this
      // notify, or it would sleep through shutdown (lost wakeup).
      std::lock_guard<std::mutex> lock(mu_);
    }
    queue_cv_.notify_all();
    if (accept_thread_.joinable()) accept_thread_.join();
    if (pool_driver_.joinable()) pool_driver_.join();
    pool_.reset();
    // Workers have exited; anything still queued gets a clean close.
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const PendingConn& conn : pending_) ::close(conn.fd);
      pending_.clear();
      threads_joined_ = true;
    }
    running_.store(false, std::memory_order_release);
    stopped_cv_.notify_all();
  } else {
    Wait();
  }
}

void HttpServer::Wait() {
  const auto tick = std::chrono::milliseconds(options_.poll_interval_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stopped_cv_.wait_for(lock, tick, [&] { return threads_joined_; })) {
        return;
      }
    }
    // A signal-requested stop runs here, on the waiter's thread — never on
    // a thread Stop() would have to join.
    if (g_signal_stop != 0 &&
        g_signal_server.load(std::memory_order_acquire) == this &&
        !stopping_.load(std::memory_order_acquire)) {
      Stop();
      return;
    }
  }
}

void HttpServer::StopOnSignal() {
  g_signal_server.store(this, std::memory_order_release);
  struct sigaction sa{};
  sa.sa_handler = OnStopSignal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
#ifdef SIGPIPE
  ::signal(SIGPIPE, SIG_IGN);  // broken clients must not kill the process
#endif
}

ServerStats HttpServer::stats() const {
  ServerStats s;
  if (loop_ != nullptr) {
    const net::EventLoopCounters& c = loop_->counters();
    s.connections_accepted =
        c.connections_accepted.load(std::memory_order_relaxed);
    s.requests_handled = c.requests_handled.load(std::memory_order_relaxed);
    s.protocol_errors = c.protocol_errors.load(std::memory_order_relaxed);
    s.connections_shed = c.connections_shed.load(std::memory_order_relaxed);
    s.accept_retries = c.accept_retries.load(std::memory_order_relaxed);
    s.open_connections = c.open_connections.load(std::memory_order_relaxed);
    s.write_buffer_bytes =
        c.write_buffer_bytes.load(std::memory_order_relaxed);
    return s;
  }
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.requests_handled = requests_handled_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.connections_shed = connections_shed_.load(std::memory_order_relaxed);
  s.accept_retries = accept_retries_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace http
}  // namespace coverage

#ifndef COVERAGE_SERVER_HTTP_SERVER_H_
#define COVERAGE_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "server/http.h"

namespace coverage {

class ThreadPool;

namespace net {
class EventLoop;
}  // namespace net

namespace obs {
class Histogram;
}  // namespace obs

namespace http {

/// Which serving engine runs behind HttpServer. Both models speak the same
/// HTTP, emit byte-identical responses, and share every ServerOptions knob;
/// they differ only in how connections map to threads.
enum class IoModel {
  /// Resolve from the COVERAGE_IO_MODEL environment variable ("blocking" /
  /// "epoll"); kBlocking when unset. This default lets every existing test
  /// binary run under the event loop without a single code change — the
  /// ctest matrix registers *_epoll variants that just set the variable.
  kDefault,
  /// One blocking connection per worker thread (the original PR 5 model).
  kBlocking,
  /// One epoll/poll readiness loop owning all sockets, workers used only
  /// for request dispatch (src/net/EventLoop).
  kEpoll,
};

/// `io_model` with kDefault resolved against COVERAGE_IO_MODEL.
IoModel ResolveIoModel(IoModel io_model);

/// Knobs of the embedded server. Everything is fixed at Start().
struct ServerOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via port() — the
  /// pattern every loopback test uses).
  int port = 0;

  /// Connection-handler workers. 0 clamps to hardware_concurrency() (the
  /// ThreadPool contract). Each worker owns one connection at a time and
  /// serves its keep-alive request sequence to completion.
  int num_threads = 4;

  /// Hard bounds enforced while buffering, before any parsing work.
  std::size_t max_body_bytes = 8 * 1024 * 1024;
  std::size_t max_head_bytes = 16 * 1024;

  /// listen(2) backlog: accepted-but-unhandled connections queue here and
  /// in the internal handoff queue.
  int backlog = 128;

  /// A keep-alive connection with no traffic for this long is closed
  /// (slowloris guard; also bounds how long a worker can be pinned by a
  /// silent client).
  int idle_timeout_ms = 30000;

  /// How often blocked loops re-check the stop flag; shutdown latency is
  /// bounded by this.
  int poll_interval_ms = 50;

  /// Overload protection: accepted connections beyond this many waiting in
  /// the handoff queue are shed immediately with `503 Service Unavailable`
  /// + `Retry-After` instead of queueing unboundedly behind slow work.
  /// 0 = unbounded (the pre-hardening behaviour).
  std::size_t max_pending = 256;

  /// A connection that sat in the handoff queue longer than this is shed
  /// with 503 when a worker finally picks it up — its client has likely
  /// given up, and serving it would only delay fresher requests. 0
  /// disables the deadline.
  int max_queue_wait_ms = 0;

  /// Retry-After value (seconds) attached to shed responses.
  int retry_after_seconds = 1;

  /// Test seam: when set, called instead of accept(2); must behave like
  /// accept(listen_fd, nullptr, nullptr) including errno on failure.
  std::function<int(int)> accept_fn;

  /// Which serving engine to run; kDefault resolves COVERAGE_IO_MODEL.
  IoModel io_model = IoModel::kDefault;

  /// Epoll mode only: when set, observes seconds per event-loop iteration.
  obs::Histogram* loop_latency_histogram = nullptr;

  Status Validate() const;
};

/// Counters surfaced by /v1/stats (monotonic since Start()).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_handled = 0;
  std::uint64_t protocol_errors = 0;  ///< connections dropped on bad HTTP
  std::uint64_t connections_shed = 0;  ///< 503s from overload protection
  std::uint64_t accept_retries = 0;    ///< transient accept(2) failures
  /// Epoll mode gauges (0 under the blocking model, which has no central
  /// place to observe either cheaply).
  std::uint64_t open_connections = 0;   ///< currently established sockets
  std::uint64_t write_buffer_bytes = 0; ///< unflushed response bytes
};

/// A dependency-free blocking HTTP/1.1 server: one accept thread feeding a
/// ThreadPool of connection handlers through a small handoff queue.
///
///   HttpServer server(options, [](const Request& r) { ... return resp; });
///   server.Start();          // binds, spawns accept loop + workers
///   ...
///   server.Stop();           // graceful: drain, close, join
///
/// The handler runs on a worker thread, one call at a time per connection
/// but many connections concurrently — it must be thread-safe. Keep-alive
/// (HTTP/1.1 default) and pipelined requests are honoured; bodies are
/// framed by Content-Length (no chunked encoding, no TLS — put a real
/// proxy in front for the open internet; this server is for trusted
/// networks and loopback).
///
/// Stop() (and therefore the destructor) is graceful: the listener closes
/// first, in-flight requests finish and get their response, idle keep-alive
/// connections and the handoff queue are closed, then all threads join.
/// StopOnSignal() arranges the same for SIGINT/SIGTERM, so ^C on the
/// coverage_server binary never truncates a response mid-write.
class HttpServer {
 public:
  using Handler = std::function<Response(const Request&)>;

  HttpServer(ServerOptions options, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds and starts serving. InvalidArgument on bad options, Internal on
  /// socket failures (port in use, ...).
  Status Start();

  /// Graceful shutdown; idempotent, safe from any thread (and from the
  /// signal watcher). Blocks until every thread joined.
  void Stop();

  /// Blocks until Stop() completes (from any caller).
  void Wait();

  /// Installs a process-wide SIGINT/SIGTERM handler that stops this server.
  /// Call after Start(); one server per process may use it.
  void StopOnSignal();

  /// The io model this server will actually run (env-resolved). Fixed at
  /// construction so callers can pick reaper strategies before Start().
  IoModel io_model() const { return io_model_; }

  /// Registers `fn` to run every `interval_ms` on the event loop's deadline
  /// wheel (epoll mode only — blocking-mode callers keep their own timer
  /// thread). Must be called before Start().
  void AddPeriodicTask(int interval_ms, std::function<void()> fn);

  /// Late injection of ServerOptions::loop_latency_histogram, for owners
  /// whose metrics registry outlives option construction (CoverageServer).
  /// Must be called before Start().
  void set_loop_latency_histogram(obs::Histogram* histogram) {
    options_.loop_latency_histogram = histogram;
  }

  /// The bound port (after Start(); ephemeral requests resolve here).
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  ServerStats stats() const;

 private:
  /// An accepted connection waiting for a worker; the timestamp drives the
  /// max_queue_wait_ms deadline.
  struct PendingConn {
    int fd;
    std::chrono::steady_clock::time_point enqueued;
  };

  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);
  /// Answers `fd` with the canned 503 + Retry-After and closes it, logging
  /// a structured `connection_shed` event carrying `reason` ("queue_full"
  /// from the accept thread, "stale" from a worker), the queue depth at
  /// shed time, and how long the connection waited (0 for queue_full).
  void ShedConnection(int fd, const char* reason, double waited_seconds);
  /// Blocks until `fd` is readable, the server stops, or the idle deadline
  /// passes. Returns +1 readable, 0 stop/timeout-tick (caller re-checks),
  /// -1 idle-expired or error.
  int WaitReadable(int fd, int* idle_budget_ms) const;

  ServerOptions options_;
  Handler handler_;
  IoModel io_model_ = IoModel::kBlocking;  // env-resolved at construction

  /// Epoll mode: the readiness loop owning every socket; null in blocking
  /// mode and before Start().
  std::unique_ptr<net::EventLoop> loop_;
  /// Periodic tasks registered before Start(), handed to the loop.
  std::vector<std::pair<int, std::function<void()>>> periodic_tasks_;

  /// Written by Start()/Stop(), read by the accept loop: atomic because
  /// Stop() retires it from another thread to wake the loop.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread pool_driver_;  // runs pool_->RunOnAll(WorkerLoop)

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::condition_variable stopped_cv_;
  std::deque<PendingConn> pending_;  // accepted fds awaiting a worker
  bool threads_joined_ = true;

  std::string shed_response_;  // serialized once at Start()

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> requests_handled_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> connections_shed_{0};
  std::atomic<std::uint64_t> accept_retries_{0};
};

}  // namespace http
}  // namespace coverage

#endif  // COVERAGE_SERVER_HTTP_SERVER_H_

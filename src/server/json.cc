#include "server/json.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace coverage {
namespace json {

JsonValue::JsonValue(std::uint64_t u) {
  if (u <= static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    value_ = static_cast<std::int64_t>(u);
  } else {
    // Counters beyond 2^63-1 do not occur in practice; degrade to double
    // rather than wrap around.
    value_ = static_cast<double>(u);
  }
}

double JsonValue::AsDouble() const {
  if (is_int()) return static_cast<double>(AsInt());
  return std::get<double>(value_);
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const Object& obj = AsObject();
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

namespace {

Status MemberError(const std::string& key, const char* want,
                   const JsonValue* found) {
  if (found == nullptr) {
    return Status::NotFound("missing member '" + key + "'");
  }
  return Status::InvalidArgument("member '" + key + "' must be " + want);
}

}  // namespace

StatusOr<std::int64_t> JsonValue::GetInt(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_int()) return MemberError(key, "an integer", v);
  return v->AsInt();
}

StatusOr<std::uint64_t> JsonValue::GetUint(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_int() || v->AsInt() < 0) {
    return MemberError(key, "a non-negative integer", v);
  }
  return static_cast<std::uint64_t>(v->AsInt());
}

StatusOr<bool> JsonValue::GetBool(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_bool()) return MemberError(key, "a boolean", v);
  return v->AsBool();
}

StatusOr<std::string> JsonValue::GetString(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_string()) return MemberError(key, "a string", v);
  return v->AsString();
}

// ------------------------------------------------------------------- writer

std::string EscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;  // UTF-8 bytes >= 0x80 pass through verbatim
        }
    }
  }
  out += '"';
  return out;
}

namespace {

void WriteDouble(double d, std::string& out) {
  if (!std::isfinite(d)) {
    out += "null";
    return;
  }
  // Shortest representation that round-trips: try increasing precision.
  std::array<char, 40> buf;
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf.data(), buf.size(), "%.*g", prec, d);
    if (std::strtod(buf.data(), nullptr) == d) break;
  }
  std::string text(buf.data());
  // "%g" may emit "1e+05" style with no decimal point; that is valid JSON.
  out += text;
}

void SerializeTo(const JsonValue& v, int indent, int depth, std::string& out) {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (v.type()) {
    case JsonValue::Type::kNull:
      out += "null";
      break;
    case JsonValue::Type::kBool:
      out += v.AsBool() ? "true" : "false";
      break;
    case JsonValue::Type::kInt:
      out += std::to_string(v.AsInt());
      break;
    case JsonValue::Type::kDouble:
      WriteDouble(v.AsDouble(), out);
      break;
    case JsonValue::Type::kString:
      out += EscapeString(v.AsString());
      break;
    case JsonValue::Type::kArray: {
      const JsonValue::Array& a = v.AsArray();
      if (a.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i > 0) out += indent > 0 ? "," : ", ";
        newline(depth + 1);
        SerializeTo(a[i], indent, depth + 1, out);
      }
      newline(depth);
      out += ']';
      break;
    }
    case JsonValue::Type::kObject: {
      const JsonValue::Object& o = v.AsObject();
      if (o.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : o) {
        if (!first) out += indent > 0 ? "," : ", ";
        first = false;
        newline(depth + 1);
        out += EscapeString(key);
        out += ": ";
        SerializeTo(value, indent, depth + 1, out);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string Serialize(const JsonValue& value) {
  std::string out;
  SerializeTo(value, /*indent=*/0, /*depth=*/0, out);
  return out;
}

std::string SerializePretty(const JsonValue& value) {
  std::string out;
  SerializeTo(value, /*indent=*/2, /*depth=*/0, out);
  out += '\n';
  return out;
}

// ------------------------------------------------------------------- parser

namespace {

/// Recursive-descent over a byte buffer. Every rejection carries the byte
/// offset so a malformed request body is debuggable from the error alone.
class Parser {
 public:
  Parser(const std::string& text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  StatusOr<JsonValue> Run() {
    SkipWs();
    auto v = ParseValue(0);
    if (!v.ok()) return v.status();
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after the JSON value");
    }
    return v;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWs() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  Status Expect(char c, const char* context) {
    if (!Consume(c)) {
      return Fail(std::string("expected '") + c + "' " + context);
    }
    return Status::OK();
  }

  bool ConsumeKeyword(const char* kw) {
    const std::size_t len = std::char_traits<char>::length(kw);
    if (text_.compare(pos_, len, kw) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > max_depth_) {
      return Fail("nesting deeper than " + std::to_string(max_depth_));
    }
    if (AtEnd()) return Fail("unexpected end of input");
    const char c = Peek();
    switch (c) {
      case 'n':
        if (ConsumeKeyword("null")) return JsonValue(nullptr);
        return Fail("invalid literal (expected null)");
      case 't':
        if (ConsumeKeyword("true")) return JsonValue(true);
        return Fail("invalid literal (expected true)");
      case 'f':
        if (ConsumeKeyword("false")) return JsonValue(false);
        return Fail("invalid literal (expected false)");
      case '"':
        return ParseString();
      case '[':
        return ParseArray(depth);
      case '{':
        return ParseObject(depth);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        return Fail(std::string("unexpected character '") + c + "'");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue::Array out;
    SkipWs();
    if (Consume(']')) return JsonValue(std::move(out));
    for (;;) {
      SkipWs();
      auto v = ParseValue(depth + 1);
      if (!v.ok()) return v.status();
      out.push_back(std::move(*v));
      SkipWs();
      if (Consume(']')) return JsonValue(std::move(out));
      COVERAGE_RETURN_IF_ERROR(Expect(',', "between array elements"));
      SkipWs();
      if (!AtEnd() && Peek() == ']') return Fail("trailing comma in array");
    }
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue::Object out;
    SkipWs();
    if (Consume('}')) return JsonValue(std::move(out));
    for (;;) {
      SkipWs();
      if (AtEnd() || Peek() != '"') return Fail("object keys must be strings");
      auto key = ParseRawString();
      if (!key.ok()) return key.status();
      SkipWs();
      COVERAGE_RETURN_IF_ERROR(Expect(':', "after object key"));
      SkipWs();
      auto v = ParseValue(depth + 1);
      if (!v.ok()) return v.status();
      out[std::move(*key)] = std::move(*v);  // last duplicate wins
      SkipWs();
      if (Consume('}')) return JsonValue(std::move(out));
      COVERAGE_RETURN_IF_ERROR(Expect(',', "between object members"));
      SkipWs();
      if (!AtEnd() && Peek() == '}') return Fail("trailing comma in object");
    }
  }

  StatusOr<JsonValue> ParseString() {
    auto s = ParseRawString();
    if (!s.ok()) return s.status();
    return JsonValue(std::move(*s));
  }

  static void AppendUtf8(std::uint32_t cp, std::string& out) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  StatusOr<std::uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    return v;
  }

  StatusOr<std::string> ParseRawString() {
    ++pos_;  // opening quote
    std::string out;
    for (;;) {
      if (AtEnd()) return Fail("unterminated string");
      const char c = Peek();
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character inside string (escape it)");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (AtEnd()) return Fail("truncated escape sequence");
      const char e = Peek();
      ++pos_;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          auto cp = ParseHex4();
          if (!cp.ok()) return cp.status();
          std::uint32_t code = *cp;
          if (code >= 0xd800 && code <= 0xdbff) {
            // High surrogate: a low surrogate must follow.
            if (!(Consume('\\') && Consume('u'))) {
              return Fail("lone high surrogate (expected \\uDC00-\\uDFFF)");
            }
            auto lo = ParseHex4();
            if (!lo.ok()) return lo.status();
            if (*lo < 0xdc00 || *lo > 0xdfff) {
              return Fail("invalid low surrogate in \\u pair");
            }
            code = 0x10000 + ((code - 0xd800) << 10) + (*lo - 0xdc00);
          } else if (code >= 0xdc00 && code <= 0xdfff) {
            return Fail("lone low surrogate");
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Fail(std::string("invalid escape '\\") + e + "'");
      }
    }
  }

  StatusOr<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    bool is_double = false;
    if (Consume('-')) {
      // fallthrough to digits
    }
    if (AtEnd()) return Fail("truncated number");
    if (Consume('0')) {
      if (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
        return Fail("numbers may not have leading zeros");
      }
    } else if (Peek() >= '1' && Peek() <= '9') {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    } else {
      return Fail("invalid number");
    }
    if (!AtEnd() && Peek() == '.') {
      is_double = true;
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("digits must follow the decimal point");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      is_double = true;
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("digits must follow the exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return JsonValue(static_cast<std::int64_t>(v));
      }
      // Out of int64 range: fall through to double like every JSON parser.
    }
    const double d = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(d)) {
      // e.g. "1e999": JSON has no infinity, and Serialize renders non-finite
      // doubles as null, so accepting this would break round-tripping.
      return Fail("number overflows double");
    }
    return JsonValue(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  const int max_depth_;
};

}  // namespace

StatusOr<JsonValue> Parse(const std::string& text, int max_depth) {
  return Parser(text, max_depth).Run();
}

}  // namespace json
}  // namespace coverage

#ifndef COVERAGE_SERVER_JSON_H_
#define COVERAGE_SERVER_JSON_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"

namespace coverage {
namespace json {

/// A parsed JSON document (RFC 8259). One variant value per node; objects
/// keep their members sorted by key (std::map) so serialisation is
/// deterministic — the wire format, the CLI's --json mode, and golden-file
/// tests all see byte-identical output for equal values.
///
/// Numbers distinguish integers from doubles so that 64-bit counters
/// (row counts, query counters) round-trip exactly instead of losing
/// precision through a double. A number token parses as kInt when it has no
/// fraction/exponent and fits std::int64_t, else as kDouble.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}                        // null
  JsonValue(std::nullptr_t) : value_(nullptr) {}         // NOLINT
  JsonValue(bool b) : value_(b) {}                       // NOLINT
  JsonValue(std::int64_t i) : value_(i) {}               // NOLINT
  JsonValue(int i) : value_(static_cast<std::int64_t>(i)) {}  // NOLINT
  JsonValue(std::uint64_t u);                            // NOLINT
  JsonValue(double d) : value_(d) {}                     // NOLINT
  JsonValue(std::string s) : value_(std::move(s)) {}     // NOLINT
  JsonValue(const char* s) : value_(std::string(s)) {}   // NOLINT
  JsonValue(Array a) : value_(std::move(a)) {}           // NOLINT
  JsonValue(Object o) : value_(std::move(o)) {}          // NOLINT

  Type type() const { return static_cast<Type>(value_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  bool AsBool() const { return std::get<bool>(value_); }
  std::int64_t AsInt() const { return std::get<std::int64_t>(value_); }
  /// Any number as double (ints convert).
  double AsDouble() const;
  const std::string& AsString() const { return std::get<std::string>(value_); }
  const Array& AsArray() const { return std::get<Array>(value_); }
  Array& AsArray() { return std::get<Array>(value_); }
  const Object& AsObject() const { return std::get<Object>(value_); }
  Object& AsObject() { return std::get<Object>(value_); }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Typed member accessors for request decoding: NotFound when the key is
  /// absent, InvalidArgument when the type doesn't match. GetInt accepts
  /// only kInt (a client sending 3.5 for a count is a bug worth rejecting).
  StatusOr<std::int64_t> GetInt(const std::string& key) const;
  StatusOr<std::uint64_t> GetUint(const std::string& key) const;
  StatusOr<bool> GetBool(const std::string& key) const;
  StatusOr<std::string> GetString(const std::string& key) const;

  bool operator==(const JsonValue& other) const { return value_ == other.value_; }
  bool operator!=(const JsonValue& other) const { return !(*this == other); }

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      value_;
};

/// Serialises a value on one line with no insignificant whitespace beyond
/// ", " and ": " separators. Strings are escaped per RFC 8259: `"` `\`
/// and all control characters (as \uNNNN, with the \n \t \r \b \f short
/// forms); all other bytes — including multi-byte UTF-8 sequences — pass
/// through verbatim. Doubles render with up to 17 significant digits
/// (round-trip exact); non-finite doubles render as null (JSON has no NaN).
std::string Serialize(const JsonValue& value);

/// Serialize with a trailing newline and 2-space indentation — the
/// human-facing mode used by `coverage_cli --json`.
std::string SerializePretty(const JsonValue& value);

/// Escapes and quotes one string (the building block Serialize uses).
std::string EscapeString(const std::string& s);

/// Strict recursive-descent parser. Rejects, with a byte offset in the
/// message: trailing garbage, trailing commas, unquoted keys, comments,
/// control characters inside strings, invalid \u escapes (lone surrogates
/// included), numbers JSON forbids (leading +, bare '.', hex), and nesting
/// deeper than `max_depth`. \uXXXX escapes decode to UTF-8; surrogate pairs
/// are combined. Duplicate object keys resolve to the last occurrence.
StatusOr<JsonValue> Parse(const std::string& text, int max_depth = 64);

}  // namespace json
}  // namespace coverage

#endif  // COVERAGE_SERVER_JSON_H_
